# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/LinalgTest[1]_include.cmake")
include("/root/repo/build/tests/LangTest[1]_include.cmake")
include("/root/repo/build/tests/CfgTest[1]_include.cmake")
include("/root/repo/build/tests/SolverTest[1]_include.cmake")
include("/root/repo/build/tests/MdpDomainTest[1]_include.cmake")
include("/root/repo/build/tests/BiDomainTest[1]_include.cmake")
include("/root/repo/build/tests/ConcreteTest[1]_include.cmake")
include("/root/repo/build/tests/PolyhedronTest[1]_include.cmake")
include("/root/repo/build/tests/LeiaDomainTest[1]_include.cmake")
include("/root/repo/build/tests/BaselinesTest[1]_include.cmake")
include("/root/repo/build/tests/PmaLawsTest[1]_include.cmake")
include("/root/repo/build/tests/RandomProgramTest[1]_include.cmake")
include("/root/repo/build/tests/AddTest[1]_include.cmake")
include("/root/repo/build/tests/WideningTest[1]_include.cmake")
include("/root/repo/build/tests/PosNegDecomposeTest[1]_include.cmake")
include("/root/repo/build/tests/StressTest[1]_include.cmake")
include("/root/repo/build/tests/BenchmarksTest[1]_include.cmake")
include("/root/repo/build/tests/SchedulerSoundnessTest[1]_include.cmake")
include("/root/repo/build/tests/SchedulerEnumerationTest[1]_include.cmake")
include("/root/repo/build/tests/MiscCoverageTest[1]_include.cmake")
