# Empty dependencies file for SolverTest.
# This may be replaced when dependencies are built.
