file(REMOVE_RECURSE
  "CMakeFiles/SolverTest.dir/SolverTest.cpp.o"
  "CMakeFiles/SolverTest.dir/SolverTest.cpp.o.d"
  "SolverTest"
  "SolverTest.pdb"
  "SolverTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SolverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
