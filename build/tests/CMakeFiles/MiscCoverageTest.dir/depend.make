# Empty dependencies file for MiscCoverageTest.
# This may be replaced when dependencies are built.
