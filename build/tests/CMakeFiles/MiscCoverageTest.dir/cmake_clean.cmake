file(REMOVE_RECURSE
  "CMakeFiles/MiscCoverageTest.dir/MiscCoverageTest.cpp.o"
  "CMakeFiles/MiscCoverageTest.dir/MiscCoverageTest.cpp.o.d"
  "MiscCoverageTest"
  "MiscCoverageTest.pdb"
  "MiscCoverageTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MiscCoverageTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
