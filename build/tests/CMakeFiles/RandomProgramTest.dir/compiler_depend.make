# Empty compiler generated dependencies file for RandomProgramTest.
# This may be replaced when dependencies are built.
