file(REMOVE_RECURSE
  "CMakeFiles/RandomProgramTest.dir/RandomProgramTest.cpp.o"
  "CMakeFiles/RandomProgramTest.dir/RandomProgramTest.cpp.o.d"
  "RandomProgramTest"
  "RandomProgramTest.pdb"
  "RandomProgramTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RandomProgramTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
