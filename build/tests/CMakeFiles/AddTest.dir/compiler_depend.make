# Empty compiler generated dependencies file for AddTest.
# This may be replaced when dependencies are built.
