file(REMOVE_RECURSE
  "AddTest"
  "AddTest.pdb"
  "AddTest[1]_tests.cmake"
  "CMakeFiles/AddTest.dir/AddTest.cpp.o"
  "CMakeFiles/AddTest.dir/AddTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AddTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
