file(REMOVE_RECURSE
  "CMakeFiles/LangTest.dir/LangTest.cpp.o"
  "CMakeFiles/LangTest.dir/LangTest.cpp.o.d"
  "LangTest"
  "LangTest.pdb"
  "LangTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LangTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
