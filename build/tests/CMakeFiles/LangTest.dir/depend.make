# Empty dependencies file for LangTest.
# This may be replaced when dependencies are built.
