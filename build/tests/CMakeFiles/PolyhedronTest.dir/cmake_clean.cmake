file(REMOVE_RECURSE
  "CMakeFiles/PolyhedronTest.dir/PolyhedronTest.cpp.o"
  "CMakeFiles/PolyhedronTest.dir/PolyhedronTest.cpp.o.d"
  "PolyhedronTest"
  "PolyhedronTest.pdb"
  "PolyhedronTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PolyhedronTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
