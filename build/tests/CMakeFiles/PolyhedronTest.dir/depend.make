# Empty dependencies file for PolyhedronTest.
# This may be replaced when dependencies are built.
