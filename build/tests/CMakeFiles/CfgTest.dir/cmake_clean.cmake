file(REMOVE_RECURSE
  "CMakeFiles/CfgTest.dir/CfgTest.cpp.o"
  "CMakeFiles/CfgTest.dir/CfgTest.cpp.o.d"
  "CfgTest"
  "CfgTest.pdb"
  "CfgTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CfgTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
