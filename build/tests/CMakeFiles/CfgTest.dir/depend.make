# Empty dependencies file for CfgTest.
# This may be replaced when dependencies are built.
