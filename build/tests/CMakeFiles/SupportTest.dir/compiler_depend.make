# Empty compiler generated dependencies file for SupportTest.
# This may be replaced when dependencies are built.
