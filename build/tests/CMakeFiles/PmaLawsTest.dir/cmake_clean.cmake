file(REMOVE_RECURSE
  "CMakeFiles/PmaLawsTest.dir/PmaLawsTest.cpp.o"
  "CMakeFiles/PmaLawsTest.dir/PmaLawsTest.cpp.o.d"
  "PmaLawsTest"
  "PmaLawsTest.pdb"
  "PmaLawsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PmaLawsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
