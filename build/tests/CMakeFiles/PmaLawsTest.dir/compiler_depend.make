# Empty compiler generated dependencies file for PmaLawsTest.
# This may be replaced when dependencies are built.
