# Empty dependencies file for SchedulerSoundnessTest.
# This may be replaced when dependencies are built.
