file(REMOVE_RECURSE
  "CMakeFiles/SchedulerSoundnessTest.dir/SchedulerSoundnessTest.cpp.o"
  "CMakeFiles/SchedulerSoundnessTest.dir/SchedulerSoundnessTest.cpp.o.d"
  "SchedulerSoundnessTest"
  "SchedulerSoundnessTest.pdb"
  "SchedulerSoundnessTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SchedulerSoundnessTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
