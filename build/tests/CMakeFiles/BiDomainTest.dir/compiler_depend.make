# Empty compiler generated dependencies file for BiDomainTest.
# This may be replaced when dependencies are built.
