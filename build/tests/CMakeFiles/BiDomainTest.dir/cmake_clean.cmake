file(REMOVE_RECURSE
  "BiDomainTest"
  "BiDomainTest.pdb"
  "BiDomainTest[1]_tests.cmake"
  "CMakeFiles/BiDomainTest.dir/BiDomainTest.cpp.o"
  "CMakeFiles/BiDomainTest.dir/BiDomainTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BiDomainTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
