file(REMOVE_RECURSE
  "BaselinesTest"
  "BaselinesTest.pdb"
  "BaselinesTest[1]_tests.cmake"
  "CMakeFiles/BaselinesTest.dir/BaselinesTest.cpp.o"
  "CMakeFiles/BaselinesTest.dir/BaselinesTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BaselinesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
