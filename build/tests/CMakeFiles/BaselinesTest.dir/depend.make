# Empty dependencies file for BaselinesTest.
# This may be replaced when dependencies are built.
