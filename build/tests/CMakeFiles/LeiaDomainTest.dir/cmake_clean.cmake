file(REMOVE_RECURSE
  "CMakeFiles/LeiaDomainTest.dir/LeiaDomainTest.cpp.o"
  "CMakeFiles/LeiaDomainTest.dir/LeiaDomainTest.cpp.o.d"
  "LeiaDomainTest"
  "LeiaDomainTest.pdb"
  "LeiaDomainTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LeiaDomainTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
