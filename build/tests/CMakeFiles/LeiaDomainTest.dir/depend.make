# Empty dependencies file for LeiaDomainTest.
# This may be replaced when dependencies are built.
