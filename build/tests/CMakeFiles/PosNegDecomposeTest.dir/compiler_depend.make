# Empty compiler generated dependencies file for PosNegDecomposeTest.
# This may be replaced when dependencies are built.
