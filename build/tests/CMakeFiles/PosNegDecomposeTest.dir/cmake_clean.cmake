file(REMOVE_RECURSE
  "CMakeFiles/PosNegDecomposeTest.dir/PosNegDecomposeTest.cpp.o"
  "CMakeFiles/PosNegDecomposeTest.dir/PosNegDecomposeTest.cpp.o.d"
  "PosNegDecomposeTest"
  "PosNegDecomposeTest.pdb"
  "PosNegDecomposeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PosNegDecomposeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
