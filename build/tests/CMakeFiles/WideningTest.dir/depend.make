# Empty dependencies file for WideningTest.
# This may be replaced when dependencies are built.
