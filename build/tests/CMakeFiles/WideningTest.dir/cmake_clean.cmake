file(REMOVE_RECURSE
  "CMakeFiles/WideningTest.dir/WideningTest.cpp.o"
  "CMakeFiles/WideningTest.dir/WideningTest.cpp.o.d"
  "WideningTest"
  "WideningTest.pdb"
  "WideningTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/WideningTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
