file(REMOVE_RECURSE
  "CMakeFiles/LinalgTest.dir/LinalgTest.cpp.o"
  "CMakeFiles/LinalgTest.dir/LinalgTest.cpp.o.d"
  "LinalgTest"
  "LinalgTest.pdb"
  "LinalgTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LinalgTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
