file(REMOVE_RECURSE
  "CMakeFiles/SchedulerEnumerationTest.dir/SchedulerEnumerationTest.cpp.o"
  "CMakeFiles/SchedulerEnumerationTest.dir/SchedulerEnumerationTest.cpp.o.d"
  "SchedulerEnumerationTest"
  "SchedulerEnumerationTest.pdb"
  "SchedulerEnumerationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SchedulerEnumerationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
