# Empty compiler generated dependencies file for SchedulerEnumerationTest.
# This may be replaced when dependencies are built.
