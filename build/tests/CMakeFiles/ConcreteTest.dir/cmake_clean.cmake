file(REMOVE_RECURSE
  "CMakeFiles/ConcreteTest.dir/ConcreteTest.cpp.o"
  "CMakeFiles/ConcreteTest.dir/ConcreteTest.cpp.o.d"
  "ConcreteTest"
  "ConcreteTest.pdb"
  "ConcreteTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConcreteTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
