# Empty compiler generated dependencies file for ConcreteTest.
# This may be replaced when dependencies are built.
