# Empty compiler generated dependencies file for MdpDomainTest.
# This may be replaced when dependencies are built.
