file(REMOVE_RECURSE
  "CMakeFiles/MdpDomainTest.dir/MdpDomainTest.cpp.o"
  "CMakeFiles/MdpDomainTest.dir/MdpDomainTest.cpp.o.d"
  "MdpDomainTest"
  "MdpDomainTest.pdb"
  "MdpDomainTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MdpDomainTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
