# Empty compiler generated dependencies file for StressTest.
# This may be replaced when dependencies are built.
