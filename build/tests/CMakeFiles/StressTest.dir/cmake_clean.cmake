file(REMOVE_RECURSE
  "CMakeFiles/StressTest.dir/StressTest.cpp.o"
  "CMakeFiles/StressTest.dir/StressTest.cpp.o.d"
  "StressTest"
  "StressTest.pdb"
  "StressTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StressTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
