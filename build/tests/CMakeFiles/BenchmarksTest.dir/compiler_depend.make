# Empty compiler generated dependencies file for BenchmarksTest.
# This may be replaced when dependencies are built.
