file(REMOVE_RECURSE
  "BenchmarksTest"
  "BenchmarksTest.pdb"
  "BenchmarksTest[1]_tests.cmake"
  "CMakeFiles/BenchmarksTest.dir/BenchmarksTest.cpp.o"
  "CMakeFiles/BenchmarksTest.dir/BenchmarksTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchmarksTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
