# Empty compiler generated dependencies file for pmaf_poly.
# This may be replaced when dependencies are built.
