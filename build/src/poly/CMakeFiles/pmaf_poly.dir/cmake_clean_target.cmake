file(REMOVE_RECURSE
  "libpmaf_poly.a"
)
