file(REMOVE_RECURSE
  "CMakeFiles/pmaf_poly.dir/LinearExpr.cpp.o"
  "CMakeFiles/pmaf_poly.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/pmaf_poly.dir/Polyhedron.cpp.o"
  "CMakeFiles/pmaf_poly.dir/Polyhedron.cpp.o.d"
  "libpmaf_poly.a"
  "libpmaf_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
