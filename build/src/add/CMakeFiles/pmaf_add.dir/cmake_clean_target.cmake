file(REMOVE_RECURSE
  "libpmaf_add.a"
)
