# Empty dependencies file for pmaf_add.
# This may be replaced when dependencies are built.
