file(REMOVE_RECURSE
  "CMakeFiles/pmaf_add.dir/Add.cpp.o"
  "CMakeFiles/pmaf_add.dir/Add.cpp.o.d"
  "libpmaf_add.a"
  "libpmaf_add.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
