# Empty compiler generated dependencies file for pmaf_domains.
# This may be replaced when dependencies are built.
