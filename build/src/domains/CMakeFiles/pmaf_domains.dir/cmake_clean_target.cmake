file(REMOVE_RECURSE
  "libpmaf_domains.a"
)
