file(REMOVE_RECURSE
  "CMakeFiles/pmaf_domains.dir/AddBiDomain.cpp.o"
  "CMakeFiles/pmaf_domains.dir/AddBiDomain.cpp.o.d"
  "CMakeFiles/pmaf_domains.dir/BiDomain.cpp.o"
  "CMakeFiles/pmaf_domains.dir/BiDomain.cpp.o.d"
  "CMakeFiles/pmaf_domains.dir/BoolStateSpace.cpp.o"
  "CMakeFiles/pmaf_domains.dir/BoolStateSpace.cpp.o.d"
  "CMakeFiles/pmaf_domains.dir/LeiaDomain.cpp.o"
  "CMakeFiles/pmaf_domains.dir/LeiaDomain.cpp.o.d"
  "libpmaf_domains.a"
  "libpmaf_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
