file(REMOVE_RECURSE
  "CMakeFiles/pmaf_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/pmaf_linalg.dir/Matrix.cpp.o.d"
  "libpmaf_linalg.a"
  "libpmaf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
