file(REMOVE_RECURSE
  "libpmaf_linalg.a"
)
