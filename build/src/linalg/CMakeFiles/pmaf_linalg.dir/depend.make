# Empty dependencies file for pmaf_linalg.
# This may be replaced when dependencies are built.
