file(REMOVE_RECURSE
  "CMakeFiles/pmaf_baselines.dir/ClaretForward.cpp.o"
  "CMakeFiles/pmaf_baselines.dir/ClaretForward.cpp.o.d"
  "CMakeFiles/pmaf_baselines.dir/PolySystem.cpp.o"
  "CMakeFiles/pmaf_baselines.dir/PolySystem.cpp.o.d"
  "libpmaf_baselines.a"
  "libpmaf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
