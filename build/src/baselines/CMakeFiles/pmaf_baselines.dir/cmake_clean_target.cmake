file(REMOVE_RECURSE
  "libpmaf_baselines.a"
)
