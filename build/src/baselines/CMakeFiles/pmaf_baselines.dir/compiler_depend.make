# Empty compiler generated dependencies file for pmaf_baselines.
# This may be replaced when dependencies are built.
