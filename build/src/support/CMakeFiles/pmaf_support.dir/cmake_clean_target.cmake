file(REMOVE_RECURSE
  "libpmaf_support.a"
)
