# Empty compiler generated dependencies file for pmaf_support.
# This may be replaced when dependencies are built.
