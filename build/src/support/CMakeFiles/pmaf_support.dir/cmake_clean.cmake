file(REMOVE_RECURSE
  "CMakeFiles/pmaf_support.dir/BigInt.cpp.o"
  "CMakeFiles/pmaf_support.dir/BigInt.cpp.o.d"
  "CMakeFiles/pmaf_support.dir/Rational.cpp.o"
  "CMakeFiles/pmaf_support.dir/Rational.cpp.o.d"
  "libpmaf_support.a"
  "libpmaf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
