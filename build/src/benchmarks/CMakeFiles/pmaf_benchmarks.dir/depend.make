# Empty dependencies file for pmaf_benchmarks.
# This may be replaced when dependencies are built.
