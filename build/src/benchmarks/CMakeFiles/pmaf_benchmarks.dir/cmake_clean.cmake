file(REMOVE_RECURSE
  "CMakeFiles/pmaf_benchmarks.dir/Programs.cpp.o"
  "CMakeFiles/pmaf_benchmarks.dir/Programs.cpp.o.d"
  "libpmaf_benchmarks.a"
  "libpmaf_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
