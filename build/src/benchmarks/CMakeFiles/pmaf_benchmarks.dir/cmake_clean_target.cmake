file(REMOVE_RECURSE
  "libpmaf_benchmarks.a"
)
