# Empty compiler generated dependencies file for pmaf_lang.
# This may be replaced when dependencies are built.
