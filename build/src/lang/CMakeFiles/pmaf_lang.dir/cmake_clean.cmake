file(REMOVE_RECURSE
  "CMakeFiles/pmaf_lang.dir/Ast.cpp.o"
  "CMakeFiles/pmaf_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/pmaf_lang.dir/Lexer.cpp.o"
  "CMakeFiles/pmaf_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/pmaf_lang.dir/Parser.cpp.o"
  "CMakeFiles/pmaf_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/pmaf_lang.dir/PosNegDecompose.cpp.o"
  "CMakeFiles/pmaf_lang.dir/PosNegDecompose.cpp.o.d"
  "libpmaf_lang.a"
  "libpmaf_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
