file(REMOVE_RECURSE
  "libpmaf_lang.a"
)
