file(REMOVE_RECURSE
  "libpmaf_cfg.a"
)
