# Empty dependencies file for pmaf_cfg.
# This may be replaced when dependencies are built.
