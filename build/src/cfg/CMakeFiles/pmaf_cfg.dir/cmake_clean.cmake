file(REMOVE_RECURSE
  "CMakeFiles/pmaf_cfg.dir/Lowering.cpp.o"
  "CMakeFiles/pmaf_cfg.dir/Lowering.cpp.o.d"
  "CMakeFiles/pmaf_cfg.dir/Wto.cpp.o"
  "CMakeFiles/pmaf_cfg.dir/Wto.cpp.o.d"
  "libpmaf_cfg.a"
  "libpmaf_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
