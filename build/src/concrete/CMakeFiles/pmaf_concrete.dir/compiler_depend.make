# Empty compiler generated dependencies file for pmaf_concrete.
# This may be replaced when dependencies are built.
