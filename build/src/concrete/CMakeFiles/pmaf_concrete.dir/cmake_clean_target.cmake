file(REMOVE_RECURSE
  "libpmaf_concrete.a"
)
