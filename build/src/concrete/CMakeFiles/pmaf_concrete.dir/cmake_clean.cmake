file(REMOVE_RECURSE
  "CMakeFiles/pmaf_concrete.dir/Interpreter.cpp.o"
  "CMakeFiles/pmaf_concrete.dir/Interpreter.cpp.o.d"
  "libpmaf_concrete.a"
  "libpmaf_concrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_concrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
