# Empty dependencies file for pmaf_cli.
# This may be replaced when dependencies are built.
