file(REMOVE_RECURSE
  "CMakeFiles/pmaf_cli.dir/pmaf.cpp.o"
  "CMakeFiles/pmaf_cli.dir/pmaf.cpp.o.d"
  "pmaf"
  "pmaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmaf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
