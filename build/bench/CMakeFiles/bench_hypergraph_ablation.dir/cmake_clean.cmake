file(REMOVE_RECURSE
  "CMakeFiles/bench_hypergraph_ablation.dir/bench_hypergraph_ablation.cpp.o"
  "CMakeFiles/bench_hypergraph_ablation.dir/bench_hypergraph_ablation.cpp.o.d"
  "bench_hypergraph_ablation"
  "bench_hypergraph_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypergraph_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
