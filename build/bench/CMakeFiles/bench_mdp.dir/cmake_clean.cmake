file(REMOVE_RECURSE
  "CMakeFiles/bench_mdp.dir/bench_mdp.cpp.o"
  "CMakeFiles/bench_mdp.dir/bench_mdp.cpp.o.d"
  "bench_mdp"
  "bench_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
