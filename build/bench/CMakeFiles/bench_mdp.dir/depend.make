# Empty dependencies file for bench_mdp.
# This may be replaced when dependencies are built.
