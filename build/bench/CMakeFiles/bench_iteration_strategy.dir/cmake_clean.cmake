file(REMOVE_RECURSE
  "CMakeFiles/bench_iteration_strategy.dir/bench_iteration_strategy.cpp.o"
  "CMakeFiles/bench_iteration_strategy.dir/bench_iteration_strategy.cpp.o.d"
  "bench_iteration_strategy"
  "bench_iteration_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iteration_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
