# Empty compiler generated dependencies file for bench_iteration_strategy.
# This may be replaced when dependencies are built.
