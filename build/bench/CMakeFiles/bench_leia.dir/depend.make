# Empty dependencies file for bench_leia.
# This may be replaced when dependencies are built.
