file(REMOVE_RECURSE
  "CMakeFiles/bench_leia.dir/bench_leia.cpp.o"
  "CMakeFiles/bench_leia.dir/bench_leia.cpp.o.d"
  "bench_leia"
  "bench_leia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
