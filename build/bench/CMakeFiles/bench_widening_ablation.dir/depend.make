# Empty dependencies file for bench_widening_ablation.
# This may be replaced when dependencies are built.
