file(REMOVE_RECURSE
  "CMakeFiles/bench_widening_ablation.dir/bench_widening_ablation.cpp.o"
  "CMakeFiles/bench_widening_ablation.dir/bench_widening_ablation.cpp.o.d"
  "bench_widening_ablation"
  "bench_widening_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_widening_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
