# Empty compiler generated dependencies file for bench_newton_vs_kleene.
# This may be replaced when dependencies are built.
