file(REMOVE_RECURSE
  "CMakeFiles/bench_newton_vs_kleene.dir/bench_newton_vs_kleene.cpp.o"
  "CMakeFiles/bench_newton_vs_kleene.dir/bench_newton_vs_kleene.cpp.o.d"
  "bench_newton_vs_kleene"
  "bench_newton_vs_kleene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_newton_vs_kleene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
