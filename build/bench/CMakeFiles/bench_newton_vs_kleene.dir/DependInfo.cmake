
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_newton_vs_kleene.cpp" "bench/CMakeFiles/bench_newton_vs_kleene.dir/bench_newton_vs_kleene.cpp.o" "gcc" "bench/CMakeFiles/bench_newton_vs_kleene.dir/bench_newton_vs_kleene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmarks/CMakeFiles/pmaf_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pmaf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/pmaf_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/add/CMakeFiles/pmaf_add.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pmaf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pmaf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pmaf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/pmaf_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pmaf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
