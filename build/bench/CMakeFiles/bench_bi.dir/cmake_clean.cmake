file(REMOVE_RECURSE
  "CMakeFiles/bench_bi.dir/bench_bi.cpp.o"
  "CMakeFiles/bench_bi.dir/bench_bi.cpp.o.d"
  "bench_bi"
  "bench_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
