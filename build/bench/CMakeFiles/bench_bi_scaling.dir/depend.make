# Empty dependencies file for bench_bi_scaling.
# This may be replaced when dependencies are built.
