file(REMOVE_RECURSE
  "CMakeFiles/bench_bi_scaling.dir/bench_bi_scaling.cpp.o"
  "CMakeFiles/bench_bi_scaling.dir/bench_bi_scaling.cpp.o.d"
  "bench_bi_scaling"
  "bench_bi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
