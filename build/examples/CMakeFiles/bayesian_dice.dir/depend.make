# Empty dependencies file for bayesian_dice.
# This may be replaced when dependencies are built.
