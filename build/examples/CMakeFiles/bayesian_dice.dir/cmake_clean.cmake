file(REMOVE_RECURSE
  "CMakeFiles/bayesian_dice.dir/bayesian_dice.cpp.o"
  "CMakeFiles/bayesian_dice.dir/bayesian_dice.cpp.o.d"
  "bayesian_dice"
  "bayesian_dice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayesian_dice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
