file(REMOVE_RECURSE
  "CMakeFiles/signed_walk.dir/signed_walk.cpp.o"
  "CMakeFiles/signed_walk.dir/signed_walk.cpp.o.d"
  "signed_walk"
  "signed_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
