# Empty dependencies file for signed_walk.
# This may be replaced when dependencies are built.
