file(REMOVE_RECURSE
  "CMakeFiles/mdp_rewards.dir/mdp_rewards.cpp.o"
  "CMakeFiles/mdp_rewards.dir/mdp_rewards.cpp.o.d"
  "mdp_rewards"
  "mdp_rewards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
