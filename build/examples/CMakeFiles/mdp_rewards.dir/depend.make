# Empty dependencies file for mdp_rewards.
# This may be replaced when dependencies are built.
