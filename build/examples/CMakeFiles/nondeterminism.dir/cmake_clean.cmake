file(REMOVE_RECURSE
  "CMakeFiles/nondeterminism.dir/nondeterminism.cpp.o"
  "CMakeFiles/nondeterminism.dir/nondeterminism.cpp.o.d"
  "nondeterminism"
  "nondeterminism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nondeterminism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
