# Empty dependencies file for nondeterminism.
# This may be replaced when dependencies are built.
