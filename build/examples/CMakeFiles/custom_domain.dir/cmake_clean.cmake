file(REMOVE_RECURSE
  "CMakeFiles/custom_domain.dir/custom_domain.cpp.o"
  "CMakeFiles/custom_domain.dir/custom_domain.cpp.o.d"
  "custom_domain"
  "custom_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
