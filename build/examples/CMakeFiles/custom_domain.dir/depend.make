# Empty dependencies file for custom_domain.
# This may be replaced when dependencies are built.
