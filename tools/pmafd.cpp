//===- tools/pmafd.cpp - The PMAF analysis daemon -------------------------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pmafd: the standalone analysis daemon. Listens on 127.0.0.1 and
/// serves the length-prefixed JSON protocol of server/Protocol.h;
/// `pmaf serve` is the same daemon reached through the main CLI.
///
///   pmafd [--port=N] [--jobs=N] [--no-affinity]
///
/// --port=0 (the default) binds an ephemeral port; the chosen port is
/// printed as "pmafd: listening on 127.0.0.1:PORT" once the daemon is
/// ready, so scripts can parse it. Exit codes: 0 after a clean
/// `shutdown` request, 1 when the listener cannot start, 2 on bad usage.
///
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "support/NumParse.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

using namespace pmaf;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--jobs=N] [--no-affinity]\n"
               "  --port=N       TCP port on 127.0.0.1 (0 = ephemeral; "
               "default 0)\n"
               "  --jobs=N       shared-pool width (0 = hardware threads; "
               "default 1)\n"
               "  --no-affinity  disable component->worker affinity for "
               "solves\n",
               Argv0);
  return 2;
}

std::optional<uint64_t> parseFlagUnsigned(const char *Flag,
                                          const std::string &Value) {
  std::optional<uint64_t> Parsed = support::parseUnsigned(Value);
  if (!Parsed)
    std::fprintf(stderr,
                 "error: %s expects an unsigned integer, got '%s' "
                 "[invalid-flag-value]\n",
                 Flag, Value.c_str());
  return Parsed;
}

} // namespace

int main(int argc, char **argv) {
  server::DaemonOptions Opts;
  for (int I = 1; I != argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg.rfind("--port=", 0) == 0) {
      std::optional<uint64_t> Port =
          parseFlagUnsigned("--port", Arg.substr(7));
      if (!Port)
        return 2;
      if (*Port > 65535) {
        std::fprintf(stderr,
                     "error: --port expects a value in [0, 65535], got %llu "
                     "[invalid-flag-value]\n",
                     static_cast<unsigned long long>(*Port));
        return 2;
      }
      Opts.Port = static_cast<uint16_t>(*Port);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::optional<uint64_t> Jobs =
          parseFlagUnsigned("--jobs", Arg.substr(7));
      if (!Jobs || *Jobs > 65536)
        return 2;
      Opts.Jobs = static_cast<unsigned>(*Jobs);
    } else if (Arg == "--no-affinity") {
      Opts.Affinity = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", Arg.c_str());
      return usage(argv[0]);
    }
  }
  return server::runDaemon(Opts);
}
