#!/usr/bin/env python3
"""Minimal pmafd client: length-prefixed JSON over TCP.

Each line of a driver script (or each --cmd argument) is one JSON request;
replies are printed one per line. Doubles as the CI smoke driver:

  pmafd --port=0 &            # prints "pmafd: listening on 127.0.0.1:PORT"
  python3 tools/pmafd_client.py --port PORT \
      --cmd '{"cmd":"load","source":"proc main() { skip }"}' \
      --cmd '{"cmd":"analyze"}' \
      --cmd '{"cmd":"shutdown"}'

Exit status: 0 when every reply has "ok": true, 1 otherwise.
"""

import argparse
import json
import socket
import struct
import sys


def send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def recv_frame(sock) -> bytes:
    header = b""
    while len(header) != 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            raise ConnectionError("pmafd closed the connection mid-frame")
        header += chunk
    (length,) = struct.unpack(">I", header)
    payload = b""
    while len(payload) != length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("pmafd closed the connection mid-frame")
        payload += chunk
    return payload


def request(sock, obj) -> dict:
    send_frame(sock, json.dumps(obj).encode("utf-8"))
    return json.loads(recv_frame(sock).decode("utf-8"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--cmd",
        action="append",
        default=[],
        help="a JSON request (repeatable, sent in order); when absent, "
        "requests are read from stdin, one JSON object per line",
    )
    args = parser.parse_args()

    commands = args.cmd
    if not commands:
        commands = [line for line in sys.stdin if line.strip()]

    ok = True
    with socket.create_connection((args.host, args.port)) as sock:
        for raw in commands:
            reply = request(sock, json.loads(raw))
            print(json.dumps(reply))
            if not reply.get("ok", False):
                ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
