//===- tools/pmaf.cpp - Command-line driver for the framework -------------===//
//
// Analyze a probabilistic program from the command line:
//
//   pmaf <file.pp> [--domain=leia|bi|mdp|termination] [--decompose]
//                  [--dot] [--stats] [--werror] [--diag-format=text|json]
//                  [--strategy=wto|round-robin|worklist|parallel-scc|
//                              parallel-intra]
//                  [--numeric=poly|ladder|zones|intervals]
//                  [--widening-delay=<n>] [--max-updates=<n>] [--jobs=<n>]
//                  [--affinity=on|off]
//   pmaf check <file.pp>... [--domain=leia|bi|mdp|termination]
//                  [--decompose] [--werror] [--diag-format=text|json]
//   pmaf verify-corpus <dir|file.pp>... [--jobs=<n>] [--seed=<n>]
//                  [--runs=<n>] [--max-updates=<n>] [--out=<file>]
//                  [--werror]
//   pmaf gen-corpus <dir> [--count=<n>] [--seed=<n>]
//                  [--family=bi|mdp|leia|mixed]
//
// With --domain=leia (default) prints the expectation invariants of every
// procedure summary; bi prints the posterior from the all-false prior;
// mdp prints greatest expected rewards; termination prints lower bounds
// on termination probabilities. --decompose applies the positive-negative
// decomposition (§6.2) first, for programs with signed variables. --dot
// prints the control-flow hyper-graphs in Graphviz syntax.
//
// Every analysis is preceded by the semantic lint (analysis/Lint.h):
// warnings go to stderr and the analysis proceeds; errors (including
// domain-precondition failures) abort with a nonzero exit. --werror
// promotes warnings to errors. `pmaf check` runs only the lint, over any
// number of files, and exits nonzero when any file has errors;
// --diag-format=json renders machine-readable diagnostics.
//
// --numeric (LEIA only) selects the numeric backend of the domain
// (core::NumericBackend): `poly` is the monolithic-polyhedra baseline of
// §5.3, `ladder` (the default) the exact packed/escalating backend of
// poly/Ladder.h, and `zones`/`intervals` are cheap sound
// over-approximations restricted to their fragment.
//
// The solver knobs map onto core::SolverOptions: --strategy selects the
// chaotic-iteration scheduler (core/Schedule.h), --widening-delay the
// number of plain updates before widening kicks in, and --max-updates the
// node-update budget. --jobs=<n> runs the parallel engine with n worker
// threads (0 = one per hardware thread): transformers precompile
// concurrently, the dense-matrix kernels block-parallelize,
// --strategy=parallel-scc stabilizes independent SCCs concurrently, and
// --strategy=parallel-intra additionally fans conflict-free batches of a
// single component body across the workers. --affinity=on|off (default
// on) toggles component->worker pinning inside the parallel schedulers:
// pinned work keeps the per-thread conversion memos hot, and the pool
// steals it back only from a saturated owner; fixpoints are identical
// either way.
// --stats prints the instrumentation counters (core/Instrumentation.h),
// including the interpret-cache traffic, precompile timing, the worker
// count the solve actually used, the peak number of SCCs in flight,
// per-worker queueing (tasks run / steals / affinity hits), and
// the intra-component batch traffic.
//
// Every solve is followed by the checker layer (checks/Checker.h): each
// `assert_prob` / `assert_reward` / `assert_interval` statement is judged
// against the fixpoint annotation at its node and reported as a structured
// diagnostic with a stable code (assert-*-safe / -unproved / -violated /
// assert-skipped). A violated assertion exits 1; --werror additionally
// fails unproved and skipped assertions.
//
// `pmaf verify-corpus` fans a directory of programs across the shared
// thread pool: per file it parses, lints, auto-detects the domain (real
// variables -> leia, rewards -> mdp, else bi), solves sequentially, runs
// the checker, and — for programs whose main starts with a planted
// assertion — spot-checks the verdict against a Monte-Carlo estimate of
// the ground truth (checks/Fuzz.h). Verdicts merge into one ChecksDb whose
// JSON summary goes to --out or stdout; any parse failure or soundness
// violation exits 1. `pmaf gen-corpus` writes such a corpus of random
// programs with planted assertions (deterministic in --seed).
//
// Exit codes: 0 analysis converged; 1 lint/parse errors or failed checks;
// 2 usage errors; 3 the update budget (--max-updates) ran out before the
// fixpoint — the printed values are a mid-iteration snapshot, not the
// analysis answer.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "cfg/HyperGraph.h"
#include "checks/Checker.h"
#include "checks/Fuzz.h"
#include "core/Instrumentation.h"
#include "core/Schedule.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "lang/PosNegDecompose.h"
#include "server/Daemon.h"
#include "support/NumParse.h"
#include "support/ThreadPool.h"

// The corpus generator reuses the test suite's seeded program generators
// so `gen-corpus` and the differential tests draw from one distribution.
#include "RandomProgramGen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Termination-probability lower bounds (demonic): the custom-domain
/// example promoted into the tool.
class TerminationDomain {
public:
  using Value = double;
  Value bottom() const { return 0.0; }
  Value one() const { return 1.0; }
  Value extend(const Value &A, const Value &B) const { return A * B; }
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::min(A, B);
  }
  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1.0 - Prob) * B;
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::min(A, B);
  }
  Value interpret(const lang::Stmt *Act) const {
    return Act && Act->kind() == lang::Stmt::Kind::Observe ? 0.0 : 1.0;
  }
  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-12; }
  bool equal(const Value &A, const Value &B) const {
    return std::fabs(A - B) <= 1e-12;
  }
  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }
  std::string toString(const Value &A) const { return std::to_string(A); }
  /// Stateless over scalar doubles: safe to run from any thread.
  static constexpr bool ThreadSafeInterpret = true;
};

/// Strict parse of one numeric flag payload; on failure prints the
/// structured diagnostic (stable code `invalid-flag-value`) and returns
/// nullopt — the caller exits 2, the usage-error code. `--jobs=abc`,
/// `--jobs=-2`, and `--max-updates=1e9` used to silently become 0/garbage
/// through strtoul; now they are hard usage errors.
std::optional<uint64_t> parseFlagUnsigned(const char *Flag,
                                          const std::string &Value) {
  std::optional<uint64_t> Parsed = support::parseUnsigned(Value);
  if (!Parsed)
    std::fprintf(stderr,
                 "error: %s expects an unsigned integer, got '%s' "
                 "[invalid-flag-value]\n",
                 Flag, Value.c_str());
  return Parsed;
}

std::optional<unsigned> parseFlagUnsigned32(const char *Flag,
                                            const std::string &Value) {
  std::optional<uint64_t> Parsed = parseFlagUnsigned(Flag, Value);
  if (!Parsed)
    return std::nullopt;
  if (*Parsed > 0xffffffffull) {
    std::fprintf(stderr,
                 "error: %s value %s is out of range [invalid-flag-value]\n",
                 Flag, Value.c_str());
    return std::nullopt;
  }
  return static_cast<unsigned>(*Parsed);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.pp | -> [--domain=leia|bi|mdp|termination]"
               " [--decompose] [--dot] [--stats] [--werror]"
               " [--diag-format=text|json]"
               " [--strategy=wto|round-robin|worklist|parallel-scc|"
               "parallel-intra]"
               " [--numeric=poly|ladder|zones|intervals]"
               " [--widening-delay=<n>] [--max-updates=<n>] [--jobs=<n>]"
               " [--affinity=on|off]\n"
               "       %s check <file.pp>..."
               " [--domain=leia|bi|mdp|termination] [--decompose]"
               " [--werror] [--diag-format=text|json]\n"
               "       %s verify-corpus <dir|file.pp>... [--jobs=<n>]"
               " [--seed=<n>] [--runs=<n>] [--max-updates=<n>]"
               " [--out=<file>] [--werror]\n"
               "       %s gen-corpus <dir> [--count=<n>] [--seed=<n>]"
               " [--family=bi|mdp|leia|mixed]\n"
               "       %s serve [--port=<n>] [--jobs=<n>]"
               " [--affinity=on|off]\n",
               Argv0, Argv0, Argv0, Argv0, Argv0);
  return 2;
}

/// Solver knobs shared by every domain path; each path layers them over
/// its own preset (e.g. BI disables widening).
struct CliSolverConfig {
  std::optional<IterationStrategy> Strategy;
  std::optional<unsigned> WideningDelay;
  std::optional<uint64_t> MaxUpdates;
  std::optional<unsigned> Jobs;
  std::optional<NumericBackend> Numeric;
  std::optional<bool> Affinity;
  bool Stats = false;

  void apply(SolverOptions &Opts) const {
    if (Strategy)
      Opts.Strategy = *Strategy;
    if (WideningDelay)
      Opts.WideningDelay = *WideningDelay;
    if (MaxUpdates)
      Opts.MaxUpdates = *MaxUpdates;
    if (Jobs)
      Opts.Jobs = *Jobs;
    if (Numeric)
      Opts.Numeric = *Numeric;
    if (Affinity)
      Opts.Affinity = *Affinity;
  }

  void printReport(const SolverInstrumentation &Counters,
                   const SolverOptions &Opts,
                   const core::SolverStats &SolveStats) const {
    if (!Stats)
      return;
    std::printf("; strategy: %s, widening delay %u, max updates %llu, "
                "jobs %u, numeric %s\n",
                core::toString(Opts.Strategy), Opts.WideningDelay,
                static_cast<unsigned long long>(Opts.MaxUpdates),
                Opts.Jobs, core::toString(Opts.Numeric));
    std::printf("; parallel: %u workers used, %u SCCs in flight at peak, "
                "affinity %s\n",
                SolveStats.JobsUsed, SolveStats.MaxParallelSccs,
                Opts.Affinity ? "on" : "off");
    for (size_t W = 0; W != SolveStats.PoolWorkers.size(); ++W) {
      const auto &Q = SolveStats.PoolWorkers[W];
      std::printf("; worker %zu: %llu tasks run, %llu steals, %llu "
                  "affinity hits, %.6f s busy\n",
                  W, static_cast<unsigned long long>(Q.TasksRun),
                  static_cast<unsigned long long>(Q.Steals),
                  static_cast<unsigned long long>(Q.AffinityHits),
                  Q.BusySeconds);
    }
    if (SolveStats.IntraBatchesRun)
      std::printf("; intra-scc: %llu batches fanned out, widest %u, "
                  "%.6f s at barriers\n",
                  static_cast<unsigned long long>(
                      SolveStats.IntraBatchesRun),
                  SolveStats.MaxIntraBatchWidth,
                  SolveStats.IntraBarrierWaitSeconds);
    if (!SolveStats.Converged)
      std::printf("; NOT CONVERGED: update budget exhausted after %llu "
                  "updates\n",
                  static_cast<unsigned long long>(SolveStats.NodeUpdates));
    std::printf("%s", Counters.report().c_str());
  }

  /// Prints the report and maps the solve outcome to the process exit
  /// code: 0 for a converged fixpoint, 3 (with a stderr warning) when the
  /// update budget ran out and the printed values are only a
  /// mid-iteration snapshot.
  int finish(const SolverInstrumentation &Counters,
             const SolverOptions &Opts,
             const core::SolverStats &SolveStats) const {
    printReport(Counters, Opts, SolveStats);
    if (SolveStats.Converged)
      return 0;
    std::fprintf(stderr,
                 "warning: analysis did not converge: the update budget "
                 "(--max-updates=%llu) was exhausted; the reported values "
                 "are not a post-fixpoint\n",
                 static_cast<unsigned long long>(Opts.MaxUpdates));
    return 3;
  }
};

analysis::TargetDomain domainFromName(const std::string &Name) {
  if (Name == "leia")
    return analysis::TargetDomain::Leia;
  if (Name == "bi")
    return analysis::TargetDomain::Bi;
  if (Name == "mdp")
    return analysis::TargetDomain::Mdp;
  if (Name == "termination")
    return analysis::TargetDomain::Termination;
  return analysis::TargetDomain::None;
}

bool readSource(const std::string &Path, std::string &Source) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Source = Buffer.str();
  return true;
}

/// Parse + decompose + lint one source into \p Diags. \returns the linted
/// program, or null when parsing or decomposition failed (the failure has
/// been reported into \p Diags).
std::unique_ptr<lang::Program>
parseAndLint(const std::string &Path, const std::string &Source,
             DiagnosticEngine &Diags, const std::string &DomainName,
             bool Decompose) {
  Diags.setSource(Path, Source);
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  if (!Parsed)
    return nullptr;
  std::unique_ptr<lang::Program> Prog = std::move(Parsed.Prog);
  if (Decompose) {
    lang::DecomposeResult D = lang::decomposePosNeg(*Prog);
    if (!D) {
      Diags.report(Severity::Error, {}, "decompose-error",
                   "cannot decompose: " + D.Error);
      return nullptr;
    }
    Prog = std::move(D.Prog);
  }
  analysis::LintOptions Opts;
  Opts.Domain = domainFromName(DomainName);
  Opts.Decomposed = Decompose;
  analysis::lintProgram(*Prog, Diags, Opts);
  Diags.sortByLocation();
  return Prog;
}

/// `pmaf check`: lint-only over any number of files; diagnostics go to
/// stdout, exit 1 when any file has errors.
int runCheck(const std::vector<std::string> &Files,
             const std::string &DomainName, bool Decompose, bool Werror,
             bool Json) {
  if (Files.empty()) {
    std::fprintf(stderr, "error: pmaf check requires at least one file\n");
    return 2;
  }
  bool AnyErrors = false;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readSource(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      AnyErrors = true;
      continue;
    }
    DiagnosticEngine Diags;
    Diags.setWarningsAsErrors(Werror);
    parseAndLint(Path, Source, Diags, DomainName, Decompose);
    if (Json)
      std::printf("%s\n", Diags.renderJson().c_str());
    else
      std::printf("%s", Diags.renderAll().c_str());
    if (Diags.hasErrors())
      AnyErrors = true;
  }
  return AnyErrors ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// The checker layer
//===----------------------------------------------------------------------===//

/// Reports check verdicts as diagnostics on stdout plus a one-line
/// summary. \returns 1 when the verdicts fail the run (any violated
/// assertion, or unproved/skipped ones under --werror), 0 otherwise.
int reportCheckResults(const checks::ChecksDb &Db, const std::string &Path,
                       const std::string &Source, bool Werror, bool Json) {
  if (Db.total() == 0)
    return 0;
  DiagnosticEngine Diags;
  Diags.setSource(Path, Source);
  Diags.setWarningsAsErrors(Werror);
  checks::reportChecks(Db, Diags);
  Diags.sortByLocation();
  if (Json) {
    // Match the lint path: machine-readable diagnostics go to stderr so
    // stdout stays the (parseable-by-humans) analysis report.
    std::fprintf(stderr, "%s\n", Diags.renderJson().c_str());
  } else {
    std::printf("%s", Diags.renderAll().c_str());
    std::printf("checks: %s\n", Db.summary().c_str());
  }
  return Diags.hasErrors() ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// verify-corpus / gen-corpus
//===----------------------------------------------------------------------===//

bool stmtContainsKind(const lang::Stmt &S, lang::Stmt::Kind K) {
  if (S.kind() == K)
    return true;
  switch (S.kind()) {
  case lang::Stmt::Kind::Block:
    for (const lang::Stmt::Ptr &Child : S.stmts())
      if (stmtContainsKind(*Child, K))
        return true;
    return false;
  case lang::Stmt::Kind::If:
    return stmtContainsKind(S.thenStmt(), K) ||
           (S.elseStmt() && stmtContainsKind(*S.elseStmt(), K));
  case lang::Stmt::Kind::While:
    return stmtContainsKind(S.body(), K);
  default:
    return false;
  }
}

/// Domain auto-detection for corpus files: real variables -> leia, reward
/// statements or reward assertions -> mdp, else bi.
std::string detectDomain(const lang::Program &Prog) {
  for (const lang::VarInfo &V : Prog.Vars)
    if (V.IsReal)
      return "leia";
  for (const lang::Procedure &P : Prog.Procs)
    if (P.Body && stmtContainsKind(*P.Body, lang::Stmt::Kind::Reward))
      return "mdp";
  return "bi";
}

/// The planted assertion of a fuzz-shaped program: the first statement of
/// main when it is an assert, else null (the soundness spot-check only
/// applies to that shape — the all-zero initial state of the concrete runs
/// is then one of the quantified pre-states).
const lang::Stmt *plantedAssertion(const lang::Program &Prog) {
  unsigned Main = Prog.findProc("main");
  if (Main == ~0u)
    Main = 0;
  if (Prog.Procs.empty() || !Prog.Procs[Main].Body)
    return nullptr;
  const lang::Stmt *Body = Prog.Procs[Main].Body.get();
  while (Body->kind() == lang::Stmt::Kind::Block && !Body->stmts().empty())
    Body = Body->stmts().front().get();
  return Body->kind() == lang::Stmt::Kind::Assert ? Body : nullptr;
}

/// Sampling tolerance for the soundness oracle: a few standard errors at
/// the scale of the asserted quantity, plus a floor for float drift.
double soundnessTol(const lang::Stmt &A, unsigned Runs) {
  double Base = 4.0 / std::sqrt(static_cast<double>(Runs ? Runs : 1));
  switch (A.assertKind()) {
  case lang::AssertKind::Prob:
    return 0.5 * Base + 0.01;
  case lang::AssertKind::Reward:
    return Base * (1.0 + std::fabs(A.assertBound().toDouble())) + 0.05;
  case lang::AssertKind::Interval: {
    double Scale = std::max(std::fabs(A.assertLo().toDouble()),
                            std::fabs(A.assertHi().toDouble()));
    return Base * (1.0 + Scale) + 0.05;
  }
  }
  return 0.05;
}

struct CorpusOptions {
  unsigned Jobs = 4;
  uint64_t Seed = 1;
  /// Monte-Carlo runs per soundness spot-check; 0 disables the oracle.
  unsigned Runs = 2000;
  uint64_t MaxUpdates = 200000;
  std::string OutPath;
  bool Werror = false;
};

struct CorpusFileOutcome {
  bool Ok = true;         ///< Parsed, linted, and solved without failure.
  bool Converged = true;  ///< Solver reached the fixpoint.
  checks::ChecksDb Db;
  std::string SoundnessViolation; ///< Nonempty = the oracle fired.
  std::string Error;              ///< Failure description when !Ok.
};

CorpusFileOutcome processCorpusFile(const std::string &Path,
                                    const CorpusOptions &Opts,
                                    uint64_t FileSeed) {
  CorpusFileOutcome Out;
  std::string Source;
  if (!readSource(Path, Source)) {
    Out.Ok = false;
    Out.Error = "cannot open file";
    return Out;
  }
  DiagnosticEngine Diags;
  Diags.setSource(Path, Source);
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  if (!Parsed) {
    Out.Ok = false;
    Out.Error = "parse failed";
    return Out;
  }
  std::unique_ptr<lang::Program> Prog = std::move(Parsed.Prog);
  std::string Domain = detectDomain(*Prog);
  analysis::LintOptions LOpts;
  LOpts.Domain = domainFromName(Domain);
  analysis::lintProgram(*Prog, Diags, LOpts);
  if (Diags.hasErrors()) {
    Out.Ok = false;
    Out.Error = "lint errors (domain " + Domain + ")";
    return Out;
  }
  if (Domain == "bi") {
    unsigned Bools = 0;
    for (const lang::VarInfo &V : Prog->Vars)
      Bools += V.IsReal ? 0 : 1;
    if (Bools > 16) {
      Out.Ok = false;
      Out.Error = "too many Boolean variables for the dense BI domain";
      return Out;
    }
  }

  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverInstrumentation Counters;
  checks::CheckerOptions COpts;
  // Per-file solves are sequential; verify-corpus parallelizes across
  // files instead.
  if (Domain == "bi") {
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions SOpts;
    SOpts.UseWidening = false;
    SOpts.Jobs = 1;
    SOpts.MaxUpdates = Opts.MaxUpdates;
    auto Result = solve(Graph, Dom, SOpts, &Counters);
    Out.Converged = Result.Stats.Converged;
    COpts.Converged = Result.Stats.Converged;
    Out.Db = checks::checkBiSummaries(
        Space, Graph, [&](unsigned N) { return Result.Values[N]; }, COpts);
  } else if (Domain == "mdp") {
    MdpDomain Dom;
    SolverOptions SOpts;
    SOpts.WideningDelay = 10000;
    SOpts.Jobs = 1;
    SOpts.MaxUpdates = Opts.MaxUpdates;
    auto Result = solve(Graph, Dom, SOpts, &Counters);
    Out.Converged = Result.Stats.Converged;
    COpts.Converged = Result.Stats.Converged;
    Out.Db = checks::checkMdp(Graph, Result.Values, COpts);
  } else {
    // Zones, not the ladder: a rare random loop program can drive the
    // ladder's polyhedra escalation into multi-minute joins, and corpus
    // verification needs bounded per-file cost. Zones stays relational
    // (it keeps the exit identity x' = x that boxes lose) at polynomial
    // cost, and the checker verdict logic is backend-independent.
    LeiaDomainT<poly::Zones> Dom(*Prog);
    SolverOptions SOpts;
    SOpts.Jobs = 1;
    SOpts.MaxUpdates = Opts.MaxUpdates;
    auto Result = solve(Graph, Dom, SOpts, &Counters);
    Out.Converged = Result.Stats.Converged;
    COpts.Converged = Result.Stats.Converged;
    Out.Db = checks::checkLeia(Dom, Graph, Result.Values, COpts);
  }

  // Soundness spot-check for fuzz-shaped programs. Checker records are in
  // collectAssertions order, so the planted assertion's verdict is at the
  // matching index.
  const lang::Stmt *Planted = plantedAssertion(*Prog);
  if (Planted && Opts.Runs && Out.Converged) {
    auto Asserts = checks::collectAssertions(Graph);
    for (size_t I = 0; I != Asserts.size(); ++I) {
      if (Asserts[I].second != Planted)
        continue;
      checks::fuzz::GroundTruth GT = checks::fuzz::estimateGroundTruth(
          *Prog, *Planted, FileSeed, Opts.Runs);
      Out.SoundnessViolation = checks::fuzz::soundnessViolation(
          *Planted, Out.Db.records()[I].TheVerdict, GT,
          soundnessTol(*Planted, Opts.Runs));
      break;
    }
  }
  return Out;
}

int runVerifyCorpus(const std::vector<std::string> &Paths,
                    const CorpusOptions &Opts) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code Ec;
    // A path that does not exist is a usage error, not a corpus with one
    // unreadable file: surface it with a stable code and exit 2 instead
    // of burying "cannot open file" in the per-file failure list.
    if (P != "-" && !fs::exists(P, Ec)) {
      std::fprintf(stderr,
                   "error: verify-corpus path does not exist: %s "
                   "[corpus-path-missing]\n",
                   P.c_str());
      return 2;
    }
    if (fs::is_directory(P, Ec)) {
      for (const fs::directory_entry &E : fs::directory_iterator(P, Ec))
        if (E.path().extension() == ".pp")
          Files.push_back(E.path().string());
    } else {
      Files.push_back(P);
    }
  }
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::fprintf(stderr, "error: verify-corpus found no .pp files to check "
                         "[corpus-empty]\n");
    return 2;
  }

  support::ThreadPool Pool(Opts.Jobs
                               ? Opts.Jobs
                               : support::ThreadPool::hardwareConcurrency());
  std::mutex Mu;
  checks::ChecksDb Global;
  unsigned Failed = 0, NotConverged = 0;
  std::vector<std::string> Violations, Failures;
  Pool.parallelFor(size_t(0), Files.size(), [&](size_t I) {
    CorpusFileOutcome Out;
    try {
      Out = processCorpusFile(Files[I], Opts,
                              Opts.Seed + I * 0x9e3779b97f4a7c15ull);
    } catch (const std::exception &E) {
      Out.Ok = false;
      Out.Error = std::string("exception: ") + E.what();
    }
    Out.Db.tagFile(Files[I]);
    std::lock_guard<std::mutex> Lock(Mu);
    Global.merge(Out.Db);
    if (!Out.Ok) {
      ++Failed;
      Failures.push_back(Files[I] + ": " + Out.Error);
    }
    if (!Out.Converged)
      ++NotConverged;
    if (!Out.SoundnessViolation.empty())
      Violations.push_back(Files[I] + ": " + Out.SoundnessViolation);
  });

  std::sort(Violations.begin(), Violations.end());
  std::sort(Failures.begin(), Failures.end());
  std::string Json = "{\"files\": " + std::to_string(Files.size());
  Json += ", \"failed\": " + std::to_string(Failed);
  Json += ", \"not_converged\": " + std::to_string(NotConverged);
  Json += ", \"soundness_violations\": [";
  for (size_t I = 0; I != Violations.size(); ++I) {
    if (I)
      Json += ", ";
    Json += "\"";
    for (char C : Violations[I])
      C == '"' || C == '\\' ? (Json += '\\', Json += C) : (Json += C);
    Json += "\"";
  }
  Json += "], \"checks\": " + Global.toJson() + "}";
  if (!Opts.OutPath.empty()) {
    std::ofstream OutFile(Opts.OutPath);
    if (!OutFile) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.OutPath.c_str());
      return 1;
    }
    OutFile << Json << "\n";
  } else {
    std::printf("%s\n", Json.c_str());
  }

  for (const std::string &F : Failures)
    std::fprintf(stderr, "error: %s\n", F.c_str());
  for (const std::string &V : Violations)
    std::fprintf(stderr, "error: SOUNDNESS VIOLATION: %s\n", V.c_str());
  std::fprintf(stderr,
               "verify-corpus: %zu files, %u failed, %u not converged, "
               "%zu soundness violations; checks: %s\n",
               Files.size(), Failed, NotConverged, Violations.size(),
               Global.summary().c_str());
  bool WerrorFail =
      Opts.Werror && (Global.count(checks::Verdict::Warning) != 0 ||
                      Global.count(checks::Verdict::Skipped) != 0);
  return (Failed || !Violations.empty() || WerrorFail) ? 1 : 0;
}

int runGenCorpus(const std::string &Dir, unsigned Count, uint64_t Seed,
                 const std::string &Family) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec || !fs::is_directory(Dir, Ec)) {
    std::fprintf(stderr,
                 "error: cannot create corpus directory %s "
                 "[corpus-dir-unwritable]\n",
                 Dir.c_str());
    return 1;
  }
  for (unsigned I = 0; I != Count; ++I) {
    Rng R(Seed + I * 0x9e3779b97f4a7c15ull + 1);
    std::string Kind = Family;
    if (Kind == "mixed")
      Kind = I % 3 == 0 ? "bi" : I % 3 == 1 ? "mdp" : "leia";
    std::unique_ptr<lang::Program> Prog;
    lang::Stmt::Ptr Assertion;
    if (Kind == "leia") {
      Prog = testgen::randomRealProgram(
          R, 2 + static_cast<unsigned>(R.below(2)),
          3 + static_cast<unsigned>(R.below(2)));
      Assertion = checks::fuzz::randomIntervalAssertion(R, *Prog);
    } else {
      testgen::BoolGenConfig C;
      C.NumVars = 2 + static_cast<unsigned>(R.below(2));
      C.NumStmts = 3 + static_cast<unsigned>(R.below(3));
      if (R.below(3) == 0) {
        C.HelperProcs = 2;
        C.CallWeight = 2;
      }
      if (Kind == "mdp") {
        // The MDP domain treats observe as the identity while the concrete
        // semantics rejects the run; keep the fuzz distribution inside the
        // fragment both readings agree on.
        C.ObserveWeight = 0;
        Prog = testgen::randomBoolProgram(R, C);
        checks::fuzz::sprinkleRewards(R, *Prog,
                                      1 + static_cast<unsigned>(R.below(3)));
        Assertion = checks::fuzz::randomRewardAssertion(R);
      } else {
        Prog = testgen::randomBoolProgram(R, C);
        Assertion = checks::fuzz::randomProbAssertion(R, *Prog);
      }
    }
    // Half the corpus gets the decisive shape (assertion, then a constant
    // prologue collapsing all pre-state rows); the other half keeps the
    // raw pre-state dependence, exercising the for-all-pre-states
    // warnings.
    std::vector<lang::Stmt::Ptr> Prologue;
    if (R.below(2) == 0)
      Prologue = checks::fuzz::randomInitPrologue(R, *Prog);
    checks::fuzz::plantAssertion(*Prog, std::move(Assertion),
                                 std::move(Prologue));
    char Name[32];
    std::snprintf(Name, sizeof(Name), "prog_%05u.pp", I);
    std::ofstream OutFile(fs::path(Dir) / Name);
    if (!OutFile) {
      std::fprintf(stderr, "error: cannot write %s/%s\n", Dir.c_str(), Name);
      return 1;
    }
    OutFile << lang::toString(*Prog);
  }
  std::printf("gen-corpus: wrote %u programs to %s\n", Count, Dir.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool CheckMode = argc > 1 && std::strcmp(argv[1], "check") == 0;
  bool CorpusMode = argc > 1 && std::strcmp(argv[1], "verify-corpus") == 0;
  bool GenMode = argc > 1 && std::strcmp(argv[1], "gen-corpus") == 0;
  bool ServeMode = argc > 1 && std::strcmp(argv[1], "serve") == 0;
  std::vector<std::string> Paths;
  std::string Domain = "leia";
  bool DomainExplicit = false;
  bool Decompose = false, EmitDot = false, Werror = false, Json = false;
  uint64_t Seed = 1;
  unsigned Count = 100, Runs = 2000;
  uint16_t Port = 0;
  std::string OutPath, Family = "mixed";
  CliSolverConfig Config;
  for (int I = (CheckMode || CorpusMode || GenMode || ServeMode) ? 2 : 1;
       I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--domain=", 0) == 0) {
      Domain = Arg.substr(9);
      DomainExplicit = true;
    } else if (Arg == "--decompose")
      Decompose = true;
    else if (Arg == "--werror")
      Werror = true;
    else if (Arg.rfind("--diag-format=", 0) == 0) {
      std::string Format = Arg.substr(14);
      if (Format == "json")
        Json = true;
      else if (Format != "text")
        return usage(argv[0]);
    } else if (Arg == "--dot")
      EmitDot = true;
    else if (Arg == "--stats")
      Config.Stats = true;
    else if (Arg.rfind("--strategy=", 0) == 0) {
      Config.Strategy = parseIterationStrategy(Arg.substr(11));
      if (!Config.Strategy) {
        std::fprintf(stderr, "error: unknown strategy %s\n",
                     Arg.substr(11).c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("--numeric=", 0) == 0) {
      Config.Numeric = parseNumericBackend(Arg.substr(10));
      if (!Config.Numeric) {
        std::fprintf(stderr, "error: unknown numeric backend %s\n",
                     Arg.substr(10).c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("--widening-delay=", 0) == 0) {
      auto V = parseFlagUnsigned32("--widening-delay", Arg.substr(17));
      if (!V)
        return 2;
      Config.WideningDelay = *V;
    } else if (Arg.rfind("--max-updates=", 0) == 0) {
      auto V = parseFlagUnsigned("--max-updates", Arg.substr(14));
      if (!V)
        return 2;
      Config.MaxUpdates = *V;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      auto V = parseFlagUnsigned32("--jobs", Arg.substr(7));
      if (!V)
        return 2;
      Config.Jobs = *V;
    } else if (Arg.rfind("--affinity=", 0) == 0) {
      std::string Mode = Arg.substr(11);
      if (Mode == "on")
        Config.Affinity = true;
      else if (Mode == "off")
        Config.Affinity = false;
      else {
        std::fprintf(stderr, "error: --affinity takes on|off, got %s\n",
                     Mode.c_str());
        return usage(argv[0]);
      }
    }
    else if (Arg.rfind("--seed=", 0) == 0) {
      auto V = parseFlagUnsigned("--seed", Arg.substr(7));
      if (!V)
        return 2;
      Seed = *V;
    } else if (Arg.rfind("--runs=", 0) == 0) {
      auto V = parseFlagUnsigned32("--runs", Arg.substr(7));
      if (!V)
        return 2;
      Runs = *V;
    } else if (Arg.rfind("--count=", 0) == 0) {
      auto V = parseFlagUnsigned32("--count", Arg.substr(8));
      if (!V)
        return 2;
      Count = *V;
    } else if (Arg.rfind("--port=", 0) == 0) {
      auto V = parseFlagUnsigned32("--port", Arg.substr(7));
      if (!V)
        return 2;
      if (*V > 65535) {
        std::fprintf(stderr, "error: --port value %u is out of range "
                             "[invalid-flag-value]\n",
                     *V);
        return 2;
      }
      Port = static_cast<uint16_t>(*V);
    } else if (Arg.rfind("--out=", 0) == 0)
      OutPath = Arg.substr(6);
    else if (Arg.rfind("--family=", 0) == 0) {
      Family = Arg.substr(9);
      if (Family != "bi" && Family != "mdp" && Family != "leia" &&
          Family != "mixed")
        return usage(argv[0]);
    } else if (Arg[0] == '-' && Arg != "-")
      return usage(argv[0]);
    else
      Paths.push_back(Arg);
  }

  if (CheckMode)
    return runCheck(Paths, DomainExplicit ? Domain : std::string(),
                    Decompose, Werror, Json);
  if (CorpusMode) {
    CorpusOptions COpts;
    COpts.Jobs = Config.Jobs.value_or(4);
    COpts.Seed = Seed;
    COpts.Runs = Runs;
    if (Config.MaxUpdates)
      COpts.MaxUpdates = *Config.MaxUpdates;
    COpts.OutPath = OutPath;
    COpts.Werror = Werror;
    return runVerifyCorpus(Paths, COpts);
  }
  if (GenMode) {
    if (Paths.size() != 1)
      return usage(argv[0]);
    return runGenCorpus(Paths[0], Count, Seed, Family);
  }
  if (ServeMode) {
    // `pmaf serve` is the in-binary spelling of pmafd: same daemon, same
    // protocol, handy when only the CLI is deployed.
    server::DaemonOptions DOpts;
    DOpts.Port = Port;
    DOpts.Jobs = Config.Jobs.value_or(1);
    if (Config.Affinity)
      DOpts.Affinity = *Config.Affinity;
    return server::runDaemon(DOpts);
  }

  // --jobs also turns on the process-wide pool the dense-matrix kernels
  // draw from (distinct from the solver's per-solve pool).
  // setSharedParallelism resolves 0 to the hardware thread count itself.
  // A refusal (tasks in flight — cannot happen this early in a fresh CLI
  // process, but the call is shared with long-lived embedders) degrades
  // to a structured warning rather than a silent wrong-sized pool.
  if (Config.Jobs) {
    std::string WhyRefused;
    if (!support::setSharedParallelism(*Config.Jobs, &WhyRefused))
      std::fprintf(stderr,
                   "warning: --jobs=%u not applied to the shared pool: %s "
                   "[pool-busy]\n",
                   *Config.Jobs, WhyRefused.c_str());
  }

  if (Paths.size() != 1)
    return usage(argv[0]);
  const std::string &Path = Paths[0];

  std::string Source;
  if (!readSource(Path, Source)) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }

  // Pre-analysis lint: warnings are advisory, errors (parse failures,
  // type errors, domain-precondition violations) stop the analysis.
  DiagnosticEngine Diags;
  Diags.setWarningsAsErrors(Werror);
  // Flags that only affect the LEIA path are diagnosed, not silently
  // dropped, when another domain was selected.
  if (Config.Numeric && Domain != "leia")
    Diags.report(Severity::Warning, {}, "option-ignored",
                 "--numeric selects the LEIA numeric backend and has no "
                 "effect with --domain=" +
                     Domain);
  if (Decompose && Domain != "leia")
    Diags.report(Severity::Warning, {}, "option-ignored",
                 "--decompose targets signed variables of LEIA runs; with "
                 "--domain=" +
                     Domain + " it does not change the analysis");
  std::unique_ptr<lang::Program> Prog =
      parseAndLint(Path, Source, Diags, Domain, Decompose);
  if (!Diags.empty()) {
    if (Json)
      std::fprintf(stderr, "%s\n", Diags.renderJson().c_str());
    else
      std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  }
  if (!Prog || Diags.hasErrors())
    return 1;

  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  if (EmitDot)
    std::printf("%s", Graph.toDot().c_str());

  SolverInstrumentation Counters;
  if (Domain == "leia") {
    SolverOptions Opts;
    Config.apply(Opts);
    // The backend is a template parameter of the domain; dispatch the
    // whole leia path on the runtime choice once, here.
    auto RunLeia = [&]<typename NumV>(std::type_identity<NumV>) -> int {
      LeiaDomainT<NumV> Dom(*Prog);
      auto Result = solve(Graph, Dom, Opts, &Counters);
      for (unsigned P = 0; P != Graph.numProcs(); ++P) {
        std::printf("%s():\n", Prog->Procs[P].Name.c_str());
        auto Invariants =
            Dom.describeInvariants(Result.Values[Graph.proc(P).Entry]);
        if (Invariants.empty())
          std::printf("  (no expectation invariants)\n");
        for (const std::string &Inv : Invariants)
          std::printf("  %s\n", Inv.c_str());
      }
      checks::CheckerOptions COpts;
      COpts.Converged = Result.Stats.Converged;
      int CheckExit = reportCheckResults(
          checks::checkLeia(Dom, Graph, Result.Values, COpts), Path, Source,
          Werror, Json);
      int Exit = Config.finish(Counters, Opts, Result.Stats);
      return CheckExit ? CheckExit : Exit;
    };
    switch (Opts.Numeric) {
    case NumericBackend::Poly:
      return RunLeia(std::type_identity<poly::Polyhedron>{});
    case NumericBackend::Ladder:
      return RunLeia(std::type_identity<poly::LadderValue>{});
    case NumericBackend::Zones:
      return RunLeia(std::type_identity<poly::Zones>{});
    case NumericBackend::Intervals:
      return RunLeia(std::type_identity<poly::Intervals>{});
    }
    return 2;
  }
  if (Domain == "bi") {
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    std::vector<double> Prior(Space.numStates(), 0.0);
    Prior[0] = 1.0;
    for (unsigned P = 0; P != Graph.numProcs(); ++P) {
      std::printf("%s(): posterior from the all-false prior\n",
                  Prog->Procs[P].Name.c_str());
      std::vector<double> Post = Dom.posterior(
          Result.Values[Graph.proc(P).Entry], Prior);
      double Mass = 0.0;
      for (size_t S = 0; S != Post.size(); ++S) {
        Mass += Post[S];
        if (Post[S] > 1e-12)
          std::printf("  %-30s %.6f\n",
                      Space.stateToString(S).c_str(), Post[S]);
      }
      std::printf("  terminating mass: %.6f\n", Mass);
    }
    checks::CheckerOptions COpts;
    COpts.Converged = Result.Stats.Converged;
    int CheckExit = reportCheckResults(
        checks::checkBiSummaries(
            Space, Graph, [&](unsigned N) { return Result.Values[N]; },
            COpts),
        Path, Source, Werror, Json);
    int Exit = Config.finish(Counters, Opts, Result.Stats);
    return CheckExit ? CheckExit : Exit;
  }
  if (Domain == "mdp") {
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): greatest expected reward = %g\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    checks::CheckerOptions COpts;
    COpts.Converged = Result.Stats.Converged;
    int CheckExit = reportCheckResults(
        checks::checkMdp(Graph, Result.Values, COpts), Path, Source, Werror,
        Json);
    int Exit = Config.finish(Counters, Opts, Result.Stats);
    return CheckExit ? CheckExit : Exit;
  }
  if (Domain == "termination") {
    TerminationDomain Dom;
    SolverOptions Opts;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): P[termination] >= %.6f\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    int CheckExit = reportCheckResults(
        checks::skipAllChecks(Graph, "the termination analysis has no "
                                     "assertion checker"),
        Path, Source, Werror, Json);
    int Exit = Config.finish(Counters, Opts, Result.Stats);
    return CheckExit ? CheckExit : Exit;
  }
  std::fprintf(stderr, "error: unknown domain %s\n", Domain.c_str());
  return usage(argv[0]);
}
