//===- tools/pmaf.cpp - Command-line driver for the framework -------------===//
//
// Analyze a probabilistic program from the command line:
//
//   pmaf <file.pp> [--domain=leia|bi|mdp|termination] [--decompose]
//                  [--dot] [--stats] [--werror] [--diag-format=text|json]
//                  [--strategy=wto|round-robin|worklist|parallel-scc|
//                              parallel-intra]
//                  [--numeric=poly|ladder|zones|intervals]
//                  [--widening-delay=<n>] [--max-updates=<n>] [--jobs=<n>]
//   pmaf check <file.pp>... [--domain=leia|bi|mdp|termination]
//                  [--decompose] [--werror] [--diag-format=text|json]
//
// With --domain=leia (default) prints the expectation invariants of every
// procedure summary; bi prints the posterior from the all-false prior;
// mdp prints greatest expected rewards; termination prints lower bounds
// on termination probabilities. --decompose applies the positive-negative
// decomposition (§6.2) first, for programs with signed variables. --dot
// prints the control-flow hyper-graphs in Graphviz syntax.
//
// Every analysis is preceded by the semantic lint (analysis/Lint.h):
// warnings go to stderr and the analysis proceeds; errors (including
// domain-precondition failures) abort with a nonzero exit. --werror
// promotes warnings to errors. `pmaf check` runs only the lint, over any
// number of files, and exits nonzero when any file has errors;
// --diag-format=json renders machine-readable diagnostics.
//
// --numeric (LEIA only) selects the numeric backend of the domain
// (core::NumericBackend): `poly` is the monolithic-polyhedra baseline of
// §5.3, `ladder` (the default) the exact packed/escalating backend of
// poly/Ladder.h, and `zones`/`intervals` are cheap sound
// over-approximations restricted to their fragment.
//
// The solver knobs map onto core::SolverOptions: --strategy selects the
// chaotic-iteration scheduler (core/Schedule.h), --widening-delay the
// number of plain updates before widening kicks in, and --max-updates the
// node-update budget. --jobs=<n> runs the parallel engine with n worker
// threads (0 = one per hardware thread): transformers precompile
// concurrently, the dense-matrix kernels block-parallelize,
// --strategy=parallel-scc stabilizes independent SCCs concurrently, and
// --strategy=parallel-intra additionally fans conflict-free batches of a
// single component body across the workers.
// --stats prints the instrumentation counters (core/Instrumentation.h),
// including the interpret-cache traffic, precompile timing, the worker
// count the solve actually used, the peak number of SCCs in flight, and
// the intra-component batch traffic.
//
// Exit codes: 0 analysis converged; 1 lint/parse errors; 2 usage errors;
// 3 the update budget (--max-updates) ran out before the fixpoint — the
// printed values are a mid-iteration snapshot, not the analysis answer.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "cfg/HyperGraph.h"
#include "core/Instrumentation.h"
#include "core/Schedule.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "lang/PosNegDecompose.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Termination-probability lower bounds (demonic): the custom-domain
/// example promoted into the tool.
class TerminationDomain {
public:
  using Value = double;
  Value bottom() const { return 0.0; }
  Value one() const { return 1.0; }
  Value extend(const Value &A, const Value &B) const { return A * B; }
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::min(A, B);
  }
  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1.0 - Prob) * B;
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::min(A, B);
  }
  Value interpret(const lang::Stmt *Act) const {
    return Act && Act->kind() == lang::Stmt::Kind::Observe ? 0.0 : 1.0;
  }
  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-12; }
  bool equal(const Value &A, const Value &B) const {
    return std::fabs(A - B) <= 1e-12;
  }
  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }
  std::string toString(const Value &A) const { return std::to_string(A); }
  /// Stateless over scalar doubles: safe to run from any thread.
  static constexpr bool ThreadSafeInterpret = true;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.pp | -> [--domain=leia|bi|mdp|termination]"
               " [--decompose] [--dot] [--stats] [--werror]"
               " [--diag-format=text|json]"
               " [--strategy=wto|round-robin|worklist|parallel-scc|"
               "parallel-intra]"
               " [--numeric=poly|ladder|zones|intervals]"
               " [--widening-delay=<n>] [--max-updates=<n>] [--jobs=<n>]\n"
               "       %s check <file.pp>..."
               " [--domain=leia|bi|mdp|termination] [--decompose]"
               " [--werror] [--diag-format=text|json]\n",
               Argv0, Argv0);
  return 2;
}

/// Solver knobs shared by every domain path; each path layers them over
/// its own preset (e.g. BI disables widening).
struct CliSolverConfig {
  std::optional<IterationStrategy> Strategy;
  std::optional<unsigned> WideningDelay;
  std::optional<uint64_t> MaxUpdates;
  std::optional<unsigned> Jobs;
  std::optional<NumericBackend> Numeric;
  bool Stats = false;

  void apply(SolverOptions &Opts) const {
    if (Strategy)
      Opts.Strategy = *Strategy;
    if (WideningDelay)
      Opts.WideningDelay = *WideningDelay;
    if (MaxUpdates)
      Opts.MaxUpdates = *MaxUpdates;
    if (Jobs)
      Opts.Jobs = *Jobs;
    if (Numeric)
      Opts.Numeric = *Numeric;
  }

  void printReport(const SolverInstrumentation &Counters,
                   const SolverOptions &Opts,
                   const core::SolverStats &SolveStats) const {
    if (!Stats)
      return;
    std::printf("; strategy: %s, widening delay %u, max updates %llu, "
                "jobs %u, numeric %s\n",
                core::toString(Opts.Strategy), Opts.WideningDelay,
                static_cast<unsigned long long>(Opts.MaxUpdates),
                Opts.Jobs, core::toString(Opts.Numeric));
    std::printf("; parallel: %u workers used, %u SCCs in flight at peak\n",
                SolveStats.JobsUsed, SolveStats.MaxParallelSccs);
    if (SolveStats.IntraBatchesRun)
      std::printf("; intra-scc: %llu batches fanned out, widest %u, "
                  "%.6f s at barriers\n",
                  static_cast<unsigned long long>(
                      SolveStats.IntraBatchesRun),
                  SolveStats.MaxIntraBatchWidth,
                  SolveStats.IntraBarrierWaitSeconds);
    if (!SolveStats.Converged)
      std::printf("; NOT CONVERGED: update budget exhausted after %llu "
                  "updates\n",
                  static_cast<unsigned long long>(SolveStats.NodeUpdates));
    std::printf("%s", Counters.report().c_str());
  }

  /// Prints the report and maps the solve outcome to the process exit
  /// code: 0 for a converged fixpoint, 3 (with a stderr warning) when the
  /// update budget ran out and the printed values are only a
  /// mid-iteration snapshot.
  int finish(const SolverInstrumentation &Counters,
             const SolverOptions &Opts,
             const core::SolverStats &SolveStats) const {
    printReport(Counters, Opts, SolveStats);
    if (SolveStats.Converged)
      return 0;
    std::fprintf(stderr,
                 "warning: analysis did not converge: the update budget "
                 "(--max-updates=%llu) was exhausted; the reported values "
                 "are not a post-fixpoint\n",
                 static_cast<unsigned long long>(Opts.MaxUpdates));
    return 3;
  }
};

analysis::TargetDomain domainFromName(const std::string &Name) {
  if (Name == "leia")
    return analysis::TargetDomain::Leia;
  if (Name == "bi")
    return analysis::TargetDomain::Bi;
  if (Name == "mdp")
    return analysis::TargetDomain::Mdp;
  if (Name == "termination")
    return analysis::TargetDomain::Termination;
  return analysis::TargetDomain::None;
}

bool readSource(const std::string &Path, std::string &Source) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Source = Buffer.str();
  return true;
}

/// Parse + decompose + lint one source into \p Diags. \returns the linted
/// program, or null when parsing or decomposition failed (the failure has
/// been reported into \p Diags).
std::unique_ptr<lang::Program>
parseAndLint(const std::string &Path, const std::string &Source,
             DiagnosticEngine &Diags, const std::string &DomainName,
             bool Decompose) {
  Diags.setSource(Path, Source);
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  if (!Parsed)
    return nullptr;
  std::unique_ptr<lang::Program> Prog = std::move(Parsed.Prog);
  if (Decompose) {
    lang::DecomposeResult D = lang::decomposePosNeg(*Prog);
    if (!D) {
      Diags.report(Severity::Error, {}, "decompose-error",
                   "cannot decompose: " + D.Error);
      return nullptr;
    }
    Prog = std::move(D.Prog);
  }
  analysis::LintOptions Opts;
  Opts.Domain = domainFromName(DomainName);
  Opts.Decomposed = Decompose;
  analysis::lintProgram(*Prog, Diags, Opts);
  Diags.sortByLocation();
  return Prog;
}

/// `pmaf check`: lint-only over any number of files; diagnostics go to
/// stdout, exit 1 when any file has errors.
int runCheck(const std::vector<std::string> &Files,
             const std::string &DomainName, bool Decompose, bool Werror,
             bool Json) {
  if (Files.empty()) {
    std::fprintf(stderr, "error: pmaf check requires at least one file\n");
    return 2;
  }
  bool AnyErrors = false;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readSource(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      AnyErrors = true;
      continue;
    }
    DiagnosticEngine Diags;
    Diags.setWarningsAsErrors(Werror);
    parseAndLint(Path, Source, Diags, DomainName, Decompose);
    if (Json)
      std::printf("%s\n", Diags.renderJson().c_str());
    else
      std::printf("%s", Diags.renderAll().c_str());
    if (Diags.hasErrors())
      AnyErrors = true;
  }
  return AnyErrors ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool CheckMode = argc > 1 && std::strcmp(argv[1], "check") == 0;
  std::vector<std::string> Paths;
  std::string Domain = "leia";
  bool DomainExplicit = false;
  bool Decompose = false, EmitDot = false, Werror = false, Json = false;
  CliSolverConfig Config;
  for (int I = CheckMode ? 2 : 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--domain=", 0) == 0) {
      Domain = Arg.substr(9);
      DomainExplicit = true;
    } else if (Arg == "--decompose")
      Decompose = true;
    else if (Arg == "--werror")
      Werror = true;
    else if (Arg.rfind("--diag-format=", 0) == 0) {
      std::string Format = Arg.substr(14);
      if (Format == "json")
        Json = true;
      else if (Format != "text")
        return usage(argv[0]);
    } else if (Arg == "--dot")
      EmitDot = true;
    else if (Arg == "--stats")
      Config.Stats = true;
    else if (Arg.rfind("--strategy=", 0) == 0) {
      Config.Strategy = parseIterationStrategy(Arg.substr(11));
      if (!Config.Strategy) {
        std::fprintf(stderr, "error: unknown strategy %s\n",
                     Arg.substr(11).c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("--numeric=", 0) == 0) {
      Config.Numeric = parseNumericBackend(Arg.substr(10));
      if (!Config.Numeric) {
        std::fprintf(stderr, "error: unknown numeric backend %s\n",
                     Arg.substr(10).c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("--widening-delay=", 0) == 0)
      Config.WideningDelay =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 17, nullptr, 10));
    else if (Arg.rfind("--max-updates=", 0) == 0)
      Config.MaxUpdates = std::strtoull(Arg.c_str() + 14, nullptr, 10);
    else if (Arg.rfind("--jobs=", 0) == 0)
      Config.Jobs =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr, 10));
    else if (Arg[0] == '-' && Arg != "-")
      return usage(argv[0]);
    else
      Paths.push_back(Arg);
  }

  if (CheckMode)
    return runCheck(Paths, DomainExplicit ? Domain : std::string(),
                    Decompose, Werror, Json);

  // --jobs also turns on the process-wide pool the dense-matrix kernels
  // draw from (distinct from the solver's per-solve pool).
  // setSharedParallelism resolves 0 to the hardware thread count itself.
  if (Config.Jobs)
    support::setSharedParallelism(*Config.Jobs);

  if (Paths.size() != 1)
    return usage(argv[0]);
  const std::string &Path = Paths[0];

  std::string Source;
  if (!readSource(Path, Source)) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }

  // Pre-analysis lint: warnings are advisory, errors (parse failures,
  // type errors, domain-precondition violations) stop the analysis.
  DiagnosticEngine Diags;
  Diags.setWarningsAsErrors(Werror);
  std::unique_ptr<lang::Program> Prog =
      parseAndLint(Path, Source, Diags, Domain, Decompose);
  if (!Diags.empty()) {
    if (Json)
      std::fprintf(stderr, "%s\n", Diags.renderJson().c_str());
    else
      std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  }
  if (!Prog || Diags.hasErrors())
    return 1;

  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  if (EmitDot)
    std::printf("%s", Graph.toDot().c_str());

  SolverInstrumentation Counters;
  if (Domain == "leia") {
    SolverOptions Opts;
    Config.apply(Opts);
    // The backend is a template parameter of the domain; dispatch the
    // whole leia path on the runtime choice once, here.
    auto RunLeia = [&]<typename NumV>(std::type_identity<NumV>) -> int {
      LeiaDomainT<NumV> Dom(*Prog);
      auto Result = solve(Graph, Dom, Opts, &Counters);
      for (unsigned P = 0; P != Graph.numProcs(); ++P) {
        std::printf("%s():\n", Prog->Procs[P].Name.c_str());
        auto Invariants =
            Dom.describeInvariants(Result.Values[Graph.proc(P).Entry]);
        if (Invariants.empty())
          std::printf("  (no expectation invariants)\n");
        for (const std::string &Inv : Invariants)
          std::printf("  %s\n", Inv.c_str());
      }
      return Config.finish(Counters, Opts, Result.Stats);
    };
    switch (Opts.Numeric) {
    case NumericBackend::Poly:
      return RunLeia(std::type_identity<poly::Polyhedron>{});
    case NumericBackend::Ladder:
      return RunLeia(std::type_identity<poly::LadderValue>{});
    case NumericBackend::Zones:
      return RunLeia(std::type_identity<poly::Zones>{});
    case NumericBackend::Intervals:
      return RunLeia(std::type_identity<poly::Intervals>{});
    }
    return 2;
  }
  if (Domain == "bi") {
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    std::vector<double> Prior(Space.numStates(), 0.0);
    Prior[0] = 1.0;
    for (unsigned P = 0; P != Graph.numProcs(); ++P) {
      std::printf("%s(): posterior from the all-false prior\n",
                  Prog->Procs[P].Name.c_str());
      std::vector<double> Post = Dom.posterior(
          Result.Values[Graph.proc(P).Entry], Prior);
      double Mass = 0.0;
      for (size_t S = 0; S != Post.size(); ++S) {
        Mass += Post[S];
        if (Post[S] > 1e-12)
          std::printf("  %-30s %.6f\n",
                      Space.stateToString(S).c_str(), Post[S]);
      }
      std::printf("  terminating mass: %.6f\n", Mass);
    }
    return Config.finish(Counters, Opts, Result.Stats);
  }
  if (Domain == "mdp") {
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): greatest expected reward = %g\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    return Config.finish(Counters, Opts, Result.Stats);
  }
  if (Domain == "termination") {
    TerminationDomain Dom;
    SolverOptions Opts;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): P[termination] >= %.6f\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    return Config.finish(Counters, Opts, Result.Stats);
  }
  std::fprintf(stderr, "error: unknown domain %s\n", Domain.c_str());
  return usage(argv[0]);
}
