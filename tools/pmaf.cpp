//===- tools/pmaf.cpp - Command-line driver for the framework -------------===//
//
// Analyze a probabilistic program from the command line:
//
//   pmaf <file.pp> [--domain=leia|bi|mdp|termination] [--decompose]
//                  [--dot] [--stats] [--strategy=wto|round-robin|worklist]
//                  [--widening-delay=<n>] [--max-updates=<n>]
//
// With --domain=leia (default) prints the expectation invariants of every
// procedure summary; bi prints the posterior from the all-false prior;
// mdp prints greatest expected rewards; termination prints lower bounds
// on termination probabilities. --decompose applies the positive-negative
// decomposition (§6.2) first, for programs with signed variables. --dot
// prints the control-flow hyper-graphs in Graphviz syntax.
//
// The solver knobs map onto core::SolverOptions: --strategy selects the
// chaotic-iteration scheduler (core/Schedule.h), --widening-delay the
// number of plain updates before widening kicks in, and --max-updates the
// node-update budget. --stats prints the instrumentation counters
// (core/Instrumentation.h), including the interpret-cache traffic.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Instrumentation.h"
#include "core/Schedule.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "lang/PosNegDecompose.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Termination-probability lower bounds (demonic): the custom-domain
/// example promoted into the tool.
class TerminationDomain {
public:
  using Value = double;
  Value bottom() const { return 0.0; }
  Value one() const { return 1.0; }
  Value extend(const Value &A, const Value &B) const { return A * B; }
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::min(A, B);
  }
  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1.0 - Prob) * B;
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::min(A, B);
  }
  Value interpret(const lang::Stmt *Act) const {
    return Act && Act->kind() == lang::Stmt::Kind::Observe ? 0.0 : 1.0;
  }
  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-12; }
  bool equal(const Value &A, const Value &B) const {
    return std::fabs(A - B) <= 1e-12;
  }
  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }
  std::string toString(const Value &A) const { return std::to_string(A); }
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.pp | -> [--domain=leia|bi|mdp|termination]"
               " [--decompose] [--dot] [--stats]"
               " [--strategy=wto|round-robin|worklist]"
               " [--widening-delay=<n>] [--max-updates=<n>]\n",
               Argv0);
  return 2;
}

/// Solver knobs shared by every domain path; each path layers them over
/// its own preset (e.g. BI disables widening).
struct CliSolverConfig {
  std::optional<IterationStrategy> Strategy;
  std::optional<unsigned> WideningDelay;
  std::optional<uint64_t> MaxUpdates;
  bool Stats = false;

  void apply(SolverOptions &Opts) const {
    if (Strategy)
      Opts.Strategy = *Strategy;
    if (WideningDelay)
      Opts.WideningDelay = *WideningDelay;
    if (MaxUpdates)
      Opts.MaxUpdates = *MaxUpdates;
  }

  void printReport(const SolverInstrumentation &Counters,
                   const SolverOptions &Opts) const {
    if (!Stats)
      return;
    std::printf("; strategy: %s, widening delay %u, max updates %llu\n",
                core::toString(Opts.Strategy), Opts.WideningDelay,
                static_cast<unsigned long long>(Opts.MaxUpdates));
    std::printf("%s", Counters.report().c_str());
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string Path, Domain = "leia";
  bool Decompose = false, EmitDot = false;
  CliSolverConfig Config;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--domain=", 0) == 0)
      Domain = Arg.substr(9);
    else if (Arg == "--decompose")
      Decompose = true;
    else if (Arg == "--dot")
      EmitDot = true;
    else if (Arg == "--stats")
      Config.Stats = true;
    else if (Arg.rfind("--strategy=", 0) == 0) {
      Config.Strategy = parseIterationStrategy(Arg.substr(11));
      if (!Config.Strategy) {
        std::fprintf(stderr, "error: unknown strategy %s\n",
                     Arg.substr(11).c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("--widening-delay=", 0) == 0)
      Config.WideningDelay =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 17, nullptr, 10));
    else if (Arg.rfind("--max-updates=", 0) == 0)
      Config.MaxUpdates = std::strtoull(Arg.c_str() + 14, nullptr, 10);
    else if (Arg[0] == '-' && Arg != "-")
      return usage(argv[0]);
    else
      Path = Arg;
  }
  if (Path.empty())
    return usage(argv[0]);

  std::string Source;
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  lang::ParseResult Parsed = lang::parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  std::unique_ptr<lang::Program> Prog = std::move(Parsed.Prog);
  if (Decompose) {
    lang::DecomposeResult D = lang::decomposePosNeg(*Prog);
    if (!D) {
      std::fprintf(stderr, "%s: cannot decompose: %s\n", Path.c_str(),
                   D.Error.c_str());
      return 1;
    }
    Prog = std::move(D.Prog);
  }
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  if (EmitDot)
    std::printf("%s", Graph.toDot().c_str());

  SolverInstrumentation Counters;
  if (Domain == "leia") {
    LeiaDomain Dom(*Prog);
    SolverOptions Opts;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P) {
      std::printf("%s():\n", Prog->Procs[P].Name.c_str());
      auto Invariants =
          Dom.describeInvariants(Result.Values[Graph.proc(P).Entry]);
      if (Invariants.empty())
        std::printf("  (no expectation invariants)\n");
      for (const std::string &Inv : Invariants)
        std::printf("  %s\n", Inv.c_str());
    }
    Config.printReport(Counters, Opts);
    return Result.Stats.Converged ? 0 : 1;
  }
  if (Domain == "bi") {
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    std::vector<double> Prior(Space.numStates(), 0.0);
    Prior[0] = 1.0;
    for (unsigned P = 0; P != Graph.numProcs(); ++P) {
      std::printf("%s(): posterior from the all-false prior\n",
                  Prog->Procs[P].Name.c_str());
      std::vector<double> Post = Dom.posterior(
          Result.Values[Graph.proc(P).Entry], Prior);
      double Mass = 0.0;
      for (size_t S = 0; S != Post.size(); ++S) {
        Mass += Post[S];
        if (Post[S] > 1e-12)
          std::printf("  %-30s %.6f\n",
                      Space.stateToString(S).c_str(), Post[S]);
      }
      std::printf("  terminating mass: %.6f\n", Mass);
    }
    Config.printReport(Counters, Opts);
    return Result.Stats.Converged ? 0 : 1;
  }
  if (Domain == "mdp") {
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): greatest expected reward = %g\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    Config.printReport(Counters, Opts);
    return Result.Stats.Converged ? 0 : 1;
  }
  if (Domain == "termination") {
    TerminationDomain Dom;
    SolverOptions Opts;
    Config.apply(Opts);
    auto Result = solve(Graph, Dom, Opts, &Counters);
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      std::printf("%s(): P[termination] >= %.6f\n",
                  Prog->Procs[P].Name.c_str(),
                  Result.Values[Graph.proc(P).Entry]);
    Config.printReport(Counters, Opts);
    return Result.Stats.Converged ? 0 : 1;
  }
  return usage(argv[0]);
}
