#!/usr/bin/env bash
# Regenerates BENCH_solver.json (committed at the repo root) from the
# benchmark binaries that support --json output: bench_bi, bench_leia, and
# bench_parallel_scaling.
#
# Repetitions are fixed by the harness itself (bench/BenchUtil.h): each
# analysis is timed over 5 runs with a 20% trimmed mean (3 runs for the
# parallel-scaling matrix), so successive invocations of this script are
# comparable trajectory points. The google-benchmark timing loops the
# binaries also register are skipped (--benchmark_filter matching nothing)
# — the JSON records come from the table harness, not from gbench.
#
# Usage: tools/run_benchmarks.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$REPO_ROOT/BENCH_solver.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

BENCHES=(bench_bi bench_leia bench_parallel_scaling)

for BENCH in "${BENCHES[@]}"; do
  BIN="$BUILD_DIR/bench/$BENCH"
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
  echo "== $BENCH"
  STATUS=0
  "$BIN" --json="$TMP/$BENCH.json" --benchmark_filter='^$' || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: $BENCH exited with status $STATUS (see output above)" >&2
    exit 1
  fi
  if [ ! -s "$TMP/$BENCH.json" ]; then
    echo "error: $BENCH wrote no JSON to $TMP/$BENCH.json" >&2
    exit 1
  fi
done

python3 - "$TMP" "$OUT" "${BENCHES[@]}" <<'EOF'
import json, pathlib, sys

tmp, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {name: json.loads((tmp / f"{name}.json").read_text())
          for name in sys.argv[3:]}
out.write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {out}")
EOF
