#!/usr/bin/env bash
# Regenerates BENCH_solver.json (committed at the repo root) from the
# benchmark binaries that support --json output: bench_bi, bench_leia,
# bench_parallel_scaling, and bench_server_throughput (the SERVED family:
# resident-session cold vs warm-after-edit solves plus sustained
# 4-client throughput, with a hard >=50% transformer-reuse floor) — then
# smoke-tests the checker pipeline with a gen-corpus / verify-corpus
# round trip.
#
# Repetitions are fixed by the harness itself (bench/BenchUtil.h): each
# analysis is timed over 5 runs with a 20% trimmed mean (3 runs for the
# parallel-scaling matrix), so successive invocations of this script are
# comparable trajectory points. The google-benchmark timing loops the
# binaries also register are skipped (--benchmark_filter matching nothing)
# — the JSON records come from the table harness, not from gbench.
#
# Every binary invocation goes through run_checked, which propagates the
# exact child exit status; a failure in any stage — bench binary, pmaf
# subcommand, or the JSON merge — fails the whole script loudly. Keep that
# invariant when adding stages.
#
# Usage: tools/run_benchmarks.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$REPO_ROOT/BENCH_solver.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Runs "$@" and exits with the child's status on failure, naming the
# culprit. Commands guarded by `if`/`||` escape `set -e`; this does not.
run_checked() {
  local STATUS=0
  "$@" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: '$1' exited with status $STATUS (see output above)" >&2
    exit "$STATUS"
  fi
}

require_binary() {
  if [ ! -x "$1" ]; then
    echo "error: $1 not built (cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
}

BENCHES=(bench_bi bench_leia bench_parallel_scaling bench_server_throughput)

for BENCH in "${BENCHES[@]}"; do
  BIN="$BUILD_DIR/bench/$BENCH"
  require_binary "$BIN"
  echo "== $BENCH"
  run_checked "$BIN" --json="$TMP/$BENCH.json" --benchmark_filter='^$'
  if [ ! -s "$TMP/$BENCH.json" ]; then
    echo "error: $BENCH wrote no JSON to $TMP/$BENCH.json" >&2
    exit 1
  fi
done

python3 - "$TMP" "$OUT" "${BENCHES[@]}" <<'EOF'
import json, pathlib, sys

tmp, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {name: json.loads((tmp / f"{name}.json").read_text())
          for name in sys.argv[3:]}
out.write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {out}")
EOF

# Checker smoke: a seeded corpus round trip. verify-corpus exits nonzero
# on any crash, failed file, or soundness violation, and run_checked
# propagates that — benchmarks from a build whose checker is unsound
# should never be recorded.
PMAF="$BUILD_DIR/tools/pmaf"
require_binary "$PMAF"
echo "== verify-corpus smoke"
run_checked "$PMAF" gen-corpus "$TMP/corpus" --count=50 --seed=1
run_checked "$PMAF" verify-corpus "$TMP/corpus" --jobs=4 --seed=1 \
  --out="$TMP/checksdb.json"
if [ ! -s "$TMP/checksdb.json" ]; then
  echo "error: verify-corpus wrote no ChecksDb JSON" >&2
  exit 1
fi
