//===- examples/custom_domain.cpp - Instantiating PMAF yourself -----------===//
//
// The main advantage the paper claims for PMAF: "instead of starting from
// scratch to create a new analysis, you only need to instantiate PMAF with
// the implementation of a new pre-Markov algebra." This example builds a
// complete new analysis in ~60 lines: a *termination-probability* domain
// that computes, for every procedure, a lower bound on the probability of
// reaching the exit under a demonic scheduler. The framework supplies
// everything else — hyper-graph lowering, the interprocedural solver,
// widening bookkeeping, and summaries.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Domain.h"
#include "core/Solver.h"
#include "lang/Parser.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

using namespace pmaf;

namespace {

/// A pre-Markov algebra over [0, 1]: the value at a node is a lower bound
/// on the probability of reaching the procedure exit from it, minimized
/// over nondeterministic choices (demonic) and over the unknown outcome
/// of conditional branches.
class TerminationDomain {
public:
  using Value = double;

  Value bottom() const { return 0.0; }
  Value one() const { return 1.0; }

  /// Sequencing multiplies reach probabilities (reversal of composition).
  Value extend(const Value &A, const Value &B) const { return A * B; }

  /// Conditions are not tracked: assume the worst branch.
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::min(A, B);
  }

  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1.0 - Prob) * B;
  }

  /// Demonic nondeterminism: the adversary diverges when it can.
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::min(A, B);
  }

  /// Data actions always make one step of progress — except observe,
  /// which may reject the run (conditioning counts as non-termination
  /// here, the conservative reading).
  Value interpret(const lang::Stmt *Act) const {
    if (Act && Act->kind() == lang::Stmt::Kind::Observe)
      return 0.0;
    return 1.0;
  }

  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-12; }
  bool equal(const Value &A, const Value &B) const {
    return std::fabs(A - B) <= 1e-12;
  }

  /// Lower bounds iterated from 0 need no widening: every iterate is
  /// already sound (same argument as for Bayesian inference, §5.1).
  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }

  std::string toString(const Value &A) const { return std::to_string(A); }
};

static_assert(core::PreMarkovAlgebra<TerminationDomain>,
              "the new domain plugs into the framework unchanged");

} // namespace

int main() {
  struct Case {
    const char *Title;
    const char *Source;
  } Cases[] = {
      {"almost-sure geometric loop", R"(
        proc main() { while prob(1/2) { skip; } }
      )"},
      {"transient branching process (lfp 1/2)", R"(
        proc main() { if prob(2/3) { main(); main(); } }
      )"},
      {"demonic adversary may diverge", R"(
        proc main() { if star { while (true) { skip; } } else { skip; } }
      )"},
      {"two sequential risky calls (1/2 * 1/2)", R"(
        proc risky() { if prob(1/2) { while (true) { skip; } } }
        proc main() { risky(); risky(); }
      )"},
  };
  std::printf("custom termination-probability analysis (new PMA, solved by "
              "the framework):\n\n");
  for (const Case &C : Cases) {
    auto Prog = lang::parseProgramOrDie(C.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    TerminationDomain Dom;
    auto Result = core::solve(Graph, Dom);
    unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
    std::printf("  %-42s P[terminate] >= %.6f\n", C.Title,
                Result.Values[Entry]);
  }
  return 0;
}
