//===- examples/nondeterminism.cpp - The §1 PMAF-vs-PAI example -----------===//
//
// The program from the paper's introduction:
//
//   if * then if prob(1/2) then r := 1 else r := 2
//        else if prob(1/2) then r := 1 else r := 2
//
// PMAF's semantics resolves nondeterminism on the outside, so both
// branches denote the same distribution and the expected return value is
// exactly 1.5; probabilistic-abstract-interpretation-style semantics can
// only conclude 1.25 <= E[r] <= 1.75. This example runs the LEIA analysis
// (deriving E[r'] = 1.5) and validates it operationally by sampling under
// several schedulers, including state-dependent ones.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace pmaf;

int main() {
  const char *Source = R"(
    real r;
    proc main() {
      if star {
        if prob(1/2) { r := 1; } else { r := 2; }
      } else {
        if prob(1/2) { r := 1; } else { r := 2; }
      }
    }
  )";
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  domains::LeiaDomain Dom(*Prog);
  auto Result = core::solve(Graph, Dom);
  unsigned Entry = Graph.proc(0).Entry;
  auto [Lo, Hi] = Dom.expectationBounds(Result.Values[Entry],
                                        {Rational(1)}, {Rational(0)});
  std::printf("static analysis (LEIA): %.4f <= E[r'] <= %.4f\n",
              Lo->toDouble(), Hi->toDouble());
  std::printf("(a PAI-style analysis can only conclude 1.25 <= E[r] <= "
              "1.75, §1)\n\n");

  // Operational validation: every scheduler yields E[r] = 1.5.
  concrete::Interpreter Interp(*Prog, 42);
  struct Scheduler {
    const char *Name;
    concrete::NdetPolicy Policy;
  } Schedulers[] = {
      {"always-then", [](const std::vector<double> &) { return true; }},
      {"always-else", [](const std::vector<double> &) { return false; }},
      {"random", nullptr},
  };
  const int Runs = 200000;
  for (const Scheduler &Sched : Schedulers) {
    double Sum = 0.0;
    for (int I = 0; I != Runs; ++I)
      Sum += Interp.run(0, {0.0}, 1000, Sched.Policy).State[0];
    std::printf("sampled E[r] under %-12s = %.4f\n", Sched.Name,
                Sum / Runs);
  }
  return 0;
}
