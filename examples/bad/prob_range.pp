// Seeded defect: bernoulli parameter outside [0, 1]  [prob-range]
real x;
proc main() {
  x ~ bernoulli(3/2);
}
