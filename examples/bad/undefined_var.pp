// Seeded defect: assignment to an undeclared variable  [undefined-variable]
real x;
proc main() {
  y := 3;
}
