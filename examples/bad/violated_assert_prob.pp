// The assertion claims the exit distribution gives `b` at least mass 1/2,
// but every execution from the assertion point forces b := false — the BI
// fixpoint proves the upper bound on the mass is 0, so the checker reports
// a provable violation (assert-prob-violated) from every pre-state.
bool b;
proc main() {
  assert_prob(b) >= 1/2;
  b := false;
}
