// Seeded defect: prob() guard outside [0, 1]  [prob-range, parse time]
real x;
proc main() {
  if prob(3/2) {
    x := 1;
  } else {
    skip;
  }
}
