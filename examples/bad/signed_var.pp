// Seeded defects: degenerate prob(1) choice  [degenerate-prob], and under
// --domain=leia without --decompose: a gaussian sample and a constant
// negative assignment  [signed-var].
real x;
proc main() {
  x ~ gaussian(0, 1);
  if prob(1) {
    x := 0 - 1;
  } else {
    skip;
  }
}
