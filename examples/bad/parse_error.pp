// Seeded defect: stray '=' instead of ':='  [parse-error]
real x;
proc main() {
  x = 3;
}
