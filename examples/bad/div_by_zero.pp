// Seeded defect: division by a constant-foldable zero  [div-by-zero]
real x;
proc main() {
  x := x / (2 - 2);
}
