// Seeded defect: call to an undefined procedure  [undefined-procedure]
proc main() {
  helper();
}
