// Seeded defect: degenerate probabilistic choice  [degenerate-prob]
real x;
proc main() {
  if prob(1) {
    x := x + 1;
  } else {
    skip;
  }
}
