// Every execution accumulates exactly reward 2, so the asserted lower
// bound of 1 is true — but the MDP analysis computes an *upper* bound on
// the greatest expected reward, which can refute `>=` yet never prove it.
// The checker must report WARNING (assert-reward-unproved), not SAFE.
proc main() {
  assert_reward >= 1;
  reward(2);
}
