// Seeded defects: loop that cannot terminate  [divergent-loop,
// unreachable-exit]
real x;
proc main() {
  while (true) {
    x := x + 1;
  }
}
