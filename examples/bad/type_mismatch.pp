// Seeded defect: Boolean variable in arithmetic  [type-mismatch]
bool b;
real x;
proc main() {
  x := b + 1;
}
