// Seeded defect: statement after return  [unreachable-stmt]
real x;
proc main() {
  return;
  x := 1;
}
