//===- examples/mdp_rewards.cpp - Expected cost of randomized algorithms --===//
//
// Uses the MDP-with-rewards instantiation (§5.2) to compute the expected
// number of comparisons of randomized quicksort and randomized binary
// search as recursive Markov chains, sweeping the input size — the
// Theta(n log n) and Theta(log n) observations of §6.2 — and cross-checks
// every value against the PReMo-style Newton solver.
//
//===----------------------------------------------------------------------===//

#include "baselines/PolySystem.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <cstdio>
#include <string>

using namespace pmaf;

namespace {

/// Builds the quicksort model qs2..qs<N> (uniform pivot, n-1 comparisons,
/// recursion on the two parts) as program text.
std::string quicksortModel(int N) {
  std::string Out = "proc qs2() { reward(1); }\n";
  for (int Size = 3; Size <= N; ++Size) {
    Out += "proc qs" + std::to_string(Size) + "() {\n";
    Out += "  reward(" + std::to_string(Size - 1) + ");\n";
    // Uniform pivot k = 1..Size via a cascade of prob branches; the case
    // for pivot k sorts parts of sizes k-1 and Size-k.
    std::string Indent = "  ";
    for (int Pivot = 1; Pivot <= Size; ++Pivot) {
      std::string Body;
      auto Call = [](int Part) {
        return Part >= 2 ? "qs" + std::to_string(Part) + "(); "
                         : std::string();
      };
      Body = Call(Pivot - 1) + Call(Size - Pivot);
      if (Body.empty())
        Body = "skip; ";
      if (Pivot < Size) {
        Out += Indent + "if prob(1/" + std::to_string(Size - Pivot + 1) +
               ") { " + Body + "} else {\n";
        Indent += "  ";
      } else {
        Out += Indent + Body + "\n";
      }
    }
    for (int Pivot = Size - 1; Pivot >= 1; --Pivot) {
      Indent.resize(Indent.size() - 2);
      Out += Indent + "}\n";
    }
    Out += "}\n";
  }
  Out += "proc main() { qs" + std::to_string(N) + "(); }\n";
  return Out;
}

double analyzeExpectedReward(const std::string &Source, double *Baseline) {
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  domains::MdpDomain Dom;
  core::SolverOptions Opts;
  Opts.WideningDelay = 10000;
  auto Result = core::solve(Graph, Dom, Opts);
  unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
  if (Baseline) {
    baselines::PolySystem Sys =
        baselines::rewardSystem(Graph, baselines::NdetResolution::Max);
    *Baseline = Sys.solveNewton()[Entry];
  }
  return Result.Values[Entry];
}

} // namespace

int main() {
  std::printf("randomized quicksort: expected comparisons (PMAF MDP "
              "analysis vs Newton baseline)\n");
  std::printf("%4s %12s %12s %14s\n", "n", "PMAF", "Newton", "2(n+1)Hn-4n");
  for (int N = 2; N <= 7; ++N) {
    double Baseline = 0.0;
    double Value = analyzeExpectedReward(quicksortModel(N), &Baseline);
    double Harmonic = 0.0;
    for (int K = 1; K <= N; ++K)
      Harmonic += 1.0 / K;
    double ClosedForm = 2.0 * (N + 1) * Harmonic - 4.0 * N;
    std::printf("%4d %12.6f %12.6f %14.6f\n", N, Value, Baseline,
                ClosedForm);
  }

  std::printf("\na nondeterministic scheduler example: a gambler may stop "
              "or double down\n");
  double Value = analyzeExpectedReward(R"(
    proc round() {
      reward(1);
      if star {
        if prob(1/2) { round(); }
      }
    }
    proc main() { round(); }
  )",
                                       nullptr);
  std::printf("greatest expected reward = %.6f (keep playing: "
              "E = 1 + E/2 = 2)\n",
              Value);
  return 0;
}
