//===- examples/quickstart.cpp - Five-minute tour of PMAF -----------------===//
//
// Parse a probabilistic program, lower it to control-flow hyper-graphs,
// run the linear expectation-invariant analysis (LEIA, §5.3), and print
// the procedure summaries. Pass a file path to analyze your own program,
// or run without arguments to analyze Ex 3.4's truncated geometric
// distribution.
//
//   Usage: quickstart [program.pp] [--dot]
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace pmaf;

static const char *DefaultProgram = R"(
// A geometric distribution (cf. Ex 3.4 of the paper, without the
// truncation): the expected number of rounds is 0.9 / 0.1 = 9, and the
// analysis derives E[n'] == n + 9 for the loop and E[n'] == 9 for main.
real n;
proc geometric() {
  while prob(0.9) {
    n := n + 1;
  }
}
proc main() {
  n := 0;
  geometric();
}
)";

int main(int argc, char **argv) {
  // 1. Get a program: from a file, or the built-in example.
  std::string Source = DefaultProgram;
  bool EmitDot = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dot") {
      EmitDot = true;
      continue;
    }
    std::ifstream In(Arg);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Arg.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  // 2. Parse (with diagnostics) and lower to hyper-graphs (Defn 3.2).
  lang::ParseResult Parsed = lang::parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  const lang::Program &Prog = *Parsed.Prog;
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  std::printf("program: %zu procedure(s), %u hyper-graph nodes\n",
              Prog.Procs.size(), Graph.numNodes());
  if (EmitDot)
    std::printf("%s", Graph.toDot().c_str());

  // 3. Pick an interpretation — here LEIA — and solve the interprocedural
  //    equation system of §4.3.
  domains::LeiaDomain Dom(Prog);
  core::SolverOptions Opts;
  Opts.WideningDelay = 2;
  auto Result = core::solve(Graph, Dom, Opts);
  std::printf("solver: %llu node updates, %llu widenings, converged=%s\n\n",
              static_cast<unsigned long long>(Result.Stats.NodeUpdates),
              static_cast<unsigned long long>(
                  Result.Stats.WideningApplications),
              Result.Stats.Converged ? "yes" : "NO");

  // 4. Read off the procedure summaries: the value at each entry node is
  //    the transformer from entry to exit (§2.3).
  for (unsigned P = 0; P != Graph.numProcs(); ++P) {
    std::printf("summary of %s():\n", Prog.Procs[P].Name.c_str());
    const domains::LeiaValue &Summary =
        Result.Values[Graph.proc(P).Entry];
    for (const std::string &Inv : Dom.describeInvariants(Summary))
      std::printf("  %s\n", Inv.c_str());
  }
  return 0;
}
