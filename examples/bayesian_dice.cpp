//===- examples/bayesian_dice.cpp - Bayesian inference on a die -----------===//
//
// Exact posterior inference for a Knuth-Yao-style die built from fair
// coins (three flips, resampled while the pattern is 000 or 111),
// conditioned on an observation about the outcome. Demonstrates the
// Bayesian-inference instantiation of §5.1: the analysis computes a
// two-vocabulary distribution-transformer summary once, and posteriors for
// any prior fall out by a vector-matrix product — including through the
// resampling loop, whose divergent branch simply loses mass.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace pmaf;
using namespace pmaf::domains;

int main() {
  auto Prog = lang::parseProgramOrDie(R"(
    bool c0, c1, c2;
    proc roll() {
      c0 ~ bernoulli(0.5);
      c1 ~ bernoulli(0.5);
      c2 ~ bernoulli(0.5);
      while ((c0 && c1 && c2) || (!c0 && !c1 && !c2)) {
        c0 ~ bernoulli(0.5);
        c1 ~ bernoulli(0.5);
        c2 ~ bernoulli(0.5);
      }
    }
    proc main() {
      roll();
      observe(c2);   // "the die shows a high face" (faces 4..6)
    }
  )");
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  BoolStateSpace Space(*Prog);
  BiDomain Dom(Space);

  core::SolverOptions Opts;
  Opts.UseWidening = false; // Under-abstraction from bottom (§5.1).
  auto Result = core::solve(Graph, Dom, Opts);

  // The posterior from any prior is prior x summary.
  std::vector<double> Prior(Space.numStates(), 0.0);
  Prior[0] = 1.0;
  unsigned Main = Prog->findProc("main");
  std::vector<double> Posterior =
      Dom.posterior(Result.Values[Graph.proc(Main).Entry], Prior);

  std::printf("die posterior given \"high face\" (c2 observed true):\n");
  double Mass = 0.0;
  for (size_t State = 0; State != Posterior.size(); ++State) {
    if (Posterior[State] < 1e-12)
      continue;
    std::printf("  %-22s %.6f\n", Space.stateToString(State).c_str(),
                Posterior[State]);
    Mass += Posterior[State];
  }
  std::printf("remaining mass (evidence probability): %.6f\n", Mass);
  // States with c2 set carry the surviving mass; normalize one of them.
  std::printf("normalized, each of the three faces has probability %.6f\n",
              Posterior[0b100] / Mass);

  // The un-conditioned roll: the summary of roll() itself shows the
  // uniform 1/6 posterior over the six surviving valuations.
  std::vector<double> Roll = Dom.posterior(
      Result.Values[Graph.proc(Prog->findProc("roll")).Entry], Prior);
  std::printf("\nroll() alone (uniform over 6 faces):\n");
  for (size_t State = 0; State != Roll.size(); ++State)
    if (Roll[State] > 1e-12)
      std::printf("  %-22s %.6f\n", Space.stateToString(State).c_str(),
                  Roll[State]);
  return 0;
}
