//===- examples/signed_walk.cpp - Signed variables via decomposition ------===//
//
// LEIA's state space is nonnegative (§5.3), but real benchmarks have
// signed variables. §6.2's remedy is the positive-negative decomposition:
// x becomes x__p - x__n with both components nonnegative. This example
// decomposes a signed lazy random walk, analyzes the result, and shows how
// to phrase queries about the original variables as queries about the
// component differences.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"
#include "lang/PosNegDecompose.h"

#include <cstdio>

using namespace pmaf;

int main() {
  // A signed lazy walk: one round moves x by a zero-mean random step and
  // charges a toll of 1/4 in expectation.
  const char *Source = R"(
    real x, toll;
    proc main() {
      x ~ uniform(x - 2, x + 2);
      if prob(1/4) { toll := toll + 1; }
      x := x - 0;
    }
  )";
  auto Prog = lang::parseProgramOrDie(Source);
  std::printf("original (signed) program:\n%s\n",
              lang::toString(*Prog).c_str());

  lang::DecomposeResult Decomposed = lang::decomposePosNeg(*Prog);
  if (!Decomposed) {
    std::fprintf(stderr, "cannot decompose: %s\n",
                 Decomposed.Error.c_str());
    return 1;
  }
  std::printf("decomposed (nonnegative) program:\n%s\n",
              lang::toString(*Decomposed.Prog).c_str());

  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Decomposed.Prog);
  domains::LeiaDomain Dom(*Decomposed.Prog);
  auto Result = core::solve(Graph, Dom);
  unsigned Entry = Graph.proc(0).Entry;

  // E[x'] in terms of the original variable: objective x__p' - x__n'.
  size_t NumVars = Decomposed.Prog->Vars.size();
  std::vector<Rational> Objective(NumVars, Rational(0));
  Objective[Decomposed.Prog->findVar("x__p")] = Rational(1);
  Objective[Decomposed.Prog->findVar("x__n")] = Rational(-1);
  // Pre-state x = -3 (x__p = 0, x__n = 3), toll = 2.
  std::vector<Rational> Pre(NumVars, Rational(0));
  Pre[Decomposed.Prog->findVar("x__n")] = Rational(3);
  Pre[Decomposed.Prog->findVar("toll__p")] = Rational(2);
  auto [XLo, XHi] = Dom.expectationBounds(Result.Values[Entry], Objective,
                                          Pre);
  std::printf("from x = -3: E[x'] in [%s, %s]  (zero-mean step: stays -3)\n",
              XLo ? XLo->toString().c_str() : "-inf",
              XHi ? XHi->toString().c_str() : "+inf");

  std::vector<Rational> TollObjective(NumVars, Rational(0));
  TollObjective[Decomposed.Prog->findVar("toll__p")] = Rational(1);
  TollObjective[Decomposed.Prog->findVar("toll__n")] = Rational(-1);
  auto [TLo, THi] = Dom.expectationBounds(Result.Values[Entry],
                                          TollObjective, Pre);
  std::printf("from toll = 2: E[toll'] in [%s, %s]  (expected +1/4)\n",
              TLo ? TLo->toString().c_str() : "-inf",
              THi ? THi->toString().c_str() : "+inf");
  return 0;
}
