//===- bench/bench_parallel_scaling.cpp - Parallel engine scaling ---------===//
//
// Measures the parallel analysis engine: analysis time and speedup vs
// worker count for
//
//  (i)  Bayesian inference, where the parallel win is concurrent
//       transformer precompilation plus the block-parallel dense-matrix
//       kernels (the shared pool), and
//  (ii) ADD-backed Bayesian inference under the parallel per-SCC
//       scheduler, where workers hash-cons in thread-local arena managers
//       and publish results through canonical migration into the shared
//       home manager (the rename-and-merge protocol of
//       domains/AddBiDomain.cpp), and
//  (iii) LEIA under the parallel per-SCC scheduler
//       (IterationStrategy::ParallelScc), where independent strongly
//       connected components of the dependence graph stabilize
//       concurrently, and
//  (iv) a synthesized single-SCC-dominant LEIA program — one wide
//       `while prob` loop whose body fans into independent assignment
//       chains — under both parallel-scc (which sees one SCC and
//       degenerates to ~1x) and parallel-intra
//       (IterationStrategy::ParallelIntra), which runs the conflict-free
//       arms of the loop body concurrently between barriers, and
//  (v)  the ladder-retention family (LADDER): the hottest ladder-backed
//       LEIA programs (coupon5, eg, eg-tail) under parallel-scc, scored
//       as *retention* — Seconds[jobs=1] / Seconds[jobs=J] — and
//       *asserted*: every jobs>=2 row must retain at least 0.8x of the
//       jobs=1 wall time (equivalently, run within 1.25x of it), i.e. the
//       ladder's sequential win must survive the move to the parallel
//       schedulers. The component->worker affinity keeps the thread-local
//       conversion memos hot, and the sharded L2 conversion cache catches
//       the stolen components; a retention below the floor exits nonzero,
//       so CI can smoke this family alone via `--family=ladder`.
//
// `--family=<bi|addbi|leia|wide|ladder>` restricts the run to one family
// (default: all).
//
// Speedup is reported relative to the same configuration at one job.
// Both schedules are deterministic — the parallel fixpoints are
// bit-identical to the sequential ones (tests/SchedulerParityTest.cpp) —
// so the comparison is purely about wall clock. Actual speedup is bounded
// by the hardware thread count of the machine (printed in the header;
// job counts beyond it measure oversubscription overhead only) and by
// how much cross-SCC parallelism the benchmark programs expose.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iterator>
#include <string_view>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

constexpr unsigned JobCounts[] = {1, 2, 4, 8};

/// The LADDER family's floor: every jobs>=2 row must keep at least this
/// fraction of the jobs=1 ladder wall time (0.8x retention == within
/// 1.25x of the jobs=1 time per fixpoint).
constexpr double MinLadderRetention = 0.8;

/// The ladder-backed LEIA programs the LADDER retention family asserts
/// on — the programs whose sequential ladder win motivated the
/// locality-aware pool in the first place.
constexpr const char *LadderFamilyPrograms[] = {"coupon5", "eg", "eg-tail"};

struct ScalingRow {
  double Seconds[4] = {0, 0, 0, 0};
  SolverStats Stats[4];
};

/// Times one (program, jobs) configuration; the shared pool is resized to
/// match so the matrix kernels see the same parallelism as the solver.
template <typename AnalyzeFn>
ScalingRow measure(AnalyzeFn &&Analyze) {
  ScalingRow Row;
  for (size_t J = 0; J != std::size(JobCounts); ++J) {
    support::setSharedParallelism(JobCounts[J]);
    Row.Stats[J] = Analyze(JobCounts[J]).Stats;
    // 3 runs (median survives the trim): the 4 job counts quadruple the
    // measurement matrix relative to the single-configuration benches.
    Row.Seconds[J] =
        bench::timedTrimmedMean([&] { Analyze(JobCounts[J]); }, 3);
  }
  support::setSharedParallelism(1);
  return Row;
}

/// One independent arm of the wide loop: a chain of expectation-neutral
/// updates on the arm's own variable (chains on distinct variables share
/// no dependence arc, so the intra-component planner levels them side by
/// side).
std::string armChain(unsigned Arm, unsigned ChainLen) {
  std::string Var = "a" + std::to_string(Arm);
  std::string Out;
  for (unsigned I = 0; I != ChainLen; ++I)
    Out += "    " + Var + " ~ uniform(" + Var + " - 1, " + Var + " + 1);\n";
  return Out;
}

/// A prob-branch tree fanning out to the arms [Lo, Hi).
std::string branchTree(unsigned Lo, unsigned Hi, unsigned ChainLen) {
  if (Hi - Lo == 1)
    return armChain(Lo, ChainLen);
  unsigned Mid = Lo + (Hi - Lo) / 2;
  return "    if prob(1/2) {\n" + branchTree(Lo, Mid, ChainLen) +
         "    } else {\n" + branchTree(Mid, Hi, ChainLen) + "    }\n";
}

/// The single-SCC-dominant program of family (iv): every node of the
/// `while prob` body belongs to the loop's one dependence SCC, so
/// per-SCC parallelism has nothing to fan out, while the \p Arms
/// independent chains give the intra-component planner batches up to
/// \p Arms wide.
std::string wideLoopSource(unsigned Arms, unsigned ChainLen) {
  std::string Out = "real ";
  for (unsigned A = 0; A != Arms; ++A)
    Out += (A ? ", a" : "a") + std::to_string(A);
  Out += ";\nproc main() {\n  while prob(9/10) {\n" +
         branchTree(0, Arms, ChainLen) + "  }\n}\n";
  return Out;
}

void printRow(const char *Family, const char *Name, const ScalingRow &Row,
              bench::JsonEmitter &Json) {
  std::printf("%-6s %-14s", Family, Name);
  for (size_t J = 0; J != std::size(JobCounts); ++J) {
    double Speedup = Row.Seconds[J] > 0.0 && Row.Seconds[0] > 0.0
                         ? Row.Seconds[0] / Row.Seconds[J]
                         : 1.0;
    std::printf(" %9.4f %5.2fx", Row.Seconds[J], Speedup);
    char RecordName[128];
    std::snprintf(RecordName, sizeof(RecordName), "%s/%s/jobs=%u", Family,
                  Name, JobCounts[J]);
    Json.add({RecordName, Row.Seconds[J], Row.Stats[J].NodeUpdates,
              Row.Stats[J].WideningApplications,
              Row.Stats[J].InterpretCalls,
              Row.Stats[J].InterpretCacheHits});
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  std::string Family = bench::extractStringFlag(argc, argv, "--family=");
  auto Want = [&Family](const char *F) {
    return Family.empty() || Family == F;
  };
  if (!Family.empty() && !Want("bi") && !Want("addbi") && !Want("leia") &&
      !Want("wide") && !Want("ladder")) {
    std::fprintf(stderr,
                 "error: unknown --family=%s (expected bi, addbi, leia, "
                 "wide, or ladder)\n",
                 Family.c_str());
    return 1;
  }
  bench::JsonEmitter Json;

  std::printf("Parallel-engine scaling: analysis time vs --jobs "
              "(%u hardware threads)\n",
              support::ThreadPool::hardwareConcurrency());
  bench::printRule(100);
  std::printf("%-6s %-14s", "family", "program");
  for (unsigned Jobs : JobCounts)
    std::printf("   jobs=%-2u speedup", Jobs);
  std::printf("\n");
  bench::printRule(100);

  // (i) BI: precompilation and the dense kernels parallelize; the
  // WTO-recursive schedule itself stays sequential.
  if (Want("bi"))
    for (const auto &Bench : benchmarks::biPrograms()) {
      auto Prog = lang::parseProgramOrDie(Bench.Source);
      cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
      BoolStateSpace Space(*Prog);
      BiDomain Dom(Space);
      ScalingRow Row = measure([&](unsigned Jobs) {
        SolverOptions Opts;
        Opts.UseWidening = false;
        Opts.Jobs = Jobs;
        BiDomain Copy = Dom;
        return solve(Graph, Copy, Opts);
      });
      printRow("BI", Bench.Name, Row, Json);
    }

  // (ii) ADD-backed BI under the parallel per-SCC scheduler: each run
  // gets a fresh domain (and hence a fresh home manager), so the timing
  // includes the full import/export migration traffic of the arenas.
  if (Want("addbi"))
    for (const auto &Bench : benchmarks::biPrograms()) {
      auto Prog = lang::parseProgramOrDie(Bench.Source);
      cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
      BoolStateSpace Space(*Prog);
      ScalingRow Row = measure([&](unsigned Jobs) {
        AddBiDomain Dom(Space);
        SolverOptions Opts;
        Opts.UseWidening = false;
        Opts.Strategy = IterationStrategy::ParallelScc;
        Opts.Jobs = Jobs;
        return solve(Graph, Dom, Opts);
      });
      printRow("ADDBI", Bench.Name, Row, Json);
    }

  // (iii) LEIA under the parallel per-SCC scheduler: procedures and
  // independent loop nests stabilize concurrently.
  if (Want("leia"))
    for (const auto &Bench : benchmarks::leiaPrograms()) {
      auto Prog = lang::parseProgramOrDie(Bench.Source);
      cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
      ScalingRow Row = measure([&](unsigned Jobs) {
        LeiaDomain Dom(*Prog);
        SolverOptions Opts;
        Opts.Strategy = IterationStrategy::ParallelScc;
        Opts.Jobs = Jobs;
        return solve(Graph, Dom, Opts);
      });
      printRow("LEIA", Bench.Name, Row, Json);
    }

  // (iv) The single-SCC-dominant wide loop: the whole program is one
  // loop nest, so the condensation offers parallel-scc nothing, while
  // parallel-intra fans the independent arms of the body across the
  // workers between barriers. Both reach the bit-identical fixpoint.
  // Four arms: polyhedra cost grows steeply with the variable count, and
  // at eight variables a single solve already dwarfs the whole rest of
  // the table — four keeps the family cheap while still giving the
  // intra-component planner multi-unit batches to fan out.
  if (Want("wide")) {
    std::string Source = wideLoopSource(/*Arms=*/4, /*ChainLen=*/12);
    auto Prog = lang::parseProgramOrDie(Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    const struct {
      const char *Name;
      IterationStrategy Strategy;
    } Configs[] = {{"wide4-pscc", IterationStrategy::ParallelScc},
                   {"wide4-pintra", IterationStrategy::ParallelIntra}};
    for (const auto &Config : Configs) {
      ScalingRow Row = measure([&](unsigned Jobs) {
        LeiaDomain Dom(*Prog);
        SolverOptions Opts;
        Opts.Strategy = Config.Strategy;
        Opts.Jobs = Jobs;
        return solve(Graph, Dom, Opts);
      });
      printRow("WIDE", Config.Name, Row, Json);
    }
  }

  // (v) The ladder-retention assertion: the same measurement as (iii) on
  // the hottest ladder programs, but the "speedup" column — which for
  // this family reads as retention, Seconds[jobs=1] / Seconds[J] — is a
  // hard floor. Affinity keeps a component's conversions in its owning
  // worker's thread-local memo, and the sharded L2 backstops steals, so
  // multi-worker rows must stay within 1.25x of the jobs=1 wall time;
  // a colder-than-0.8x row fails the binary.
  unsigned RetentionFailures = 0;
  if (Want("ladder"))
    for (const auto &Bench : benchmarks::leiaPrograms()) {
      if (std::none_of(std::begin(LadderFamilyPrograms),
                       std::end(LadderFamilyPrograms),
                       [&Bench](const char *Name) {
                         return Bench.Name == std::string_view(Name);
                       }))
        continue;
      auto Prog = lang::parseProgramOrDie(Bench.Source);
      cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
      ScalingRow Row = measure([&](unsigned Jobs) {
        LeiaDomain Dom(*Prog);
        SolverOptions Opts;
        Opts.Strategy = IterationStrategy::ParallelScc;
        Opts.Jobs = Jobs;
        return solve(Graph, Dom, Opts);
      });
      printRow("LADDER", Bench.Name, Row, Json);
      for (size_t J = 1; J != std::size(JobCounts); ++J) {
        if (Row.Seconds[0] <= 0.0 || Row.Seconds[J] <= 0.0)
          continue;
        double Retention = Row.Seconds[0] / Row.Seconds[J];
        if (Retention < MinLadderRetention) {
          std::fprintf(stderr,
                       "FAIL: LADDER/%s jobs=%u retains only %.2fx of the "
                       "jobs=1 ladder wall time (floor %.2fx): %.4fs vs "
                       "%.4fs\n",
                       Bench.Name, JobCounts[J], Retention,
                       MinLadderRetention, Row.Seconds[J], Row.Seconds[0]);
          ++RetentionFailures;
        }
      }
    }

  bench::printRule(100);
  std::printf("\n");
  if (!Json.writeTo(JsonPath))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (RetentionFailures) {
    std::fprintf(stderr,
                 "%u LADDER row(s) below the %.2fx retention floor\n",
                 RetentionFailures, MinLadderRetention);
    return 1;
  }
  return 0;
}
