//===- bench/bench_parallel_scaling.cpp - Parallel engine scaling ---------===//
//
// Measures the parallel analysis engine: analysis time and speedup vs
// worker count for
//
//  (i)  Bayesian inference, where the parallel win is concurrent
//       transformer precompilation plus the block-parallel dense-matrix
//       kernels (the shared pool), and
//  (ii) ADD-backed Bayesian inference under the parallel per-SCC
//       scheduler, where workers hash-cons in thread-local arena managers
//       and publish results through canonical migration into the shared
//       home manager (the rename-and-merge protocol of
//       domains/AddBiDomain.cpp), and
//  (iii) LEIA under the parallel per-SCC scheduler
//       (IterationStrategy::ParallelScc), where independent strongly
//       connected components of the dependence graph stabilize
//       concurrently.
//
// Speedup is reported relative to the same configuration at one job.
// Both schedules are deterministic — the parallel fixpoints are
// bit-identical to the sequential ones (tests/SchedulerParityTest.cpp) —
// so the comparison is purely about wall clock. Actual speedup is bounded
// by the hardware thread count of the machine (printed in the header;
// job counts beyond it measure oversubscription overhead only) and by
// how much cross-SCC parallelism the benchmark programs expose.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iterator>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

constexpr unsigned JobCounts[] = {1, 2, 4, 8};

struct ScalingRow {
  double Seconds[4] = {0, 0, 0, 0};
  SolverStats Stats[4];
};

/// Times one (program, jobs) configuration; the shared pool is resized to
/// match so the matrix kernels see the same parallelism as the solver.
template <typename AnalyzeFn>
ScalingRow measure(AnalyzeFn &&Analyze) {
  ScalingRow Row;
  for (size_t J = 0; J != std::size(JobCounts); ++J) {
    support::setSharedParallelism(JobCounts[J]);
    Row.Stats[J] = Analyze(JobCounts[J]).Stats;
    // 3 runs (median survives the trim): the 4 job counts quadruple the
    // measurement matrix relative to the single-configuration benches.
    Row.Seconds[J] =
        bench::timedTrimmedMean([&] { Analyze(JobCounts[J]); }, 3);
  }
  support::setSharedParallelism(1);
  return Row;
}

void printRow(const char *Family, const char *Name, const ScalingRow &Row,
              bench::JsonEmitter &Json) {
  std::printf("%-6s %-14s", Family, Name);
  for (size_t J = 0; J != std::size(JobCounts); ++J) {
    double Speedup = Row.Seconds[J] > 0.0 && Row.Seconds[0] > 0.0
                         ? Row.Seconds[0] / Row.Seconds[J]
                         : 1.0;
    std::printf(" %9.4f %5.2fx", Row.Seconds[J], Speedup);
    char RecordName[128];
    std::snprintf(RecordName, sizeof(RecordName), "%s/%s/jobs=%u", Family,
                  Name, JobCounts[J]);
    Json.add({RecordName, Row.Seconds[J], Row.Stats[J].NodeUpdates,
              Row.Stats[J].WideningApplications,
              Row.Stats[J].InterpretCalls,
              Row.Stats[J].InterpretCacheHits});
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  bench::JsonEmitter Json;

  std::printf("Parallel-engine scaling: analysis time vs --jobs "
              "(%u hardware threads)\n",
              support::ThreadPool::hardwareConcurrency());
  bench::printRule(100);
  std::printf("%-6s %-14s", "family", "program");
  for (unsigned Jobs : JobCounts)
    std::printf("   jobs=%-2u speedup", Jobs);
  std::printf("\n");
  bench::printRule(100);

  // (i) BI: precompilation and the dense kernels parallelize; the
  // WTO-recursive schedule itself stays sequential.
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    ScalingRow Row = measure([&](unsigned Jobs) {
      SolverOptions Opts;
      Opts.UseWidening = false;
      Opts.Jobs = Jobs;
      BiDomain Copy = Dom;
      return solve(Graph, Copy, Opts);
    });
    printRow("BI", Bench.Name, Row, Json);
  }

  // (ii) ADD-backed BI under the parallel per-SCC scheduler: each run
  // gets a fresh domain (and hence a fresh home manager), so the timing
  // includes the full import/export migration traffic of the arenas.
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    ScalingRow Row = measure([&](unsigned Jobs) {
      AddBiDomain Dom(Space);
      SolverOptions Opts;
      Opts.UseWidening = false;
      Opts.Strategy = IterationStrategy::ParallelScc;
      Opts.Jobs = Jobs;
      return solve(Graph, Dom, Opts);
    });
    printRow("ADDBI", Bench.Name, Row, Json);
  }

  // (iii) LEIA under the parallel per-SCC scheduler: procedures and
  // independent loop nests stabilize concurrently.
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    ScalingRow Row = measure([&](unsigned Jobs) {
      LeiaDomain Dom(*Prog);
      SolverOptions Opts;
      Opts.Strategy = IterationStrategy::ParallelScc;
      Opts.Jobs = Jobs;
      return solve(Graph, Dom, Opts);
    });
    printRow("LEIA", Bench.Name, Row, Json);
  }

  bench::printRule(100);
  std::printf("\n");
  if (!Json.writeTo(JsonPath))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
