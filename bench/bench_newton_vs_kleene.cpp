//===- bench/bench_newton_vs_kleene.cpp - PReMo solver comparison ---------===//
//
// Reproduces the convergence-speed contrast underlying PReMo (the §6.2
// comparison tool): Newton's method vs Kleene iteration on the monotone
// polynomial equation systems of the benchmark models. For each system and
// each target tolerance the series reports the iteration counts of both
// solvers — the "figure" behind recursive-Markov-chain solving (Etessami &
// Yannakakis).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/PolySystem.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace pmaf;
using namespace pmaf::baselines;

namespace {

struct NamedSystem {
  std::string Name;
  PolySystem Sys;
};

std::vector<NamedSystem> buildSystems() {
  std::vector<NamedSystem> Systems;

  // Reward systems of the polynomial-friendly Table 2 MDP models (the
  // ndet-free ones, so Newton applies).
  for (const char *Name : {"binary10", "loop", "quicksort7", "recursive"}) {
    for (const auto &Bench : benchmarks::mdpPrograms()) {
      if (std::string(Bench.Name) != Name)
        continue;
      auto Prog = lang::parseProgramOrDie(Bench.Source);
      cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
      Systems.push_back(
          {std::string("reward/") + Name,
           rewardSystem(Graph, NdetResolution::Max)});
    }
  }

  // Termination probability of the transient branching process
  // x = 1/3 + 2/3 x^2 (lfp 1/2) and of the *critical* process
  // x = 1/2 + 1/2 x^2 (lfp 1), where Kleene degrades to Theta(1/eps)
  // iterations while Newton stays logarithmic.
  {
    PolySystem Sys;
    auto X = Sys.variable(0);
    Sys.addEquation(Sys.add(
        Sys.constant(1.0 / 3),
        Sys.mul(Sys.constant(2.0 / 3), Sys.mul(X, Sys.variable(0)))));
    Systems.push_back({"termination/transient", std::move(Sys)});
  }
  {
    PolySystem Sys;
    auto X = Sys.variable(0);
    Sys.addEquation(Sys.add(
        Sys.constant(0.5),
        Sys.mul(Sys.constant(0.5), Sys.mul(X, Sys.variable(0)))));
    Systems.push_back({"termination/critical", std::move(Sys)});
  }
  return Systems;
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf("PReMo-style solvers: Newton vs Kleene iterations to reach "
              "tolerance\n");
  bench::printRule(78);
  std::printf("%-24s %10s %12s %12s %14s\n", "system", "tolerance",
              "Kleene-iters", "Newton-iters", "|K - N| value");
  bench::printRule(78);
  for (NamedSystem &Entry : buildSystems()) {
    for (double Tolerance : {1e-3, 1e-6, 1e-9, 1e-12}) {
      PolySystem::Stats KleeneStats, NewtonStats;
      auto K = Entry.Sys.solveKleene(Tolerance, 100000000, &KleeneStats);
      auto N = Entry.Sys.solveNewton(Tolerance, 200, &NewtonStats);
      double MaxDiff = 0.0;
      for (size_t I = 0; I != K.size(); ++I)
        MaxDiff = std::max(MaxDiff, std::fabs(K[I] - N[I]));
      std::printf("%-24s %10.0e %12u %12u %14.2e%s\n", Entry.Name.c_str(),
                  Tolerance, KleeneStats.Iterations, NewtonStats.Iterations,
                  MaxDiff,
                  KleeneStats.Converged ? "" : "  (Kleene capped)");
    }
  }
  bench::printRule(78);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
