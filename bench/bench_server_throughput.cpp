//===- bench/bench_server_throughput.cpp - Resident-session serving -------===//
//
// Measures pmafd's resident-session serving path end to end — framing,
// JSON, session lookup, and the incremental re-solve — over a real
// loopback socket against an in-process Daemon:
//
//  (i)  SERVED cold vs warm: per multi-procedure program, the solve time
//       of a forced-cold analyze vs an analyze after a single-procedure
//       edit. The warm row is *asserted*: the edit must leave at least
//       50% of the Seq-edge transformer slots adopted from the previous
//       compilation (the whole point of keeping sessions resident), and
//       a reuse below the floor exits nonzero so CI can gate on it.
//  (ii) SERVED throughput: 4 concurrent clients on distinct sessions,
//       each driving edit->analyze round trips; sustained solves/sec is
//       the record of merit (the JSON stores seconds *per solve* so the
//       trajectory stays comparable with the per-analysis benches).
//
// Programs come from the test suite's seeded generators (callHeavy and
// mixed presets: main + helpers with DAG calls), the same families
// ServerTest proves bit-identical under warm re-solve — this bench adds
// the wall-clock and the reuse floor on top of that correctness result.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "RandomProgramGen.h"
#include "lang/Ast.h"
#include "server/Daemon.h"
#include "server/Protocol.h"

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace pmaf;
using namespace pmaf::testgen;

namespace {

/// The warm-edit floor of family (i): after editing one procedure, at
/// least this fraction of Seq-edge transformer slots must be adopted
/// from the previous compilation.
constexpr double MinTransformerReuse = 0.5;

/// Edit->analyze round trips per client in the throughput family.
constexpr unsigned SolvesPerClient = 8;
constexpr unsigned NumClients = 4;

/// A blocking frame-protocol client on a plain loopback socket.
class Client {
public:
  explicit Client(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connected() const { return Fd >= 0; }

  /// One request/reply round trip; ok() must be checked by the caller.
  server::Json request(const server::Json &Req) {
    std::string Payload, Error;
    if (!server::writeFrame(Fd, Req.dump()) ||
        !server::readFrame(Fd, Payload, Error))
      return server::Json::null();
    std::optional<server::Json> Reply = server::Json::parse(Payload);
    return Reply ? std::move(*Reply) : server::Json::null();
  }

private:
  int Fd = -1;
};

bool ok(const server::Json &Reply) {
  const server::Json *Ok = Reply.get("ok");
  return Ok && Ok->asBool();
}

server::Json makeReq(const char *Cmd, const std::string &Session) {
  server::Json R = server::Json::object();
  R.set("cmd", server::Json::string(Cmd));
  R.set("session", server::Json::string(Session));
  return R;
}

server::Json loadReq(const std::string &Session, const std::string &Source) {
  server::Json R = makeReq("load", Session);
  R.set("source", server::Json::string(Source));
  R.set("domain", server::Json::string("bi"));
  return R;
}

server::Json editReq(const std::string &Session, const std::string &Source) {
  server::Json R = makeReq("edit", Session);
  R.set("source", server::Json::string(Source));
  return R;
}

uint64_t field(const server::Json &Obj, const char *Outer,
               const char *Inner) {
  const server::Json *O = Obj.get(Outer);
  const server::Json *I = O ? O->get(Inner) : nullptr;
  return I ? I->asUnsigned().value_or(0) : 0;
}

/// A BenchRecord filled from an analyze reply's "stats" object.
bench::BenchRecord record(std::string Name, double Seconds,
                          const server::Json &Reply) {
  bench::BenchRecord R;
  R.Name = std::move(Name);
  R.Seconds = Seconds;
  R.NodeUpdates = field(Reply, "stats", "node_updates");
  R.Widenings = field(Reply, "stats", "widenings");
  R.InterpretCalls = field(Reply, "stats", "interpret_calls");
  R.InterpretCacheHits = field(Reply, "stats", "interpret_cache_hits");
  return R;
}

/// The program of seed \p SeedA with procedure \p P's body spliced in
/// from seed \p SeedB — a single-procedure edit of known extent, the same
/// construction ServerTest proves bit-identical under warm re-solve.
std::string splicedSource(const BoolGenConfig &Config, uint64_t SeedA,
                          uint64_t SeedB, unsigned P) {
  Rng RA(SeedA);
  auto A = randomBoolProgram(RA, Config);
  Rng RB(SeedB);
  auto B = randomBoolProgram(RB, Config);
  A->Procs[P % A->Procs.size()].Body =
      std::move(B->Procs[P % B->Procs.size()].Body);
  return lang::toString(*A);
}

struct ServedProgram {
  std::string Name;
  std::string Source; ///< The resident program.
  std::string Edited; ///< Source with one procedure body replaced.
};

std::vector<ServedProgram> servedPrograms() {
  std::vector<ServedProgram> Out;
  const struct {
    const char *Name;
    BoolGenConfig Config;
    uint64_t SeedA, SeedB;
  } Families[] = {
      {"callheavy-a", BoolGenConfig::callHeavy(), 1001, 9001},
      {"callheavy-b", BoolGenConfig::callHeavy(), 2002, 9002},
      {"mixed-a", BoolGenConfig::mixed(), 3003, 9003},
      {"mixed-b", BoolGenConfig::mixed(), 4004, 9004},
  };
  for (const auto &F : Families) {
    Rng R(F.SeedA);
    auto Prog = randomBoolProgram(R, F.Config);
    // Edit a helper (procedure 1), never main: the interesting reuse case
    // is "a leaf changed, the rest of the call DAG did not".
    Out.push_back({F.Name, lang::toString(*Prog),
                   splicedSource(F.Config, F.SeedA, F.SeedB, 1)});
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  bench::JsonEmitter Json;
  unsigned Failures = 0;

  server::DaemonOptions Opts;
  Opts.Port = 0; // Ephemeral.
  server::Daemon Daemon(Opts);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "error: cannot start daemon: %s\n", Error.c_str());
    return 1;
  }
  const uint16_t Port = Daemon.port();

  std::vector<ServedProgram> Programs = servedPrograms();

  // (i) Cold vs warm-after-edit solve time, with the transformer-slot
  // reuse floor.
  std::printf("Served sessions: cold vs warm-after-single-procedure-edit "
              "(loopback, 1 client)\n");
  bench::printRule(78);
  std::printf("%-14s %10s %10s %8s %18s\n", "program", "cold(s)", "warm(s)",
              "speedup", "transformer reuse");
  bench::printRule(78);
  for (const ServedProgram &P : Programs) {
    Client C(Port);
    if (!C.connected()) {
      std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n", Port);
      return 1;
    }
    const std::string Session = "bench-" + P.Name;
    if (!ok(C.request(loadReq(Session, P.Source)))) {
      std::fprintf(stderr, "error: load failed for %s\n", P.Name.c_str());
      ++Failures;
      continue;
    }
    // Cold rows re-analyze from scratch each time (cold:true drops the
    // resident fixpoint and transformer cache).
    server::Json ColdReply;
    server::Json Cold = makeReq("analyze", Session);
    Cold.set("cold", server::Json::boolean(true));
    double ColdSeconds = bench::timedTrimmedMean(
        [&] { ColdReply = C.request(Cold); }, 5);
    if (!ok(ColdReply)) {
      std::fprintf(stderr, "error: cold analyze failed for %s\n",
                   P.Name.c_str());
      ++Failures;
      continue;
    }
    // Warm rows alternate edit(Edited)/edit(Source) — every round trip
    // changes exactly one procedure body and re-solves incrementally.
    server::Json WarmReply;
    bool Toggle = true;
    auto WarmRound = [&] {
      const std::string &Next = Toggle ? P.Edited : P.Source;
      Toggle = !Toggle;
      if (!ok(C.request(editReq(Session, Next))))
        return;
      WarmReply = C.request(makeReq("analyze", Session));
    };
    WarmRound(); // Prime: the first edit after the cold runs.
    double WarmSeconds = bench::timedTrimmedMean(WarmRound, 5);
    if (!ok(WarmReply)) {
      std::fprintf(stderr, "error: warm analyze failed for %s\n",
                   P.Name.c_str());
      ++Failures;
      continue;
    }
    uint64_t Reused = field(WarmReply, "reuse", "transformers_reused");
    uint64_t Total = field(WarmReply, "reuse", "transformers_total");
    double Fraction = Total ? double(Reused) / double(Total) : 0.0;
    std::printf("%-14s %10.5f %10.5f %7.2fx %9llu/%-4llu %.0f%%\n",
                P.Name.c_str(), ColdSeconds, WarmSeconds,
                WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0.0,
                static_cast<unsigned long long>(Reused),
                static_cast<unsigned long long>(Total), Fraction * 100.0);
    if (Fraction < MinTransformerReuse) {
      std::fprintf(stderr,
                   "FAIL: SERVED/%s reuses only %llu/%llu transformer "
                   "slots (%.0f%%) after a single-procedure edit "
                   "(floor %.0f%%)\n",
                   P.Name.c_str(), static_cast<unsigned long long>(Reused),
                   static_cast<unsigned long long>(Total), Fraction * 100.0,
                   MinTransformerReuse * 100.0);
      ++Failures;
    }
    Json.add(record("SERVED/cold/" + P.Name, ColdSeconds, ColdReply));
    Json.add(record("SERVED/warm-edit/" + P.Name, WarmSeconds, WarmReply));
  }
  bench::printRule(78);

  // (ii) Sustained multi-client throughput: 4 clients, distinct sessions,
  // each looping edit->analyze; wall clock covers the full protocol round
  // trips, so this is solves/sec as an editor or CI bot would see them.
  std::printf("\nSustained throughput: %u clients x %u edit->analyze round "
              "trips each\n",
              NumClients, SolvesPerClient);
  bench::printRule(78);
  for (bool Incremental : {false, true}) {
    std::atomic<unsigned> ThreadFailures{0};
    std::vector<std::thread> Threads;
    auto Start = std::chrono::steady_clock::now();
    for (unsigned T = 0; T != NumClients; ++T) {
      Threads.emplace_back([&, T] {
        const ServedProgram &P = Programs[T % Programs.size()];
        Client C(Port);
        std::string Session = "thrpt-" + std::to_string(T) +
                              (Incremental ? "-inc" : "-cold");
        if (!C.connected() ||
            !ok(C.request(loadReq(Session, P.Source)))) {
          ThreadFailures.fetch_add(1);
          return;
        }
        bool Toggle = true;
        for (unsigned I = 0; I != SolvesPerClient; ++I) {
          server::Json Req = makeReq("analyze", Session);
          if (Incremental) {
            const std::string &Next = Toggle ? P.Edited : P.Source;
            Toggle = !Toggle;
            if (!ok(C.request(editReq(Session, Next)))) {
              ThreadFailures.fetch_add(1);
              return;
            }
          } else {
            Req.set("cold", server::Json::boolean(true));
          }
          if (!ok(C.request(Req))) {
            ThreadFailures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread &T : Threads)
      T.join();
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (ThreadFailures.load()) {
      std::fprintf(stderr, "error: %u throughput client(s) failed\n",
                   ThreadFailures.load());
      Failures += ThreadFailures.load();
      continue;
    }
    const unsigned Solves = NumClients * SolvesPerClient;
    double PerSolve = Wall / Solves;
    std::printf("%-12s %4u solves in %8.4fs  -> %8.1f solves/sec\n",
                Incremental ? "incremental" : "cold", Solves, Wall,
                Solves / Wall);
    Json.add(record(std::string("SERVED/throughput/clients=4/") +
                        (Incremental ? "incremental" : "cold"),
                    PerSolve, server::Json::null()));
  }
  bench::printRule(78);
  std::printf("\n");

  {
    Client C(Port);
    if (C.connected())
      C.request(makeReq("shutdown", ""));
  }
  Daemon.wait();

  if (!Json.writeTo(JsonPath))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (Failures) {
    std::fprintf(stderr, "%u SERVED failure(s)\n", Failures);
    return 1;
  }
  return 0;
}
