//===- bench/bench_iteration_strategy.cpp - Iteration-strategy ablation ---===//
//
// The framework advertises that it supplies "efficient iteration
// strategies with widenings" (§1): the solver follows Bourdoncle's
// recursive strategy over the weak topological order. This ablation
// compares it against the other two schedulers of core/Schedule.h — a
// naive round-robin sweep and the dependency-driven worklist — on the
// benchmark programs, counting node updates via the instrumentation
// layer. Same fixpoints (tests/SchedulerParityTest.cpp), different work.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Instrumentation.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

template <PreMarkovAlgebra D>
SolverInstrumentation runWith(const cfg::ProgramGraph &Graph, D &Dom,
                              IterationStrategy Strategy,
                              SolverOptions Base) {
  SolverInstrumentation Counters;
  Base.Strategy = Strategy;
  solve(Graph, Dom, Base, &Counters);
  return Counters;
}

template <PreMarkovAlgebra D>
void printRow(const char *Program, const char *Domain,
              const cfg::ProgramGraph &Graph, D &Dom,
              const SolverOptions &Opts) {
  SolverInstrumentation Wto =
      runWith(Graph, Dom, IterationStrategy::WtoRecursive, Opts);
  SolverInstrumentation RoundRobin =
      runWith(Graph, Dom, IterationStrategy::RoundRobin, Opts);
  SolverInstrumentation Worklist =
      runWith(Graph, Dom, IterationStrategy::Worklist, Opts);
  std::printf("%-18s %-6s | %10llu | %10llu | %10llu | %6.2fx | %6.2fx\n",
              Program, Domain,
              static_cast<unsigned long long>(Wto.NodeUpdates),
              static_cast<unsigned long long>(RoundRobin.NodeUpdates),
              static_cast<unsigned long long>(Worklist.NodeUpdates),
              static_cast<double>(RoundRobin.NodeUpdates) /
                  static_cast<double>(Wto.NodeUpdates),
              static_cast<double>(Worklist.NodeUpdates) /
                  static_cast<double>(Wto.NodeUpdates));
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf("Iteration-strategy ablation: Bourdoncle WTO-recursive vs "
              "round-robin vs worklist\n");
  bench::printRule(86);
  std::printf("%-18s %-6s | %10s | %10s | %10s | %7s | %7s\n", "program",
              "domain", "WTO upd", "RR upd", "WL upd", "RR/WTO",
              "WL/WTO");
  bench::printRule(86);

  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    printRow(Bench.Name, "BI", Graph, Dom, Opts);
  }
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    printRow(Bench.Name, "MDP", Graph, Dom, Opts);
  }
  bench::printRule(86);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
