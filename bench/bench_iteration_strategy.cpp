//===- bench/bench_iteration_strategy.cpp - Iteration-strategy ablation ---===//
//
// The framework advertises that it supplies "efficient iteration
// strategies with widenings" (§1): the solver follows Bourdoncle's
// recursive strategy over the weak topological order. This ablation
// compares it against a naive round-robin sweep on the benchmark
// programs, counting node updates and time — same results, different
// work.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

template <PreMarkovAlgebra D>
SolverStats runWith(const cfg::ProgramGraph &Graph, D &Dom,
                    IterationStrategy Strategy, SolverOptions Base) {
  Base.Strategy = Strategy;
  return solve(Graph, Dom, Base).Stats;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Iteration-strategy ablation: Bourdoncle WTO-recursive vs "
              "naive round-robin\n");
  bench::printRule(78);
  std::printf("%-18s %-6s | %12s | %12s | %7s\n", "program", "domain",
              "WTO updates", "RR updates", "ratio");
  bench::printRule(78);

  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    SolverStats Wto =
        runWith(Graph, Dom, IterationStrategy::WtoRecursive, Opts);
    SolverStats RoundRobin =
        runWith(Graph, Dom, IterationStrategy::RoundRobin, Opts);
    std::printf("%-18s %-6s | %12llu | %12llu | %6.2fx\n", Bench.Name,
                "BI",
                static_cast<unsigned long long>(Wto.NodeUpdates),
                static_cast<unsigned long long>(RoundRobin.NodeUpdates),
                static_cast<double>(RoundRobin.NodeUpdates) /
                    static_cast<double>(Wto.NodeUpdates));
  }
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    SolverStats Wto =
        runWith(Graph, Dom, IterationStrategy::WtoRecursive, Opts);
    SolverStats RoundRobin =
        runWith(Graph, Dom, IterationStrategy::RoundRobin, Opts);
    std::printf("%-18s %-6s | %12llu | %12llu | %6.2fx\n", Bench.Name,
                "MDP",
                static_cast<unsigned long long>(Wto.NodeUpdates),
                static_cast<unsigned long long>(RoundRobin.NodeUpdates),
                static_cast<double>(RoundRobin.NodeUpdates) /
                    static_cast<double>(Wto.NodeUpdates));
  }
  bench::printRule(78);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
