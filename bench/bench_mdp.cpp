//===- bench/bench_mdp.cpp - Table 2 (bottom): MDPs with rewards ----------===//
//
// Regenerates the MDP half of Table 2: program sizes, recursion kinds,
// call counts, and timed analyses, with the maximum expected reward
// computed by the PMAF instantiation of §5.2 cross-checked against the
// PReMo-style monotone-equation solver (§6.2: "Our framework computed the
// same answer as PReMo").
//
// quicksort7 models randomized quicksort on 7 elements (expected
// comparisons Theta(n log n)); binary10 models randomized binary search on
// 10 elements (Theta(log n)) — the two observations §6.2 highlights.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/PolySystem.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

AnalysisResult<double> analyzeOnce(const cfg::ProgramGraph &Graph) {
  MdpDomain Dom;
  SolverOptions Opts;
  // The MDP widening is the paper's trivial jump-to-infinity (§5.2);
  // geometric chains get room to stabilize first.
  Opts.WideningDelay = 10000;
  return solve(Graph, Dom, Opts);
}

void registerTimingBenchmarks() {
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    benchmark::RegisterBenchmark(
        (std::string("MDP/") + Bench.Name).c_str(),
        [Source = Bench.Source](benchmark::State &State) {
          auto Prog = lang::parseProgramOrDie(Source);
          cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
          for (auto _ : State)
            benchmark::DoNotOptimize(analyzeOnce(Graph));
        })
        ->Unit(benchmark::kMillisecond);
  }
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf(
      "Table 2 (bottom): Markov decision processes with rewards (§5.2)\n");
  bench::printRule(78);
  std::printf("%-12s %5s %4s %6s %9s %12s %12s\n", "program", "#loc", "rec",
              "#call", "time(s)", "E[reward]", "PReMo-style");
  bench::printRule(78);
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    AnalysisResult<double> Result = analyzeOnce(Graph);
    double Seconds = bench::timedTrimmedMean([&] { analyzeOnce(Graph); });
    unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;

    baselines::PolySystem Sys =
        baselines::rewardSystem(Graph, baselines::NdetResolution::Max);
    std::vector<double> Baseline = Sys.solveKleene(1e-13, 3000000);

    std::printf("%-12s %5u %4c %6u %9.4f %12.6f %12.6f\n", Bench.Name,
                benchmarks::countLoc(Bench.Source),
                benchmarks::recursionKind(*Prog), Prog->countCalls(),
                Seconds, Result.Values[Entry], Baseline[Entry]);
  }
  bench::printRule(78);
  std::printf("\n");

  registerTimingBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
