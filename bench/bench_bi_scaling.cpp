//===- bench/bench_bi_scaling.cpp - BI cost vs number of variables --------===//
//
// Reproduces the scaling observation of §6.2 — "The analysis time of
// Bayesian inference grows exponentially with respect to the number of
// program variables. The time cost comes from the explicit matrix
// representation of domain elements. One could use Algebraic Decision
// Diagrams as a compact representation to improve the efficiency." —
// and implements the suggested fix: the same family of programs is
// analyzed with the dense-matrix domain (§5.1) and with the ADD-backed
// domain, reporting time and representation size per variable count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// A family of Boolean programs over n variables: sample every variable,
/// then resample the first two until one is true (a Fig 1(a)-style loop
/// embedded in a growing state space).
std::string chainProgram(unsigned N) {
  std::string Decls = "bool";
  for (unsigned I = 0; I != N; ++I)
    Decls += std::string(I ? ", " : " ") + "v" + std::to_string(I);
  std::string Body;
  for (unsigned I = 0; I != N; ++I)
    Body += "v" + std::to_string(I) + " ~ bernoulli(0.5);\n";
  Body += "while (!v0 && !v1) {\n"
          "  v0 ~ bernoulli(0.5);\n"
          "  v1 ~ bernoulli(0.5);\n"
          "}\n";
  return Decls + ";\nproc main() {\n" + Body + "}\n";
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf("Bayesian inference scaling in #vars (§6.2): dense matrices "
              "vs ADDs\n");
  bench::printRule(78);
  std::printf("%5s %14s %14s %16s %12s\n", "#vars", "dense time(s)",
              "ADD time(s)", "dense entries", "ADD nodes");
  bench::printRule(78);
  for (unsigned N = 2; N <= 14; ++N) {
    std::string Source = chainProgram(N);
    auto Prog = lang::parseProgramOrDie(Source);
    BoolStateSpace Space(*Prog);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false;
    unsigned Entry = Graph.proc(0).Entry;

    double DenseSeconds = -1.0;
    if (N <= 9) { // The dense representation is 4^n doubles per value.
      BiDomain Dense(Space);
      DenseSeconds = bench::timedTrimmedMean(
          [&] {
            BiDomain Dom(Space);
            solve(Graph, Dom, Opts);
          },
          3);
    }

    AddBiDomain Compact(Space);
    auto CompactResult = solve(Graph, Compact, Opts);
    double AddSeconds = bench::timedTrimmedMean(
        [&] {
          AddBiDomain Dom(Space);
          solve(Graph, Dom, Opts);
        },
        3);
    size_t Nodes = Compact.nodeCount(CompactResult.Values[Entry]);

    char DenseText[32];
    if (DenseSeconds >= 0)
      std::snprintf(DenseText, sizeof(DenseText), "%14.4f", DenseSeconds);
    else
      std::snprintf(DenseText, sizeof(DenseText), "%14s", "(skipped)");
    std::printf("%5u %s %14.4f %16.3g %12zu\n", N, DenseText, AddSeconds,
                static_cast<double>(Space.numStates()) *
                    static_cast<double>(Space.numStates()),
                Nodes);
  }
  bench::printRule(78);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
