//===- bench/bench_leia.cpp - Table 1: expectation-invariant analysis -----===//
//
// Regenerates Table 1 of the paper: for each of the 13 LEIA benchmarks,
// the derived linear expectation invariants, the program size, recursion
// kind, number of call sites, and the 20%-trimmed-mean analysis time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Resolved --jobs value (1 = sequential); set once in main before any
/// analysis runs.
unsigned BenchJobs = 1;

AnalysisResult<LeiaValue> analyzeOnce(const cfg::ProgramGraph &Graph,
                                      const lang::Program &Prog) {
  LeiaDomain Dom(Prog);
  SolverOptions Opts;
  Opts.WideningDelay = 2;
  Opts.Jobs = BenchJobs;
  return solve(Graph, Dom, Opts);
}

void registerTimingBenchmarks() {
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    benchmark::RegisterBenchmark(
        (std::string("LEIA/") + Bench.Name).c_str(),
        [Source = Bench.Source](benchmark::State &State) {
          auto Prog = lang::parseProgramOrDie(Source);
          cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
          for (auto _ : State)
            benchmark::DoNotOptimize(analyzeOnce(Graph, *Prog));
        })
        ->Unit(benchmark::kMillisecond);
  }
}

} // namespace

int main(int argc, char **argv) {
  BenchJobs = bench::configureJobs(argc, argv);
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  bench::JsonEmitter Json;
  std::printf("Table 1: linear expectation-invariant analysis (§5.3)\n");
  bench::printRule(78);
  std::printf("%-14s %5s %4s %6s %9s  %s\n", "program", "#loc", "rec",
              "#call", "time(s)", "expectation invariants");
  bench::printRule(78);
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    AnalysisResult<LeiaValue> Result = analyzeOnce(Graph, *Prog);
    double Seconds =
        bench::timedTrimmedMean([&] { analyzeOnce(Graph, *Prog); });
    Json.add({Bench.Name, Seconds, Result.Stats.NodeUpdates,
              Result.Stats.WideningApplications,
              Result.Stats.InterpretCalls,
              Result.Stats.InterpretCacheHits});
    LeiaDomain Dom(*Prog);
    unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
    std::vector<std::string> Invariants =
        Dom.describeInvariants(Result.Values[Entry]);
    std::printf("%-14s %5u %4c %6u %9.4f  ",
                Bench.Name, benchmarks::countLoc(Bench.Source),
                benchmarks::recursionKind(*Prog), Prog->countCalls(),
                Seconds);
    if (Invariants.empty()) {
      std::printf("(none)\n");
    } else {
      std::printf("%s\n", Invariants[0].c_str());
      for (size_t I = 1; I != Invariants.size(); ++I)
        std::printf("%*s%s\n", 43, "", Invariants[I].c_str());
    }
    if (!Result.Stats.Converged)
      std::printf("%*s(did not converge!)\n", 43, "");
  }
  bench::printRule(78);
  std::printf("\n");
  if (!Json.writeTo(JsonPath))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());

  registerTimingBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
