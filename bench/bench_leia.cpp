//===- bench/bench_leia.cpp - Table 1: expectation-invariant analysis -----===//
//
// Regenerates Table 1 of the paper: for each of the 13 LEIA benchmarks,
// the derived linear expectation invariants, the program size, recursion
// kind, number of call sites, and the 20%-trimmed-mean analysis time.
//
// Flags (beyond google-benchmark's own):
//   --numeric=poly|ladder|zones|intervals  numeric backend (default ladder)
//   --programs=a,b,c                       run only the named benchmarks
//   --json=<path>                          write BENCH_*.json records
//   --jobs=<n>                             solver worker threads
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <type_traits>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Resolved --jobs value (1 = sequential); set once in main before any
/// analysis runs.
unsigned BenchJobs = 1;

/// Resolved --numeric backend; set once in main.
NumericBackend BenchNumeric = NumericBackend::Ladder;

/// Names from --programs= (empty = run everything).
std::vector<std::string> ProgramFilter;

bool wantProgram(const char *Name) {
  if (ProgramFilter.empty())
    return true;
  for (const std::string &Want : ProgramFilter)
    if (Want == Name)
      return true;
  return false;
}

template <poly::NumericDomain NumV>
AnalysisResult<LeiaValueT<NumV>> analyzeOnce(const cfg::ProgramGraph &Graph,
                                             const lang::Program &Prog) {
  LeiaDomainT<NumV> Dom(Prog);
  SolverOptions Opts;
  Opts.WideningDelay = 2;
  Opts.Jobs = BenchJobs;
  Opts.Numeric = BenchNumeric;
  return solve(Graph, Dom, Opts);
}

/// Calls \p Fn with std::type_identity<NumV> for the selected backend.
template <typename F> decltype(auto) withBackend(F &&Fn) {
  switch (BenchNumeric) {
  case NumericBackend::Poly:
    return Fn(std::type_identity<poly::Polyhedron>{});
  case NumericBackend::Zones:
    return Fn(std::type_identity<poly::Zones>{});
  case NumericBackend::Intervals:
    return Fn(std::type_identity<poly::Intervals>{});
  case NumericBackend::Ladder:
    break;
  }
  return Fn(std::type_identity<poly::LadderValue>{});
}

void registerTimingBenchmarks() {
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    if (!wantProgram(Bench.Name))
      continue;
    benchmark::RegisterBenchmark(
        (std::string("LEIA/") + Bench.Name).c_str(),
        [Source = Bench.Source](benchmark::State &State) {
          auto Prog = lang::parseProgramOrDie(Source);
          cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
          for (auto _ : State)
            withBackend([&]<typename NumV>(std::type_identity<NumV>) {
              benchmark::DoNotOptimize(analyzeOnce<NumV>(Graph, *Prog));
            });
        })
        ->Unit(benchmark::kMillisecond);
  }
}

int runTable(const std::string &JsonPath) {
  bench::JsonEmitter Json;
  std::printf("Table 1: linear expectation-invariant analysis (§5.3)\n");
  std::printf("numeric backend: %s\n", toString(BenchNumeric));
  bench::printRule(78);
  std::printf("%-14s %5s %4s %6s %9s  %s\n", "program", "#loc", "rec",
              "#call", "time(s)", "expectation invariants");
  bench::printRule(78);
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    if (!wantProgram(Bench.Name))
      continue;
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    // Per-program peak counters (generator rows, pack width): the solver
    // reports process-wide peaks, so reset them before the measured run.
    poly::resetNumericPeaks();
    withBackend([&]<typename NumV>(std::type_identity<NumV>) {
      AnalysisResult<LeiaValueT<NumV>> Result =
          analyzeOnce<NumV>(Graph, *Prog);
      double Seconds =
          bench::timedTrimmedMean([&] { analyzeOnce<NumV>(Graph, *Prog); });
      bench::BenchRecord Record{Bench.Name, Seconds,
                                Result.Stats.NodeUpdates,
                                Result.Stats.WideningApplications,
                                Result.Stats.InterpretCalls,
                                Result.Stats.InterpretCacheHits};
      Record.NumericBackend = toString(BenchNumeric);
      Record.ChernikovaCalls = Result.Stats.Numeric.MinimizationCalls;
      Record.ConversionCacheHits = Result.Stats.Numeric.ConversionCacheHits;
      Record.ConversionCacheMisses =
          Result.Stats.Numeric.ConversionCacheMisses;
      Record.Escalations = Result.Stats.Numeric.Escalations;
      Record.PeakGeneratorRows = Result.Stats.Numeric.PeakGeneratorRows;
      Record.MaxPackWidth = Result.Stats.Numeric.MaxPackWidth;
      Json.add(std::move(Record));
      LeiaDomainT<NumV> Dom(*Prog);
      unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
      std::vector<std::string> Invariants =
          Dom.describeInvariants(Result.Values[Entry]);
      std::printf("%-14s %5u %4c %6u %9.4f  ",
                  Bench.Name, benchmarks::countLoc(Bench.Source),
                  benchmarks::recursionKind(*Prog), Prog->countCalls(),
                  Seconds);
      if (Invariants.empty()) {
        std::printf("(none)\n");
      } else {
        std::printf("%s\n", Invariants[0].c_str());
        for (size_t I = 1; I != Invariants.size(); ++I)
          std::printf("%*s%s\n", 43, "", Invariants[I].c_str());
      }
      if (!Result.Stats.Converged)
        std::printf("%*s(did not converge!)\n", 43, "");
    });
  }
  bench::printRule(78);
  std::printf("\n");
  if (!Json.writeTo(JsonPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  BenchJobs = bench::configureJobs(argc, argv);
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  std::string NumericArg =
      bench::extractStringFlag(argc, argv, "--numeric=");
  if (!NumericArg.empty()) {
    auto Parsed = parseNumericBackend(NumericArg);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: unknown --numeric backend '%s' "
                   "(expected poly, ladder, zones, or intervals)\n",
                   NumericArg.c_str());
      return 1;
    }
    BenchNumeric = *Parsed;
  }
  std::string ProgramsArg =
      bench::extractStringFlag(argc, argv, "--programs=");
  for (size_t Pos = 0; Pos < ProgramsArg.size();) {
    size_t Comma = ProgramsArg.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = ProgramsArg.size();
    if (Comma > Pos)
      ProgramFilter.push_back(ProgramsArg.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }

  if (int Failed = runTable(JsonPath))
    return Failed;

  registerTimingBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
