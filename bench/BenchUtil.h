//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and table-printing helpers shared by the per-table benchmark
/// binaries. Timing follows §6.2: each analysis is run 5 times and the 20%
/// trimmed mean is reported (drop min and max, average the middle three).
///
/// Binaries that opt in (pass argv through extractJsonPath) also accept
/// `--json=<path>` and emit one record per benchmark — name, trimmed-mean
/// seconds, and the instrumentation counters — so successive PRs can
/// record BENCH_*.json trajectory points.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_BENCH_BENCHUTIL_H
#define PMAF_BENCH_BENCHUTIL_H

#include "support/NumParse.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace bench {

/// Runs \p Fn \p Runs times; returns the 20% trimmed mean in seconds.
template <typename F> double timedTrimmedMean(F &&Fn, int Runs = 5) {
  std::vector<double> Samples;
  for (int I = 0; I != Runs; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    Samples.push_back(std::chrono::duration<double>(End - Start).count());
  }
  std::sort(Samples.begin(), Samples.end());
  double Sum = 0.0;
  int Kept = 0;
  for (int I = 1; I + 1 < static_cast<int>(Samples.size()); ++I) {
    Sum += Samples[I];
    ++Kept;
  }
  return Kept ? Sum / Kept : Samples.front();
}

/// Prints a horizontal rule of width \p Width.
inline void printRule(int Width) {
  for (int I = 0; I != Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// One benchmark measurement destined for the JSON trajectory file.
struct BenchRecord {
  std::string Name;
  /// 20%-trimmed-mean analysis time.
  double Seconds = 0.0;
  /// Solver instrumentation counters for one representative analysis.
  uint64_t NodeUpdates = 0;
  uint64_t Widenings = 0;
  uint64_t InterpretCalls = 0;
  uint64_t InterpretCacheHits = 0;
  /// Numeric-layer counters (domains over the poly backends only). An
  /// empty NumericBackend means "not recorded" and the numeric keys are
  /// omitted from the JSON record, keeping older trajectory files and
  /// non-numeric benches byte-compatible.
  std::string NumericBackend;
  uint64_t ChernikovaCalls = 0;
  uint64_t ConversionCacheHits = 0;
  uint64_t ConversionCacheMisses = 0;
  uint64_t Escalations = 0;
  unsigned PeakGeneratorRows = 0;
  unsigned MaxPackWidth = 0;
};

/// Removes `--json=<path>` from argv (so google-benchmark never sees it)
/// and returns the path, or "" when absent.
inline std::string extractJsonPath(int &Argc, char **Argv) {
  std::string Path;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      Path = Argv[I] + 7;
    else
      Argv[Out++] = Argv[I];
  }
  Argc = Out;
  return Path;
}

/// Removes `--<name>=<value>` from argv and returns the value, or "" when
/// absent. \p Prefix includes the equals sign, e.g. "--numeric=".
inline std::string extractStringFlag(int &Argc, char **Argv,
                                     const char *Prefix) {
  std::string Value;
  size_t Len = std::strlen(Prefix);
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], Prefix, Len) == 0)
      Value = Argv[I] + Len;
    else
      Argv[Out++] = Argv[I];
  }
  Argc = Out;
  return Value;
}

/// Removes `--jobs=<n>` from argv and returns n, or \p Default when
/// absent. `--jobs=0` means one worker per hardware thread. The caller
/// decides what to do with the value — typically SolverOptions::Jobs plus
/// support::setSharedParallelism for the matrix kernels.
inline unsigned extractJobs(int &Argc, char **Argv, unsigned Default = 1) {
  unsigned Jobs = Default;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0) {
      // Strict full-string parse: a malformed job count is a usage error
      // (exit 2), never a silent fallback to 0 workers — a benchmark run
      // at the wrong parallelism would record a wrong trajectory point.
      std::optional<unsigned> Parsed =
          support::parseUnsigned32(Argv[I] + 7);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: --jobs expects an unsigned integer, got '%s' "
                     "[invalid-flag-value]\n",
                     Argv[I] + 7);
        std::exit(2);
      }
      Jobs = *Parsed;
    } else {
      Argv[Out++] = Argv[I];
    }
  }
  Argc = Out;
  return Jobs;
}

/// The standard `--jobs` wiring of a bench main: extract the flag, resolve
/// 0 to the hardware thread count, and size the process-wide shared pool
/// the dense-matrix kernels use — once, at startup, never per repetition
/// (recreating the pool mid-run would both skew timings and race in-flight
/// users; setSharedParallelism refuses while tasks are in flight).
/// \returns the resolved count, destined for SolverOptions::Jobs where the
/// bench owns the SolverOptions.
inline unsigned configureJobs(int &Argc, char **Argv) {
  unsigned Jobs = extractJobs(Argc, Argv);
  if (Jobs == 0)
    Jobs = support::ThreadPool::hardwareConcurrency();
  support::setSharedParallelism(Jobs);
  return Jobs;
}

/// Collects BenchRecords and writes them as a JSON array of objects.
class JsonEmitter {
public:
  void add(BenchRecord Record) { Records.push_back(std::move(Record)); }

  /// Writes the collected records to \p Path; returns false on I/O error.
  /// No-op (returns true) when \p Path is empty.
  bool writeTo(const std::string &Path) const {
    if (Path.empty())
      return true;
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out)
      return false;
    std::fputs("[\n", Out);
    for (size_t I = 0; I != Records.size(); ++I) {
      const BenchRecord &R = Records[I];
      std::fprintf(
          Out,
          "  {\"name\": \"%s\", \"seconds\": %.9f, \"node_updates\": %llu, "
          "\"widenings\": %llu, \"interpret_calls\": %llu, "
          "\"interpret_cache_hits\": %llu",
          escape(R.Name).c_str(), R.Seconds,
          static_cast<unsigned long long>(R.NodeUpdates),
          static_cast<unsigned long long>(R.Widenings),
          static_cast<unsigned long long>(R.InterpretCalls),
          static_cast<unsigned long long>(R.InterpretCacheHits));
      if (!R.NumericBackend.empty())
        std::fprintf(
            Out,
            ", \"numeric\": \"%s\", \"chernikova_calls\": %llu, "
            "\"conversion_cache_hits\": %llu, "
            "\"conversion_cache_misses\": %llu, \"escalations\": %llu, "
            "\"peak_generator_rows\": %u, \"max_pack_width\": %u",
            escape(R.NumericBackend).c_str(),
            static_cast<unsigned long long>(R.ChernikovaCalls),
            static_cast<unsigned long long>(R.ConversionCacheHits),
            static_cast<unsigned long long>(R.ConversionCacheMisses),
            static_cast<unsigned long long>(R.Escalations),
            R.PeakGeneratorRows, R.MaxPackWidth);
      std::fprintf(Out, "}%s\n", I + 1 == Records.size() ? "" : ",");
    }
    std::fputs("]\n", Out);
    return std::fclose(Out) == 0;
  }

private:
  static std::string escape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  }

  std::vector<BenchRecord> Records;
};

} // namespace bench
} // namespace pmaf

#endif // PMAF_BENCH_BENCHUTIL_H
