//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and table-printing helpers shared by the per-table benchmark
/// binaries. Timing follows §6.2: each analysis is run 5 times and the 20%
/// trimmed mean is reported (drop min and max, average the middle three).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_BENCH_BENCHUTIL_H
#define PMAF_BENCH_BENCHUTIL_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace pmaf {
namespace bench {

/// Runs \p Fn \p Runs times; returns the 20% trimmed mean in seconds.
template <typename F> double timedTrimmedMean(F &&Fn, int Runs = 5) {
  std::vector<double> Samples;
  for (int I = 0; I != Runs; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    Samples.push_back(std::chrono::duration<double>(End - Start).count());
  }
  std::sort(Samples.begin(), Samples.end());
  double Sum = 0.0;
  int Kept = 0;
  for (int I = 1; I + 1 < static_cast<int>(Samples.size()); ++I) {
    Sum += Samples[I];
    ++Kept;
  }
  return Kept ? Sum / Kept : Samples.front();
}

/// Prints a horizontal rule of width \p Width.
inline void printRule(int Width) {
  for (int I = 0; I != Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

} // namespace bench
} // namespace pmaf

#endif // PMAF_BENCH_BENCHUTIL_H
