//===- bench/bench_widening_ablation.cpp - §4.4 widening ablation ---------===//
//
// Reproduces the design observation of §4.4: "if we used the same widening
// operator for all widening nodes, there could be a substantial loss in
// precision." Each Table 1 program is analyzed twice — once with the
// per-control-kind widening selection (cond/prob/ndet/call) and once with a
// single unified widening (the solver's UnifiedWidening ablation flag,
// which applies the pessimistic ndet widening everywhere) — and the derived
// expectation invariants are compared.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

struct Outcome {
  unsigned Equalities = 0;
  unsigned Inequalities = 0;
  double Seconds = 0.0;
};

Outcome analyze(const benchmarks::BenchProgram &Bench, bool Unified) {
  auto Prog = lang::parseProgramOrDie(Bench.Source);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  LeiaDomain Dom(*Prog);
  SolverOptions Opts;
  Opts.WideningDelay = 2;
  Opts.UnifiedWidening = Unified;
  AnalysisResult<LeiaValue> Result = solve(Graph, Dom, Opts);
  Outcome Out;
  Out.Seconds = bench::timedTrimmedMean([&] {
    LeiaDomain Fresh(*Prog);
    solve(Graph, Fresh, Opts);
  }, 3);
  unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
  for (const std::string &Inv :
       Dom.describeInvariants(Result.Values[Entry])) {
    if (Inv.find("==") != std::string::npos)
      ++Out.Equalities;
    else
      ++Out.Inequalities;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf("Ablation (§4.4): per-kind widening vs a single unified "
              "widening, LEIA on Table 1\n");
  bench::printRule(78);
  std::printf("%-14s | %-21s | %-21s\n", "", "per-kind (paper)",
              "unified (ablation)");
  std::printf("%-14s | %4s %4s %9s | %4s %4s %9s\n", "program", "#eq",
              "#ineq", "time(s)", "#eq", "#ineq", "time(s)");
  bench::printRule(78);
  unsigned LostEqualities = 0;
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    Outcome PerKind = analyze(Bench, /*Unified=*/false);
    Outcome Unified = analyze(Bench, /*Unified=*/true);
    std::printf("%-14s | %4u %4u %9.4f | %4u %4u %9.4f%s\n", Bench.Name,
                PerKind.Equalities, PerKind.Inequalities, PerKind.Seconds,
                Unified.Equalities, Unified.Inequalities, Unified.Seconds,
                Unified.Equalities < PerKind.Equalities
                    ? "   << lost equalities"
                    : "");
    if (Unified.Equalities < PerKind.Equalities)
      LostEqualities += PerKind.Equalities - Unified.Equalities;
  }
  bench::printRule(78);
  std::printf("Unified widening loses %u expectation equalities across the "
              "suite.\n\n",
              LostEqualities);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
