//===- bench/bench_hypergraph_ablation.cpp - §2.3 hyper-graph ablation ----===//
//
// Reproduces the motivation of §2.3: treating the CFG as a *hyper-graph*
// lets the analyzer combine the successors of a probabilistic branch with
// the weighted operator p⊕ instead of the join that an ordinary-graph
// formulation would apply at branch nodes. The ablation wraps a domain so
// that probabilistic-choice falls back to nondeterministic-choice (join)
// and measures the lost precision on: (i) the §1 nondeterminism example
// (expected return 1.5 vs an interval), (ii) the Fig 1(b) game invariants,
// and (iii) Fig 1(a) Bayesian inference, where the join (pointwise min)
// collapses the posterior lower bounds to 0.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Wraps a PMA so probabilistic-choice degrades to the join applied at
/// branch nodes of an ordinary CFG formulation (§2.3).
template <typename D> class ProbAsJoinDomain {
public:
  using Value = typename D::Value;

  explicit ProbAsJoinDomain(D &Inner) : Inner(Inner) {}

  Value bottom() const { return Inner.bottom(); }
  Value one() const { return Inner.one(); }
  Value extend(const Value &A, const Value &B) const {
    return Inner.extend(A, B);
  }
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const {
    return Inner.condChoice(Phi, A, B);
  }
  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    (void)P; // The ordinary-graph join ignores the branch weight.
    return Inner.ndetChoice(A, B);
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return Inner.ndetChoice(A, B);
  }
  Value interpret(const lang::Stmt *Act) const { return Inner.interpret(Act); }
  bool leq(const Value &A, const Value &B) const { return Inner.leq(A, B); }
  bool equal(const Value &A, const Value &B) const {
    return Inner.equal(A, B);
  }
  Value widenCond(const Value &A, const Value &B) const {
    return Inner.widenCond(A, B);
  }
  Value widenProb(const Value &A, const Value &B) const {
    return Inner.widenNdet(A, B);
  }
  Value widenNdet(const Value &A, const Value &B) const {
    return Inner.widenNdet(A, B);
  }
  Value widenCall(const Value &A, const Value &B) const {
    return Inner.widenCall(A, B);
  }
  std::string toString(const Value &A) const { return Inner.toString(A); }

private:
  D &Inner;
};

static_assert(core::PreMarkovAlgebra<ProbAsJoinDomain<LeiaDomain>>);

void leiaComparison(const char *Title, const char *Source,
                    const std::vector<Rational> &Objective,
                    const std::vector<Rational> &Pre) {
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;
  SolverOptions Opts;
  Opts.WideningDelay = 2;

  LeiaDomain Hyper(*Prog);
  auto HyperResult = solve(Graph, Hyper, Opts);
  auto [HLo, HHi] =
      Hyper.expectationBounds(HyperResult.Values[Entry], Objective, Pre);

  LeiaDomain Inner(*Prog);
  ProbAsJoinDomain<LeiaDomain> GraphStyle(Inner);
  auto GraphResult = solve(Graph, GraphStyle, Opts);
  auto [GLo, GHi] =
      Inner.expectationBounds(GraphResult.Values[Entry], Objective, Pre);

  auto Fmt = [](const std::optional<Rational> &R, bool Lower) {
    return R ? std::to_string(R->toDouble())
             : std::string(Lower ? "-inf" : "+inf");
  };
  std::printf("%-34s hyper-graph p(+): [%s, %s]\n", Title,
              Fmt(HLo, true).c_str(), Fmt(HHi, false).c_str());
  std::printf("%-34s graph-style join: [%s, %s]\n", "",
              Fmt(GLo, true).c_str(), Fmt(GHi, false).c_str());
}

} // namespace

int main(int argc, char **argv) {
  bench::configureJobs(argc, argv);
  std::printf("Ablation (§2.3): hyper-graph p⊕ vs ordinary-graph join at "
              "probabilistic branches\n");
  bench::printRule(78);

  // (i) The §1 example: PMAF concludes E[r'] = 1.5 exactly.
  leiaComparison("section-1 example, E[r']:", R"(
    real r;
    proc main() {
      if star {
        if prob(1/2) { r := 1; } else { r := 2; }
      } else {
        if prob(1/2) { r := 1; } else { r := 2; }
      }
    }
  )",
                 {Rational(1)}, {Rational(0)});

  // (ii) Fig 1(b): the exact game invariant E[x'+y'] = x+y+3 needs the
  // weighted loop combination.
  leiaComparison("fig-1b game, E[x'+y'] at (1,2,0):", R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )",
                 {Rational(1), Rational(1), Rational(0)},
                 {Rational(1), Rational(2), Rational(0)});

  // (iii) Fig 1(a) Bayesian inference, written with *control-flow*
  // randomness (prob branches) instead of data randomness — the very
  // distinction §2.3 draws: with the join (pointwise min) in place of the
  // affine combination, the posterior lower bound collapses to 0.
  {
    auto Prog = lang::parseProgramOrDie(R"(
      bool b1, b2;
      proc main() {
        if prob(0.5) { b1 := true; } else { b1 := false; }
        if prob(0.5) { b2 := true; } else { b2 := false; }
        while (!b1 && !b2) {
          if prob(0.5) { b1 := true; } else { b1 := false; }
          if prob(0.5) { b2 := true; } else { b2 := false; }
        }
      }
    )");
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false;
    unsigned Entry = Graph.proc(0).Entry;
    std::vector<double> Prior(4, 0.0);
    Prior[0] = 1.0;

    BiDomain Hyper(Space);
    auto HyperResult = solve(Graph, Hyper, Opts);
    std::vector<double> HyperPost =
        Hyper.posterior(HyperResult.Values[Entry], Prior);

    BiDomain Inner(Space);
    ProbAsJoinDomain<BiDomain> GraphStyle(Inner);
    auto GraphResult = solve(Graph, GraphStyle, Opts);
    std::vector<double> GraphPost =
        Inner.posterior(GraphResult.Values[Entry], Prior);

    std::printf("%-34s hyper-graph p(+): P[TT] >= %.6f\n",
                "fig-1a BI, posterior of (T,T):", HyperPost[3]);
    std::printf("%-34s graph-style join: P[TT] >= %.6f\n", "",
                GraphPost[3]);
  }

  bench::printRule(78);
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
