//===- bench/bench_bi.cpp - Table 2 (top): Bayesian inference -------------===//
//
// Regenerates the Bayesian-inference half of Table 2 of the paper: for each
// benchmark program, the program size (#loc), recursion kind, number of
// call sites, and the 20%-trimmed-mean analysis time over 5 runs. As a
// correctness column (the paper's §6.2 cross-check against PReMo), the
// terminating posterior mass from the all-false prior is printed next to
// the exact value computed by the PReMo-style equation solver where the
// model is state-independent, and by the forward Claret-et-al. baseline
// where it applies.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/ClaretForward.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Resolved --jobs value (1 = sequential); set once in main before any
/// analysis runs.
unsigned BenchJobs = 1;

struct Row {
  std::string Name;
  unsigned Loc = 0;
  char Rec = 'n';
  unsigned Calls = 0;
  double Seconds = 0.0;
  double PosteriorMass = 0.0;
  std::string CrossCheck;
  SolverStats Stats;
};

AnalysisResult<Matrix> analyzeOnce(const cfg::ProgramGraph &Graph,
                                   const BiDomain &Dom) {
  SolverOptions Opts;
  Opts.UseWidening = false; // §5.1: BI is an under-abstraction from bottom.
  Opts.Jobs = BenchJobs;
  BiDomain Copy = Dom;
  return solve(Graph, Copy, Opts);
}

Row runProgram(const benchmarks::BenchProgram &Bench) {
  Row R;
  R.Name = Bench.Name;
  R.Loc = benchmarks::countLoc(Bench.Source);
  auto Prog = lang::parseProgramOrDie(Bench.Source);
  R.Rec = benchmarks::recursionKind(*Prog);
  R.Calls = Prog->countCalls();
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  BoolStateSpace Space(*Prog);
  BiDomain Dom(Space);

  AnalysisResult<Matrix> Result = analyzeOnce(Graph, Dom);
  R.Stats = Result.Stats;
  R.Seconds =
      bench::timedTrimmedMean([&] { analyzeOnce(Graph, Dom); });

  unsigned Main = Prog->findProc("main");
  std::vector<double> Prior(Space.numStates(), 0.0);
  Prior[0] = 1.0;
  std::vector<double> Post =
      Dom.posterior(Result.Values[Graph.proc(Main).Entry], Prior);
  for (double P : Post)
    R.PosteriorMass += P;

  // Cross-check against the forward intraprocedural baseline where it
  // applies (no recursion; §5.1 describes exactly this gap).
  if (R.Rec == 'n') {
    baselines::ClaretForward Forward(Space);
    std::vector<double> FwdPost = Forward.posterior(Main, Prior);
    double MaxDiff = 0.0;
    for (size_t S = 0; S != Post.size(); ++S)
      MaxDiff = std::max(MaxDiff, std::fabs(Post[S] - FwdPost[S]));
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "fwd agrees (max diff %.1e)",
                  MaxDiff);
    R.CrossCheck = Buffer;
  } else {
    R.CrossCheck = "(recursive: beyond the forward baseline)";
  }
  return R;
}

void registerTimingBenchmarks() {
  for (const auto &Bench : benchmarks::biPrograms()) {
    benchmark::RegisterBenchmark(
        (std::string("BI/") + Bench.Name).c_str(),
        [Source = Bench.Source](benchmark::State &State) {
          auto Prog = lang::parseProgramOrDie(Source);
          cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
          BoolStateSpace Space(*Prog);
          BiDomain Dom(Space);
          for (auto _ : State)
            benchmark::DoNotOptimize(analyzeOnce(Graph, Dom));
        })
        ->Unit(benchmark::kMillisecond);
  }
}

} // namespace

int main(int argc, char **argv) {
  BenchJobs = bench::configureJobs(argc, argv);
  std::string JsonPath = bench::extractJsonPath(argc, argv);
  bench::JsonEmitter Json;
  std::printf("Table 2 (top): interprocedural Bayesian inference (§5.1)\n");
  bench::printRule(78);
  std::printf("%-12s %5s %4s %6s %9s  %10s  %s\n", "program", "#loc", "rec",
              "#call", "time(s)", "post.mass", "cross-check");
  bench::printRule(78);
  for (const auto &Bench : benchmarks::biPrograms()) {
    Row R = runProgram(Bench);
    std::printf("%-12s %5u %4c %6u %9.4f  %10.6f  %s\n", R.Name.c_str(),
                R.Loc, R.Rec, R.Calls, R.Seconds, R.PosteriorMass,
                R.CrossCheck.c_str());
    Json.add({R.Name, R.Seconds, R.Stats.NodeUpdates,
              R.Stats.WideningApplications, R.Stats.InterpretCalls,
              R.Stats.InterpretCacheHits});
  }
  bench::printRule(78);
  std::printf("\n");
  if (!Json.writeTo(JsonPath))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());

  registerTimingBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
