//===- support/NumParse.h - Strict numeric string parsing -------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One strict, full-string numeric parser for every user-facing numeric
/// input: CLI flags (`--jobs=`, `--max-updates=`, ...), bench harness
/// flags, daemon protocol fields, and environment variables (PMAF_SEED).
///
/// The atoi/strtoul family these replace silently accepted `abc` (-> 0),
/// `-2` (-> wraparound), and `1e9` (-> 1): a typo'd flag would quietly run
/// a different analysis. Here every malformed value is a parse *failure*
/// the caller must handle — the CLI maps it to a structured diagnostic
/// with the stable code `invalid-flag-value` and exit 2, the daemon to a
/// protocol error reply.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_NUMPARSE_H
#define PMAF_SUPPORT_NUMPARSE_H

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace pmaf {
namespace support {

/// Parses \p Text as an unsigned decimal integer. The *entire* string
/// must be digits: no sign, no whitespace, no exponent, no trailing
/// garbage, and no overflow past uint64. Empty input fails.
inline std::optional<uint64_t> parseUnsigned(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    unsigned Digit = static_cast<unsigned>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return std::nullopt; // Overflow.
    Value = Value * 10 + Digit;
  }
  return Value;
}

/// parseUnsigned restricted to values that fit an `unsigned` (the width
/// of --jobs, --widening-delay, --count, ...).
inline std::optional<unsigned> parseUnsigned32(std::string_view Text) {
  std::optional<uint64_t> Wide = parseUnsigned(Text);
  if (!Wide || *Wide > 0xffffffffull)
    return std::nullopt;
  return static_cast<unsigned>(*Wide);
}

/// Parses \p Text as a finite double. The entire string must be consumed
/// (strtod's syntax: optional sign, decimal or scientific notation);
/// empty input, trailing garbage, leading whitespace, and inf/nan fail.
inline std::optional<double> parseDouble(std::string_view Text) {
  if (Text.empty() || Text.front() == ' ' || Text.front() == '\t')
    return std::nullopt;
  std::string Buffer(Text);
  const char *Begin = Buffer.c_str();
  char *End = nullptr;
  double Value = std::strtod(Begin, &End);
  if (End != Begin + Buffer.size())
    return std::nullopt;
  if (!std::isfinite(Value))
    return std::nullopt;
  return Value;
}

} // namespace support
} // namespace pmaf

#endif // PMAF_SUPPORT_NUMPARSE_H
