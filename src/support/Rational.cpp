//===- support/Rational.cpp - Exact rational numbers ---------------------===//

#include "support/Rational.h"

#include <cassert>

using namespace pmaf;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.sign() < 0) {
    Num = Num.negated();
    Den = Den.negated();
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (G != BigInt(1)) {
    Num = Num.divExact(G);
    Den = Den.divExact(G);
  }
}

Rational Rational::fromString(const std::string &Text) {
  assert(!Text.empty() && "empty rational literal");
  // Forms: [-]int, [-]int/int, [-]int[.frac][e[+-]exp]
  size_t Slash = Text.find('/');
  if (Slash != std::string::npos)
    return Rational(BigInt::fromString(Text.substr(0, Slash)),
                    BigInt::fromString(Text.substr(Slash + 1)));
  size_t E = Text.find_first_of("eE");
  int64_t Exp10 = 0;
  std::string Mantissa = Text;
  if (E != std::string::npos) {
    Exp10 = std::stoll(Text.substr(E + 1));
    Mantissa = Text.substr(0, E);
  }
  size_t Dot = Mantissa.find('.');
  std::string Digits = Mantissa;
  if (Dot != std::string::npos) {
    Digits = Mantissa.substr(0, Dot) + Mantissa.substr(Dot + 1);
    Exp10 -= static_cast<int64_t>(Mantissa.size() - Dot - 1);
  }
  if (Digits.empty() || Digits == "-" || Digits == "+")
    Digits += '0';
  BigInt Numerator = BigInt::fromString(Digits);
  BigInt Denominator(1);
  BigInt Ten(10);
  for (int64_t I = 0; I < Exp10; ++I)
    Numerator *= Ten;
  for (int64_t I = 0; I > Exp10; --I)
    Denominator *= Ten;
  return Rational(Numerator, Denominator);
}

Rational Rational::operator+(const Rational &Other) const {
  return Rational(Num * Other.Den + Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator-(const Rational &Other) const {
  return Rational(Num * Other.Den - Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator*(const Rational &Other) const {
  return Rational(Num * Other.Num, Den * Other.Den);
}

Rational Rational::operator/(const Rational &Other) const {
  assert(!Other.isZero() && "rational division by zero");
  return Rational(Num * Other.Den, Den * Other.Num);
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = Result.Num.negated();
  return Result;
}

Rational &Rational::operator+=(const Rational &Other) {
  *this = *this + Other;
  return *this;
}

Rational &Rational::operator-=(const Rational &Other) {
  *this = *this - Other;
  return *this;
}

Rational &Rational::operator*=(const Rational &Other) {
  *this = *this * Other;
  return *this;
}

Rational &Rational::operator/=(const Rational &Other) {
  *this = *this / Other;
  return *this;
}

int Rational::compare(const Rational &Other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (Num * Other.Den).compare(Other.Num * Den);
}

std::string Rational::toString() const {
  if (isInteger())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
