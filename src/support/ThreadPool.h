//===- support/ThreadPool.h - Locality-aware work-stealing pool -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size work-stealing thread pool for the parallel analysis
/// engine: task submission with futures, a deadlock-free `parallelFor`,
/// and — the locality layer — per-worker deques with component→worker
/// affinity so schedulers can keep a worker's thread-local caches (the
/// Polyhedron conversion memos, the ADD arenas) hot across resubmissions.
///
/// Queueing model (Chase–Lev-style discipline over mutex-guarded deques):
///
///  * every worker owns a bounded deque; the owner pops from the *front*
///    (submission order), thieves steal from the *back*;
///  * `post`/`submit` go to a shared injection queue any worker may take
///    from — the classic FIFO path `parallelFor`, `ParallelBatch::run`,
///    and anonymous tasks use;
///  * `postTo(W, Fn)`/`submitTo(W, Fn)` pin a task to worker W's deque.
///    Pinned (sticky) tasks are skipped by thieves until the owning
///    worker is *saturated* (its deque holds >= SaturationDepth tasks) —
///    a lone pinned task waits for its owner, a backlog spills to idle
///    workers. During shutdown draining, everything is stealable.
///  * a worker with an empty deque takes from the injection queue, then
///    scans the other deques for stealable work, then sleeps.
///
/// Design constraints, in order (unchanged from the single-queue pool):
///
///  * **No waiting inside workers.** Pool tasks (per-SCC stabilization,
///    transformer precompilation, matrix row blocks) never block on other
///    pool tasks; completion is signalled through atomics, so the pool
///    cannot deadlock however tasks are nested.
///  * **Caller participation.** `parallelFor` lets the calling thread claim
///    chunks alongside the workers (work is parcelled out by an atomic
///    cursor, so every index is executed exactly once, by exactly one
///    thread). A pool of size N therefore provides N-way parallelism with
///    the caller counted in, and a loop submitted to a busy or size-1 pool
///    degrades gracefully to sequential execution on the caller.
///  * **Exception transparency.** `submit`/`submitTo` transport exceptions
///    through the returned future; `parallelFor` rethrows the first
///    exception a chunk raised after the loop has quiesced.
///
/// Per-worker accounting (busy time, tasks run, steals, affinity hits) is
/// tallied so the solver can report thread utilization and queueing
/// behaviour (core::SolverStats::ThreadBusySeconds / PoolQueue).
///
/// A process-wide pool (`sharedPool`/`setSharedParallelism`) serves
/// libraries that cannot thread a pool handle through their interface —
/// notably the dense matrix kernels of linalg/Matrix.cpp. It defaults to
/// size 1 (no threads, `sharedPool()` returns nullptr) so sequential
/// builds pay nothing; `--jobs N` CLIs call `setSharedParallelism(N)`.
///
/// `WorkerLocal<T>` is the per-worker arena hook the parallel ADD-backed
/// BI domain builds on: an owner of lazily created per-thread state that
/// works with any mix of pool workers and caller threads (parallelFor's
/// caller lane included), and whose slots the owner can drop between
/// parallel phases.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_THREADPOOL_H
#define PMAF_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace pmaf {
namespace support {

/// A fixed-size pool of worker threads with per-worker stealing deques
/// plus a shared injection queue.
class ThreadPool {
public:
  /// Sentinel "not a worker of this pool" index (currentWorker()) and
  /// "no owner" task tag.
  static constexpr unsigned NoWorker = ~0u;

  /// Pinned tasks become stealable once their owner's deque holds at
  /// least this many tasks (the owner is saturated: it is busy and has a
  /// backlog another worker can shorten).
  static constexpr size_t SaturationDepth = 2;

  /// Per-worker deques are bounded; a `postTo` beyond the bound spills to
  /// the shared injection queue (keeping its owner tag, so the owner
  /// running it still counts as an affinity hit).
  static constexpr size_t DequeBound = 1024;

  /// Spawns \p Threads workers (clamped to at least 1). Workers idle on a
  /// condition variable until tasks arrive.
  explicit ThreadPool(unsigned Threads);

  /// Drains nothing: outstanding tasks finish, queued tasks still run
  /// (pinned tasks become stealable while draining), then the workers
  /// join.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return NumLanes; }

  /// `std::thread::hardware_concurrency`, clamped to at least 1.
  static unsigned hardwareConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Index of the calling thread within this pool, or NoWorker when the
  /// caller is not one of this pool's workers (e.g. the solve
  /// coordinator, or a worker of a different pool).
  unsigned currentWorker() const;

  /// Enqueues \p Fn on the shared injection queue; the future transports
  /// its result or exception. Safe to call from within a pool task (the
  /// queues never block submitters).
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F &&Fn) {
    using R = std::invoke_result_t<F>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    post([Task] { (*Task)(); });
    return Result;
  }

  /// submit() with worker affinity: the task lands on worker
  /// `Worker % size()`'s deque and is preferentially run there.
  template <typename F>
  std::future<std::invoke_result_t<F>> submitTo(unsigned Worker, F &&Fn) {
    using R = std::invoke_result_t<F>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    postTo(Worker, [Task] { (*Task)(); });
    return Result;
  }

  /// Fire-and-forget submission to the shared injection queue (the
  /// parallel scheduler tracks completion itself through atomics;
  /// skipping the future skips an allocation).
  void post(std::function<void()> Fn);

  /// Fire-and-forget submission pinned to worker `Worker % size()`: the
  /// task goes to the back of that worker's deque, the owner pops it in
  /// submission order from the front, and thieves may take it from the
  /// back only once the owner is saturated (SaturationDepth) — the
  /// affinity primitive the per-SCC and intra-component schedulers use to
  /// keep per-thread conversion memos hot.
  void postTo(unsigned Worker, std::function<void()> Fn);

  /// Runs Fn(I) for every I in [Begin, End) across the workers and the
  /// calling thread; every index executes exactly once. Returns when all
  /// indices have finished; rethrows the first chunk exception.
  template <typename F>
  void parallelFor(size_t Begin, size_t End, F &&Fn) {
    parallelForChunks(Begin, End,
                      [&Fn](size_t ChunkBegin, size_t ChunkEnd) {
                        for (size_t I = ChunkBegin; I != ChunkEnd; ++I)
                          Fn(I);
                      });
  }

  /// Chunked variant: Fn(ChunkBegin, ChunkEnd) over a partition of
  /// [Begin, End) into contiguous chunks — the shape the blocked matrix
  /// kernels want (one chunk = one row block).
  template <typename F>
  void parallelForChunks(size_t Begin, size_t End, F &&Fn) {
    if (Begin >= End)
      return;
    const size_t N = End - Begin;
    const unsigned Lanes = size() + 1; // workers + caller
    if (Lanes <= 2 || N == 1) {
      Fn(Begin, End);
      return;
    }
    // ~4 chunks per lane balances load without flooding the queue.
    const size_t Chunk = std::max<size_t>(1, N / (4 * Lanes));
    auto State = std::make_shared<LoopState>();
    State->Next.store(Begin, std::memory_order_relaxed);
    State->End = End;
    const unsigned Helpers = static_cast<unsigned>(
        std::min<size_t>(size(), (N + Chunk - 1) / Chunk));
    State->Pending.store(Helpers, std::memory_order_relaxed);
    auto Drain = [State, Chunk, &Fn] {
      size_t I;
      while ((I = State->Next.fetch_add(Chunk,
                                        std::memory_order_relaxed)) <
             State->End) {
        size_t ChunkEnd = std::min(I + Chunk, State->End);
        try {
          Fn(I, ChunkEnd);
        } catch (...) {
          State->recordException(std::current_exception());
          // Poison the cursor so other lanes stop claiming work.
          State->Next.store(State->End, std::memory_order_relaxed);
        }
      }
    };
    for (unsigned H = 0; H != Helpers; ++H)
      post([State, Drain] {
        Drain();
        if (State->Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(State->DoneMutex);
          State->DoneCv.notify_all();
        }
      });
    Drain(); // The caller is a lane too.
    {
      std::unique_lock<std::mutex> Lock(State->DoneMutex);
      State->DoneCv.wait(Lock, [&State] {
        return State->Pending.load(std::memory_order_acquire) == 0;
      });
    }
    if (State->FirstException)
      std::rethrow_exception(State->FirstException);
  }

  /// Per-worker queueing counters (index = worker number). Approximate:
  /// read without synchronizing against in-flight tasks.
  struct WorkerQueueStats {
    /// Tasks this worker executed (own deque + injection + stolen).
    uint64_t TasksRun = 0;
    /// Tasks this worker took from another worker's deque.
    uint64_t Steals = 0;
    /// Pinned tasks this worker ran as their owner — the affinity
    /// protocol working as intended.
    uint64_t AffinityHits = 0;
    /// Seconds spent executing tasks since construction.
    double BusySeconds = 0.0;
  };
  std::vector<WorkerQueueStats> workerQueueStats() const;

  /// Pool-wide totals of the per-worker counters.
  uint64_t totalTasksRun() const;
  uint64_t totalSteals() const;
  uint64_t totalAffinityHits() const;

  /// Seconds each worker has spent executing tasks since construction
  /// (index = worker number). Approximate: read without synchronizing
  /// against in-flight tasks.
  std::vector<double> workerBusySeconds() const;

  /// Tasks enqueued but not yet finished (queued + executing). Approximate
  /// for observers other than the last submitter: a task's completion
  /// callback may still be unwinding when its count drops.
  uint64_t inFlightTasks() const {
    return InFlight.load(std::memory_order_acquire);
  }

  /// True when no task is queued or executing.
  bool idle() const { return inFlightTasks() == 0; }

private:
  struct LoopState {
    std::atomic<size_t> Next{0};
    size_t End = 0;
    std::atomic<unsigned> Pending{0};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    std::exception_ptr FirstException;
    std::mutex ExceptionMutex;

    void recordException(std::exception_ptr E) {
      std::lock_guard<std::mutex> Lock(ExceptionMutex);
      if (!FirstException)
        FirstException = E;
    }
  };

  /// A queued task: Owner != NoWorker marks it pinned (sticky) to that
  /// worker's deque.
  struct Task {
    std::function<void()> Fn;
    unsigned Owner = NoWorker;
  };

  /// One worker's deque plus its counters, padded out of false sharing
  /// range of its neighbours.
  struct alignas(64) Lane {
    mutable std::mutex Mutex;
    std::deque<Task> Deque;
    /// This worker's parking spot, plus whether it is parked. Both are
    /// guarded by the pool-wide SleepMutex (NOT by Lane::Mutex): wakeups
    /// are targeted per lane, so an enqueue wakes only the workers that
    /// can actually run the new task instead of thundering the whole
    /// pool awake — on an oversubscribed machine the futile
    /// wake→scan→sleep round trips would otherwise dominate small
    /// solves.
    std::condition_variable SleepCv;
    bool Asleep = false;
    std::atomic<uint64_t> BusyNanos{0};
    std::atomic<uint64_t> TasksRun{0};
    std::atomic<uint64_t> Steals{0};
    std::atomic<uint64_t> AffinityHits{0};
  };

  /// Takes the next task for worker \p Self: own deque front, then the
  /// injection queue, then a steal from the back of another lane.
  bool findTask(unsigned Self, Task &Out, bool &Stolen);
  void execute(unsigned Self, Task T, bool Stolen);
  void workerMain(unsigned Index);
  /// Wakes worker \p Worker if it is parked (a pinned task landed on its
  /// deque — only the owner may run it while unsaturated).
  void wakeWorker(unsigned Worker);
  /// Wakes one parked worker, any of them (an injected task landed, or a
  /// deque crossed the saturation threshold and became stealable).
  void wakeOneSleeper();

  unsigned NumLanes = 0;
  std::unique_ptr<Lane[]> Lanes;
  /// Sleep coordination: workers re-scan under SleepMutex before waiting,
  /// and every enqueue acquires it before notifying, so wakeups cannot be
  /// lost. Stopping flips under the same mutex. The per-lane SleepCv /
  /// Asleep fields are guarded by this mutex too.
  std::mutex SleepMutex;
  std::atomic<bool> Stopping{false};
  mutable std::mutex InjectedMutex;
  std::deque<Task> Injected;
  std::vector<std::thread> Threads;
  /// Enqueued-but-unfinished task count (see inFlightTasks()).
  std::atomic<uint64_t> InFlight{0};
};

/// A reusable fan-out/barrier primitive over a ThreadPool: `run(N, Fn)`
/// executes Fn(0) … Fn(N-1) across the pool workers and the calling
/// thread, and returns only once all N indices have finished — the
/// barrier the intra-component parallel scheduler puts between
/// conflict-free batches. One instance may be reused across many runs
/// (the synchronization state is recycled; no allocation per run).
///
/// Two dispatch modes:
///  * `run` — anonymous: helpers drain a shared atomic cursor, any lane
///    may claim any index (maximum balance, no locality);
///  * `runSticky` — affinity: index I is pinned to lane I % (workers+1),
///    the last lane being the caller, and posted to the owning worker's
///    deque. Because the pinning is a pure function of the index, the
///    same unit lands on the same worker on every pass — the per-thread
///    conversion memos stay hot across outer WTO re-iterations — while
///    the pool's saturation stealing still rebalances a backlogged
///    worker.
///
/// Deadlock discipline: only the *caller* ever waits at the barrier;
/// helpers posted to the pool drain their work and leave. `run` must
/// therefore not be called from inside a pool task of the same pool (a
/// worker waiting at the barrier could starve the very helpers it waits
/// for). The analysis engine calls it from the solve coordinator only.
///
/// Exceptions: the first exception an index raises is rethrown from
/// `run`/`runSticky` after the batch has quiesced; `run` poisons the
/// cursor so other lanes stop claiming work (`runSticky` units are
/// pre-assigned, so the remaining units still execute).
class ParallelBatch {
public:
  explicit ParallelBatch(ThreadPool &Pool) : Pool(Pool) {}
  ParallelBatch(const ParallelBatch &) = delete;
  ParallelBatch &operator=(const ParallelBatch &) = delete;

  /// Runs the batch; returns the seconds the caller spent waiting at the
  /// barrier after running out of indices to claim (the scheduler's
  /// imbalance measure). Singleton or empty batches run inline and wait
  /// for nothing.
  template <typename F> double run(size_t Count, F &&Fn) {
    const unsigned Helpers = static_cast<unsigned>(
        std::min<size_t>(Pool.size(), Count ? Count - 1 : 0));
    if (Helpers == 0) {
      for (size_t I = 0; I != Count; ++I)
        Fn(I);
      return 0.0;
    }
    Next.store(0, std::memory_order_relaxed);
    End = Count;
    FirstException = nullptr;
    Pending.store(Helpers, std::memory_order_release);
    auto Drain = [this, &Fn] {
      size_t I;
      while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < End) {
        try {
          Fn(I);
        } catch (...) {
          recordException(std::current_exception());
          Next.store(End, std::memory_order_relaxed); // Poison the cursor.
        }
      }
    };
    for (unsigned H = 0; H != Helpers; ++H)
      Pool.post([this, Drain] {
        Drain();
        if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          DoneCv.notify_all();
        }
      });
    Drain(); // The caller is a lane too.
    return waitAndRethrow();
  }

  /// The affinity variant: unit I runs on lane I % (workers + 1) — lane
  /// `workers` being the caller — with worker units posted sticky via
  /// postTo. Same barrier and exception contract as run(); singleton or
  /// empty batches run inline.
  template <typename F> double runSticky(size_t Count, F &&Fn) {
    const unsigned Workers = Pool.size();
    if (Count <= 1 || Workers == 0) {
      for (size_t I = 0; I != Count; ++I)
        Fn(I);
      return 0.0;
    }
    const unsigned LaneCount = Workers + 1;
    FirstException = nullptr;
    // Worker units: all I with I % LaneCount != Workers (lane `Workers`
    // is the caller's).
    unsigned WorkerUnits = 0;
    for (size_t I = 0; I != Count; ++I)
      WorkerUnits += (I % LaneCount) != Workers;
    Pending.store(WorkerUnits, std::memory_order_release);
    for (size_t I = 0; I != Count; ++I) {
      const unsigned Lane = static_cast<unsigned>(I % LaneCount);
      if (Lane == Workers)
        continue; // The caller's units run below, after the fan-out.
      Pool.postTo(Lane, [this, I, &Fn] {
        try {
          Fn(I);
        } catch (...) {
          recordException(std::current_exception());
        }
        if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          DoneCv.notify_all();
        }
      });
    }
    for (size_t I = Workers; I < Count; I += LaneCount) {
      try {
        Fn(I);
      } catch (...) {
        recordException(std::current_exception());
      }
    }
    return waitAndRethrow();
  }

private:
  void recordException(std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(ExceptionMutex);
    if (!FirstException)
      FirstException = E;
  }

  /// Waits for the helper lanes, rethrows the first captured exception,
  /// and returns the seconds spent waiting.
  double waitAndRethrow() {
    auto WaitStart = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> Lock(DoneMutex);
      DoneCv.wait(Lock, [this] {
        return Pending.load(std::memory_order_acquire) == 0;
      });
    }
    double Waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - WaitStart)
                        .count();
    if (FirstException)
      std::rethrow_exception(FirstException);
    return Waited;
  }

  ThreadPool &Pool;
  std::atomic<size_t> Next{0};
  size_t End = 0;
  std::atomic<unsigned> Pending{0};
  std::mutex DoneMutex;
  std::condition_variable DoneCv;
  std::mutex ExceptionMutex;
  std::exception_ptr FirstException;
};

namespace detail {
/// Process-unique ids for WorkerLocal sets (never reused, so a stale
/// thread-local cache entry for a destroyed set can never alias a live
/// one).
uint64_t nextWorkerLocalId();
} // namespace detail

/// Owner of lazily created per-thread state: the first `get()` on each
/// thread creates that thread's slot through the supplied factory; later
/// `get()`s on the same thread return the same slot through a
/// thread-local cache (one hash probe, no lock). Slots are owned by the
/// WorkerLocal — they outlive their creating threads (a pool may join its
/// workers while the owner still wants the slots' contents) and die with
/// the set or on `reset()`.
///
/// This is the per-worker arena hook of the parallel analysis engine:
/// AddBiDomain keys its thread-local AddManager arenas off one
/// WorkerLocal per domain instance, and `reset()` between parallel phases
/// drops arenas whose threads (per-solve pool workers) are gone.
///
/// Thread safety: concurrent `get()` calls from distinct threads are
/// safe. `reset()` and destruction require that no thread is concurrently
/// calling `get()` or using a previously returned slot — the engine
/// guarantees that by resetting only after its pools have quiesced.
/// Stale cache entries (set destroyed or reset while a thread's cache
/// still points at a dropped slot) are detected by an epoch stamp and
/// refreshed on the next `get()`.
template <typename T> class WorkerLocal {
public:
  WorkerLocal() : Id(detail::nextWorkerLocalId()) {}
  WorkerLocal(const WorkerLocal &) = delete;
  WorkerLocal &operator=(const WorkerLocal &) = delete;

  /// This thread's slot, created by `Make()` (returning std::unique_ptr<T>)
  /// on first use per (thread, epoch).
  template <typename MakeFn> T &get(MakeFn &&Make) {
    struct CacheEntry {
      uint64_t Epoch = 0;
      T *Slot = nullptr;
    };
    thread_local std::unordered_map<uint64_t, CacheEntry> Cache;
    uint64_t Now = Epoch.load(std::memory_order_acquire);
    CacheEntry &Entry = Cache[Id];
    if (Entry.Slot && Entry.Epoch == Now)
      return *Entry.Slot;
    std::unique_ptr<T> Fresh = Make();
    T *Raw = Fresh.get();
    {
      std::lock_guard<std::mutex> Lock(SlotsMutex);
      Slots.push_back(std::move(Fresh));
      ++Created;
    }
    Entry = {Now, Raw};
    return *Raw;
  }

  /// Drops every slot and invalidates all thread-local caches. Callers
  /// must ensure no thread concurrently holds or requests a slot.
  void reset() {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    Epoch.fetch_add(1, std::memory_order_acq_rel);
    Slots.clear();
  }

  /// Live slots (threads that called get() since the last reset).
  size_t slotCount() const {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    return Slots.size();
  }

  /// Slots created over the set's lifetime (across resets).
  uint64_t createdCount() const {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    return Created;
  }

  /// Visits every live slot under the set's lock; same quiescence
  /// requirement as reset().
  template <typename F> void forEach(F &&Fn) {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    for (auto &Slot : Slots)
      Fn(*Slot);
  }

private:
  uint64_t Id;
  std::atomic<uint64_t> Epoch{0};
  mutable std::mutex SlotsMutex;
  std::vector<std::unique_ptr<T>> Slots;
  uint64_t Created = 0;
};

/// The process-wide pool used by code that cannot accept a pool parameter
/// (the matrix kernels). nullptr until `setSharedParallelism(N)` with
/// N > 1; the final instance is leaked so its idle workers never race
/// static teardown.
ThreadPool *sharedPool();

/// Sets the shared parallelism level. N == 1 disables the shared pool;
/// N == 0 means one worker per hardware thread; N > 1 (re)creates the
/// pool with N workers. Returns false — keeping the existing pool — when
/// the shared pool still has tasks in flight after a short grace period:
/// recreating it out from under a running solve would hand its users a
/// dangling pointer. Not otherwise thread-safe against concurrent
/// sharedPool() users — call it at startup or between solves (the
/// `--jobs` handlers do).
///
/// With \p WhyRefused non-null a refusal is *observable*: the reason is
/// written there (and nothing is printed), so long-lived callers — the
/// pmafd `configure` handler — can report a structured error instead of
/// a success the stats then contradict. With WhyRefused null the refusal
/// is logged to stderr, the historical CLI behavior. Between requests
/// (pool idle) the resize always succeeds.
bool setSharedParallelism(unsigned N);
bool setSharedParallelism(unsigned N, std::string *WhyRefused);

/// The currently configured shared parallelism (1 when disabled).
unsigned sharedParallelism();

} // namespace support
} // namespace pmaf

#endif // PMAF_SUPPORT_THREADPOOL_H
