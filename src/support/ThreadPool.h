//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for the parallel analysis engine: task
/// submission with futures, and a deadlock-free `parallelFor`.
///
/// Design constraints, in order:
///
///  * **No waiting inside workers.** Pool tasks (per-SCC stabilization,
///    transformer precompilation, matrix row blocks) never block on other
///    pool tasks; completion is signalled through atomics, so the pool
///    cannot deadlock however tasks are nested.
///  * **Caller participation.** `parallelFor` lets the calling thread claim
///    chunks alongside the workers (work is parcelled out by an atomic
///    cursor, so every index is executed exactly once, by exactly one
///    thread). A pool of size N therefore provides N-way parallelism with
///    the caller counted in, and a loop submitted to a busy or size-1 pool
///    degrades gracefully to sequential execution on the caller.
///  * **Exception transparency.** `submit` transports exceptions through
///    the returned future; `parallelFor` rethrows the first exception a
///    chunk raised after the loop has quiesced.
///
/// Per-worker busy time is tallied so the solver can report thread
/// utilization (core::SolverStats::ThreadBusySeconds).
///
/// A process-wide pool (`sharedPool`/`setSharedParallelism`) serves
/// libraries that cannot thread a pool handle through their interface —
/// notably the dense matrix kernels of linalg/Matrix.cpp. It defaults to
/// size 1 (no threads, `sharedPool()` returns nullptr) so sequential
/// builds pay nothing; `--jobs N` CLIs call `setSharedParallelism(N)`.
///
/// `WorkerLocal<T>` is the per-worker arena hook the parallel ADD-backed
/// BI domain builds on: an owner of lazily created per-thread state that
/// works with any mix of pool workers and caller threads (parallelFor's
/// caller lane included), and whose slots the owner can drop between
/// parallel phases.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_THREADPOOL_H
#define PMAF_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pmaf {
namespace support {

/// A fixed-size pool of worker threads with a shared FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Threads workers (clamped to at least 1). Workers idle on a
  /// condition variable until tasks arrive.
  explicit ThreadPool(unsigned Threads);

  /// Drains nothing: outstanding tasks finish, queued tasks still run, then
  /// the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// `std::thread::hardware_concurrency`, clamped to at least 1.
  static unsigned hardwareConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Enqueues \p Fn; the future transports its result or exception. Safe to
  /// call from within a pool task (the queue never blocks submitters).
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F &&Fn) {
    using R = std::invoke_result_t<F>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Result;
  }

  /// Fire-and-forget submission (the parallel scheduler tracks completion
  /// itself through atomics; skipping the future skips an allocation).
  void post(std::function<void()> Fn) { enqueue(std::move(Fn)); }

  /// Runs Fn(I) for every I in [Begin, End) across the workers and the
  /// calling thread; every index executes exactly once. Returns when all
  /// indices have finished; rethrows the first chunk exception.
  template <typename F>
  void parallelFor(size_t Begin, size_t End, F &&Fn) {
    parallelForChunks(Begin, End,
                      [&Fn](size_t ChunkBegin, size_t ChunkEnd) {
                        for (size_t I = ChunkBegin; I != ChunkEnd; ++I)
                          Fn(I);
                      });
  }

  /// Chunked variant: Fn(ChunkBegin, ChunkEnd) over a partition of
  /// [Begin, End) into contiguous chunks — the shape the blocked matrix
  /// kernels want (one chunk = one row block).
  template <typename F>
  void parallelForChunks(size_t Begin, size_t End, F &&Fn) {
    if (Begin >= End)
      return;
    const size_t N = End - Begin;
    const unsigned Lanes = size() + 1; // workers + caller
    if (Lanes <= 2 || N == 1) {
      Fn(Begin, End);
      return;
    }
    // ~4 chunks per lane balances load without flooding the queue.
    const size_t Chunk = std::max<size_t>(1, N / (4 * Lanes));
    auto State = std::make_shared<LoopState>();
    State->Next.store(Begin, std::memory_order_relaxed);
    State->End = End;
    const unsigned Helpers = static_cast<unsigned>(
        std::min<size_t>(size(), (N + Chunk - 1) / Chunk));
    State->Pending.store(Helpers, std::memory_order_relaxed);
    auto Drain = [State, Chunk, &Fn] {
      size_t I;
      while ((I = State->Next.fetch_add(Chunk,
                                        std::memory_order_relaxed)) <
             State->End) {
        size_t ChunkEnd = std::min(I + Chunk, State->End);
        try {
          Fn(I, ChunkEnd);
        } catch (...) {
          State->recordException(std::current_exception());
          // Poison the cursor so other lanes stop claiming work.
          State->Next.store(State->End, std::memory_order_relaxed);
        }
      }
    };
    for (unsigned H = 0; H != Helpers; ++H)
      enqueue([State, Drain] {
        Drain();
        if (State->Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(State->DoneMutex);
          State->DoneCv.notify_all();
        }
      });
    Drain(); // The caller is a lane too.
    {
      std::unique_lock<std::mutex> Lock(State->DoneMutex);
      State->DoneCv.wait(Lock, [&State] {
        return State->Pending.load(std::memory_order_acquire) == 0;
      });
    }
    if (State->FirstException)
      std::rethrow_exception(State->FirstException);
  }

  /// Seconds each worker has spent executing tasks since construction
  /// (index = worker number). Approximate: read without synchronizing
  /// against in-flight tasks.
  std::vector<double> workerBusySeconds() const;

  /// Tasks enqueued but not yet finished (queued + executing). Approximate
  /// for observers other than the last submitter: a task's completion
  /// callback may still be unwinding when its count drops.
  uint64_t inFlightTasks() const {
    return InFlight.load(std::memory_order_acquire);
  }

  /// True when no task is queued or executing.
  bool idle() const { return inFlightTasks() == 0; }

private:
  struct LoopState {
    std::atomic<size_t> Next{0};
    size_t End = 0;
    std::atomic<unsigned> Pending{0};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    std::exception_ptr FirstException;
    std::mutex ExceptionMutex;

    void recordException(std::exception_ptr E) {
      std::lock_guard<std::mutex> Lock(ExceptionMutex);
      if (!FirstException)
        FirstException = E;
    }
  };

  void enqueue(std::function<void()> Fn);
  void workerMain(unsigned Index);

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
  std::vector<std::thread> Workers;
  /// Busy-nanosecond tally per worker, padded out of false sharing range.
  struct alignas(64) BusyCounter {
    std::atomic<uint64_t> Nanos{0};
  };
  std::unique_ptr<BusyCounter[]> Busy;
  /// Enqueued-but-unfinished task count (see inFlightTasks()).
  std::atomic<uint64_t> InFlight{0};
};

/// A reusable fan-out/barrier primitive over a ThreadPool: `run(N, Fn)`
/// executes Fn(0) … Fn(N-1) across the pool workers and the calling
/// thread, and returns only once all N indices have finished — the
/// barrier the intra-component parallel scheduler puts between
/// conflict-free batches. One instance may be reused across many runs
/// (the synchronization state is recycled; no allocation per run).
///
/// Deadlock discipline: only the *caller* ever waits at the barrier;
/// helpers posted to the pool drain the shared index cursor and leave.
/// `run` must therefore not be called from inside a pool task of the
/// same pool (a worker waiting at the barrier could starve the very
/// helpers it waits for). The analysis engine calls it from the solve
/// coordinator only.
///
/// Exceptions: the first exception an index raises is rethrown from
/// `run` after the batch has quiesced; the cursor is poisoned so other
/// lanes stop claiming work.
class ParallelBatch {
public:
  explicit ParallelBatch(ThreadPool &Pool) : Pool(Pool) {}
  ParallelBatch(const ParallelBatch &) = delete;
  ParallelBatch &operator=(const ParallelBatch &) = delete;

  /// Runs the batch; returns the seconds the caller spent waiting at the
  /// barrier after running out of indices to claim (the scheduler's
  /// imbalance measure). Singleton or empty batches run inline and wait
  /// for nothing.
  template <typename F> double run(size_t Count, F &&Fn) {
    const unsigned Helpers = static_cast<unsigned>(
        std::min<size_t>(Pool.size(), Count ? Count - 1 : 0));
    if (Helpers == 0) {
      for (size_t I = 0; I != Count; ++I)
        Fn(I);
      return 0.0;
    }
    Next.store(0, std::memory_order_relaxed);
    End = Count;
    FirstException = nullptr;
    Pending.store(Helpers, std::memory_order_release);
    auto Drain = [this, &Fn] {
      size_t I;
      while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < End) {
        try {
          Fn(I);
        } catch (...) {
          recordException(std::current_exception());
          Next.store(End, std::memory_order_relaxed); // Poison the cursor.
        }
      }
    };
    for (unsigned H = 0; H != Helpers; ++H)
      Pool.post([this, Drain] {
        Drain();
        if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          DoneCv.notify_all();
        }
      });
    Drain(); // The caller is a lane too.
    auto WaitStart = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> Lock(DoneMutex);
      DoneCv.wait(Lock, [this] {
        return Pending.load(std::memory_order_acquire) == 0;
      });
    }
    double Waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - WaitStart)
                        .count();
    if (FirstException)
      std::rethrow_exception(FirstException);
    return Waited;
  }

private:
  void recordException(std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(ExceptionMutex);
    if (!FirstException)
      FirstException = E;
  }

  ThreadPool &Pool;
  std::atomic<size_t> Next{0};
  size_t End = 0;
  std::atomic<unsigned> Pending{0};
  std::mutex DoneMutex;
  std::condition_variable DoneCv;
  std::mutex ExceptionMutex;
  std::exception_ptr FirstException;
};

namespace detail {
/// Process-unique ids for WorkerLocal sets (never reused, so a stale
/// thread-local cache entry for a destroyed set can never alias a live
/// one).
uint64_t nextWorkerLocalId();
} // namespace detail

/// Owner of lazily created per-thread state: the first `get()` on each
/// thread creates that thread's slot through the supplied factory; later
/// `get()`s on the same thread return the same slot through a
/// thread-local cache (one hash probe, no lock). Slots are owned by the
/// WorkerLocal — they outlive their creating threads (a pool may join its
/// workers while the owner still wants the slots' contents) and die with
/// the set or on `reset()`.
///
/// This is the per-worker arena hook of the parallel analysis engine:
/// AddBiDomain keys its thread-local AddManager arenas off one
/// WorkerLocal per domain instance, and `reset()` between parallel phases
/// drops arenas whose threads (per-solve pool workers) are gone.
///
/// Thread safety: concurrent `get()` calls from distinct threads are
/// safe. `reset()` and destruction require that no thread is concurrently
/// calling `get()` or using a previously returned slot — the engine
/// guarantees that by resetting only after its pools have quiesced.
/// Stale cache entries (set destroyed or reset while a thread's cache
/// still points at a dropped slot) are detected by an epoch stamp and
/// refreshed on the next `get()`.
template <typename T> class WorkerLocal {
public:
  WorkerLocal() : Id(detail::nextWorkerLocalId()) {}
  WorkerLocal(const WorkerLocal &) = delete;
  WorkerLocal &operator=(const WorkerLocal &) = delete;

  /// This thread's slot, created by `Make()` (returning std::unique_ptr<T>)
  /// on first use per (thread, epoch).
  template <typename MakeFn> T &get(MakeFn &&Make) {
    struct CacheEntry {
      uint64_t Epoch = 0;
      T *Slot = nullptr;
    };
    thread_local std::unordered_map<uint64_t, CacheEntry> Cache;
    uint64_t Now = Epoch.load(std::memory_order_acquire);
    CacheEntry &Entry = Cache[Id];
    if (Entry.Slot && Entry.Epoch == Now)
      return *Entry.Slot;
    std::unique_ptr<T> Fresh = Make();
    T *Raw = Fresh.get();
    {
      std::lock_guard<std::mutex> Lock(SlotsMutex);
      Slots.push_back(std::move(Fresh));
      ++Created;
    }
    Entry = {Now, Raw};
    return *Raw;
  }

  /// Drops every slot and invalidates all thread-local caches. Callers
  /// must ensure no thread concurrently holds or requests a slot.
  void reset() {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    Epoch.fetch_add(1, std::memory_order_acq_rel);
    Slots.clear();
  }

  /// Live slots (threads that called get() since the last reset).
  size_t slotCount() const {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    return Slots.size();
  }

  /// Slots created over the set's lifetime (across resets).
  uint64_t createdCount() const {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    return Created;
  }

  /// Visits every live slot under the set's lock; same quiescence
  /// requirement as reset().
  template <typename F> void forEach(F &&Fn) {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    for (auto &Slot : Slots)
      Fn(*Slot);
  }

private:
  uint64_t Id;
  std::atomic<uint64_t> Epoch{0};
  mutable std::mutex SlotsMutex;
  std::vector<std::unique_ptr<T>> Slots;
  uint64_t Created = 0;
};

/// The process-wide pool used by code that cannot accept a pool parameter
/// (the matrix kernels). nullptr until `setSharedParallelism(N)` with
/// N > 1; the final instance is leaked so its idle workers never race
/// static teardown.
ThreadPool *sharedPool();

/// Sets the shared parallelism level. N == 1 disables the shared pool;
/// N == 0 means one worker per hardware thread; N > 1 (re)creates the
/// pool with N workers. Returns false — keeping the existing pool — when
/// the shared pool still has tasks in flight after a short grace period:
/// recreating it out from under a running solve would hand its users a
/// dangling pointer. Not otherwise thread-safe against concurrent
/// sharedPool() users — call it at startup or between solves (the
/// `--jobs` handlers do).
bool setSharedParallelism(unsigned N);

/// The currently configured shared parallelism (1 when disabled).
unsigned sharedParallelism();

} // namespace support
} // namespace pmaf

#endif // PMAF_SUPPORT_THREADPOOL_H
