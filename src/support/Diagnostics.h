//===- support/Diagnostics.h - Diagnostics engine ---------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable diagnostics engine shared by the lexer, parser, semantic lint
/// passes, and domain-precondition checks: every layer reports through one
/// channel, so the user always sees `file:line:col: severity: message
/// [code]` with a caret rendering against the original source buffer.
///
/// Diagnostics carry a stable machine-readable code (kebab-case, e.g.
/// "prob-range") so tests and tooling can match on kind rather than on
/// message wording; `DiagnosticEngine::renderJson` emits the whole batch in
/// a machine-readable form for editor/CI integration.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_DIAGNOSTICS_H
#define PMAF_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace pmaf {

/// A position in a source buffer. Lines and columns are 1-based; a
/// default-constructed location (line 0) means "unknown" and suppresses
/// the caret rendering.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }

  /// Lexicographic order, unknown locations first.
  bool operator<(const SourceLoc &Other) const {
    return Line != Other.Line ? Line < Other.Line : Col < Other.Col;
  }
  bool operator==(const SourceLoc &Other) const {
    return Line == Other.Line && Col == Other.Col;
  }
};

/// Diagnostic severity. Notes never appear top-level; they are attached to
/// a warning or error to point at related source (e.g. a previous
/// declaration).
enum class Severity { Note, Warning, Error };

const char *toString(Severity Sev);

/// One diagnostic: severity, stable code, message, location, and attached
/// notes.
struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string Code;    ///< Stable machine code, e.g. "prob-range".
  std::string Message; ///< Human-readable, no trailing newline.
  SourceLoc Loc;
  std::vector<Diagnostic> Notes;

  Diagnostic &addNote(SourceLoc NoteLoc, std::string NoteMessage);
};

/// Collects diagnostics against one source buffer and renders them.
///
/// Typical use:
/// \code
///   DiagnosticEngine DE;
///   DE.setSource("prog.pp", Source);
///   DE.setWarningsAsErrors(Werror);
///   ... passes call DE.report(...) ...
///   std::fputs(DE.renderAll().c_str(), stderr);
///   if (DE.errorCount()) return 1;
/// \endcode
class DiagnosticEngine {
public:
  DiagnosticEngine() = default;

  /// Associates the engine with a named source buffer; the buffer is
  /// copied so caret rendering stays valid after the caller's string dies.
  void setSource(std::string FileName, std::string Buffer);

  const std::string &fileName() const { return File; }

  /// When set, subsequently reported warnings are promoted to errors
  /// (the `--werror` switch).
  void setWarningsAsErrors(bool Enable) { WarningsAsErrors = Enable; }

  /// Reports a diagnostic; returns a reference valid until the next
  /// report, for attaching notes.
  Diagnostic &report(Severity Sev, SourceLoc Loc, std::string Code,
                     std::string Message);

  /// Moves an already-built diagnostic into the engine (applies the
  /// warnings-as-errors promotion and counting).
  Diagnostic &report(Diagnostic Diag);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// Stable-sorts the batch by source location (unknown locations first).
  void sortByLocation();

  /// Renders one diagnostic in caret style:
  /// \code
  ///   prog.pp:3:11: error: probability must lie in [0, 1] [prob-range]
  ///     if prob(1.5) { skip; }
  ///             ^
  /// \endcode
  /// Notes follow, indented the same way. The source excerpt is omitted
  /// when the location is unknown or out of range of the buffer.
  std::string render(const Diagnostic &Diag) const;

  /// Renders every diagnostic plus a trailing "N errors, M warnings"
  /// summary line (omitted when the batch is empty).
  std::string renderAll() const;

  /// Machine-readable rendering of the whole batch:
  /// \code
  ///   {"file": "prog.pp",
  ///    "diagnostics": [{"line": 3, "col": 11, "severity": "error",
  ///                     "code": "prob-range", "message": "...",
  ///                     "notes": [...]}, ...],
  ///    "errors": 1, "warnings": 0}
  /// \endcode
  std::string renderJson() const;

private:
  std::string renderOne(const Diagnostic &Diag, bool IsNote) const;

  std::string File = "<input>";
  std::string Buffer;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
  bool WarningsAsErrors = false;
};

} // namespace pmaf

#endif // PMAF_SUPPORT_DIAGNOSTICS_H
