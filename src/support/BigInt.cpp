//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//

#include "support/BigInt.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace pmaf;

//===----------------------------------------------------------------------===//
// Representation plumbing
//===----------------------------------------------------------------------===//

static uint64_t absOfInt64(int64_t V) {
  return V < 0 ? ~static_cast<uint64_t>(V) + 1 : static_cast<uint64_t>(V);
}

std::vector<uint32_t> BigInt::smallMag() const {
  assert(IsSmall && "smallMag on a large value");
  uint64_t Abs = absOfInt64(Small);
  std::vector<uint32_t> Result;
  if (Abs == 0)
    return Result;
  Result.push_back(static_cast<uint32_t>(Abs & 0xffffffffu));
  if (Abs >> 32)
    Result.push_back(static_cast<uint32_t>(Abs >> 32));
  return Result;
}

BigInt BigInt::makeLarge(int Sign, std::vector<uint32_t> Mag) {
  trim(Mag);
  BigInt Result;
  if (Mag.empty())
    return Result;
  // Demote to the small representation when the value fits in int64_t.
  if (Mag.size() <= 2) {
    uint64_t Abs = Mag[0];
    if (Mag.size() == 2)
      Abs |= static_cast<uint64_t>(Mag[1]) << 32;
    if (Sign > 0 ? Abs < (1ull << 63) : Abs <= (1ull << 63)) {
      Result.Small = Sign > 0 ? static_cast<int64_t>(Abs)
                              : static_cast<int64_t>(~Abs + 1);
      return Result;
    }
  }
  Result.IsSmall = false;
  Result.LargeSign = Sign;
  Result.Mag = std::move(Mag);
  return Result;
}

//===----------------------------------------------------------------------===//
// Magnitude helpers
//===----------------------------------------------------------------------===//

void BigInt::trim(std::vector<uint32_t> &Mag) {
  while (!Mag.empty() && Mag.back() == 0)
    Mag.pop_back();
}

int BigInt::compareMag(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> BigInt::addMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Long = A.size() >= B.size() ? A : B;
  const std::vector<uint32_t> &Short = A.size() >= B.size() ? B : A;
  std::vector<uint32_t> Result;
  Result.reserve(Long.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I != Long.size(); ++I) {
    uint64_t Sum = Carry + Long[I] + (I < Short.size() ? Short[I] : 0);
    Result.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

std::vector<uint32_t> BigInt::subMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  assert(compareMag(A, B) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I != A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += int64_t(1) << 32;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  trim(Result);
  return Result;
}

std::vector<uint32_t> BigInt::mulMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> Result(A.size() + B.size(), 0);
  for (size_t I = 0; I != A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J != B.size(); ++J) {
      uint64_t Cur =
          Result[I + J] + static_cast<uint64_t>(A[I]) * B[J] + Carry;
      Result[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
      ++K;
    }
  }
  trim(Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

BigInt BigInt::fromString(const std::string &Text) {
  assert(!Text.empty() && "empty big-integer literal");
  size_t I = 0;
  bool Negative = false;
  if (Text[0] == '-' || Text[0] == '+') {
    Negative = Text[0] == '-';
    I = 1;
  }
  assert(I < Text.size() && "sign-only big-integer literal");
  BigInt Result;
  for (; I != Text.size(); ++I) {
    assert(Text[I] >= '0' && Text[I] <= '9' && "bad digit in literal");
    Result = Result * BigInt(10) + BigInt(Text[I] - '0');
  }
  return Negative ? Result.negated() : Result;
}

int64_t BigInt::toInt64() const {
  assert(IsSmall && "value does not fit in int64_t");
  return Small;
}

double BigInt::toDouble() const {
  if (IsSmall)
    return static_cast<double>(Small);
  double Result = 0.0;
  for (size_t I = Mag.size(); I-- > 0;)
    Result = Result * 4294967296.0 + static_cast<double>(Mag[I]);
  return LargeSign < 0 ? -Result : Result;
}

std::string BigInt::toString() const {
  if (IsSmall)
    return std::to_string(Small);
  // Repeatedly divide the magnitude by 1e9 and collect 9-digit chunks.
  std::vector<uint32_t> Work = Mag;
  std::string Digits;
  while (!Work.empty()) {
    uint64_t Rem = 0;
    for (size_t I = Work.size(); I-- > 0;) {
      uint64_t Cur = (Rem << 32) | Work[I];
      Work[I] = static_cast<uint32_t>(Cur / 1000000000u);
      Rem = Cur % 1000000000u;
    }
    trim(Work);
    for (int K = 0; K != 9; ++K) {
      Digits.push_back(static_cast<char>('0' + Rem % 10));
      Rem /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (LargeSign < 0)
    Digits.push_back('-');
  return std::string(Digits.rbegin(), Digits.rend());
}

//===----------------------------------------------------------------------===//
// Sign-level operations
//===----------------------------------------------------------------------===//

BigInt BigInt::abs() const {
  if (IsSmall) {
    if (Small != INT64_MIN)
      return BigInt(Small < 0 ? -Small : Small);
    return makeLarge(1, smallMag());
  }
  BigInt Result = *this;
  Result.LargeSign = 1;
  return Result;
}

BigInt BigInt::negated() const {
  if (IsSmall) {
    if (Small != INT64_MIN)
      return BigInt(-Small);
    return makeLarge(1, smallMag());
  }
  BigInt Result = *this;
  Result.LargeSign = -Result.LargeSign;
  return Result;
}

int BigInt::compare(const BigInt &Other) const {
  if (IsSmall && Other.IsSmall)
    return Small < Other.Small ? -1 : (Small > Other.Small ? 1 : 0);
  int SignA = sign(), SignB = Other.sign();
  if (SignA != SignB)
    return SignA < SignB ? -1 : 1;
  // Same sign, at least one large. A large value never fits in int64, so
  // a small operand always has the smaller magnitude.
  if (IsSmall)
    return SignA > 0 ? -1 : 1;
  if (Other.IsSmall)
    return SignA > 0 ? 1 : -1;
  int MagCmp = compareMag(Mag, Other.Mag);
  return SignA > 0 ? MagCmp : -MagCmp;
}

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

BigInt BigInt::addSlow(const BigInt &A, const BigInt &B) {
  int SignA = A.sign(), SignB = B.sign();
  if (SignA == 0)
    return B;
  if (SignB == 0)
    return A;
  std::vector<uint32_t> MagA = A.magnitude(), MagB = B.magnitude();
  if (SignA == SignB)
    return makeLarge(SignA, addMag(MagA, MagB));
  int MagCmp = compareMag(MagA, MagB);
  if (MagCmp == 0)
    return BigInt();
  if (MagCmp > 0)
    return makeLarge(SignA, subMag(MagA, MagB));
  return makeLarge(SignB, subMag(MagB, MagA));
}

BigInt BigInt::operator+(const BigInt &Other) const {
  if (IsSmall && Other.IsSmall) {
    int64_t Sum;
    if (!__builtin_add_overflow(Small, Other.Small, &Sum))
      return BigInt(Sum);
  }
  return addSlow(*this, Other);
}

BigInt BigInt::operator-(const BigInt &Other) const {
  if (IsSmall && Other.IsSmall) {
    int64_t Diff;
    if (!__builtin_sub_overflow(Small, Other.Small, &Diff))
      return BigInt(Diff);
  }
  return addSlow(*this, Other.negated());
}

BigInt BigInt::mulSlow(const BigInt &A, const BigInt &B) {
  int Sign = A.sign() * B.sign();
  if (Sign == 0)
    return BigInt();
  return makeLarge(Sign, mulMag(A.magnitude(), B.magnitude()));
}

BigInt BigInt::operator*(const BigInt &Other) const {
  if (IsSmall && Other.IsSmall) {
    int64_t Product;
    if (!__builtin_mul_overflow(Small, Other.Small, &Product))
      return BigInt(Product);
  }
  return mulSlow(*this, Other);
}

unsigned BigInt::bitLength() const {
  if (IsSmall) {
    uint64_t Abs = absOfInt64(Small);
    return Abs == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(Abs));
  }
  unsigned High = 32;
  uint32_t Top = Mag.back();
  while (High > 0 && !(Top & (1u << (High - 1))))
    --High;
  return static_cast<unsigned>((Mag.size() - 1) * 32) + High;
}

BigInt BigInt::shiftLeft(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  if (IsSmall && Bits < 62 && bitLength() + Bits < 63)
    return BigInt(Small << Bits);
  std::vector<uint32_t> Source = magnitude();
  unsigned LimbShift = Bits / 32, BitShift = Bits % 32;
  std::vector<uint32_t> Result(LimbShift, 0);
  uint32_t Carry = 0;
  for (uint32_t Limb : Source) {
    if (BitShift == 0) {
      Result.push_back(Limb);
    } else {
      Result.push_back((Limb << BitShift) | Carry);
      Carry = Limb >> (32 - BitShift);
    }
  }
  if (Carry)
    Result.push_back(Carry);
  return makeLarge(sign(), std::move(Result));
}

BigInt BigInt::shiftRight(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  if (IsSmall) {
    if (Bits >= 64)
      return BigInt();
    uint64_t Abs = absOfInt64(Small) >> Bits;
    return Small < 0 ? BigInt(-static_cast<int64_t>(Abs))
                     : BigInt(static_cast<int64_t>(Abs));
  }
  std::vector<uint32_t> Source = Mag;
  unsigned LimbShift = Bits / 32, BitShift = Bits % 32;
  if (LimbShift >= Source.size())
    return BigInt();
  std::vector<uint32_t> Result;
  for (size_t I = LimbShift; I != Source.size(); ++I) {
    uint32_t Limb = Source[I] >> BitShift;
    if (BitShift && I + 1 != Source.size())
      Limb |= Source[I + 1] << (32 - BitShift);
    Result.push_back(Limb);
  }
  return makeLarge(LargeSign, std::move(Result));
}

void BigInt::divmod(const BigInt &Divisor, BigInt &Quotient,
                    BigInt &Remainder) const {
  assert(!Divisor.isZero() && "division by zero");
  if (IsSmall && Divisor.IsSmall &&
      !(Small == INT64_MIN && Divisor.Small == -1)) {
    Quotient = BigInt(Small / Divisor.Small);
    Remainder = BigInt(Small % Divisor.Small);
    return;
  }
  // Shift-subtract long division on magnitudes; O(bits * limbs) is
  // acceptable at the coefficient sizes this library encounters.
  BigInt AbsDividend = abs(), AbsDivisor = Divisor.abs();
  if (AbsDividend.compare(AbsDivisor) < 0) {
    Quotient = BigInt();
    Remainder = *this;
    return;
  }
  unsigned Shift = AbsDividend.bitLength() - AbsDivisor.bitLength();
  BigInt Shifted = AbsDivisor.shiftLeft(Shift);
  BigInt Quot, Rem = AbsDividend;
  for (unsigned I = 0; I <= Shift; ++I) {
    Quot = Quot.shiftLeft(1);
    if (Rem.compare(Shifted) >= 0) {
      Rem = Rem - Shifted;
      Quot = Quot + BigInt(1);
    }
    Shifted = Shifted.shiftRight(1);
  }
  // Truncated semantics: quotient sign is the product of operand signs; the
  // remainder takes the dividend's sign.
  if (sign() * Divisor.sign() < 0)
    Quot = Quot.negated();
  if (sign() < 0)
    Rem = Rem.negated();
  Quotient = Quot;
  Remainder = Rem;
}

BigInt BigInt::divExact(const BigInt &Divisor) const {
  BigInt Quotient, Remainder;
  divmod(Divisor, Quotient, Remainder);
  assert(Remainder.isZero() && "divExact on non-multiple");
  return Quotient;
}

BigInt BigInt::operator/(const BigInt &Other) const {
  BigInt Quotient, Remainder;
  divmod(Other, Quotient, Remainder);
  return Quotient;
}

BigInt BigInt::operator%(const BigInt &Other) const {
  BigInt Quotient, Remainder;
  divmod(Other, Quotient, Remainder);
  return Remainder;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  if (A.IsSmall && B.IsSmall && A.Small != INT64_MIN &&
      B.Small != INT64_MIN) {
    uint64_t X = absOfInt64(A.Small), Y = absOfInt64(B.Small);
    while (Y != 0) {
      uint64_t T = X % Y;
      X = Y;
      Y = T;
    }
    return BigInt(static_cast<int64_t>(X));
  }
  // Binary GCD on the general representation: shifts, comparisons, and
  // subtraction only.
  BigInt X = A.abs(), Y = B.abs();
  if (X.isZero())
    return Y;
  if (Y.isZero())
    return X;
  unsigned Twos = 0;
  while (X.isEven() && Y.isEven()) {
    X = X.shiftRight(1);
    Y = Y.shiftRight(1);
    ++Twos;
  }
  while (X.isEven())
    X = X.shiftRight(1);
  while (!Y.isZero()) {
    while (Y.isEven())
      Y = Y.shiftRight(1);
    if (X.compare(Y) > 0)
      std::swap(X, Y);
    Y = Y - X;
  }
  return X.shiftLeft(Twos);
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  BigInt G = gcd(A, B);
  return A.abs().divExact(G) * B.abs();
}
