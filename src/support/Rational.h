//===- support/Rational.h - Exact rational numbers -------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt. All linear-expression and polyhedra
/// arithmetic in the LEIA instantiation (§5.3 of the paper) is performed
/// with this type so that meets, joins, projections, and widenings never
/// suffer floating-point drift.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_RATIONAL_H
#define PMAF_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <string>

namespace pmaf {

/// An exact rational in lowest terms with a positive denominator.
class Rational {
public:
  /// Constructs zero.
  Rational() : Num(0), Den(1) {}

  /// Constructs the integer \p Value.
  Rational(int64_t Value) : Num(Value), Den(1) {}

  /// Constructs Numerator/Denominator; asserts Denominator != 0.
  Rational(BigInt Numerator, BigInt Denominator);

  /// Constructs Numerator/Denominator from machine integers.
  Rational(int64_t Numerator, int64_t Denominator)
      : Rational(BigInt(Numerator), BigInt(Denominator)) {}

  /// Parses "123", "-4/5", or a decimal like "0.75" / "-1.25e-2" exactly.
  /// Asserts on malformed input; intended for trusted literals.
  static Rational fromString(const std::string &Text);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isInteger() const { return Den == BigInt(1); }
  int sign() const { return Num.sign(); }

  Rational operator+(const Rational &Other) const;
  Rational operator-(const Rational &Other) const;
  Rational operator*(const Rational &Other) const;
  /// Asserts Other != 0.
  Rational operator/(const Rational &Other) const;
  Rational operator-() const;

  Rational &operator+=(const Rational &Other);
  Rational &operator-=(const Rational &Other);
  Rational &operator*=(const Rational &Other);
  Rational &operator/=(const Rational &Other);

  /// Three-way comparison by cross-multiplication.
  int compare(const Rational &Other) const;

  bool operator==(const Rational &Other) const { return compare(Other) == 0; }
  bool operator!=(const Rational &Other) const { return compare(Other) != 0; }
  bool operator<(const Rational &Other) const { return compare(Other) < 0; }
  bool operator<=(const Rational &Other) const { return compare(Other) <= 0; }
  bool operator>(const Rational &Other) const { return compare(Other) > 0; }
  bool operator>=(const Rational &Other) const { return compare(Other) >= 0; }

  Rational abs() const { return sign() < 0 ? -*this : *this; }

  double toDouble() const { return Num.toDouble() / Den.toDouble(); }

  /// Renders as "n" or "n/d".
  std::string toString() const;

private:
  void normalize();

  BigInt Num;
  BigInt Den;
};

} // namespace pmaf

#endif // PMAF_SUPPORT_RATIONAL_H
