//===- support/Diagnostics.cpp - Diagnostics engine ------------------------===//

#include "support/Diagnostics.h"

#include <algorithm>

using namespace pmaf;

const char *pmaf::toString(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "error";
}

Diagnostic &Diagnostic::addNote(SourceLoc NoteLoc, std::string NoteMessage) {
  Diagnostic Note;
  Note.Sev = Severity::Note;
  Note.Loc = NoteLoc;
  Note.Message = std::move(NoteMessage);
  Notes.push_back(std::move(Note));
  return *this;
}

void DiagnosticEngine::setSource(std::string FileName, std::string Source) {
  File = std::move(FileName);
  Buffer = std::move(Source);
}

Diagnostic &DiagnosticEngine::report(Severity Sev, SourceLoc Loc,
                                     std::string Code, std::string Message) {
  Diagnostic Diag;
  Diag.Sev = Sev;
  Diag.Loc = Loc;
  Diag.Code = std::move(Code);
  Diag.Message = std::move(Message);
  return report(std::move(Diag));
}

Diagnostic &DiagnosticEngine::report(Diagnostic Diag) {
  if (Diag.Sev == Severity::Warning && WarningsAsErrors)
    Diag.Sev = Severity::Error;
  if (Diag.Sev == Severity::Error)
    ++NumErrors;
  else if (Diag.Sev == Severity::Warning)
    ++NumWarnings;
  Diags.push_back(std::move(Diag));
  return Diags.back();
}

void DiagnosticEngine::sortByLocation() {
  std::stable_sort(
      Diags.begin(), Diags.end(),
      [](const Diagnostic &A, const Diagnostic &B) { return A.Loc < B.Loc; });
}

namespace {

/// The 1-based line \p Line of \p Buffer, without its newline; nullopt-ish
/// empty+false when out of range.
bool extractLine(const std::string &Buffer, unsigned Line, std::string &Out) {
  size_t Start = 0;
  for (unsigned L = 1; L < Line; ++L) {
    size_t Next = Buffer.find('\n', Start);
    if (Next == std::string::npos)
      return false;
    Start = Next + 1;
  }
  if (Start >= Buffer.size())
    return false;
  size_t End = Buffer.find('\n', Start);
  if (End == std::string::npos)
    End = Buffer.size();
  Out = Buffer.substr(Start, End - Start);
  return true;
}

void appendJsonEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
}

void appendDiagJson(std::string &Out, const Diagnostic &Diag) {
  Out += "{\"line\": ";
  Out += std::to_string(Diag.Loc.Line);
  Out += ", \"col\": ";
  Out += std::to_string(Diag.Loc.Col);
  Out += ", \"severity\": \"";
  Out += toString(Diag.Sev);
  Out += "\", \"code\": \"";
  appendJsonEscaped(Out, Diag.Code);
  Out += "\", \"message\": \"";
  appendJsonEscaped(Out, Diag.Message);
  Out += "\"";
  if (!Diag.Notes.empty()) {
    Out += ", \"notes\": [";
    for (size_t I = 0; I != Diag.Notes.size(); ++I) {
      if (I)
        Out += ", ";
      appendDiagJson(Out, Diag.Notes[I]);
    }
    Out += "]";
  }
  Out += "}";
}

} // namespace

std::string DiagnosticEngine::renderOne(const Diagnostic &Diag,
                                        bool IsNote) const {
  std::string Out = File;
  if (Diag.Loc.isValid()) {
    Out += ':';
    Out += std::to_string(Diag.Loc.Line);
    Out += ':';
    Out += std::to_string(Diag.Loc.Col);
  }
  Out += ": ";
  Out += toString(Diag.Sev);
  Out += ": ";
  Out += Diag.Message;
  if (!IsNote && !Diag.Code.empty()) {
    Out += " [";
    Out += Diag.Code;
    Out += "]";
  }
  Out += "\n";
  std::string Excerpt;
  if (Diag.Loc.isValid() && extractLine(Buffer, Diag.Loc.Line, Excerpt)) {
    Out += "  ";
    Out += Excerpt;
    Out += "\n  ";
    // Columns count characters; render tabs as-is so the caret still lands
    // on the offending character in a tab-using buffer.
    for (unsigned C = 1; C < Diag.Loc.Col && C <= Excerpt.size(); ++C)
      Out += Excerpt[C - 1] == '\t' ? '\t' : ' ';
    Out += "^\n";
  }
  return Out;
}

std::string DiagnosticEngine::render(const Diagnostic &Diag) const {
  std::string Out = renderOne(Diag, /*IsNote=*/false);
  for (const Diagnostic &Note : Diag.Notes)
    Out += renderOne(Note, /*IsNote=*/true);
  return Out;
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &Diag : Diags)
    Out += render(Diag);
  if (NumErrors || NumWarnings) {
    Out += std::to_string(NumErrors);
    Out += NumErrors == 1 ? " error, " : " errors, ";
    Out += std::to_string(NumWarnings);
    Out += NumWarnings == 1 ? " warning\n" : " warnings\n";
  }
  return Out;
}

std::string DiagnosticEngine::renderJson() const {
  std::string Out = "{\"file\": \"";
  appendJsonEscaped(Out, File);
  Out += "\", \"diagnostics\": [";
  for (size_t I = 0; I != Diags.size(); ++I) {
    if (I)
      Out += ", ";
    appendDiagJson(Out, Diags[I]);
  }
  Out += "], \"errors\": ";
  Out += std::to_string(NumErrors);
  Out += ", \"warnings\": ";
  Out += std::to_string(NumWarnings);
  Out += "}";
  return Out;
}
