//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include <cstdio>

using namespace pmaf;
using namespace pmaf::support;

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = Threads ? Threads : 1;
  Busy = std::make_unique<BusyCounter[]>(N);
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Fn) {
  InFlight.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(Fn));
  }
  QueueCv.notify_one();
}

void ThreadPool::workerMain(unsigned Index) {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    auto Start = std::chrono::steady_clock::now();
    Task(); // packaged_task captures exceptions; post() tasks must not throw.
    auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    Busy[Index].Nanos.fetch_add(static_cast<uint64_t>(Nanos),
                                std::memory_order_relaxed);
    InFlight.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<double> ThreadPool::workerBusySeconds() const {
  std::vector<double> Seconds(Workers.size(), 0.0);
  for (size_t I = 0; I != Workers.size(); ++I)
    Seconds[I] =
        Busy[I].Nanos.load(std::memory_order_relaxed) * 1e-9;
  return Seconds;
}

uint64_t pmaf::support::detail::nextWorkerLocalId() {
  // Starts at 1 so 0 can never collide with a default-initialized key.
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// The shared pool is intentionally leaked: worker threads idle until
/// process exit, and tearing them down from static destructors races with
/// other static teardown.
ThreadPool *SharedPool = nullptr;
unsigned SharedN = 1;
} // namespace

ThreadPool *pmaf::support::sharedPool() { return SharedPool; }

unsigned pmaf::support::sharedParallelism() { return SharedN; }

bool pmaf::support::setSharedParallelism(unsigned N) {
  if (N == 0)
    N = ThreadPool::hardwareConcurrency();
  if (N == SharedN)
    return true;
  if (SharedPool && !SharedPool->idle()) {
    // A solve (or a parallelFor caller that just woke) may still hold the
    // pool pointer; give completion callbacks a short grace to unwind,
    // then refuse rather than delete a pool other threads are using.
    for (int Tries = 0; Tries != 50 && !SharedPool->idle(); ++Tries)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (!SharedPool->idle()) {
      std::fprintf(stderr,
                   "pmaf: setSharedParallelism(%u) refused: the shared "
                   "pool has %llu task(s) in flight\n",
                   N,
                   static_cast<unsigned long long>(
                       SharedPool->inFlightTasks()));
      return false;
    }
  }
  delete SharedPool; // Joins the (now idle) workers.
  SharedPool = nullptr;
  SharedN = N > 1 ? N : 1;
  if (SharedN > 1)
    SharedPool = new ThreadPool(SharedN);
  return true;
}
