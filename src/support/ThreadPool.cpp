//===- support/ThreadPool.cpp - Locality-aware work-stealing pool ---------===//

#include "support/ThreadPool.h"

#include <cstdio>
#include <string>

using namespace pmaf;
using namespace pmaf::support;

namespace {
/// Worker identity for currentWorker(): which pool (if any) owns the
/// calling thread, and the thread's lane index in it.
thread_local const ThreadPool *TlsPool = nullptr;
thread_local unsigned TlsLane = 0;
} // namespace

ThreadPool::ThreadPool(unsigned ThreadCount) {
  NumLanes = ThreadCount ? ThreadCount : 1;
  Lanes = std::make_unique<Lane[]>(NumLanes);
  Threads.reserve(NumLanes);
  for (unsigned I = 0; I != NumLanes; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    Stopping.store(true, std::memory_order_relaxed);
    for (unsigned I = 0; I != NumLanes; ++I) {
      Lanes[I].Asleep = false;
      Lanes[I].SleepCv.notify_all();
    }
  }
  for (std::thread &T : Threads)
    T.join();
}

unsigned ThreadPool::currentWorker() const {
  return TlsPool == this ? TlsLane : NoWorker;
}

void ThreadPool::post(std::function<void()> Fn) {
  InFlight.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(InjectedMutex);
    Injected.push_back(Task{std::move(Fn), NoWorker});
  }
  wakeOneSleeper(); // Any worker may run an injected task.
}

void ThreadPool::postTo(unsigned Worker, std::function<void()> Fn) {
  const unsigned Owner = Worker % NumLanes;
  InFlight.fetch_add(1, std::memory_order_relaxed);
  bool Saturated = false;
  {
    Lane &L = Lanes[Owner];
    std::unique_lock<std::mutex> Lock(L.Mutex);
    if (L.Deque.size() < DequeBound) {
      L.Deque.push_back(Task{std::move(Fn), Owner});
      Saturated = L.Deque.size() >= SaturationDepth;
      Lock.unlock();
      // Only the owner may run an unsaturated pinned task, so only the
      // owner needs waking; once the deque is saturated the backlog is
      // stealable, so rouse a thief as well.
      wakeWorker(Owner);
      if (Saturated)
        wakeOneSleeper();
      return;
    }
  }
  // Deque bound hit: spill to the injection queue as backpressure. The
  // owner tag rides along so the owner pulling it from there still counts
  // an affinity hit, but any worker may run it.
  {
    std::lock_guard<std::mutex> Lock(InjectedMutex);
    Injected.push_back(Task{std::move(Fn), Owner});
  }
  wakeOneSleeper();
}

void ThreadPool::wakeWorker(unsigned Worker) {
  // Taking the sleep mutex orders this wakeup after any worker between
  // its failed under-lock rescan and its wait(): that worker holds the
  // mutex until wait() parks it, so once we acquire, either the push
  // above was visible to its rescan or the notify below reaches it.
  std::lock_guard<std::mutex> Lock(SleepMutex);
  Lane &L = Lanes[Worker];
  if (L.Asleep) {
    // Clear the flag at notify time (not only when the worker resumes) so
    // back-to-back wakeups fan out to distinct sleepers instead of all
    // landing on one not-yet-resumed worker.
    L.Asleep = false;
    L.SleepCv.notify_all();
  }
}

void ThreadPool::wakeOneSleeper() {
  std::lock_guard<std::mutex> Lock(SleepMutex);
  for (unsigned I = 0; I != NumLanes; ++I) {
    Lane &L = Lanes[I];
    if (L.Asleep) {
      L.Asleep = false;
      L.SleepCv.notify_all();
      return;
    }
  }
  // Nobody is parked: every worker is busy or scanning and will pick the
  // task up on its next pass — no notify needed.
}

bool ThreadPool::findTask(unsigned Self, Task &Out, bool &Stolen) {
  Stolen = false;
  // 1. Own deque, front (submission order — the affinity fast path).
  {
    Lane &Mine = Lanes[Self];
    std::lock_guard<std::mutex> Lock(Mine.Mutex);
    if (!Mine.Deque.empty()) {
      Out = std::move(Mine.Deque.front());
      Mine.Deque.pop_front();
      return true;
    }
  }
  // 2. The shared injection queue (anonymous post/parallelFor work).
  {
    std::lock_guard<std::mutex> Lock(InjectedMutex);
    if (!Injected.empty()) {
      Out = std::move(Injected.front());
      Injected.pop_front();
      return true;
    }
  }
  // 3. Steal: scan the other lanes starting at our right-hand neighbour,
  // taking from the *back* of a victim's deque (the cold end — the owner
  // works the front). Pinned tasks are skipped unless the victim is
  // saturated (backlog >= SaturationDepth) or the pool is draining for
  // shutdown, in which case everything is fair game so nothing strands.
  const bool Draining = Stopping.load(std::memory_order_relaxed);
  for (unsigned Step = 1; Step < NumLanes; ++Step) {
    Lane &Victim = Lanes[(Self + Step) % NumLanes];
    std::lock_guard<std::mutex> Lock(Victim.Mutex);
    if (Victim.Deque.empty())
      continue;
    const bool Saturated = Draining || Victim.Deque.size() >= SaturationDepth;
    for (auto It = Victim.Deque.rbegin(); It != Victim.Deque.rend(); ++It) {
      if (It->Owner != NoWorker && !Saturated)
        continue;
      Out = std::move(*It);
      Victim.Deque.erase(std::next(It).base());
      Stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::execute(unsigned Self, Task T, bool Stolen) {
  Lane &L = Lanes[Self];
  auto Start = std::chrono::steady_clock::now();
  T.Fn(); // packaged_task captures exceptions; post() tasks must not throw.
  auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  L.BusyNanos.fetch_add(static_cast<uint64_t>(Nanos),
                        std::memory_order_relaxed);
  L.TasksRun.fetch_add(1, std::memory_order_relaxed);
  if (Stolen)
    L.Steals.fetch_add(1, std::memory_order_relaxed);
  else if (T.Owner == Self)
    L.AffinityHits.fetch_add(1, std::memory_order_relaxed);
  InFlight.fetch_sub(1, std::memory_order_release);
}

void ThreadPool::workerMain(unsigned Index) {
  TlsPool = this;
  TlsLane = Index;
  for (;;) {
    Task T;
    bool Stolen = false;
    if (findTask(Index, T, Stolen)) {
      execute(Index, std::move(T), Stolen);
      continue;
    }
    // Nothing anywhere: rescan while holding the sleep mutex, so an
    // enqueue racing with us either lands inside this rescan or blocks on
    // the mutex until wait() has parked us — the wakeup cannot be lost.
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (findTask(Index, T, Stolen)) {
      Lock.unlock();
      execute(Index, std::move(T), Stolen);
      continue;
    }
    if (Stopping.load(std::memory_order_relaxed))
      return; // Drained: under Stopping every queued task is stealable,
              // so an empty scan means the queues really are empty. A
              // task still executing elsewhere may post more, but its
              // worker rescans after finishing and drains its own posts.
    Lane &Mine = Lanes[Index];
    Mine.Asleep = true;
    Mine.SleepCv.wait(Lock);
    Mine.Asleep = false; // Wakers also clear it; spurious wakes rescan.
  }
}

std::vector<ThreadPool::WorkerQueueStats>
ThreadPool::workerQueueStats() const {
  std::vector<WorkerQueueStats> Stats(NumLanes);
  for (unsigned I = 0; I != NumLanes; ++I) {
    const Lane &L = Lanes[I];
    Stats[I].TasksRun = L.TasksRun.load(std::memory_order_relaxed);
    Stats[I].Steals = L.Steals.load(std::memory_order_relaxed);
    Stats[I].AffinityHits = L.AffinityHits.load(std::memory_order_relaxed);
    Stats[I].BusySeconds =
        static_cast<double>(L.BusyNanos.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return Stats;
}

uint64_t ThreadPool::totalTasksRun() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumLanes; ++I)
    Total += Lanes[I].TasksRun.load(std::memory_order_relaxed);
  return Total;
}

uint64_t ThreadPool::totalSteals() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumLanes; ++I)
    Total += Lanes[I].Steals.load(std::memory_order_relaxed);
  return Total;
}

uint64_t ThreadPool::totalAffinityHits() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumLanes; ++I)
    Total += Lanes[I].AffinityHits.load(std::memory_order_relaxed);
  return Total;
}

std::vector<double> ThreadPool::workerBusySeconds() const {
  std::vector<double> Seconds(NumLanes, 0.0);
  for (unsigned I = 0; I != NumLanes; ++I)
    Seconds[I] =
        Lanes[I].BusyNanos.load(std::memory_order_relaxed) * 1e-9;
  return Seconds;
}

uint64_t pmaf::support::detail::nextWorkerLocalId() {
  // Starts at 1 so 0 can never collide with a default-initialized key.
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// The shared pool is intentionally leaked: worker threads idle until
/// process exit, and tearing them down from static destructors races with
/// other static teardown.
ThreadPool *SharedPool = nullptr;
unsigned SharedN = 1;
} // namespace

ThreadPool *pmaf::support::sharedPool() { return SharedPool; }

unsigned pmaf::support::sharedParallelism() { return SharedN; }

bool pmaf::support::setSharedParallelism(unsigned N) {
  return setSharedParallelism(N, nullptr);
}

bool pmaf::support::setSharedParallelism(unsigned N,
                                         std::string *WhyRefused) {
  if (N == 0)
    N = ThreadPool::hardwareConcurrency();
  if (N == SharedN)
    return true;
  if (SharedPool && !SharedPool->idle()) {
    // A solve (or a parallelFor caller that just woke) may still hold the
    // pool pointer; give completion callbacks a short grace to unwind,
    // then refuse rather than delete a pool other threads are using.
    for (int Tries = 0; Tries != 50 && !SharedPool->idle(); ++Tries)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (!SharedPool->idle()) {
      std::string Why =
          "the shared pool has " +
          std::to_string(SharedPool->inFlightTasks()) +
          " task(s) in flight; retry when the pool is idle";
      if (WhyRefused)
        *WhyRefused = std::move(Why);
      else
        std::fprintf(stderr, "pmaf: setSharedParallelism(%u) refused: %s\n",
                     N, Why.c_str());
      return false;
    }
  }
  delete SharedPool; // Joins the (now idle) workers.
  SharedPool = nullptr;
  SharedN = N > 1 ? N : 1;
  if (SharedN > 1)
    SharedPool = new ThreadPool(SharedN);
  return true;
}
