//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small arbitrary-precision signed integer used by the exact-rational and
/// convex-polyhedra substrates. The paper's prototype delegated exact
/// arithmetic to APRON/GMP; this class is the self-contained replacement.
///
/// Values that fit in an int64_t are stored inline (no allocation) and use
/// overflow-checked machine arithmetic; only results that overflow spill
/// into a limb vector. The polyhedra kernels spend almost all of their time
/// on single-digit coefficients, so the small path dominates.
///
/// Invariant: a value is in the small representation if and only if it fits
/// in int64_t, so representations are canonical and comparisons cheap.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_BIGINT_H
#define PMAF_SUPPORT_BIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace pmaf {

/// Arbitrary-precision signed integer with an inline int64_t fast path.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t Value) : Small(Value) {}

  /// Parses a decimal string with an optional leading '-'.
  /// Asserts on malformed input; intended for trusted literals and tests.
  static BigInt fromString(const std::string &Text);

  /// \returns true if the value is zero.
  bool isZero() const { return IsSmall ? Small == 0 : false; }

  /// \returns -1, 0, or +1 according to the sign of the value.
  int sign() const {
    if (IsSmall)
      return Small < 0 ? -1 : (Small > 0 ? 1 : 0);
    return LargeSign;
  }

  /// \returns true if the value is even (zero counts as even).
  bool isEven() const {
    return IsSmall ? (Small & 1) == 0 : (Mag[0] & 1u) == 0;
  }

  /// \returns true if the value fits in an int64_t.
  bool fitsInt64() const { return IsSmall; }

  /// Converts to int64_t; asserts that the value fits.
  int64_t toInt64() const;

  /// Converts to double (may lose precision; never traps).
  double toDouble() const;

  /// \returns the absolute value.
  BigInt abs() const;

  /// \returns the negation.
  BigInt negated() const;

  /// Renders the value in decimal.
  std::string toString() const;

  /// Three-way comparison: -1 if *this < Other, 0 if equal, +1 otherwise.
  int compare(const BigInt &Other) const;

  BigInt operator+(const BigInt &Other) const;
  BigInt operator-(const BigInt &Other) const;
  BigInt operator*(const BigInt &Other) const;
  BigInt operator-() const { return negated(); }

  BigInt &operator+=(const BigInt &Other) { return *this = *this + Other; }
  BigInt &operator-=(const BigInt &Other) { return *this = *this - Other; }
  BigInt &operator*=(const BigInt &Other) { return *this = *this * Other; }

  bool operator==(const BigInt &Other) const { return compare(Other) == 0; }
  bool operator!=(const BigInt &Other) const { return compare(Other) != 0; }
  bool operator<(const BigInt &Other) const { return compare(Other) < 0; }
  bool operator<=(const BigInt &Other) const { return compare(Other) <= 0; }
  bool operator>(const BigInt &Other) const { return compare(Other) > 0; }
  bool operator>=(const BigInt &Other) const { return compare(Other) >= 0; }

  /// Truncated division: computes Quotient and Remainder such that
  /// `*this == Quotient * Divisor + Remainder`, with the remainder taking
  /// the sign of the dividend (C semantics). Asserts `Divisor != 0`.
  void divmod(const BigInt &Divisor, BigInt &Quotient,
              BigInt &Remainder) const;

  /// Exact division; asserts that Divisor evenly divides *this.
  BigInt divExact(const BigInt &Divisor) const;

  BigInt operator/(const BigInt &Other) const;
  BigInt operator%(const BigInt &Other) const;

  /// \returns gcd(|A|, |B|); gcd(0, 0) == 0.
  static BigInt gcd(const BigInt &A, const BigInt &B);

  /// \returns lcm(|A|, |B|); lcm with zero is zero.
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Logical left shift of the magnitude by \p Bits.
  BigInt shiftLeft(unsigned Bits) const;

  /// Logical right shift of the magnitude by \p Bits (rounds toward zero).
  BigInt shiftRight(unsigned Bits) const;

  /// Number of significant bits of the magnitude (0 for zero).
  unsigned bitLength() const;

private:
  /// Builds a large-representation value; demotes to small if it fits.
  static BigInt makeLarge(int Sign, std::vector<uint32_t> Mag);

  /// Magnitude limbs of a small value (little-endian, <= 2 limbs).
  std::vector<uint32_t> smallMag() const;

  /// Magnitude limbs (works for both representations).
  std::vector<uint32_t> magnitude() const {
    return IsSmall ? smallMag() : Mag;
  }

  static int compareMag(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  static void trim(std::vector<uint32_t> &Mag);

  /// Slow-path arithmetic on mixed/large operands.
  static BigInt addSlow(const BigInt &A, const BigInt &B);
  static BigInt mulSlow(const BigInt &A, const BigInt &B);

  bool IsSmall = true;
  int64_t Small = 0;   ///< Valid when IsSmall.
  int LargeSign = 0;   ///< -1 or +1 when !IsSmall (never 0).
  std::vector<uint32_t> Mag; ///< Valid when !IsSmall; > int64 range.
};

} // namespace pmaf

#endif // PMAF_SUPPORT_BIGINT_H
