//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64) shared by the Monte-Carlo
/// interpreter and the property-test generators, so that every test run is
/// reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SUPPORT_RNG_H
#define PMAF_SUPPORT_RNG_H

#include <cmath>
#include <cstdint>

namespace pmaf {

/// SplitMix64 pseudo-random generator; fast, seedable, reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a double uniformly distributed in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// \returns true with probability \p P.
  bool bernoulli(double P) { return uniform() < P; }

  /// \returns an integer uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) { return Bound ? next() % Bound : 0; }

  /// \returns a sample from a standard normal via Box-Muller.
  double gaussian() {
    double U = 0.0;
    while (U == 0.0)
      U = uniform();
    double V = uniform();
    return std::sqrt(-2.0 * std::log(U)) * std::cos(6.283185307179586 * V);
  }

private:
  uint64_t State;
};

} // namespace pmaf

#endif // PMAF_SUPPORT_RNG_H
