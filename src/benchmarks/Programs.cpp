//===- benchmarks/Programs.cpp - The paper's benchmark programs -----------===//

#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"

#include <cctype>

using namespace pmaf;
using namespace pmaf::benchmarks;

//===----------------------------------------------------------------------===//
// Table 1: LEIA benchmarks
//===----------------------------------------------------------------------===//

const std::vector<BenchProgram> &benchmarks::leiaPrograms() {
  static const std::vector<BenchProgram> Programs = {
      // A lazy 2D random walk step: expectation-neutral moves for x, y and
      // dist, plus a conditionally counted step. Paper: E[x']=x, E[y']=y,
      // E[dist']=dist, count <= E[count'] <= count + 1.
      {"2d-walk", R"(
real x, y, dist, count;
proc main() {
  if prob(1/2) {
    x ~ uniform(x - 1, x + 1);
  } else {
    y ~ uniform(y - 1, y + 1);
  }
  if prob(1/2) {
    dist ~ uniform(dist - 1, dist + 1);
  } else {
    skip;
  }
  if (x == y) {
    count := count + 1;
  } else {
    skip;
  }
}
)"},
      // Aggregate of random variables: a fair-coin increment aggregated
      // against a deterministic counter. Paper: E[2x'-i'] = 2x-i,
      // x <= E[x'] <= x + 1/2.
      {"aggregate-rv", R"(
real x, i;
proc main() {
  if prob(1/2) {
    x := x + 1;
  } else {
    skip;
  }
  i := i + 1;
}
)"},
      // Simulating a biased coin with a fair one; the branch on the
      // sampled value makes only interval invariants derivable.
      // Paper: x - 1/2 <= E[x'] <= x + 1/2.
      {"biased-coin", R"(
real x, y;
proc main() {
  y ~ bernoulli(1/2);
  if (y >= 1) {
    x := x + 1/2;
  } else {
    if (x >= 1/2) {
      x := x - 1/2;
    } else {
      skip;
    }
  }
}
)"},
      // Binomial update with p = 1/4. Paper: E[4x'-n'] = 4x-n,
      // x <= E[x'] <= x + 1/4.
      {"binom-update", R"(
real x, n;
proc main() {
  if prob(1/4) {
    x := x + 1;
  } else {
    skip;
  }
  n := n + 1;
}
)"},
      // Coupon collector with 5 coupons: five stages, each a geometric
      // number of draws until an unseen coupon appears (stage k repeats a
      // draw with probability (k-1)/5). Paper lists one expectation
      // equality per stage relating count and i.
      {"coupon5", R"(
real count, i;
proc main() {
  count := count + 1;
  i := 1;
  count := count + 1;
  while prob(1/5) {
    count := count + 1;
  }
  i := 2;
  count := count + 1;
  while prob(2/5) {
    count := count + 1;
  }
  i := 3;
  count := count + 1;
  while prob(3/5) {
    count := count + 1;
  }
  i := 4;
  count := count + 1;
  while prob(4/5) {
    count := count + 1;
  }
  i := 5;
}
)"},
      // Probabilistic mixture: z becomes x or y with equal probability.
      // Paper: E[x']=x, E[y']=y, E[z'] = x/2 + y/2.
      {"dist", R"(
real x, y, z;
proc main() {
  if prob(1/2) {
    z := x;
  } else {
    z := y;
  }
}
)"},
      // The running example, Fig 1(b): the round-based two-player game.
      // Paper: E[x'+y'] = x+y+3, E[z'] = z/4 + 3/4, x <= E[x'] <= x+3.
      {"eg", R"(
real x, y, z;
proc main() {
  while prob(3/4) {
    z ~ uniform(0, 2);
    if star { x := x + z; } else { y := y + z; }
  }
}
)"},
      // Fig 1(b) rewritten with tail recursion. Paper derives only lower
      // bounds here (E[z'] >= z/4, E[x'+y'] >= x+y+3/4, ...).
      {"eg-tail", R"(
real x, y, z;
proc main() {
  if prob(3/4) {
    z ~ uniform(0, 2);
    if star { x := x + z; } else { y := y + z; }
    main();
  } else {
    skip;
  }
}
)"},
      // Hare and turtle: the turtle always steps once; the hare sleeps
      // with probability 1/2 or jumps uniformly up to 5.
      // Paper: E[2h'-5t'] = 2h-5t, h <= E[h'] <= h + 5/2.
      {"hare-turtle", R"(
real h, t;
proc main() {
  if prob(1/2) {
    h ~ uniform(h, h + 5);
  } else {
    skip;
  }
  t := t + 1;
}
)"},
      // Hawk-dove round: either both players split the payoff or a fair
      // fight gives one player everything; either way each expects +1.
      // Paper: E[p1b'-count'] = p1b-count, E[p2b'-count'] = p2b-count,
      // p1b <= E[p1b'] <= p1b + 1.
      {"hawk-dove", R"(
real p1b, p2b, count;
proc main() {
  count := count + 1;
  if star {
    p1b := p1b + 1;
    p2b := p2b + 1;
  } else {
    if prob(1/2) {
      p1b := p1b + 2;
    } else {
      p2b := p2b + 2;
    }
  }
}
)"},
      // The motivating example of Chakarov-Sankaranarayanan [14].
      // Paper: E[2x'-y'] = 2x-y, E[4x'-3count'] = 4x-3count,
      // x <= E[x'] <= x + 3/4.
      {"mot-ex", R"(
real x, y, count;
proc main() {
  if prob(3/4) {
    x := x + 1;
  } else {
    skip;
  }
  y := y + 3/2;
  count := count + 1;
}
)"},
      // General recursion with two recursive calls; the summary must be
      // computed interprocedurally. Paper: E[x'] = x + 9.
      {"recursive", R"(
real x;
proc main() {
  if prob(1/3) {
    x := x + 3;
    main();
    main();
  } else {
    x := x + 3;
  }
}
)"},
      // One step of a uniform-random-number generator: the doubling is
      // nondeterministically skipped, so only intervals are derivable.
      // Paper: n <= E[n'] <= 2n, g <= E[g'] <= 2g + 1/2.
      {"uniform-dist", R"(
real n, g;
proc main() {
  if star {
    skip;
  } else {
    n := 2 * n;
    if prob(1/2) {
      g := 2 * g + 1;
    } else {
      g := 2 * g;
    }
  }
}
)"},
  };
  return Programs;
}

//===----------------------------------------------------------------------===//
// Table 2 (top): Bayesian-inference benchmarks
//===----------------------------------------------------------------------===//

const std::vector<BenchProgram> &benchmarks::biPrograms() {
  static const std::vector<BenchProgram> Programs = {
      // Bitwise comparison of two uniform 2-bit numbers:
      // P[less] = P[A < B] = 3/8.
      {"compare", R"(
bool a0, a1, b0, b1, less;
proc main() {
  a0 ~ bernoulli(0.5);
  a1 ~ bernoulli(0.5);
  b0 ~ bernoulli(0.5);
  b1 ~ bernoulli(0.5);
  if (a1 == b1) {
    if (!a0 && b0) { less := true; } else { less := false; }
  } else {
    if (!a1 && b1) { less := true; } else { less := false; }
  }
}
)"},
      // Knuth-Yao-style die from fair coins: reject 000 and 111, keeping a
      // uniform distribution over the six remaining outcomes.
      {"dice", R"(
bool c0, c1, c2;
proc main() {
  c0 ~ bernoulli(0.5);
  c1 ~ bernoulli(0.5);
  c2 ~ bernoulli(0.5);
  while ((c0 && c1 && c2) || (!c0 && !c1 && !c2)) {
    c0 ~ bernoulli(0.5);
    c1 ~ bernoulli(0.5);
    c2 ~ bernoulli(0.5);
  }
}
)"},
      // Fig 1(a): resample two fair coins until one shows true; posterior
      // is 1/3 on each of the three surviving valuations.
      {"eg1", R"(
bool b1, b2;
proc main() {
  b1 ~ bernoulli(0.5);
  b2 ~ bernoulli(0.5);
  while (!b1 && !b2) {
    b1 ~ bernoulli(0.5);
    b2 ~ bernoulli(0.5);
  }
}
)"},
      // Fig 1(a) with the loop as a tail-recursive procedure (the
      // interprocedural capability the paper adds to Claret et al.).
      {"eg1-tail", R"(
bool b1, b2;
proc resample() {
  if (!b1 && !b2) {
    b1 ~ bernoulli(0.5);
    b2 ~ bernoulli(0.5);
    resample();
  }
}
proc main() {
  b1 ~ bernoulli(0.5);
  b2 ~ bernoulli(0.5);
  resample();
}
)"},
      // Conditioning with a correlated copy: posterior mass 5/8 spread
      // 3/8, 1/8, 1/8 over (T,T), (T,F), (F,T).
      {"eg2", R"(
bool b1, b2;
proc main() {
  b1 ~ bernoulli(0.5);
  if prob(0.5) {
    b2 := b1;
  } else {
    b2 ~ bernoulli(0.5);
  }
  observe(b1 || b2);
}
)"},
      // eg2 with the conditioning step in a tail-recursive retry loop:
      // resample until the observation holds (rejection sampling).
      {"eg2-tail", R"(
bool b1, b2;
proc retry() {
  if (!b1 && !b2) {
    b1 ~ bernoulli(0.5);
    if prob(0.5) {
      b2 := b1;
    } else {
      b2 ~ bernoulli(0.5);
    }
    retry();
  }
}
proc main() {
  b1 ~ bernoulli(0.5);
  if prob(0.5) {
    b2 := b1;
  } else {
    b2 ~ bernoulli(0.5);
  }
  retry();
}
)"},
      // General (non-tail) recursion: flip until false; terminates almost
      // surely with b = false.
      {"recursive", R"(
bool b;
proc main() {
  b ~ bernoulli(0.5);
  if (b) {
    main();
    b := false;
  }
}
)"},
  };
  return Programs;
}

//===----------------------------------------------------------------------===//
// Table 2 (bottom): MDP-with-rewards benchmarks
//===----------------------------------------------------------------------===//

const std::vector<BenchProgram> &benchmarks::mdpPrograms() {
  static const std::vector<BenchProgram> Programs = {
      // Randomized binary search on an array of size 10 (from [84]):
      // bs<n> probes once; with probability 1/n it hits, otherwise it
      // recurses into the left or right part. Expected comparisons for
      // n = 10: 2.9 (Theta(log n)).
      {"binary10", R"(
proc bs1() { reward(1); }
proc bs2() {
  reward(1);
  if prob(1/2) { skip; } else { bs1(); }
}
proc bs3() {
  reward(1);
  if prob(1/3) { skip; } else { bs1(); }
}
proc bs4() {
  reward(1);
  if prob(1/4) { skip; } else {
    if prob(1/3) { bs1(); } else { bs2(); }
  }
}
proc bs5() {
  reward(1);
  if prob(1/5) { skip; } else { bs2(); }
}
proc bs6() {
  reward(1);
  if prob(1/6) { skip; } else {
    if prob(2/5) { bs2(); } else { bs3(); }
  }
}
proc bs7() {
  reward(1);
  if prob(1/7) { skip; } else { bs3(); }
}
proc bs8() {
  reward(1);
  if prob(1/8) { skip; } else {
    if prob(3/7) { bs3(); } else { bs4(); }
  }
}
proc bs9() {
  reward(1);
  if prob(1/9) { skip; } else { bs4(); }
}
proc bs10() {
  reward(1);
  if prob(1/10) { skip; } else {
    if prob(4/9) { bs4(); } else { bs5(); }
  }
}
proc main() { bs10(); }
)"},
      // A geometric reward loop: E = 1 per round, half chance to repeat.
      {"loop", R"(
proc main() {
  while prob(1/2) {
    reward(1);
  }
}
)"},
      // Randomized quicksort on 7 elements (from [84]): qs<n> draws a
      // uniform pivot, pays n-1 comparisons, and recurses on the two
      // parts. Expected comparisons for n = 7: ~13.486
      // (Theta(n log n) worst-case expected).
      {"quicksort7", R"(
proc qs2() { reward(1); }
proc qs3() {
  reward(2);
  if prob(1/3) { skip; } else { qs2(); }
}
proc qs4() {
  reward(3);
  if prob(1/4) { qs3(); } else {
    if prob(1/3) { qs2(); } else {
      if prob(1/2) { qs2(); } else { qs3(); }
    }
  }
}
proc qs5() {
  reward(4);
  if prob(1/5) { qs4(); } else {
    if prob(1/4) { qs3(); } else {
      if prob(1/3) { qs2(); qs2(); } else {
        if prob(1/2) { qs3(); } else { qs4(); }
      }
    }
  }
}
proc qs6() {
  reward(5);
  if prob(1/6) { qs5(); } else {
    if prob(1/5) { qs4(); } else {
      if prob(1/4) { qs2(); qs3(); } else {
        if prob(1/3) { qs3(); qs2(); } else {
          if prob(1/2) { qs4(); } else { qs5(); }
        }
      }
    }
  }
}
proc qs7() {
  reward(6);
  if prob(1/7) { qs6(); } else {
    if prob(1/6) { qs5(); } else {
      if prob(1/5) { qs2(); qs4(); } else {
        if prob(1/4) { qs3(); qs3(); } else {
          if prob(1/3) { qs4(); qs2(); } else {
            if prob(1/2) { qs5(); } else { qs6(); }
          }
        }
      }
    }
  }
}
proc main() { qs7(); }
)"},
      // Tail-recursive geometric reward: E = 1 / (1 - 2/3) = 3.
      {"recursive", R"(
proc main() {
  reward(1);
  if prob(2/3) {
    main();
  }
}
)"},
      // A student's week as a recursive MDP (nondeterministic study/slack
      // choices, probabilistic pub detours); the analysis computes the
      // greatest expected reward over schedulers.
      {"student", R"(
proc class1() {
  if star { class2(); } else { facebook(); }
}
proc facebook() {
  if star { class1(); } else { skip; }
}
proc class2() {
  reward(2);
  if star { class3(); } else { skip; }
}
proc class3() {
  reward(10);
  if prob(3/5) { skip; } else { pub(); }
}
proc pub() {
  reward(1);
  if prob(1/5) { class1(); } else {
    if prob(1/2) { class2(); } else { class3(); }
  }
}
proc main() { class1(); }
)"},
  };
  return Programs;
}

//===----------------------------------------------------------------------===//
// Table helpers
//===----------------------------------------------------------------------===//

unsigned benchmarks::countLoc(const char *Source) {
  unsigned Lines = 0;
  bool NonBlank = false;
  for (const char *P = Source; *P; ++P) {
    if (*P == '\n') {
      Lines += NonBlank;
      NonBlank = false;
    } else if (!std::isspace(static_cast<unsigned char>(*P))) {
      NonBlank = true;
    }
  }
  return Lines + NonBlank;
}

char benchmarks::recursionKind(const lang::Program &Prog) {
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  // Call graph over procedures, plus tail-ness of each call site (a call
  // is tail when control continues directly at the procedure exit).
  unsigned NumProcs = Graph.numProcs();
  std::vector<std::vector<unsigned>> Callees(NumProcs);
  bool AllCallsTail = true;
  for (const cfg::HyperEdge &E : Graph.edges()) {
    if (E.Ctrl.TheKind != cfg::ControlAction::Kind::Call)
      continue;
    unsigned Caller = Graph.procOf(E.Src);
    Callees[Caller].push_back(E.Ctrl.Callee);
    if (E.Dsts[0] != Graph.proc(Caller).Exit)
      AllCallsTail = false;
  }
  // Detect a cycle in the call graph by DFS.
  std::vector<int> State(NumProcs, 0); // 0 unvisited, 1 on stack, 2 done
  bool Recursive = false;
  auto Dfs = [&](const auto &Self, unsigned P) -> void {
    State[P] = 1;
    for (unsigned Q : Callees[P]) {
      if (State[Q] == 1)
        Recursive = true;
      else if (State[Q] == 0)
        Self(Self, Q);
    }
    State[P] = 2;
  };
  for (unsigned P = 0; P != NumProcs; ++P)
    if (State[P] == 0)
      Dfs(Dfs, P);
  if (!Recursive)
    return 'n';
  return AllCallsTail ? 't' : 'r';
}
