//===- benchmarks/Programs.h - The paper's benchmark programs ---*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark programs of the paper's evaluation (§6.2): Table 1 (linear
/// expectation-invariant analysis), Table 2 top (Bayesian inference), and
/// Table 2 bottom (Markov decision processes with rewards).
///
/// The paper does not publish program sources; these are reconstructions
/// from the benchmark names, the reported sizes (#loc, rec?, #call), the
/// cited origins ([14, 49, 84], with loop bodies extracted for the
/// loop-invariant-generation benchmarks, §6.2), and — most importantly —
/// the invariants/values the paper reports, which pin down the programs'
/// probabilistic behavior. EXPERIMENTS.md records the paper-vs-measured
/// comparison per program.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_BENCHMARKS_PROGRAMS_H
#define PMAF_BENCHMARKS_PROGRAMS_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace pmaf {
namespace benchmarks {

/// A named benchmark program (embedded source).
struct BenchProgram {
  const char *Name;
  const char *Source;
};

/// Table 1: the 13 LEIA benchmarks.
const std::vector<BenchProgram> &leiaPrograms();

/// Table 2 (top): the 7 Bayesian-inference benchmarks.
const std::vector<BenchProgram> &biPrograms();

/// Table 2 (bottom): the 5 MDP-with-rewards benchmarks.
const std::vector<BenchProgram> &mdpPrograms();

/// Number of non-blank source lines (the tables' "#loc" column).
unsigned countLoc(const char *Source);

/// Recursion classification for the tables' "rec?" column:
/// 'n' = non-recursive, 't' = tail-recursive, 'r' = general recursion.
char recursionKind(const lang::Program &Prog);

} // namespace benchmarks
} // namespace pmaf

#endif // PMAF_BENCHMARKS_PROGRAMS_H
