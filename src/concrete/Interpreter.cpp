//===- concrete/Interpreter.cpp - Monte-Carlo program execution -----------===//

#include "concrete/Interpreter.h"

#include "support/NumParse.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace pmaf;
using namespace pmaf::concrete;
using namespace pmaf::lang;

Interpreter::Interpreter(const Program &Prog, uint64_t Seed)
    : Prog(Prog), TheRng(Seed) {}

uint64_t Interpreter::seedFromEnv(uint64_t Fallback) {
  const char *Env = std::getenv("PMAF_SEED");
  if (!Env)
    return Fallback;
  // Strict full-string parse: PMAF_SEED=banana used to silently run with
  // the fallback while the user believed they were replaying a fuzz
  // failure. Malformed values now warn, and the *effective* seed is
  // always printed so every run is replayable either way.
  uint64_t Seed = Fallback;
  std::optional<uint64_t> Parsed = support::parseUnsigned(Env);
  if (Parsed)
    Seed = *Parsed;
  else
    std::fprintf(stderr,
                 "pmaf: warning: PMAF_SEED='%s' is not an unsigned "
                 "integer; using fallback seed %llu [invalid-env-seed]\n",
                 Env, static_cast<unsigned long long>(Fallback));
  std::fprintf(stderr, "pmaf: concrete interpreter seed = %llu\n",
               static_cast<unsigned long long>(Seed));
  return Seed;
}

double Interpreter::evalExpr(const Expr &E,
                             const std::vector<double> &State) const {
  switch (E.kind()) {
  case Expr::Kind::Var:
    return State[E.varIndex()];
  case Expr::Kind::Number:
    return E.number().toDouble();
  case Expr::Kind::BoolLit:
    return E.boolValue() ? 1.0 : 0.0;
  case Expr::Kind::Add:
    return evalExpr(E.lhs(), State) + evalExpr(E.rhs(), State);
  case Expr::Kind::Sub:
    return evalExpr(E.lhs(), State) - evalExpr(E.rhs(), State);
  case Expr::Kind::Mul:
    return evalExpr(E.lhs(), State) * evalExpr(E.rhs(), State);
  case Expr::Kind::Div:
    return evalExpr(E.lhs(), State) / evalExpr(E.rhs(), State);
  }
  assert(false && "unknown expression kind");
  return 0.0;
}

bool Interpreter::evalCond(const Cond &C,
                           const std::vector<double> &State) const {
  switch (C.kind()) {
  case Cond::Kind::True:
    return true;
  case Cond::Kind::False:
    return false;
  case Cond::Kind::BoolVar:
    return State[C.varIndex()] != 0.0;
  case Cond::Kind::Cmp: {
    double L = evalExpr(C.cmpLhs(), State);
    double R = evalExpr(C.cmpRhs(), State);
    switch (C.cmpOp()) {
    case CmpOp::Eq:
      return L == R;
    case CmpOp::Ne:
      return L != R;
    case CmpOp::Le:
      return L <= R;
    case CmpOp::Ge:
      return L >= R;
    case CmpOp::Lt:
      return L < R;
    case CmpOp::Gt:
      return L > R;
    }
    assert(false && "unknown comparison");
    return false;
  }
  case Cond::Kind::Not:
    return !evalCond(C.operand(), State);
  case Cond::Kind::And:
    return evalCond(C.lhs(), State) && evalCond(C.rhs(), State);
  case Cond::Kind::Or:
    return evalCond(C.lhs(), State) || evalCond(C.rhs(), State);
  }
  assert(false && "unknown condition kind");
  return false;
}

double Interpreter::sample(const Dist &D, const std::vector<double> &State) {
  switch (D.TheKind) {
  case Dist::Kind::Bernoulli:
    return TheRng.bernoulli(evalExpr(*D.Params[0], State)) ? 1.0 : 0.0;
  case Dist::Kind::Uniform: {
    double Lo = evalExpr(*D.Params[0], State);
    double Hi = evalExpr(*D.Params[1], State);
    return TheRng.uniform(Lo, Hi);
  }
  case Dist::Kind::Gaussian: {
    double Mean = evalExpr(*D.Params[0], State);
    double Std = evalExpr(*D.Params[1], State);
    return Mean + Std * TheRng.gaussian();
  }
  case Dist::Kind::UniformInt: {
    double Lo = evalExpr(*D.Params[0], State);
    double Hi = evalExpr(*D.Params[1], State);
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<double>(TheRng.below(Span));
  }
  case Dist::Kind::Discrete: {
    double U = TheRng.uniform();
    double Acc = 0.0;
    for (size_t I = 0; I != D.Params.size(); ++I) {
      Acc += D.Weights[I].toDouble();
      if (U < Acc)
        return evalExpr(*D.Params[I], State);
    }
    // Sub-probability mass: the paper's distributions may sum to < 1; the
    // residual mass behaves like the last value for execution purposes.
    return evalExpr(*D.Params.back(), State);
  }
  }
  assert(false && "unknown distribution kind");
  return 0.0;
}

Interpreter::Flow Interpreter::exec(const Stmt &S, ExecResult &Result,
                                    unsigned MaxSteps,
                                    const NdetPolicy &Policy) {
  if (Rejected || Exhausted)
    return Flow::Return;
  if (++Result.Steps > MaxSteps) {
    Exhausted = true;
    return Flow::Return;
  }
  switch (S.kind()) {
  case Stmt::Kind::Skip:
    return Flow::Normal;
  case Stmt::Kind::Assign:
    Result.State[S.varIndex()] = evalExpr(S.value(), Result.State);
    return Flow::Normal;
  case Stmt::Kind::Sample:
    Result.State[S.varIndex()] = sample(S.dist(), Result.State);
    return Flow::Normal;
  case Stmt::Kind::Observe:
    if (!evalCond(S.observed(), Result.State))
      Rejected = true;
    return Rejected ? Flow::Return : Flow::Normal;
  case Stmt::Kind::Reward:
    Result.Reward += S.reward().toDouble();
    return Flow::Normal;
  case Stmt::Kind::Assert:
    // Assertions are checked statically; the concrete semantics pass
    // through (they are the identity kernel).
    return Flow::Normal;
  case Stmt::Kind::Block:
    for (const Stmt::Ptr &Child : S.stmts()) {
      Flow F = exec(*Child, Result, MaxSteps, Policy);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  case Stmt::Kind::If: {
    bool TakeThen = false;
    const Guard &G = S.guard();
    switch (G.TheKind) {
    case Guard::Kind::Cond:
      TakeThen = evalCond(*G.Phi, Result.State);
      break;
    case Guard::Kind::Prob:
      TakeThen = TheRng.bernoulli(G.Prob.toDouble());
      break;
    case Guard::Kind::Ndet:
      TakeThen = Policy ? Policy(Result.State) : TheRng.bernoulli(0.5);
      break;
    }
    if (TakeThen)
      return exec(S.thenStmt(), Result, MaxSteps, Policy);
    if (const Stmt *Else = S.elseStmt())
      return exec(*Else, Result, MaxSteps, Policy);
    return Flow::Normal;
  }
  case Stmt::Kind::While: {
    const Guard &G = S.guard();
    while (true) {
      if (Rejected || Exhausted)
        return Flow::Return;
      if (++Result.Steps > MaxSteps) {
        Exhausted = true;
        return Flow::Return;
      }
      bool Continue = false;
      switch (G.TheKind) {
      case Guard::Kind::Cond:
        Continue = evalCond(*G.Phi, Result.State);
        break;
      case Guard::Kind::Prob:
        Continue = TheRng.bernoulli(G.Prob.toDouble());
        break;
      case Guard::Kind::Ndet:
        Continue = Policy ? Policy(Result.State) : TheRng.bernoulli(0.5);
        break;
      }
      if (!Continue)
        return Flow::Normal;
      Flow F = exec(S.body(), Result, MaxSteps, Policy);
      if (F == Flow::Break)
        return Flow::Normal;
      if (F == Flow::Return)
        return Flow::Return;
      // Normal and Continue both re-test the guard.
    }
  }
  case Stmt::Kind::Call:
    return exec(*Prog.Procs[S.calleeIndex()].Body, Result, MaxSteps, Policy)
                   == Flow::Return && (Rejected || Exhausted)
               ? Flow::Return
               : Flow::Normal;
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  case Stmt::Kind::Return:
    return Flow::Return;
  }
  assert(false && "unknown statement kind");
  return Flow::Normal;
}

ExecResult Interpreter::run(unsigned ProcIndex, std::vector<double> Initial,
                            unsigned MaxSteps, NdetPolicy Policy) {
  assert(ProcIndex < Prog.Procs.size() && "no such procedure");
  Initial.resize(Prog.Vars.size(), 0.0);
  ExecResult Result;
  Result.State = std::move(Initial);
  Rejected = false;
  Exhausted = false;
  exec(*Prog.Procs[ProcIndex].Body, Result, MaxSteps, Policy);
  if (Rejected)
    Result.TheStatus = ExecResult::Status::ObserveFailed;
  else if (Exhausted)
    Result.TheStatus = ExecResult::Status::OutOfFuel;
  else
    Result.TheStatus = ExecResult::Status::Terminated;
  return Result;
}
