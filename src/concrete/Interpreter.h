//===- concrete/Interpreter.h - Monte-Carlo program execution ---*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter that executes probabilistic programs forward by
/// sampling, realizing the operational reading of the kernel semantics of
/// §3.3. It is used by the test suite to validate analysis results
/// statistically: posterior probabilities (§5.1), expected rewards (§5.2),
/// and expectation invariants (§5.3) are estimated over many runs and
/// compared against the static results.
///
/// Nondeterministic choices are resolved by a caller-supplied policy, which
/// lets tests range over schedulers (the semantics resolves nondeterminism
/// on the outside, §1).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CONCRETE_INTERPRETER_H
#define PMAF_CONCRETE_INTERPRETER_H

#include "lang/Ast.h"
#include "support/Rng.h"

#include <functional>
#include <vector>

namespace pmaf {
namespace concrete {

/// The outcome of one sampled execution.
struct ExecResult {
  enum class Status {
    Terminated,    ///< Reached the exit of the entry procedure.
    ObserveFailed, ///< An observe(phi) rejected the run (conditioning).
    OutOfFuel      ///< Step budget exhausted (treated as divergence).
  };

  Status TheStatus = Status::OutOfFuel;
  /// Final variable valuation (Booleans as 0/1).
  std::vector<double> State;
  /// Total reward accumulated by `reward(r)` statements.
  double Reward = 0.0;
  /// Number of executed statements.
  unsigned Steps = 0;

  bool terminated() const { return TheStatus == Status::Terminated; }
};

/// Resolves an ndet choice; receives the current state and returns true to
/// take the then/first branch.
using NdetPolicy =
    std::function<bool(const std::vector<double> &State)>;

/// Samples executions of a program.
class Interpreter {
public:
  /// \param Prog program to execute (must outlive the interpreter).
  /// \param Seed RNG seed; every run draws from the same deterministic
  ///        stream, so whole experiments are reproducible.
  Interpreter(const lang::Program &Prog, uint64_t Seed);

  /// Resolves the seed for a sampling experiment: the PMAF_SEED
  /// environment variable when set (so soundness-fuzz failures replay
  /// exactly — the CLI's --seed= and the test suites funnel through
  /// here), else \p Fallback.
  static uint64_t seedFromEnv(uint64_t Fallback);

  /// Runs procedure \p ProcIndex from \p Initial with at most \p MaxSteps
  /// statement executions. \p Policy resolves ndet choices (defaults to a
  /// fair coin, i.e. a uniformly random scheduler).
  ExecResult run(unsigned ProcIndex, std::vector<double> Initial,
                 unsigned MaxSteps = 100000, NdetPolicy Policy = nullptr);

  /// Evaluates an arithmetic expression in \p State.
  double evalExpr(const lang::Expr &E,
                  const std::vector<double> &State) const;

  /// Evaluates a logical condition in \p State.
  bool evalCond(const lang::Cond &C, const std::vector<double> &State) const;

private:
  enum class Flow { Normal, Break, Continue, Return };

  Flow exec(const lang::Stmt &S, ExecResult &Result, unsigned MaxSteps,
            const NdetPolicy &Policy);

  double sample(const lang::Dist &D, const std::vector<double> &State);

  const lang::Program &Prog;
  Rng TheRng;
  bool Rejected = false;
  bool Exhausted = false;
};

} // namespace concrete
} // namespace pmaf

#endif // PMAF_CONCRETE_INTERPRETER_H
