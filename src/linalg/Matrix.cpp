//===- linalg/Matrix.cpp - Dense double matrices --------------------------===//

#include "linalg/Matrix.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace pmaf;

namespace {

/// Parallelize a product only when it is worth a trip through the pool:
/// below ~64^3 multiply-adds the fork/join overhead dominates.
constexpr size_t ParallelFlopThreshold = size_t(1) << 18;

} // namespace

Matrix Matrix::identity(size_t Size) {
  Matrix Result(Size, Size);
  for (size_t I = 0; I != Size; ++I)
    Result.at(I, I) = 1.0;
  return Result;
}

Matrix Matrix::operator*(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "matrix product dimension mismatch");
  Matrix Result(NumRows, Other.NumCols);
  // One row block, rows [RowBegin, RowEnd). The i-k-j loop order streams
  // both Other and the output row-major; the zero test skips the sparse
  // bulk of transformer matrices. Each output row is accumulated in the
  // same k-order no matter how rows are blocked, so sequential and
  // parallel products agree bit-for-bit.
  auto RowBlock = [&](size_t RowBegin, size_t RowEnd) {
    for (size_t I = RowBegin; I != RowEnd; ++I) {
      for (size_t K = 0; K != NumCols; ++K) {
        double Lhs = Data[I * NumCols + K];
        if (Lhs == 0.0)
          continue;
        const double *OtherRow = &Other.Data[K * Other.NumCols];
        double *OutRow = &Result.Data[I * Other.NumCols];
        for (size_t J = 0; J != Other.NumCols; ++J)
          OutRow[J] += Lhs * OtherRow[J];
      }
    }
  };
  support::ThreadPool *Pool = support::sharedPool();
  if (Pool && NumRows > 1 &&
      NumRows * NumCols * Other.NumCols >= ParallelFlopThreshold)
    Pool->parallelForChunks(0, NumRows, RowBlock);
  else
    RowBlock(0, NumRows);
  return Result;
}

Matrix &Matrix::operator+=(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "matrix sum dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] += Other.Data[I];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "matrix difference dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] -= Other.Data[I];
  return *this;
}

Matrix Matrix::operator+(const Matrix &Other) const {
  Matrix Result = *this;
  Result += Other;
  return Result;
}

Matrix Matrix::operator-(const Matrix &Other) const {
  Matrix Result = *this;
  Result -= Other;
  return Result;
}

void Matrix::scaleInPlace(double Factor) {
  for (double &Entry : Data)
    Entry *= Factor;
}

void Matrix::addScaledInPlace(const Matrix &Other, double Factor) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "addScaledInPlace dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] += Other.Data[I] * Factor;
}

Matrix Matrix::scaled(double Factor) const {
  Matrix Result = *this;
  Result.scaleInPlace(Factor);
  return Result;
}

void Matrix::pointwiseMinInPlace(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "pointwiseMin dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = std::min(Data[I], Other.Data[I]);
}

void Matrix::pointwiseMaxInPlace(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "pointwiseMax dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = std::max(Data[I], Other.Data[I]);
}

Matrix Matrix::pointwiseMin(const Matrix &Other) const {
  Matrix Result = *this;
  Result.pointwiseMinInPlace(Other);
  return Result;
}

Matrix Matrix::pointwiseMax(const Matrix &Other) const {
  Matrix Result = *this;
  Result.pointwiseMaxInPlace(Other);
  return Result;
}

bool Matrix::leqAll(const Matrix &Other, double Tolerance) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "leqAll dimension mismatch");
  for (size_t I = 0; I != Data.size(); ++I)
    if (Data[I] > Other.Data[I] + Tolerance)
      return false;
  return true;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "maxAbsDiff dimension mismatch");
  double Max = 0.0;
  for (size_t I = 0; I != Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Other.Data[I]));
  return Max;
}

double Matrix::rowSum(size_t Row) const {
  assert(Row < NumRows && "rowSum index out of range");
  double Sum = 0.0;
  for (size_t J = 0; J != NumCols; ++J)
    Sum += Data[Row * NumCols + J];
  return Sum;
}

std::vector<double>
Matrix::applyToRowVector(const std::vector<double> &V) const {
  assert(V.size() == NumRows && "row-vector product dimension mismatch");
  std::vector<double> Result(NumCols, 0.0);
  for (size_t I = 0; I != NumRows; ++I) {
    if (V[I] == 0.0)
      continue;
    for (size_t J = 0; J != NumCols; ++J)
      Result[J] += V[I] * Data[I * NumCols + J];
  }
  return Result;
}

std::string Matrix::toString(int Precision) const {
  std::string Out;
  char Buffer[64];
  for (size_t I = 0; I != NumRows; ++I) {
    for (size_t J = 0; J != NumCols; ++J) {
      std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, at(I, J));
      Out += Buffer;
      Out += J + 1 == NumCols ? '\n' : ' ';
    }
  }
  return Out;
}
