//===- linalg/Matrix.h - Dense double matrices ------------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major matrices over double. The Bayesian-inference domain of
/// §5.1 represents a two-vocabulary distribution transformer as a
/// 2^|Var| x 2^|Var'| matrix, and the concrete kernel semantics of §3.3
/// degenerates to Markov transition matrices for finite state spaces
/// (footnotes 2-3 of the paper). The paper's prototype used Lacaml (BLAS);
/// this is the self-contained replacement.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_LINALG_MATRIX_H
#define PMAF_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace pmaf {

/// A dense row-major matrix of doubles.
class Matrix {
public:
  /// Constructs an empty 0x0 matrix.
  Matrix() = default;

  /// Constructs a Rows x Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// \returns the Size x Size identity matrix.
  static Matrix identity(size_t Size);

  /// \returns the Rows x Cols all-zero matrix.
  static Matrix zero(size_t Rows, size_t Cols) { return Matrix(Rows, Cols); }

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t Row, size_t Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }
  double at(size_t Row, size_t Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }

  /// Matrix product; asserts inner dimensions agree. Above a size
  /// threshold the row blocks are computed in parallel on the shared pool
  /// (support::setSharedParallelism); each row's accumulation order is the
  /// same in both paths, so the result is bit-identical regardless of the
  /// thread count.
  Matrix operator*(const Matrix &Other) const;

  /// Pointwise sum; asserts dimensions agree.
  Matrix operator+(const Matrix &Other) const;

  /// Pointwise difference; asserts dimensions agree.
  Matrix operator-(const Matrix &Other) const;

  /// In-place pointwise sum/difference — the temporary-free forms the hot
  /// node-update paths use.
  Matrix &operator+=(const Matrix &Other);
  Matrix &operator-=(const Matrix &Other);

  /// Scalar multiple.
  Matrix scaled(double Factor) const;

  /// In-place scalar multiple.
  void scaleInPlace(double Factor);

  /// this += Other * Factor, without materializing Other.scaled(Factor).
  void addScaledInPlace(const Matrix &Other, double Factor);

  /// Pointwise minimum; asserts dimensions agree.
  Matrix pointwiseMin(const Matrix &Other) const;

  /// Pointwise maximum; asserts dimensions agree.
  Matrix pointwiseMax(const Matrix &Other) const;

  /// In-place pointwise minimum/maximum.
  void pointwiseMinInPlace(const Matrix &Other);
  void pointwiseMaxInPlace(const Matrix &Other);

  /// \returns true if every entry of *this is <= the corresponding entry of
  /// \p Other plus \p Tolerance.
  bool leqAll(const Matrix &Other, double Tolerance = 0.0) const;

  /// \returns max |this[i,j] - Other[i,j]|.
  double maxAbsDiff(const Matrix &Other) const;

  /// \returns the sum of the entries of row \p Row.
  double rowSum(size_t Row) const;

  /// Left-multiplies a row vector: (V^T M)^T. Asserts sizes agree.
  std::vector<double> applyToRowVector(const std::vector<double> &V) const;

  /// Renders with \p Precision significant digits, one row per line.
  std::string toString(int Precision = 6) const;

  bool operator==(const Matrix &Other) const {
    return NumRows == Other.NumRows && NumCols == Other.NumCols &&
           Data == Other.Data;
  }

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

} // namespace pmaf

#endif // PMAF_LINALG_MATRIX_H
