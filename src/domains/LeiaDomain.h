//===- domains/LeiaDomain.h - Linear expectation-invariant analysis -------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PMA I of §5.3: linear expectation-invariant analysis (LEIA), the
/// paper's new instantiation. A value is a pair (P, EP) of two-vocabulary
/// convex sets over nonnegative program variables:
///
///  * P  ⊆ R^{2n}_{>=0} over (x, x') — ordinary relational invariants
///    between the state at a node and the state at the procedure exit;
///  * EP ⊆ R^{2n}_{>=0} over (x, E[x']) — *expectation* invariants relating
///    the pre-state to the expected exit state,
///
/// maintained with the invariant 0 ⊔ P[E[x']/x'] ⊒ EP (the expected value
/// always lies in the subprobability cone of the support, footnote 5).
///
/// Operators follow §5.3 exactly: composition uses the tower property
/// (identical rename/meet/project steps for both components, shared in
/// liftedMeet); conditional-choice meets the branches with phi / ¬phi on
/// the P side and rebuilds a pessimistic EP; probabilistic-choice forms
/// the affine combination E = p·x'' + (1-p)·x''' through two fresh
/// vocabularies; nondeterministic-choice joins. Widening is per §5.3:
/// conditional and nondeterministic loops rebuild EP from the widened P;
/// probabilistic loops do no EP extrapolation, relying on the
/// finite-precision convergence mechanism of §6.1 (roundedCoefficients).
///
/// The domain is a template over the numeric backend NumV
/// (poly/NumericDomain.h): monolithic polyhedra reproduce the original
/// §5.3 evaluation; the ladder backend (poly/Ladder.h, the default)
/// computes the *same* sets through packed, lazily-escalated
/// representations; the standalone zones/intervals backends are cheap
/// sound over-approximations (they drop constraints outside their
/// fragment). The §5.3 operator sequence is byte-for-byte identical
/// across backends — only the representation underneath changes.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_LEIADOMAIN_H
#define PMAF_DOMAINS_LEIADOMAIN_H

#include "core/Domain.h"
#include "poly/Intervals.h"
#include "poly/Ladder.h"
#include "poly/Polyhedron.h"
#include "poly/Zones.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// A LEIA value: the product of an ordinary and an expectation component,
/// both of dimension 2n with vocabulary order (x_0..x_{n-1}, out_0..out_{n-1})
/// where `out` is x' in P and E[x'] in EP.
template <poly::NumericDomain NumV> struct LeiaValueT {
  NumV P;
  NumV EP;
  /// Cached 0 ⊔ EP (the comparison cone of §5.3); maintained by the
  /// domain's canonicalization so the frequent order tests need no joins.
  NumV ECone;
};

/// The LEIA interpretation I = <I, ⟦·⟧_I> (§5.3), generic over the
/// numeric backend.
template <poly::NumericDomain NumV> class LeiaDomainT {
public:
  using Value = LeiaValueT<NumV>;

  /// Backend values are value types over exact rationals (the polyhedra
  /// conversion memo is thread-local, the stats counters atomic), and the
  /// domain itself only reads the program: concurrent interpret and
  /// operator calls are safe (the LEIA precompile win — every `seq` edge
  /// rebuilds its value from scratch).
  static constexpr bool ThreadSafeInterpret = true;

  /// \param Prog program under analysis (all variables must be real-valued
  /// and are assumed nonnegative, after the paper's positive-negative
  /// decomposition).
  /// \param Tolerance relative tolerance of the fixpoint-detection
  /// comparison: the analogue of §6.1's reliance on ascending float chains
  /// stabilizing. Arithmetic stays exact; only `equal` is approximate, so
  /// geometrically-converging expectation chains (probabilistic loops and
  /// recursion) stop once successive iterates agree to this tolerance.
  explicit LeiaDomainT(const lang::Program &Prog, double Tolerance = 1e-9);

  unsigned numVars() const { return NumVars; }

  Value bottom() const;
  Value one() const;

  Value extend(const Value &A, const Value &B) const;
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const;
  Value probChoice(const Rational &P, const Value &A, const Value &B) const;
  Value ndetChoice(const Value &A, const Value &B) const;

  Value interpret(const lang::Stmt *Action) const;

  bool leq(const Value &A, const Value &B) const;
  bool equal(const Value &A, const Value &B) const;

  /// (P1, EP1) widenCond (P2, EP2) = (P1 widen P2, 0 ⊔ P2[E[x']/x'])
  /// — pessimistic, per Obs 5.7 (a loop invariant of the body need not
  /// hold on exit of a conditional loop).
  Value widenCond(const Value &Old, const Value &New) const;
  /// No EP extrapolation (§5.3: "does no extrapolation in the EP
  /// component").
  Value widenProb(const Value &Old, const Value &New) const;
  Value widenNdet(const Value &Old, const Value &New) const;
  /// Recursion cuts (seq/call-headed widening points): widen P, keep the
  /// new EP — rebuilding as for ndet loops would erase the expectation
  /// part of every recursive summary; stabilization of the EP chain comes
  /// from the §6.1 finite-precision mechanism, and any stabilized value is
  /// a sound prefixed point (Thm 4.6).
  Value widenCall(const Value &Old, const Value &New) const;

  std::string toString(const Value &A) const;

  /// Human-readable expectation invariants of a summary, e.g.
  /// "E[x' + y'] == x + y + 3".
  std::vector<std::string> describeInvariants(const Value &A) const;

  /// Bounds of E[Objective'] (a linear combination of post-vocabulary
  /// expectations with rational coefficients, one per variable) as a
  /// function evaluated at the concrete pre-state \p PreState. Returns
  /// {min, max} with nullopt for unbounded sides.
  std::pair<std::optional<Rational>, std::optional<Rational>>
  expectationBounds(const Value &A, const std::vector<Rational> &Objective,
                    const std::vector<Rational> &PreState) const;

  /// Fixpoint query hook for checks/Checker: bounds of E[Objective'] with
  /// the pre-vocabulary left unconstrained — {min, max} over every
  /// pre-state admitted by the analyzed support, nullopt for unbounded
  /// sides. Returns nullopt altogether when the value is bottom or the
  /// expectation slice is empty (the assertion point is unreachable /
  /// nonterminating: vacuously safe).
  std::optional<std::pair<std::optional<Rational>, std::optional<Rational>>>
  objectiveBounds(const Value &A,
                  const std::vector<Rational> &Objective) const;

  /// Snapshot of the numeric layer's process-wide counters
  /// (core::ReportsNumericStats); the solver turns these into per-solve
  /// deltas.
  static core::NumericLayerStats numericStats();

private:
  /// Meets \p P with the over-approximation of condition \p Phi on the
  /// pre-vocabulary ((negated ? ¬phi : phi)).
  NumV meetCond(const NumV &P, const lang::Cond &Phi, bool Negated) const;

  /// Translates an arithmetic expression over the pre-vocabulary into a
  /// linear expression over 2n dims; nullopt if nonlinear.
  std::optional<poly::LinearExpr> exprToLinear(const lang::Expr &E) const;

  /// The "0" element: E[x'] = 0 with x unconstrained (footnote 5).
  NumV zeroExpectation() const;

  /// 0 ⊔ P[E[x']/x'] (the renaming is the identity in our layout).
  NumV rebuildFromSupport(const NumV &P) const;

  /// Restores the domain invariant and applies precision limiting; every
  /// public operation funnels its result through here.
  Value canonicalize(NumV P, NumV EP) const;

  /// The shared two-vocabulary lift: extends both operands by \p Extra
  /// fresh dimensions, renames them into a common layout, and meets.
  /// Composition (for the P *and* EP components alike) and
  /// probabilistic-choice both reduce to this one sequence, each with its
  /// own precomputed permutation pair.
  NumV liftedMeet(const NumV &A, const NumV &B, unsigned Extra,
                  const std::vector<unsigned> &PermA,
                  const std::vector<unsigned> &PermB) const;

  /// Relational composition of two 2n-dim two-vocabulary values by
  /// rename/meet/project through a fresh middle vocabulary.
  NumV composeRelations(const NumV &A, const NumV &B) const;

  /// Universe with nonnegativity on all 2n dimensions.
  NumV nonnegUniverse() const;

  const lang::Program *Prog;
  unsigned NumVars;
  double Tolerance;

  /// The rename schedules of the lift-based operators, computed once per
  /// domain instead of once per operation: composition works in 3n dims
  /// [x, y, t] (A relates x to t, B relates t to y); probabilistic choice
  /// in 4n dims [x, E, t1, t2] (branch expectations move to t1/t2).
  std::vector<unsigned> ComposePermA, ComposePermB;
  std::vector<unsigned> ProbPermA, ProbPermB;
};

// The template is explicitly instantiated (LeiaDomain.cpp) for the four
// numeric backends; everything else picks one of these.
extern template class LeiaDomainT<poly::Polyhedron>;
extern template class LeiaDomainT<poly::LadderValue>;
extern template class LeiaDomainT<poly::Zones>;
extern template class LeiaDomainT<poly::Intervals>;

/// The default LEIA instantiation: the exact ladder backend
/// (`--numeric=ladder`), which reproduces the polyhedra-mode invariants.
using LeiaValue = LeiaValueT<poly::LadderValue>;
using LeiaDomain = LeiaDomainT<poly::LadderValue>;

static_assert(core::PreMarkovAlgebra<LeiaDomainT<poly::Polyhedron>>,
              "LEIA over polyhedra must satisfy the PMA interface");
static_assert(core::PreMarkovAlgebra<LeiaDomainT<poly::LadderValue>>,
              "LEIA over the ladder must satisfy the PMA interface");
static_assert(core::PreMarkovAlgebra<LeiaDomainT<poly::Zones>>,
              "LEIA over zones must satisfy the PMA interface");
static_assert(core::PreMarkovAlgebra<LeiaDomainT<poly::Intervals>>,
              "LEIA over intervals must satisfy the PMA interface");
static_assert(core::ReportsNumericStats<LeiaDomain>,
              "LEIA must report numeric-layer stats to the solver");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_LEIADOMAIN_H
