//===- domains/LeiaDomain.h - Linear expectation-invariant analysis -------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PMA I of §5.3: linear expectation-invariant analysis (LEIA), the
/// paper's new instantiation. A value is a pair (P, EP) of two-vocabulary
/// polyhedra over nonnegative program variables:
///
///  * P  ⊆ R^{2n}_{>=0} over (x, x') — ordinary relational invariants
///    between the state at a node and the state at the procedure exit;
///  * EP ⊆ R^{2n}_{>=0} over (x, E[x']) — *expectation* invariants relating
///    the pre-state to the expected exit state,
///
/// maintained with the invariant 0 ⊔ P[E[x']/x'] ⊒ EP (the expected value
/// always lies in the subprobability cone of the support, footnote 5).
///
/// Operators follow §5.3 exactly: composition uses the tower property
/// (identical rename/meet/project steps for both components);
/// conditional-choice meets the branches with phi / ¬phi on the P side and
/// rebuilds a pessimistic EP; probabilistic-choice forms the affine
/// combination E = p·x'' + (1-p)·x''' through two fresh vocabularies;
/// nondeterministic-choice joins. Widening is per §5.3: conditional and
/// nondeterministic loops rebuild EP from the widened P; probabilistic
/// loops do no EP extrapolation, relying on the finite-precision
/// convergence mechanism of §6.1 (Polyhedron::roundedCoefficients here).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_LEIADOMAIN_H
#define PMAF_DOMAINS_LEIADOMAIN_H

#include "core/Domain.h"
#include "poly/Polyhedron.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// A LEIA value: the product of an ordinary and an expectation polyhedron,
/// both of dimension 2n with vocabulary order (x_0..x_{n-1}, out_0..out_{n-1})
/// where `out` is x' in P and E[x'] in EP.
struct LeiaValue {
  poly::Polyhedron P;
  poly::Polyhedron EP;
  /// Cached 0 ⊔ EP (the comparison cone of §5.3); maintained by the
  /// domain's canonicalization so the frequent order tests need no joins.
  poly::Polyhedron ECone;
};

/// The LEIA interpretation I = <I, ⟦·⟧_I> (§5.3).
class LeiaDomain {
public:
  using Value = LeiaValue;

  /// Polyhedra are value types over exact rationals with no shared caches,
  /// and the domain itself only reads the program: concurrent interpret
  /// and operator calls are safe (the LEIA precompile win — every `seq`
  /// edge rebuilds polyhedra from scratch).
  static constexpr bool ThreadSafeInterpret = true;

  /// \param Prog program under analysis (all variables must be real-valued
  /// and are assumed nonnegative, after the paper's positive-negative
  /// decomposition).
  /// \param Tolerance relative tolerance of the fixpoint-detection
  /// comparison: the analogue of §6.1's reliance on ascending float chains
  /// stabilizing. Arithmetic stays exact; only `equal` is approximate, so
  /// geometrically-converging expectation chains (probabilistic loops and
  /// recursion) stop once successive iterates agree to this tolerance.
  explicit LeiaDomain(const lang::Program &Prog, double Tolerance = 1e-9);

  unsigned numVars() const { return NumVars; }

  Value bottom() const;
  Value one() const;

  Value extend(const Value &A, const Value &B) const;
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const;
  Value probChoice(const Rational &P, const Value &A, const Value &B) const;
  Value ndetChoice(const Value &A, const Value &B) const;

  Value interpret(const lang::Stmt *Action) const;

  bool leq(const Value &A, const Value &B) const;
  bool equal(const Value &A, const Value &B) const;

  /// (P1, EP1) widenCond (P2, EP2) = (P1 widen P2, 0 ⊔ P2[E[x']/x'])
  /// — pessimistic, per Obs 5.7 (a loop invariant of the body need not
  /// hold on exit of a conditional loop).
  Value widenCond(const Value &Old, const Value &New) const;
  /// No EP extrapolation (§5.3: "does no extrapolation in the EP
  /// component").
  Value widenProb(const Value &Old, const Value &New) const;
  Value widenNdet(const Value &Old, const Value &New) const;
  /// Recursion cuts (seq/call-headed widening points): widen P, keep the
  /// new EP — rebuilding as for ndet loops would erase the expectation
  /// part of every recursive summary; stabilization of the EP chain comes
  /// from the §6.1 finite-precision mechanism, and any stabilized value is
  /// a sound prefixed point (Thm 4.6).
  Value widenCall(const Value &Old, const Value &New) const;

  std::string toString(const Value &A) const;

  /// Human-readable expectation invariants of a summary, e.g.
  /// "E[x' + y'] == x + y + 3".
  std::vector<std::string> describeInvariants(const Value &A) const;

  /// Bounds of E[Objective'] (a linear combination of post-vocabulary
  /// expectations with rational coefficients, one per variable) as a
  /// function evaluated at the concrete pre-state \p PreState. Returns
  /// {min, max} with nullopt for unbounded sides.
  std::pair<std::optional<Rational>, std::optional<Rational>>
  expectationBounds(const Value &A, const std::vector<Rational> &Objective,
                    const std::vector<Rational> &PreState) const;

private:
  /// Meets \p P with the over-approximation of condition \p Phi on the
  /// pre-vocabulary ((negated ? ¬phi : phi)).
  poly::Polyhedron meetCond(const poly::Polyhedron &P,
                            const lang::Cond &Phi, bool Negated) const;

  /// Translates an arithmetic expression over the pre-vocabulary into a
  /// linear expression over 2n dims; nullopt if nonlinear.
  std::optional<poly::LinearExpr> exprToLinear(const lang::Expr &E) const;

  /// The "0" element: E[x'] = 0 with x unconstrained (footnote 5).
  poly::Polyhedron zeroExpectation() const;

  /// 0 ⊔ P[E[x']/x'] (the renaming is the identity in our layout).
  poly::Polyhedron rebuildFromSupport(const poly::Polyhedron &P) const;

  /// Restores the domain invariant and applies precision limiting; every
  /// public operation funnels its result through here.
  Value canonicalize(poly::Polyhedron P, poly::Polyhedron EP) const;

  /// Relational composition of two 2n-dim two-vocabulary polyhedra by
  /// rename/meet/project through a fresh middle vocabulary.
  poly::Polyhedron composeRelations(const poly::Polyhedron &A,
                                    const poly::Polyhedron &B) const;

  /// Universe with nonnegativity on all 2n dimensions.
  poly::Polyhedron nonnegUniverse() const;

  const lang::Program *Prog;
  unsigned NumVars;
  double Tolerance;
};

static_assert(core::PreMarkovAlgebra<LeiaDomain>,
              "LeiaDomain must satisfy the PMA interface");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_LEIADOMAIN_H
