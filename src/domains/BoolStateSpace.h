//===- domains/BoolStateSpace.h - Boolean-program state spaces --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State-space helpers for Boolean programs (§5.1): states are assignments
/// Var -> B, encoded as bitmasks over the program's Boolean variables, so a
/// program with n Boolean variables has 2^n states. Shared by the
/// Bayesian-inference domain, the concrete kernel semantics, and the
/// Claret-et-al.-style forward baseline.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_BOOLSTATESPACE_H
#define PMAF_DOMAINS_BOOLSTATESPACE_H

#include "lang/Ast.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// Bitmask view of the Boolean variables of a program.
class BoolStateSpace {
public:
  /// Builds the space over all Boolean variables of \p Prog; asserts the
  /// program has no real-valued variables (BI is a Boolean-program
  /// analysis) and at most MaxVars Booleans.
  explicit BoolStateSpace(const lang::Program &Prog);

  static constexpr unsigned MaxVars = 20;

  const lang::Program &program() const { return *Prog; }
  unsigned numVars() const { return NumVars; }
  size_t numStates() const { return size_t(1) << NumVars; }

  bool get(size_t State, unsigned VarIndex) const {
    return (State >> VarIndex) & 1;
  }
  size_t set(size_t State, unsigned VarIndex, bool Value) const {
    size_t Bit = size_t(1) << VarIndex;
    return Value ? (State | Bit) : (State & ~Bit);
  }

  /// Evaluates a Boolean-program expression (Boolean literal or variable)
  /// in \p State.
  bool evalExpr(const lang::Expr &E, size_t State) const;

  /// Evaluates a logical condition in \p State.
  bool evalCond(const lang::Cond &C, size_t State) const;

  /// Renders a state as e.g. "{b1=T, b2=F}".
  std::string stateToString(size_t State) const;

private:
  const lang::Program *Prog;
  unsigned NumVars = 0;
};

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_BOOLSTATESPACE_H
