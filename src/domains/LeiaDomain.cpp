//===- domains/LeiaDomain.cpp - Linear expectation-invariant analysis -----===//

#include "domains/LeiaDomain.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace pmaf;
using namespace pmaf::domains;
using namespace pmaf::lang;
using namespace pmaf::poly;

template <NumericDomain NumV>
LeiaDomainT<NumV>::LeiaDomainT(const Program &Prog, double Tolerance)
    : Prog(&Prog), NumVars(static_cast<unsigned>(Prog.Vars.size())),
      Tolerance(Tolerance) {
  for ([[maybe_unused]] const VarInfo &Var : Prog.Vars)
    assert(Var.IsReal && "LEIA analyzes real-valued (nonnegative) programs");
  // Rename schedules of the lift-based operators (§5.3), hoisted out of
  // the per-operation hot path.
  unsigned N = NumVars;
  ComposePermA.resize(3 * N);
  ComposePermB.resize(3 * N);
  for (unsigned I = 0; I != N; ++I) {
    ComposePermA[I] = I;             // pre stays
    ComposePermA[N + I] = 2 * N + I; // A's post goes to the middle
    ComposePermA[2 * N + I] = N + I; // fresh dims take the post slot
    ComposePermB[I] = 2 * N + I;     // B's pre goes to the middle
    ComposePermB[N + I] = N + I;     // post stays
    ComposePermB[2 * N + I] = I;     // fresh dims take the pre slot
  }
  ProbPermA.resize(4 * N);
  ProbPermB.resize(4 * N);
  for (unsigned I = 0; I != 4 * N; ++I)
    ProbPermA[I] = ProbPermB[I] = I;
  for (unsigned I = 0; I != N; ++I) {
    ProbPermA[N + I] = 2 * N + I; // A's E-vocabulary becomes t1
    ProbPermA[2 * N + I] = N + I;
    ProbPermB[N + I] = 3 * N + I; // B's E-vocabulary becomes t2
    ProbPermB[3 * N + I] = N + I;
  }
}

template <NumericDomain NumV>
core::NumericLayerStats LeiaDomainT<NumV>::numericStats() {
  const NumericCounters &C = numericCounters();
  core::NumericLayerStats S;
  S.MinimizationCalls = C.MinimizationCalls.load(std::memory_order_relaxed);
  S.ConversionCacheHits =
      C.ConversionCacheHits.load(std::memory_order_relaxed);
  S.ConversionCacheMisses =
      C.ConversionCacheMisses.load(std::memory_order_relaxed);
  S.SharedCacheHits = C.SharedCacheHits.load(std::memory_order_relaxed);
  S.CacheEvictions = C.CacheEvictions.load(std::memory_order_relaxed);
  S.Escalations = C.LadderEscalations.load(std::memory_order_relaxed);
  S.PeakGeneratorRows =
      C.PeakGeneratorRows.load(std::memory_order_relaxed);
  S.MaxPackWidth = C.MaxPackWidth.load(std::memory_order_relaxed);
  return S;
}

//===----------------------------------------------------------------------===//
// Basic values
//===----------------------------------------------------------------------===//

template <NumericDomain NumV> NumV LeiaDomainT<NumV>::nonnegUniverse() const {
  unsigned D = 2 * NumVars;
  std::vector<Constraint> Cons;
  for (unsigned I = 0; I != D; ++I)
    Cons.push_back(Constraint::ge(LinearExpr::variable(D, I),
                                  LinearExpr::constant(D, Rational(0))));
  return NumV::fromConstraints(D, Cons);
}

template <NumericDomain NumV> NumV LeiaDomainT<NumV>::zeroExpectation() const {
  unsigned D = 2 * NumVars;
  std::vector<Constraint> Cons;
  for (unsigned I = 0; I != NumVars; ++I) {
    Cons.push_back(Constraint::ge(LinearExpr::variable(D, I),
                                  LinearExpr::constant(D, Rational(0))));
    Cons.push_back(Constraint::eq(LinearExpr::variable(D, NumVars + I),
                                  LinearExpr::constant(D, Rational(0))));
  }
  return NumV::fromConstraints(D, Cons);
}

template <NumericDomain NumV>
NumV LeiaDomainT<NumV>::rebuildFromSupport(const NumV &P) const {
  // 0 ⊔ P[E[x']/x']; the renaming is the identity under our layout.
  return zeroExpectation().join(P);
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::canonicalize(NumV P, NumV EP) const -> Value {
  if (P.isEmpty())
    return bottom();
  if (EP.isEmpty())
    EP = rebuildFromSupport(P); // Cannot happen semantically.
  NumV ECone = zeroExpectation().join(EP);
  return Value{std::move(P), std::move(EP), std::move(ECone)};
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::bottom() const -> Value {
  NumV Zero = zeroExpectation();
  return Value{NumV::empty(2 * NumVars), Zero, Zero};
}

template <NumericDomain NumV> auto LeiaDomainT<NumV>::one() const -> Value {
  unsigned D = 2 * NumVars;
  std::vector<Constraint> Cons;
  for (unsigned I = 0; I != NumVars; ++I) {
    Cons.push_back(Constraint::ge(LinearExpr::variable(D, I),
                                  LinearExpr::constant(D, Rational(0))));
    Cons.push_back(Constraint::eq(LinearExpr::variable(D, NumVars + I),
                                  LinearExpr::variable(D, I)));
  }
  NumV Id = NumV::fromConstraints(D, Cons);
  NumV ECone = zeroExpectation().join(Id);
  return Value{Id, Id, std::move(ECone)};
}

//===----------------------------------------------------------------------===//
// Expression / condition translation
//===----------------------------------------------------------------------===//

namespace {

/// Recursively folds an expression to a rational constant if possible.
std::optional<Rational> foldConstant(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return E.number();
  case Expr::Kind::Var:
  case Expr::Kind::BoolLit:
    return std::nullopt;
  default:
    break;
  }
  auto L = foldConstant(E.lhs()), R = foldConstant(E.rhs());
  if (!L || !R)
    return std::nullopt;
  switch (E.kind()) {
  case Expr::Kind::Add:
    return *L + *R;
  case Expr::Kind::Sub:
    return *L - *R;
  case Expr::Kind::Mul:
    return *L * *R;
  case Expr::Kind::Div:
    if (R->isZero())
      return std::nullopt;
    return *L / *R;
  default:
    return std::nullopt;
  }
}

} // namespace

template <NumericDomain NumV>
std::optional<LinearExpr> LeiaDomainT<NumV>::exprToLinear(const Expr &E) const {
  unsigned D = 2 * NumVars;
  switch (E.kind()) {
  case Expr::Kind::Var:
    return LinearExpr::variable(D, E.varIndex());
  case Expr::Kind::Number:
    return LinearExpr::constant(D, E.number());
  case Expr::Kind::BoolLit:
    return std::nullopt;
  case Expr::Kind::Add: {
    auto L = exprToLinear(E.lhs()), R = exprToLinear(E.rhs());
    if (!L || !R)
      return std::nullopt;
    return *L + *R;
  }
  case Expr::Kind::Sub: {
    auto L = exprToLinear(E.lhs()), R = exprToLinear(E.rhs());
    if (!L || !R)
      return std::nullopt;
    return *L - *R;
  }
  case Expr::Kind::Mul: {
    if (auto C = foldConstant(E.lhs())) {
      auto R = exprToLinear(E.rhs());
      if (!R)
        return std::nullopt;
      return R->scaled(*C);
    }
    if (auto C = foldConstant(E.rhs())) {
      auto L = exprToLinear(E.lhs());
      if (!L)
        return std::nullopt;
      return L->scaled(*C);
    }
    return std::nullopt;
  }
  case Expr::Kind::Div: {
    auto C = foldConstant(E.rhs());
    if (!C || C->isZero())
      return std::nullopt;
    auto L = exprToLinear(E.lhs());
    if (!L)
      return std::nullopt;
    return L->scaled(Rational(1) / *C);
  }
  }
  assert(false && "unknown expression kind");
  return std::nullopt;
}

template <NumericDomain NumV>
NumV LeiaDomainT<NumV>::meetCond(const NumV &P, const Cond &Phi,
                                 bool Negated) const {
  switch (Phi.kind()) {
  case Cond::Kind::True:
    return Negated ? NumV::empty(P.dim()) : P;
  case Cond::Kind::False:
    return Negated ? P : NumV::empty(P.dim());
  case Cond::Kind::BoolVar:
    return P; // Not representable over reals; over-approximate.
  case Cond::Kind::Cmp: {
    auto L = exprToLinear(Phi.cmpLhs());
    auto R = exprToLinear(Phi.cmpRhs());
    if (!L || !R)
      return P;
    CmpOp Op = Phi.cmpOp();
    if (Negated) {
      switch (Op) {
      case CmpOp::Le:
        Op = CmpOp::Gt;
        break;
      case CmpOp::Ge:
        Op = CmpOp::Lt;
        break;
      case CmpOp::Lt:
        Op = CmpOp::Ge;
        break;
      case CmpOp::Gt:
        Op = CmpOp::Le;
        break;
      case CmpOp::Eq:
        Op = CmpOp::Ne;
        break;
      case CmpOp::Ne:
        Op = CmpOp::Eq;
        break;
      }
    }
    switch (Op) {
    case CmpOp::Le:
    case CmpOp::Lt: // Closed over-approximation of the strict inequality.
      return P.meet(Constraint::le(*L, *R));
    case CmpOp::Ge:
    case CmpOp::Gt:
      return P.meet(Constraint::ge(*L, *R));
    case CmpOp::Eq:
      return P.meet(Constraint::eq(*L, *R));
    case CmpOp::Ne:
      return P; // Not convex; over-approximate.
    }
    return P;
  }
  case Cond::Kind::Not:
    return meetCond(P, Phi.operand(), !Negated);
  case Cond::Kind::And:
    if (Negated) // ¬(a ∧ b) = ¬a ∨ ¬b
      return meetCond(P, Phi.lhs(), true).join(meetCond(P, Phi.rhs(), true));
    return meetCond(meetCond(P, Phi.lhs(), false), Phi.rhs(), false);
  case Cond::Kind::Or:
    if (Negated) // ¬(a ∨ b) = ¬a ∧ ¬b
      return meetCond(meetCond(P, Phi.lhs(), true), Phi.rhs(), true);
    return meetCond(P, Phi.lhs(), false).join(meetCond(P, Phi.rhs(), false));
  }
  assert(false && "unknown condition kind");
  return P;
}

//===----------------------------------------------------------------------===//
// Composition (the tower property, §5.3)
//===----------------------------------------------------------------------===//

template <NumericDomain NumV>
NumV LeiaDomainT<NumV>::liftedMeet(const NumV &A, const NumV &B,
                                   unsigned Extra,
                                   const std::vector<unsigned> &PermA,
                                   const std::vector<unsigned> &PermB) const {
  return A.extend(Extra).permute(PermA).meet(B.extend(Extra).permute(PermB));
}

template <NumericDomain NumV>
NumV LeiaDomainT<NumV>::composeRelations(const NumV &A, const NumV &B) const {
  // Work in 3n dims: [x, y, t]. A relates x to t, B relates t to y.
  return liftedMeet(A, B, NumVars, ComposePermA, ComposePermB)
      .dropTrailing(NumVars);
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::extend(const Value &A, const Value &B) const -> Value {
  if (A.P.isEmpty() || B.P.isEmpty())
    return bottom();
  return canonicalize(composeRelations(A.P, B.P),
                      composeRelations(A.EP, B.EP));
}

//===----------------------------------------------------------------------===//
// Choice operators
//===----------------------------------------------------------------------===//

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::condChoice(const Cond &Phi, const Value &A,
                                   const Value &B) const -> Value {
  NumV P = meetCond(A.P, Phi, false).join(meetCond(B.P, Phi, true));
  // Conditioning can split the probability space arbitrarily (§5.3), so
  // the branch expectations only survive joined and clipped to the
  // support cone: EP = (EP1 ⊔ EP2) ⊓ (0 ⊔ P[E[x']/x']).
  NumV EP = A.EP.join(B.EP).meet(rebuildFromSupport(P));
  return canonicalize(std::move(P), std::move(EP));
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::probChoice(const Rational &Prob, const Value &A,
                                   const Value &B) const -> Value {
  if (A.P.isEmpty() && B.P.isEmpty())
    return bottom();
  unsigned N = NumVars;
  unsigned D4 = 4 * N;
  NumV P = A.P.join(B.P);

  // EP: introduce vocabularies x'' and x''' (§5.3); layout [x, E, t1, t2].
  NumV M = liftedMeet(A.EP, B.EP, 2 * N, ProbPermA, ProbPermB);
  for (unsigned I = 0; I != N; ++I) {
    LinearExpr Combo = LinearExpr::variable(D4, 2 * N + I).scaled(Prob) +
                       LinearExpr::variable(D4, 3 * N + I)
                           .scaled(Rational(1) - Prob);
    M = M.meet(Constraint::eq(LinearExpr::variable(D4, N + I), Combo));
  }
  NumV EP = M.dropTrailing(2 * N);
  return canonicalize(std::move(P), std::move(EP));
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::ndetChoice(const Value &A, const Value &B) const
    -> Value {
  return canonicalize(A.P.join(B.P), A.EP.join(B.EP));
}

//===----------------------------------------------------------------------===//
// Semantic function
//===----------------------------------------------------------------------===//

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::interpret(const Stmt *Action) const -> Value {
  unsigned N = NumVars;
  unsigned D = 2 * N;
  if (!Action)
    return one();
  switch (Action->kind()) {
  case Stmt::Kind::Skip:
  case Stmt::Kind::Reward:
  case Stmt::Kind::Assert:
    return one();
  case Stmt::Kind::Assign: {
    unsigned X = Action->varIndex();
    std::optional<LinearExpr> Rhs = exprToLinear(Action->value());
    NumV P = nonnegUniverse();
    for (unsigned J = 0; J != N; ++J) {
      if (J == X)
        continue;
      P = P.meet(Constraint::eq(LinearExpr::variable(D, N + J),
                                LinearExpr::variable(D, J)));
    }
    if (Rhs) // Nonlinear right-hand sides leave x' unconstrained.
      P = P.meet(Constraint::eq(LinearExpr::variable(D, N + X), *Rhs));
    return canonicalize(P, P);
  }
  case Stmt::Kind::Sample: {
    unsigned X = Action->varIndex();
    const Dist &Di = Action->dist();
    std::optional<LinearExpr> Min, Max, Mean;
    switch (Di.TheKind) {
    case Dist::Kind::Bernoulli:
      Min = LinearExpr::constant(D, Rational(0));
      Max = LinearExpr::constant(D, Rational(1));
      Mean = exprToLinear(*Di.Params[0]);
      break;
    case Dist::Kind::Uniform:
    case Dist::Kind::UniformInt:
      Min = exprToLinear(*Di.Params[0]);
      Max = exprToLinear(*Di.Params[1]);
      if (Min && Max)
        Mean = (*Min + *Max).scaled(Rational(1, 2));
      break;
    case Dist::Kind::Gaussian:
      // Unbounded support; only the mean is linear.
      Mean = exprToLinear(*Di.Params[0]);
      break;
    case Dist::Kind::Discrete: {
      Rational Lo, Hi, Avg;
      bool First = true;
      for (size_t I = 0; I != Di.Params.size(); ++I) {
        Rational V = Di.Params[I]->number();
        if (First || V < Lo)
          Lo = V;
        if (First || V > Hi)
          Hi = V;
        Avg += V * Di.Weights[I];
        First = false;
      }
      Min = LinearExpr::constant(D, Lo);
      Max = LinearExpr::constant(D, Hi);
      Mean = LinearExpr::constant(D, Avg);
      break;
    }
    }
    NumV Frame = nonnegUniverse();
    for (unsigned J = 0; J != N; ++J) {
      if (J == X)
        continue;
      Frame = Frame.meet(Constraint::eq(LinearExpr::variable(D, N + J),
                                        LinearExpr::variable(D, J)));
    }
    NumV P = Frame;
    if (Min)
      P = P.meet(Constraint::ge(LinearExpr::variable(D, N + X), *Min));
    if (Max)
      P = P.meet(Constraint::le(LinearExpr::variable(D, N + X), *Max));
    NumV EP = Frame;
    if (Mean)
      EP = EP.meet(Constraint::eq(LinearExpr::variable(D, N + X), *Mean));
    return canonicalize(std::move(P), std::move(EP));
  }
  case Stmt::Kind::Observe: {
    const Value Id = one();
    NumV P = meetCond(Id.P, Action->observed(), false);
    // Conditioning rescales mass arbitrarily; rebuild EP pessimistically.
    return canonicalize(P, rebuildFromSupport(P));
  }
  default:
    assert(false && "not a data action");
    return one();
  }
}

//===----------------------------------------------------------------------===//
// Order, widening
//===----------------------------------------------------------------------===//

template <NumericDomain NumV>
bool LeiaDomainT<NumV>::leq(const Value &A, const Value &B) const {
  if (A.P.isEmpty())
    return true; // Bottom is least: its EP is 0, and 0 ⊔ EP_B ⊇ 0 always.
  if (!B.P.contains(A.P))
    return false;
  return B.ECone.contains(A.ECone);
}

template <NumericDomain NumV>
bool LeiaDomainT<NumV>::equal(const Value &A, const Value &B) const {
  if (A.P.isEmpty() || B.P.isEmpty())
    return A.P.isEmpty() == B.P.isEmpty();
  // Approximate mutual inclusion (§6.1-style convergence): expectation
  // chains of probabilistic loops converge geometrically and are cut off
  // once successive iterates agree to the configured tolerance.
  return A.P.containsApprox(B.P, Tolerance) &&
         B.P.containsApprox(A.P, Tolerance) &&
         A.ECone.containsApprox(B.ECone, Tolerance) &&
         B.ECone.containsApprox(A.ECone, Tolerance);
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::widenCond(const Value &Old, const Value &New) const
    -> Value {
  NumV P = Old.P.widen(New.P);
  return canonicalize(P, rebuildFromSupport(New.P));
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::widenProb(const Value &Old, const Value &New) const
    -> Value {
  NumV P = Old.P.widen(New.P);
  // No EP extrapolation (§5.3). Convergence of the geometric expectation
  // chain comes from the tolerance-based fixpoint test (§6.1 analogue);
  // rounding the coefficients once per widening application — the single
  // point every loop iterate flows through — keeps the exact-rational
  // coefficients bounded without perturbing downstream operations
  // inconsistently. The 2^-40 grid is far below the 1e-9 stop tolerance.
  return canonicalize(std::move(P), New.EP.roundedCoefficients(40));
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::widenNdet(const Value &Old, const Value &New) const
    -> Value {
  return widenCond(Old, New);
}

template <NumericDomain NumV>
auto LeiaDomainT<NumV>::widenCall(const Value &Old, const Value &New) const
    -> Value {
  NumV P = Old.P.widen(New.P);
  return canonicalize(std::move(P), New.EP.roundedCoefficients(40));
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

template <NumericDomain NumV>
std::string LeiaDomainT<NumV>::toString(const Value &A) const {
  std::vector<std::string> Names;
  for (const VarInfo &Var : Prog->Vars)
    Names.push_back(Var.Name);
  for (const VarInfo &Var : Prog->Vars)
    Names.push_back(Var.Name + "'");
  std::vector<std::string> ENames;
  for (const VarInfo &Var : Prog->Vars)
    ENames.push_back(Var.Name);
  for (const VarInfo &Var : Prog->Vars)
    ENames.push_back("E[" + Var.Name + "']");
  return "P = " + A.P.toString(Names) + ", EP = " + A.EP.toString(ENames);
}

namespace {

/// Renders sum(Coeffs[i] * Names[i]) + Constant with %.6g coefficients,
/// dropping terms below 1e-9 (iteration residue of the ε-converged
/// chains).
std::string formatAffine(const std::vector<double> &Coeffs, double Constant,
                         const std::vector<std::string> &Names) {
  auto FormatMag = [](double V) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%.6g", V);
    return std::string(Buffer);
  };
  std::string Out;
  for (size_t I = 0; I != Coeffs.size(); ++I) {
    double C = Coeffs[I];
    if (C > -1e-9 && C < 1e-9)
      continue;
    double Abs = C < 0 ? -C : C;
    bool One = Abs > 1.0 - 1e-6 && Abs < 1.0 + 1e-6;
    if (Out.empty())
      Out += (C < 0 ? "-" : "") +
             (One ? Names[I] : FormatMag(Abs) + "*" + Names[I]);
    else
      Out += std::string(C < 0 ? " - " : " + ") +
             (One ? Names[I] : FormatMag(Abs) + "*" + Names[I]);
  }
  if (Constant > 1e-9 || Constant < -1e-9) {
    if (Out.empty())
      Out = FormatMag(Constant);
    else
      Out += std::string(Constant < 0 ? " - " : " + ") +
             FormatMag(Constant < 0 ? -Constant : Constant);
  }
  return Out.empty() ? "0" : Out;
}

} // namespace

template <NumericDomain NumV>
std::vector<std::string>
LeiaDomainT<NumV>::describeInvariants(const Value &A) const {
  std::vector<std::string> Result;
  if (A.P.isEmpty()) {
    Result.push_back("false");
    return Result;
  }
  unsigned N = NumVars;
  std::vector<std::string> PrimeNames, PreNames;
  for (const VarInfo &Var : Prog->Vars)
    PrimeNames.push_back(Var.Name + "'");
  for (const VarInfo &Var : Prog->Vars)
    PreNames.push_back(Var.Name);
  for (const Constraint &Con : A.EP.constraintList()) {
    // Normalize by the leading expectation coefficient and split into the
    // E-part (left) and the pre-state part (right).
    Rational Lead;
    for (unsigned I = 0; I != N && Lead.isZero(); ++I)
      Lead = Con.Expr.coeff(N + I);
    if (Lead.isZero())
      continue; // Support-only row; not an expectation invariant.
    bool Flipped = Lead.sign() < 0;
    double Scale = 1.0 / Lead.abs().toDouble() * (Flipped ? -1.0 : 1.0);
    std::vector<double> ECoeffs(N), PreCoeffs(N);
    for (unsigned I = 0; I != N; ++I) {
      ECoeffs[I] = Con.Expr.coeff(N + I).toDouble() * Scale;
      PreCoeffs[I] = -Con.Expr.coeff(I).toDouble() * Scale;
    }
    double PreConst = -Con.Expr.constantTerm().toDouble() * Scale;
    bool IsEq = Con.TheKind == Constraint::Kind::Eq;
    // Suppress reporting noise: bounds with astronomically large constants
    // are vacuous artifacts of the coefficient-rounding grid, and
    // ">= 0"-shaped rows just restate nonnegativity of the state space.
    if (!IsEq) {
      if (PreConst > 1e9 || PreConst < -1e9)
        continue;
      bool RhsIsZero = PreConst > -1e-9 && PreConst < 1e-9;
      for (double C : PreCoeffs)
        RhsIsZero &= C > -1e-9 && C < 1e-9;
      bool AllNonneg = !Flipped;
      for (double C : ECoeffs)
        AllNonneg &= C > -1e-9;
      if (RhsIsZero && AllNonneg)
        continue;
    }
    const char *Rel = IsEq ? " == " : (Flipped ? " <= " : " >= ");
    Result.push_back("E[" + formatAffine(ECoeffs, 0.0, PrimeNames) + "]" +
                     Rel + formatAffine(PreCoeffs, PreConst, PreNames));
  }
  return Result;
}

template <NumericDomain NumV>
std::pair<std::optional<Rational>, std::optional<Rational>>
LeiaDomainT<NumV>::expectationBounds(
    const Value &A, const std::vector<Rational> &Objective,
    const std::vector<Rational> &PreState) const {
  assert(Objective.size() == NumVars && PreState.size() == NumVars);
  assert(!A.P.isEmpty() && "expectation bounds of bottom");
  unsigned D = 2 * NumVars;
  // Clip to the subprobability cone of the support at query time (the
  // domain invariant 0 ⊔ P[E[x']/x'] ⊒ EP is enforced lazily).
  NumV Slice = A.EP.meet(rebuildFromSupport(A.P));
  for (unsigned I = 0; I != NumVars; ++I)
    Slice = Slice.meet(
        Constraint::eq(LinearExpr::variable(D, I),
                       LinearExpr::constant(D, PreState[I])));
  assert(!Slice.isEmpty() && "pre-state outside the analyzed support");
  LinearExpr Obj(D);
  for (unsigned I = 0; I != NumVars; ++I)
    Obj.coeff(NumVars + I) = Objective[I];
  return {Slice.minimize(Obj), Slice.maximize(Obj)};
}

template <NumericDomain NumV>
std::optional<std::pair<std::optional<Rational>, std::optional<Rational>>>
LeiaDomainT<NumV>::objectiveBounds(
    const Value &A, const std::vector<Rational> &Objective) const {
  assert(Objective.size() == NumVars);
  if (A.P.isEmpty())
    return std::nullopt;
  unsigned D = 2 * NumVars;
  // As expectationBounds, but with every pre-state of the support
  // admitted rather than one concrete pre-state pinned.
  NumV Slice = A.EP.meet(rebuildFromSupport(A.P));
  if (Slice.isEmpty())
    return std::nullopt;
  LinearExpr Obj(D);
  for (unsigned I = 0; I != NumVars; ++I)
    Obj.coeff(NumVars + I) = Objective[I];
  return std::make_pair(Slice.minimize(Obj), Slice.maximize(Obj));
}

//===----------------------------------------------------------------------===//
// Explicit instantiations — one LEIA per numeric backend
//===----------------------------------------------------------------------===//

namespace pmaf {
namespace domains {

template class LeiaDomainT<poly::Polyhedron>;
template class LeiaDomainT<poly::LadderValue>;
template class LeiaDomainT<poly::Zones>;
template class LeiaDomainT<poly::Intervals>;

} // namespace domains
} // namespace pmaf
