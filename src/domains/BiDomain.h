//===- domains/BiDomain.h - Interprocedural Bayesian inference --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PMA B of §5.1: the interprocedural, nondeterminism-tolerant
/// reformulation of Claret et al.'s dataflow Bayesian inference.
///
/// A value is a two-vocabulary distribution transformer: a
/// 2^|Var| x 2^|Var'| matrix of reals in [0,1], where entry (s, t) is (a
/// lower bound on) the probability that execution started in pre-state s
/// terminates in post-state t.
///
///   ⊑ = pointwise ≤        ⊗ = matrix product      p⊕ = affine combination
///   phi^ = row selection   ⋓ = pointwise min       ⊥ = 0     1 = identity
///
/// Pointwise min makes the analysis compute procedure summaries that are
/// lower bounds on posterior distributions (γ_B is a probabilistic
/// *under*-abstraction, Thm 5.2), so no widening is used: iteration starts
/// at ⊥ and every intermediate result is already sound; float chains
/// stabilize within the configured tolerance (§6.1).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_BIDOMAIN_H
#define PMAF_DOMAINS_BIDOMAIN_H

#include "core/Domain.h"
#include "domains/BoolStateSpace.h"
#include "linalg/Matrix.h"

#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// Bounds on the post-distribution mass of a predicate under a summary
/// whose entries are *lower bounds* on transition probabilities (the BI
/// under-abstraction): from pre-state s the mass of phi is at least
/// sum_{t |= phi} a(s, t), and at most 1 - sum_{t |/= phi} a(s, t) (the
/// unaccounted mass 1 - sum_t a(s, t) could all land on phi-states).
/// The fields quantify over every pre-state row of the summary.
struct ProbMassBounds {
  double MinLower = 0.0; ///< min over pre-states of the guaranteed mass.
  double MaxUpper = 1.0; ///< max over pre-states of the possible mass.
};

/// Computes ProbMassBounds of \p Phi for a lower-bound summary matrix over
/// \p Space (used by checks/Checker for both the dense and ADD-backed BI
/// domains).
ProbMassBounds probMassBounds(const Matrix &Summary,
                              const BoolStateSpace &Space,
                              const lang::Cond &Phi);

/// The Bayesian-inference interpretation B = <B, ⟦·⟧_B> (§5.1).
class BiDomain {
public:
  using Value = Matrix;

  /// Every operation reads only the immutable state space: concurrent
  /// interpret/extend/equal calls on one instance are safe, so the engine
  /// may precompile transformers and stabilize SCCs in parallel.
  static constexpr bool ThreadSafeInterpret = true;

  /// \param Space Boolean state space of the program under analysis.
  /// \param Tolerance equality tolerance for fixpoint detection.
  explicit BiDomain(const BoolStateSpace &Space, double Tolerance = 1e-12)
      : Space(&Space), Tolerance(Tolerance) {}

  Value bottom() const {
    return Matrix::zero(Space->numStates(), Space->numStates());
  }
  Value one() const { return Matrix::identity(Space->numStates()); }

  /// a ⊗_B b = a x b (reversal of kernel composition, footnote 3).
  Value extend(const Value &A, const Value &B) const { return A * B; }

  /// (a phi^_B b)(s, t) = phi(s) ? a(s, t) : b(s, t).
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const;

  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    Value Result = A;
    Result.scaleInPlace(Prob);
    Result.addScaledInPlace(B, 1.0 - Prob);
    return Result;
  }

  /// Pointwise min: lower bounds under demonic nondeterminism.
  Value ndetChoice(const Value &A, const Value &B) const {
    Value Result = A;
    Result.pointwiseMinInPlace(B);
    return Result;
  }

  /// Semantic function ⟦·⟧_B: Boolean assignment, Bernoulli sampling,
  /// observe (conditioning), and skip.
  Value interpret(const lang::Stmt *Action) const;

  bool leq(const Value &A, const Value &B) const {
    return A.leqAll(B, Tolerance);
  }
  bool equal(const Value &A, const Value &B) const {
    return A.maxAbsDiff(B) <= Tolerance;
  }

  /// No widening (§5.1): intermediate iterates of an under-abstraction
  /// started from ⊥ are already sound.
  Value widenCond(const Value &Old, const Value &New) const {
    (void)Old;
    return New;
  }
  Value widenProb(const Value &Old, const Value &New) const {
    (void)Old;
    return New;
  }
  Value widenNdet(const Value &Old, const Value &New) const {
    (void)Old;
    return New;
  }
  Value widenCall(const Value &Old, const Value &New) const {
    (void)Old;
    return New;
  }

  std::string toString(const Value &A) const { return A.toString(); }

  /// Applies a procedure summary to a prior distribution over pre-states,
  /// yielding the (sub-probability) posterior over post-states.
  std::vector<double> posterior(const Value &Summary,
                                const std::vector<double> &Prior) const {
    return Summary.applyToRowVector(Prior);
  }

  /// Fixpoint query hook for checks/Checker: mass bounds of \p Phi under
  /// the summary, quantified over all pre-states.
  ProbMassBounds massBounds(const Value &Summary,
                            const lang::Cond &Phi) const {
    return probMassBounds(Summary, *Space, Phi);
  }

  const BoolStateSpace &space() const { return *Space; }

private:
  const BoolStateSpace *Space;
  double Tolerance;
};

static_assert(core::PreMarkovAlgebra<BiDomain>,
              "BiDomain must satisfy the PMA interface");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_BIDOMAIN_H
