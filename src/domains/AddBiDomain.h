//===- domains/AddBiDomain.h - ADD-backed Bayesian inference ----*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension §6.2 suggests: the Bayesian-inference PMA of §5.1 with
/// distribution transformers represented as algebraic decision diagrams
/// instead of dense 2^n x 2^n matrices ("One could use Algebraic Decision
/// Diagrams [2] as a compact representation to improve the efficiency").
///
/// A transformer over n Boolean variables is an ADD over 2n decision
/// levels, interleaved row-first: variable i contributes the pre-state
/// ("row") level 3i and the post-state ("column") level 3i+2; level 3i+1
/// is reserved as the contraction vocabulary of the matrix product
///
///   (A ⊗ B)(x, x') = sum_t A(x, t) * B(t, x'),
///
/// implemented by two monotone level renamings, a pointwise product, and
/// an existential sum — all polynomial in the diagram sizes.
///
/// The algebra is exactly BiDomain's (pointwise min for ⋓, row selection
/// for phi^, affine combination for p⊕), so the two implementations are
/// interchangeable and cross-checked against each other in the tests; the
/// bench compares their scaling in the number of program variables.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_ADDBIDOMAIN_H
#define PMAF_DOMAINS_ADDBIDOMAIN_H

#include "add/Add.h"
#include "core/Domain.h"
#include "domains/BoolStateSpace.h"
#include "linalg/Matrix.h"

#include <memory>
#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// Bayesian inference over ADD-represented distribution transformers.
class AddBiDomain {
public:
  using Value = add::NodeRef;

  /// NOT thread-safe: every operation hash-conses nodes and memoizes apply
  /// results in the shared AddManager's unique/apply tables (Add.h), so
  /// concurrent interprets would race the manager. The engine therefore
  /// precompiles and iterates this domain sequentially. The alternative —
  /// a thread-local manager per precompile task with a merge step — is
  /// sketched in DESIGN.md §Parallel execution but not worth the rename
  /// traffic until ADD workloads dominate.
  static constexpr bool ThreadSafeInterpret = false;

  explicit AddBiDomain(const BoolStateSpace &Space,
                       double Tolerance = 1e-12);

  Value bottom() const { return Mgr->zero(); }
  Value one() const { return Identity; }

  /// Matrix product via rename / multiply / sum-out.
  Value extend(const Value &A, const Value &B) const;

  /// Row selection by the truth of phi in the pre-state.
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const;

  Value probChoice(const Rational &P, const Value &A, const Value &B) const;

  Value ndetChoice(const Value &A, const Value &B) const {
    return Mgr->apply(add::Op::Min, A, B);
  }

  Value interpret(const lang::Stmt *Action) const;

  bool leq(const Value &A, const Value &B) const {
    return Mgr->maxTerminal(Mgr->apply(add::Op::Sub, A, B)) <= Tolerance;
  }
  bool equal(const Value &A, const Value &B) const {
    return A == B || Mgr->maxAbsDiff(A, B) <= Tolerance;
  }

  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }

  std::string toString(const Value &A) const;

  /// Posterior over post-states from a dense prior over pre-states.
  std::vector<double> posterior(const Value &Summary,
                                const std::vector<double> &Prior) const;

  /// Expands to the dense matrix (test/debug; exponential in n).
  Matrix toMatrix(const Value &A) const;

  /// Diagram size of a value (the compactness measure of the bench).
  size_t nodeCount(const Value &A) const { return Mgr->nodeCount(A); }

  add::AddManager &manager() const { return *Mgr; }

private:
  unsigned rowLevel(unsigned Var) const { return 3 * Var; }
  unsigned midLevel(unsigned Var) const { return 3 * Var + 1; }
  unsigned colLevel(unsigned Var) const { return 3 * Var + 2; }

  /// 0/1 indicator of a condition over the pre-state levels.
  Value condIndicator(const lang::Cond &Phi) const;
  /// 0/1 indicator of a Boolean expression over the pre-state levels.
  Value exprIndicator(const lang::Expr &E) const;
  /// Indicator of `col_Var == RhsIndicator`.
  Value equalsFactor(unsigned Var, Value RhsIndicator) const;
  /// Weighted column factor: p at col=true, 1-p at col=false.
  Value bernoulliFactor(unsigned Var, double P) const;
  /// Frame: columns equal rows for every variable except those in Skip.
  Value frameFactor(unsigned SkipVar) const;

  const BoolStateSpace *Space;
  /// Mutable manager: apply caching and hash-consing are internal state.
  mutable std::unique_ptr<add::AddManager> Mgr;
  add::NodeRef Identity = 0;
  double Tolerance;
};

static_assert(core::PreMarkovAlgebra<AddBiDomain>,
              "AddBiDomain must satisfy the PMA interface");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_ADDBIDOMAIN_H
