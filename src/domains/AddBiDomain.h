//===- domains/AddBiDomain.h - ADD-backed Bayesian inference ----*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension §6.2 suggests: the Bayesian-inference PMA of §5.1 with
/// distribution transformers represented as algebraic decision diagrams
/// instead of dense 2^n x 2^n matrices ("One could use Algebraic Decision
/// Diagrams [2] as a compact representation to improve the efficiency").
///
/// A transformer over n Boolean variables is an ADD over 2n decision
/// levels, interleaved row-first: variable i contributes the pre-state
/// ("row") level 3i and the post-state ("column") level 3i+2; level 3i+1
/// is reserved as the contraction vocabulary of the matrix product
///
///   (A ⊗ B)(x, x') = sum_t A(x, t) * B(t, x'),
///
/// implemented by two monotone level renamings, a pointwise product, and
/// an existential sum — all polynomial in the diagram sizes.
///
/// The algebra is exactly BiDomain's (pointwise min for ⋓, row selection
/// for phi^, affine combination for p⊕), so the two implementations are
/// interchangeable and cross-checked against each other in the tests; the
/// bench compares their scaling in the number of program variables.
///
/// **Parallelism** (the home-and-arenas protocol). An AddManager is
/// single-threaded, yet the domain declares ThreadSafeInterpret: public
/// `Value`s are always NodeRefs in the shared *home* manager, and inside
/// an engine parallel phase (core/Domain.h's parallelBegin/parallelEnd
/// bracket) each thread computes in a private thread-local *arena*
/// manager. Every operation (a) *imports* its operands home → arena,
/// (b) computes entirely in the arena with no lock held, and (c) *exports*
/// the result arena → home; imports and exports are AddManager::migrate
/// calls — the rename-and-merge primitive — serialized by one home mutex
/// and memoized per arena, so a diagram crosses the boundary at most once
/// per direction per arena. Because migrate re-hash-conses every node,
/// exports of extensionally equal diagrams land on the identical home
/// NodeRef and terminal doubles are preserved bit-for-bit — fixpoints are
/// bit-identical to the sequential path whatever the thread count, and
/// `equal`'s reference-equality shortcut stays sound. Outside a parallel
/// phase every operation runs directly on the home manager: sequential
/// solves pay nothing. The outermost parallelEnd drops the arenas (the
/// engine's per-solve pool threads are about to die with it).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_ADDBIDOMAIN_H
#define PMAF_DOMAINS_ADDBIDOMAIN_H

#include "add/Add.h"
#include "core/Domain.h"
#include "domains/BoolStateSpace.h"
#include "linalg/Matrix.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmaf {
namespace domains {

/// Bayesian inference over ADD-represented distribution transformers.
class AddBiDomain {
public:
  using Value = add::NodeRef;

  /// Thread-safe *within an engine parallel phase*: between parallelBegin
  /// and parallelEnd each thread hash-conses in its own arena manager and
  /// publishes through mutex-guarded migration into the home manager (see
  /// the file comment). The engine brackets every concurrent section with
  /// the hooks (core::ParallelPhase), so concurrent precompilation and
  /// both parallel schedulers — the per-SCC one and the barrier-batched
  /// intra-component one — are safe.
  static constexpr bool ThreadSafeInterpret = true;

  explicit AddBiDomain(const BoolStateSpace &Space,
                       double Tolerance = 1e-12);
  ~AddBiDomain();

  /// Parallel-phase hooks (core::ParallelPhaseDomain). Nesting is counted;
  /// the outermost parallelEnd() drops all thread-local arenas. Callers
  /// must guarantee no concurrent domain operation is in flight across
  /// either call — the engine's brackets do.
  void parallelBegin(unsigned Workers) const;
  void parallelEnd() const;

  Value bottom() const { return Mgr->zero(); }
  Value one() const { return Identity; }

  /// Matrix product via rename / multiply / sum-out.
  Value extend(const Value &A, const Value &B) const;

  /// Row selection by the truth of phi in the pre-state.
  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const;

  Value probChoice(const Rational &P, const Value &A, const Value &B) const;

  Value ndetChoice(const Value &A, const Value &B) const;

  Value interpret(const lang::Stmt *Action) const;

  bool leq(const Value &A, const Value &B) const;
  bool equal(const Value &A, const Value &B) const;

  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }

  std::string toString(const Value &A) const;

  /// Posterior over post-states from a dense prior over pre-states.
  std::vector<double> posterior(const Value &Summary,
                                const std::vector<double> &Prior) const;

  /// Expands to the dense matrix (test/debug; exponential in n).
  Matrix toMatrix(const Value &A) const;

  /// The Boolean state space the domain was built over (checks/Checker
  /// expands assertion-site summaries against it).
  const BoolStateSpace &space() const { return *Space; }

  /// Diagram size of a value (the compactness measure of the bench).
  size_t nodeCount(const Value &A) const;

  /// The home manager: the owner of every public Value.
  add::AddManager &manager() const { return *Mgr; }

  /// Migration traffic counters (test/bench observability): nodes copied
  /// home → arenas resp. arenas → home since construction, and the number
  /// of arenas ever created. All zero for purely sequential use.
  uint64_t importedNodes() const {
    return ImportedNodes.load(std::memory_order_relaxed);
  }
  uint64_t exportedNodes() const {
    return ExportedNodes.load(std::memory_order_relaxed);
  }
  uint64_t arenasCreated() const { return Arenas.createdCount(); }

private:
  /// A thread's private compute state: a local AddManager plus the two
  /// persistent migration memos (home → local, local → home). Defined in
  /// the .cpp; the WorkerLocal member only needs the complete type there.
  struct Arena;

  unsigned rowLevel(unsigned Var) const { return 3 * Var; }
  unsigned midLevel(unsigned Var) const { return 3 * Var + 1; }
  unsigned colLevel(unsigned Var) const { return 3 * Var + 2; }

  /// True while at least one engine parallel phase is open — the switch
  /// between the direct home path and the arena path.
  bool inParallel() const {
    return ParallelDepth.load(std::memory_order_acquire) != 0;
  }

  Arena &arena() const;
  /// Migrate a home diagram into \p Ar's local manager (locks HomeMutex).
  add::NodeRef importRef(Arena &Ar, add::NodeRef HomeRef) const;
  /// Migrate an arena diagram into the home manager (locks HomeMutex).
  add::NodeRef exportRef(Arena &Ar, add::NodeRef LocalRef) const;

  // The algebra, parameterized by the manager that computes it. The public
  // operations dispatch: sequential mode runs them on the home manager,
  // parallel mode on the calling thread's arena between import and export.
  add::NodeRef condIndicatorIn(add::AddManager &M,
                               const lang::Cond &Phi) const;
  add::NodeRef exprIndicatorIn(add::AddManager &M,
                               const lang::Expr &E) const;
  add::NodeRef equalsFactorIn(add::AddManager &M, unsigned Var,
                              add::NodeRef RhsIndicator) const;
  add::NodeRef bernoulliFactorIn(add::AddManager &M, unsigned Var,
                                 double P) const;
  add::NodeRef frameFactorIn(add::AddManager &M, unsigned SkipVar) const;
  add::NodeRef extendIn(add::AddManager &M, add::NodeRef A,
                        add::NodeRef B) const;
  add::NodeRef condChoiceIn(add::AddManager &M, const lang::Cond &Phi,
                            add::NodeRef A, add::NodeRef B) const;
  add::NodeRef probChoiceIn(add::AddManager &M, const Rational &P,
                            add::NodeRef A, add::NodeRef B) const;
  add::NodeRef interpretIn(add::AddManager &M, const lang::Stmt *Action,
                           add::NodeRef IdentityIn) const;
  std::vector<double> posteriorIn(add::AddManager &M,
                                  add::NodeRef Summary,
                                  const std::vector<double> &Prior) const;

  const BoolStateSpace *Space;
  /// The home manager: mutable because apply caching and hash-consing are
  /// internal state. In parallel mode every access is under HomeMutex.
  mutable std::unique_ptr<add::AddManager> Mgr;
  add::NodeRef Identity = 0;
  double Tolerance;

  /// Open parallel-phase count (brackets nest).
  mutable std::atomic<unsigned> ParallelDepth{0};
  /// Serializes all home-manager access while a parallel phase is open.
  mutable std::mutex HomeMutex;
  /// Per-thread arenas, dropped at the outermost parallelEnd().
  mutable support::WorkerLocal<Arena> Arenas;
  mutable std::atomic<uint64_t> ImportedNodes{0};
  mutable std::atomic<uint64_t> ExportedNodes{0};
};

static_assert(core::PreMarkovAlgebra<AddBiDomain>,
              "AddBiDomain must satisfy the PMA interface");
static_assert(core::ParallelPhaseDomain<AddBiDomain>,
              "AddBiDomain must expose the parallel-phase hooks");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_ADDBIDOMAIN_H
