//===- domains/MdpDomain.h - Markov decision processes with rewards -------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PMA R of §5.2 for the maximum-expected-reward problem of (recursive)
/// Markov decision processes:
///
///   M_R = [0, ∞]   ⊑ = ≤   ⊗ = +   phi^ = max   p⊕ = affine   ⋓ = max
///   ⊥ = 0          1 = 0
///
/// A program value at node v is (an upper bound on) the greatest expected
/// reward obtainable by executing from v to the procedure exit, maximizing
/// over nondeterministic choices. MDPs are single-procedure programs whose
/// only data action is `reward(r)` (Defn 5.3); the domain nevertheless
/// tolerates the other data actions (they carry no reward) so that reward
/// annotations can be embedded in richer programs.
///
/// Widening is the paper's trivial one: if a widening point keeps growing
/// after the solver's widening delay, the value jumps to +∞ (sound for an
/// over-abstraction).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_DOMAINS_MDPDOMAIN_H
#define PMAF_DOMAINS_MDPDOMAIN_H

#include "core/Domain.h"
#include "lang/Ast.h"

#include <limits>
#include <string>

namespace pmaf {
namespace domains {

/// The max-expected-reward interpretation R = <R, ⟦·⟧_R> (§5.2).
class MdpDomain {
public:
  using Value = double;

  /// Stateless apart from the tolerance: all operations are safe to call
  /// concurrently, so the parallel engine may use this domain freely.
  static constexpr bool ThreadSafeInterpret = true;

  /// \param Tolerance two values within this distance are considered equal
  /// (ascending float chains then stabilize, §6.1).
  explicit MdpDomain(double Tolerance = 1e-12) : Tolerance(Tolerance) {}

  Value bottom() const { return 0.0; }
  Value one() const { return 0.0; }

  Value extend(const Value &A, const Value &B) const { return A + B; }

  Value condChoice(const lang::Cond &Phi, const Value &A,
                   const Value &B) const {
    // MDPs have no conditional-choice (Defn 5.3); max over both branches
    // is the sound reading if one occurs anyway.
    (void)Phi;
    return A > B ? A : B;
  }

  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1.0 - Prob) * B;
  }

  Value ndetChoice(const Value &A, const Value &B) const {
    return A > B ? A : B;
  }

  /// ⟦reward(r)⟧ = r; every other data action has reward 0 (= 1_R).
  Value interpret(const lang::Stmt *Action) const {
    if (Action && Action->kind() == lang::Stmt::Kind::Reward)
      return Action->reward().toDouble();
    return 0.0;
  }

  bool leq(const Value &A, const Value &B) const {
    return A <= B + Tolerance;
  }
  bool equal(const Value &A, const Value &B) const {
    if (A == B)
      return true; // Covers +∞ == +∞.
    double Diff = A > B ? A - B : B - A;
    return Diff <= Tolerance;
  }

  /// Trivial widening (§5.2): extrapolate any strict growth to +∞.
  Value widen(const Value &Old, const Value &New) const {
    if (New > Old + Tolerance)
      return std::numeric_limits<double>::infinity();
    return New;
  }
  Value widenCond(const Value &Old, const Value &New) const {
    return widen(Old, New);
  }
  Value widenProb(const Value &Old, const Value &New) const {
    return widen(Old, New);
  }
  Value widenNdet(const Value &Old, const Value &New) const {
    return widen(Old, New);
  }
  Value widenCall(const Value &Old, const Value &New) const {
    return widen(Old, New);
  }

  std::string toString(const Value &A) const { return std::to_string(A); }

private:
  double Tolerance;
};

static_assert(core::PreMarkovAlgebra<MdpDomain>,
              "MdpDomain must satisfy the PMA interface");

} // namespace domains
} // namespace pmaf

#endif // PMAF_DOMAINS_MDPDOMAIN_H
