//===- domains/AddBiDomain.cpp - ADD-backed Bayesian inference ------------===//

#include "domains/AddBiDomain.h"

#include <cassert>

using namespace pmaf;
using namespace pmaf::add;
using namespace pmaf::domains;
using namespace pmaf::lang;

/// One thread's compute state during a parallel phase. The migration memos
/// persist for the arena's lifetime: NodeRefs are never invalidated on
/// either side (managers never delete nodes), so each diagram crosses the
/// home/arena boundary at most once per direction however many operations
/// reuse it.
struct AddBiDomain::Arena {
  AddManager Local;
  MigrationCache In;  // home NodeRef -> Local NodeRef
  MigrationCache Out; // Local NodeRef -> home NodeRef
};

AddBiDomain::AddBiDomain(const BoolStateSpace &Space, double Tolerance)
    : Space(&Space), Mgr(std::make_unique<AddManager>()),
      Tolerance(Tolerance) {
  Identity = frameFactorIn(*Mgr, ~0u);
}

AddBiDomain::~AddBiDomain() = default;

//===----------------------------------------------------------------------===//
// Parallel-phase plumbing
//===----------------------------------------------------------------------===//

void AddBiDomain::parallelBegin(unsigned /*Workers*/) const {
  ParallelDepth.fetch_add(1, std::memory_order_acq_rel);
}

void AddBiDomain::parallelEnd() const {
  if (ParallelDepth.fetch_sub(1, std::memory_order_acq_rel) == 1)
    // Outermost bracket closed: the engine's pool threads are gone (or
    // about to be), and per-solve pools spawn fresh threads every solve —
    // keeping the arenas would only leak. Quiescence is the caller's
    // contract, so dropping them here is safe.
    Arenas.reset();
}

AddBiDomain::Arena &AddBiDomain::arena() const {
  return Arenas.get([] { return std::make_unique<Arena>(); });
}

NodeRef AddBiDomain::importRef(Arena &Ar, NodeRef HomeRef) const {
  std::lock_guard<std::mutex> Lock(HomeMutex);
  size_t Before = Ar.In.size();
  NodeRef Local = Ar.Local.migrate(HomeRef, *Mgr, Ar.In);
  ImportedNodes.fetch_add(Ar.In.size() - Before,
                          std::memory_order_relaxed);
  return Local;
}

NodeRef AddBiDomain::exportRef(Arena &Ar, NodeRef LocalRef) const {
  std::lock_guard<std::mutex> Lock(HomeMutex);
  size_t Before = Ar.Out.size();
  NodeRef Home = Mgr->migrate(LocalRef, Ar.Local, Ar.Out);
  ExportedNodes.fetch_add(Ar.Out.size() - Before,
                          std::memory_order_relaxed);
  return Home;
}

//===----------------------------------------------------------------------===//
// Indicator construction (manager-parameterized)
//===----------------------------------------------------------------------===//

NodeRef AddBiDomain::exprIndicatorIn(AddManager &M, const Expr &E) const {
  switch (E.kind()) {
  case Expr::Kind::BoolLit:
    return E.boolValue() ? M.one() : M.zero();
  case Expr::Kind::Var:
    return M.indicator(rowLevel(E.varIndex()));
  case Expr::Kind::Number:
    return E.number().isZero() ? M.zero() : M.one();
  default:
    assert(false && "arithmetic expression in a Boolean program");
    return M.zero();
  }
}

NodeRef AddBiDomain::condIndicatorIn(AddManager &M, const Cond &Phi) const {
  switch (Phi.kind()) {
  case Cond::Kind::True:
    return M.one();
  case Cond::Kind::False:
    return M.zero();
  case Cond::Kind::BoolVar:
    return M.indicator(rowLevel(Phi.varIndex()));
  case Cond::Kind::Cmp: {
    NodeRef A = exprIndicatorIn(M, Phi.cmpLhs());
    NodeRef B = exprIndicatorIn(M, Phi.cmpRhs());
    // xor = a + b - 2ab over 0/1 indicators.
    NodeRef Xor = M.apply(
        Op::Sub, M.apply(Op::Add, A, B),
        M.scale(M.apply(Op::Mul, A, B), 2.0));
    switch (Phi.cmpOp()) {
    case CmpOp::Eq:
      return M.affine(Xor, -1.0, 1.0);
    case CmpOp::Ne:
      return Xor;
    default:
      assert(false && "ordered comparison in a Boolean program");
      return M.zero();
    }
  }
  case Cond::Kind::Not:
    return M.affine(condIndicatorIn(M, Phi.operand()), -1.0, 1.0);
  case Cond::Kind::And:
    return M.apply(Op::Min, condIndicatorIn(M, Phi.lhs()),
                   condIndicatorIn(M, Phi.rhs()));
  case Cond::Kind::Or:
    return M.apply(Op::Max, condIndicatorIn(M, Phi.lhs()),
                   condIndicatorIn(M, Phi.rhs()));
  }
  assert(false && "unknown condition kind");
  return M.zero();
}

NodeRef AddBiDomain::equalsFactorIn(AddManager &M, unsigned Var,
                                    NodeRef Rhs) const {
  // [col_Var == Rhs] = 1 - (col + rhs - 2 col rhs) over 0/1 indicators.
  NodeRef Col = M.indicator(colLevel(Var));
  NodeRef Xor = M.apply(
      Op::Sub, M.apply(Op::Add, Col, Rhs),
      M.scale(M.apply(Op::Mul, Col, Rhs), 2.0));
  return M.affine(Xor, -1.0, 1.0);
}

NodeRef AddBiDomain::bernoulliFactorIn(AddManager &M, unsigned Var,
                                       double P) const {
  // p at col=true, 1-p at col=false: (2p-1) col + (1-p).
  return M.affine(M.indicator(colLevel(Var)), 2.0 * P - 1.0, 1.0 - P);
}

NodeRef AddBiDomain::frameFactorIn(AddManager &M, unsigned SkipVar) const {
  NodeRef Result = M.one();
  for (unsigned V = 0; V != Space->numVars(); ++V) {
    if (V == SkipVar)
      continue;
    Result = M.apply(
        Op::Mul, Result,
        equalsFactorIn(M, V, M.indicator(rowLevel(V))));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Algebra operations (manager-parameterized cores)
//===----------------------------------------------------------------------===//

NodeRef AddBiDomain::extendIn(AddManager &M, NodeRef A, NodeRef B) const {
  // (A ⊗ B)(x, x') = sum_t A(x, t) B(t, x'): move A's columns and B's rows
  // into the contraction slot (monotone renamings), multiply, sum out.
  NodeRef LiftedA = M.rename(A, [](unsigned Level) {
    return Level % 3 == 2 ? Level - 1 : Level;
  });
  NodeRef LiftedB = M.rename(B, [](unsigned Level) {
    return Level % 3 == 0 ? Level + 1 : Level;
  });
  NodeRef Product = M.apply(Op::Mul, LiftedA, LiftedB);
  std::vector<unsigned> MidLevels;
  for (unsigned V = 0; V != Space->numVars(); ++V)
    MidLevels.push_back(midLevel(V));
  return M.sumOut(Product, MidLevels);
}

NodeRef AddBiDomain::condChoiceIn(AddManager &M, const Cond &Phi,
                                  NodeRef A, NodeRef B) const {
  NodeRef Ind = condIndicatorIn(M, Phi);
  NodeRef NotInd = M.affine(Ind, -1.0, 1.0);
  return M.apply(Op::Add, M.apply(Op::Mul, Ind, A),
                 M.apply(Op::Mul, NotInd, B));
}

NodeRef AddBiDomain::probChoiceIn(AddManager &M, const Rational &P,
                                  NodeRef A, NodeRef B) const {
  double Prob = P.toDouble();
  return M.apply(Op::Add, M.scale(A, Prob), M.scale(B, 1.0 - Prob));
}

NodeRef AddBiDomain::interpretIn(AddManager &M, const Stmt *Action,
                                 NodeRef IdentityIn) const {
  if (!Action)
    return IdentityIn;
  switch (Action->kind()) {
  case Stmt::Kind::Skip:
  case Stmt::Kind::Reward:
  case Stmt::Kind::Assert:
    return IdentityIn;
  case Stmt::Kind::Assign:
    return M.apply(
        Op::Mul, frameFactorIn(M, Action->varIndex()),
        equalsFactorIn(M, Action->varIndex(),
                       exprIndicatorIn(M, Action->value())));
  case Stmt::Kind::Sample: {
    const Dist &D = Action->dist();
    unsigned X = Action->varIndex();
    switch (D.TheKind) {
    case Dist::Kind::Bernoulli: {
      assert(D.Params[0]->kind() == Expr::Kind::Number &&
             "Bernoulli parameter must be constant");
      return M.apply(
          Op::Mul, frameFactorIn(M, X),
          bernoulliFactorIn(M, X, D.Params[0]->number().toDouble()));
    }
    case Dist::Kind::Discrete: {
      double TrueMass = 0.0, FalseMass = 0.0;
      for (size_t I = 0; I != D.Params.size(); ++I)
        (D.Params[I]->number().isZero() ? FalseMass : TrueMass) +=
            D.Weights[I].toDouble();
      NodeRef Col = M.indicator(colLevel(X));
      NodeRef Factor = M.affine(Col, TrueMass - FalseMass, FalseMass);
      return M.apply(Op::Mul, frameFactorIn(M, X), Factor);
    }
    default:
      assert(false && "continuous distribution in a Boolean program");
      return IdentityIn;
    }
  }
  case Stmt::Kind::Observe:
    return M.apply(Op::Mul, IdentityIn,
                   condIndicatorIn(M, Action->observed()));
  default:
    assert(false && "not a data action");
    return IdentityIn;
  }
}

//===----------------------------------------------------------------------===//
// Public operations: sequential path on the home manager, arena path
// (import / compute / export) inside a parallel phase
//===----------------------------------------------------------------------===//

NodeRef AddBiDomain::extend(const Value &A, const Value &B) const {
  if (!inParallel())
    return extendIn(*Mgr, A, B);
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return exportRef(Ar, extendIn(Ar.Local, LA, LB));
}

NodeRef AddBiDomain::condChoice(const Cond &Phi, const Value &A,
                                const Value &B) const {
  if (!inParallel())
    return condChoiceIn(*Mgr, Phi, A, B);
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return exportRef(Ar, condChoiceIn(Ar.Local, Phi, LA, LB));
}

NodeRef AddBiDomain::probChoice(const Rational &P, const Value &A,
                                const Value &B) const {
  if (!inParallel())
    return probChoiceIn(*Mgr, P, A, B);
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return exportRef(Ar, probChoiceIn(Ar.Local, P, LA, LB));
}

NodeRef AddBiDomain::ndetChoice(const Value &A, const Value &B) const {
  if (!inParallel())
    return Mgr->apply(Op::Min, A, B);
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return exportRef(Ar, Ar.Local.apply(Op::Min, LA, LB));
}

NodeRef AddBiDomain::interpret(const Stmt *Action) const {
  if (!inParallel())
    return interpretIn(*Mgr, Action, Identity);
  Arena &Ar = arena();
  // The skip/observe cases thread the identity kernel through; importing
  // it is memoized, and exporting it back lands on the original home ref
  // (hash-consing makes migration round-trips the identity map).
  NodeRef LocalIdentity = importRef(Ar, Identity);
  return exportRef(Ar, interpretIn(Ar.Local, Action, LocalIdentity));
}

bool AddBiDomain::leq(const Value &A, const Value &B) const {
  if (!inParallel())
    return Mgr->maxTerminal(Mgr->apply(Op::Sub, A, B)) <= Tolerance;
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return Ar.Local.maxTerminal(Ar.Local.apply(Op::Sub, LA, LB)) <=
         Tolerance;
}

bool AddBiDomain::equal(const Value &A, const Value &B) const {
  // Home refs are canonical (one node per function), so reference equality
  // decides extensional equality — in both modes.
  if (A == B)
    return true;
  if (!inParallel())
    return Mgr->maxAbsDiff(A, B) <= Tolerance;
  Arena &Ar = arena();
  NodeRef LA = importRef(Ar, A);
  NodeRef LB = importRef(Ar, B);
  return Ar.Local.maxAbsDiff(LA, LB) <= Tolerance;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::vector<double>
AddBiDomain::posteriorIn(AddManager &M, NodeRef Summary,
                         const std::vector<double> &Prior) const {
  assert(Prior.size() == Space->numStates() &&
         "prior dimension mismatch");
  unsigned N = Space->numVars();
  // Prior as an ADD over the row levels.
  NodeRef PriorAdd = M.zero();
  for (size_t State = 0; State != Prior.size(); ++State) {
    if (Prior[State] == 0.0)
      continue;
    NodeRef Point = M.terminal(Prior[State]);
    for (unsigned V = 0; V != N; ++V) {
      NodeRef Ind = M.indicator(rowLevel(V));
      if (!Space->get(State, V))
        Ind = M.affine(Ind, -1.0, 1.0);
      Point = M.apply(Op::Mul, Point, Ind);
    }
    PriorAdd = M.apply(Op::Add, PriorAdd, Point);
  }
  NodeRef Product = M.apply(Op::Mul, PriorAdd, Summary);
  std::vector<unsigned> RowLevels;
  for (unsigned V = 0; V != N; ++V)
    RowLevels.push_back(rowLevel(V));
  NodeRef Marginal = M.sumOut(Product, RowLevels);
  std::vector<double> Result(Space->numStates());
  for (size_t State = 0; State != Result.size(); ++State)
    Result[State] = M.evaluate(Marginal, [&](unsigned Level) {
      return Space->get(State, Level / 3);
    });
  return Result;
}

std::vector<double>
AddBiDomain::posterior(const Value &Summary,
                       const std::vector<double> &Prior) const {
  if (!inParallel())
    return posteriorIn(*Mgr, Summary, Prior);
  Arena &Ar = arena();
  NodeRef Local = importRef(Ar, Summary);
  return posteriorIn(Ar.Local, Local, Prior);
}

Matrix AddBiDomain::toMatrix(const Value &A) const {
  // Pure read of the home diagram; lock out concurrent migrations (which
  // grow the home node store) while a parallel phase is open.
  std::unique_lock<std::mutex> Lock(HomeMutex, std::defer_lock);
  if (inParallel())
    Lock.lock();
  size_t N = Space->numStates();
  Matrix Result(N, N);
  for (size_t Row = 0; Row != N; ++Row)
    for (size_t Col = 0; Col != N; ++Col)
      Result.at(Row, Col) = Mgr->evaluate(A, [&](unsigned Level) {
        unsigned Var = Level / 3;
        return Level % 3 == 0 ? Space->get(Row, Var)
                              : Space->get(Col, Var);
      });
  return Result;
}

size_t AddBiDomain::nodeCount(const Value &A) const {
  std::unique_lock<std::mutex> Lock(HomeMutex, std::defer_lock);
  if (inParallel())
    Lock.lock();
  return Mgr->nodeCount(A);
}

std::string AddBiDomain::toString(const Value &A) const {
  return "ADD with " + std::to_string(nodeCount(A)) + " nodes";
}
