//===- domains/AddBiDomain.cpp - ADD-backed Bayesian inference ------------===//

#include "domains/AddBiDomain.h"

#include <cassert>

using namespace pmaf;
using namespace pmaf::add;
using namespace pmaf::domains;
using namespace pmaf::lang;

AddBiDomain::AddBiDomain(const BoolStateSpace &Space, double Tolerance)
    : Space(&Space), Mgr(std::make_unique<AddManager>()),
      Tolerance(Tolerance) {
  Identity = frameFactor(~0u);
}

//===----------------------------------------------------------------------===//
// Indicator construction
//===----------------------------------------------------------------------===//

NodeRef AddBiDomain::exprIndicator(const Expr &E) const {
  switch (E.kind()) {
  case Expr::Kind::BoolLit:
    return E.boolValue() ? Mgr->one() : Mgr->zero();
  case Expr::Kind::Var:
    return Mgr->indicator(rowLevel(E.varIndex()));
  case Expr::Kind::Number:
    return E.number().isZero() ? Mgr->zero() : Mgr->one();
  default:
    assert(false && "arithmetic expression in a Boolean program");
    return Mgr->zero();
  }
}

NodeRef AddBiDomain::condIndicator(const Cond &Phi) const {
  switch (Phi.kind()) {
  case Cond::Kind::True:
    return Mgr->one();
  case Cond::Kind::False:
    return Mgr->zero();
  case Cond::Kind::BoolVar:
    return Mgr->indicator(rowLevel(Phi.varIndex()));
  case Cond::Kind::Cmp: {
    NodeRef A = exprIndicator(Phi.cmpLhs());
    NodeRef B = exprIndicator(Phi.cmpRhs());
    // xor = a + b - 2ab over 0/1 indicators.
    NodeRef Xor = Mgr->apply(
        Op::Sub, Mgr->apply(Op::Add, A, B),
        Mgr->scale(Mgr->apply(Op::Mul, A, B), 2.0));
    switch (Phi.cmpOp()) {
    case CmpOp::Eq:
      return Mgr->affine(Xor, -1.0, 1.0);
    case CmpOp::Ne:
      return Xor;
    default:
      assert(false && "ordered comparison in a Boolean program");
      return Mgr->zero();
    }
  }
  case Cond::Kind::Not:
    return Mgr->affine(condIndicator(Phi.operand()), -1.0, 1.0);
  case Cond::Kind::And:
    return Mgr->apply(Op::Min, condIndicator(Phi.lhs()),
                      condIndicator(Phi.rhs()));
  case Cond::Kind::Or:
    return Mgr->apply(Op::Max, condIndicator(Phi.lhs()),
                      condIndicator(Phi.rhs()));
  }
  assert(false && "unknown condition kind");
  return Mgr->zero();
}

NodeRef AddBiDomain::equalsFactor(unsigned Var, NodeRef Rhs) const {
  // [col_Var == Rhs] = 1 - (col + rhs - 2 col rhs) over 0/1 indicators.
  NodeRef Col = Mgr->indicator(colLevel(Var));
  NodeRef Xor = Mgr->apply(
      Op::Sub, Mgr->apply(Op::Add, Col, Rhs),
      Mgr->scale(Mgr->apply(Op::Mul, Col, Rhs), 2.0));
  return Mgr->affine(Xor, -1.0, 1.0);
}

NodeRef AddBiDomain::bernoulliFactor(unsigned Var, double P) const {
  // p at col=true, 1-p at col=false: (2p-1) col + (1-p).
  return Mgr->affine(Mgr->indicator(colLevel(Var)), 2.0 * P - 1.0,
                     1.0 - P);
}

NodeRef AddBiDomain::frameFactor(unsigned SkipVar) const {
  NodeRef Result = Mgr->one();
  for (unsigned V = 0; V != Space->numVars(); ++V) {
    if (V == SkipVar)
      continue;
    Result = Mgr->apply(
        Op::Mul, Result,
        equalsFactor(V, Mgr->indicator(rowLevel(V))));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Algebra operations
//===----------------------------------------------------------------------===//

NodeRef AddBiDomain::extend(const Value &A, const Value &B) const {
  // (A ⊗ B)(x, x') = sum_t A(x, t) B(t, x'): move A's columns and B's rows
  // into the contraction slot (monotone renamings), multiply, sum out.
  NodeRef LiftedA = Mgr->rename(A, [](unsigned Level) {
    return Level % 3 == 2 ? Level - 1 : Level;
  });
  NodeRef LiftedB = Mgr->rename(B, [](unsigned Level) {
    return Level % 3 == 0 ? Level + 1 : Level;
  });
  NodeRef Product = Mgr->apply(Op::Mul, LiftedA, LiftedB);
  std::vector<unsigned> MidLevels;
  for (unsigned V = 0; V != Space->numVars(); ++V)
    MidLevels.push_back(midLevel(V));
  return Mgr->sumOut(Product, MidLevels);
}

NodeRef AddBiDomain::condChoice(const Cond &Phi, const Value &A,
                                const Value &B) const {
  NodeRef Ind = condIndicator(Phi);
  NodeRef NotInd = Mgr->affine(Ind, -1.0, 1.0);
  return Mgr->apply(Op::Add, Mgr->apply(Op::Mul, Ind, A),
                    Mgr->apply(Op::Mul, NotInd, B));
}

NodeRef AddBiDomain::probChoice(const Rational &P, const Value &A,
                                const Value &B) const {
  double Prob = P.toDouble();
  return Mgr->apply(Op::Add, Mgr->scale(A, Prob),
                    Mgr->scale(B, 1.0 - Prob));
}

NodeRef AddBiDomain::interpret(const Stmt *Action) const {
  if (!Action)
    return Identity;
  switch (Action->kind()) {
  case Stmt::Kind::Skip:
  case Stmt::Kind::Reward:
    return Identity;
  case Stmt::Kind::Assign:
    return Mgr->apply(
        Op::Mul, frameFactor(Action->varIndex()),
        equalsFactor(Action->varIndex(),
                     exprIndicator(Action->value())));
  case Stmt::Kind::Sample: {
    const Dist &D = Action->dist();
    unsigned X = Action->varIndex();
    switch (D.TheKind) {
    case Dist::Kind::Bernoulli: {
      assert(D.Params[0]->kind() == Expr::Kind::Number &&
             "Bernoulli parameter must be constant");
      return Mgr->apply(
          Op::Mul, frameFactor(X),
          bernoulliFactor(X, D.Params[0]->number().toDouble()));
    }
    case Dist::Kind::Discrete: {
      double TrueMass = 0.0, FalseMass = 0.0;
      for (size_t I = 0; I != D.Params.size(); ++I)
        (D.Params[I]->number().isZero() ? FalseMass : TrueMass) +=
            D.Weights[I].toDouble();
      NodeRef Col = Mgr->indicator(colLevel(X));
      NodeRef Factor =
          Mgr->affine(Col, TrueMass - FalseMass, FalseMass);
      return Mgr->apply(Op::Mul, frameFactor(X), Factor);
    }
    default:
      assert(false && "continuous distribution in a Boolean program");
      return Identity;
    }
  }
  case Stmt::Kind::Observe:
    return Mgr->apply(Op::Mul, Identity,
                      condIndicator(Action->observed()));
  default:
    assert(false && "not a data action");
    return Identity;
  }
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::vector<double>
AddBiDomain::posterior(const Value &Summary,
                       const std::vector<double> &Prior) const {
  assert(Prior.size() == Space->numStates() &&
         "prior dimension mismatch");
  unsigned N = Space->numVars();
  // Prior as an ADD over the row levels.
  NodeRef PriorAdd = Mgr->zero();
  for (size_t State = 0; State != Prior.size(); ++State) {
    if (Prior[State] == 0.0)
      continue;
    NodeRef Point = Mgr->terminal(Prior[State]);
    for (unsigned V = 0; V != N; ++V) {
      NodeRef Ind = Mgr->indicator(rowLevel(V));
      if (!Space->get(State, V))
        Ind = Mgr->affine(Ind, -1.0, 1.0);
      Point = Mgr->apply(Op::Mul, Point, Ind);
    }
    PriorAdd = Mgr->apply(Op::Add, PriorAdd, Point);
  }
  NodeRef Product = Mgr->apply(Op::Mul, PriorAdd, Summary);
  std::vector<unsigned> RowLevels;
  for (unsigned V = 0; V != N; ++V)
    RowLevels.push_back(rowLevel(V));
  NodeRef Marginal = Mgr->sumOut(Product, RowLevels);
  std::vector<double> Result(Space->numStates());
  for (size_t State = 0; State != Result.size(); ++State)
    Result[State] = Mgr->evaluate(Marginal, [&](unsigned Level) {
      return Space->get(State, Level / 3);
    });
  return Result;
}

Matrix AddBiDomain::toMatrix(const Value &A) const {
  size_t N = Space->numStates();
  Matrix Result(N, N);
  for (size_t Row = 0; Row != N; ++Row)
    for (size_t Col = 0; Col != N; ++Col)
      Result.at(Row, Col) = Mgr->evaluate(A, [&](unsigned Level) {
        unsigned Var = Level / 3;
        return Level % 3 == 0 ? Space->get(Row, Var)
                              : Space->get(Col, Var);
      });
  return Result;
}

std::string AddBiDomain::toString(const Value &A) const {
  return "ADD with " + std::to_string(Mgr->nodeCount(A)) + " nodes";
}
