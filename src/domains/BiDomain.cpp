//===- domains/BiDomain.cpp - Interprocedural Bayesian inference ----------===//

#include "domains/BiDomain.h"

#include <cassert>
#include <optional>

using namespace pmaf;
using namespace pmaf::domains;
using namespace pmaf::lang;

ProbMassBounds domains::probMassBounds(const Matrix &Summary,
                                       const BoolStateSpace &Space,
                                       const Cond &Phi) {
  size_t N = Space.numStates();
  assert(Summary.rows() == N && Summary.cols() == N &&
         "summary does not match the state space");
  ProbMassBounds Out{1.0, 0.0};
  for (size_t S = 0; S != N; ++S) {
    double OnPhi = 0.0, OffPhi = 0.0;
    for (size_t T = 0; T != N; ++T)
      (Space.evalCond(Phi, T) ? OnPhi : OffPhi) += Summary.at(S, T);
    double Upper = 1.0 - OffPhi;
    if (OnPhi < Out.MinLower)
      Out.MinLower = OnPhi;
    if (Upper > Out.MaxUpper)
      Out.MaxUpper = Upper;
  }
  if (N == 0)
    return ProbMassBounds{0.0, 1.0};
  return Out;
}

Matrix BiDomain::condChoice(const Cond &Phi, const Matrix &A,
                            const Matrix &B) const {
  size_t N = Space->numStates();
  Matrix Result(N, N);
  for (size_t S = 0; S != N; ++S) {
    const Matrix &Source = Space->evalCond(Phi, S) ? A : B;
    for (size_t T = 0; T != N; ++T)
      Result.at(S, T) = Source.at(S, T);
  }
  return Result;
}

/// Extracts a constant probability from a Bernoulli parameter expression.
static double bernoulliParam(const Expr &E) {
  assert(E.kind() == Expr::Kind::Number &&
         "Bernoulli parameter must be a constant in Boolean programs");
  return E.number().toDouble();
}

Matrix BiDomain::interpret(const Stmt *Action) const {
  size_t N = Space->numStates();
  if (!Action)
    return Matrix::identity(N);
  switch (Action->kind()) {
  case Stmt::Kind::Skip:
  case Stmt::Kind::Reward:
  case Stmt::Kind::Assert:
    return Matrix::identity(N);
  case Stmt::Kind::Assign: {
    // ⟦x := E⟧(s, t) = [ s[x <- E(s)] = t ]
    Matrix Result(N, N);
    unsigned X = Action->varIndex();
    for (size_t S = 0; S != N; ++S)
      Result.at(S, Space->set(S, X, Space->evalExpr(Action->value(), S))) =
          1.0;
    return Result;
  }
  case Stmt::Kind::Sample: {
    const Dist &D = Action->dist();
    unsigned X = Action->varIndex();
    Matrix Result(N, N);
    switch (D.TheKind) {
    case Dist::Kind::Bernoulli: {
      // ⟦x ~ Bernoulli(p)⟧(s, t) = p[s[x<-T]=t] + (1-p)[s[x<-F]=t]
      double P = bernoulliParam(*D.Params[0]);
      for (size_t S = 0; S != N; ++S) {
        Result.at(S, Space->set(S, X, true)) += P;
        Result.at(S, Space->set(S, X, false)) += 1.0 - P;
      }
      return Result;
    }
    case Dist::Kind::Discrete: {
      // Values are interpreted as Booleans (0 = false, nonzero = true).
      for (size_t S = 0; S != N; ++S)
        for (size_t I = 0; I != D.Params.size(); ++I) {
          bool V = !D.Params[I]->number().isZero();
          Result.at(S, Space->set(S, X, V)) += D.Weights[I].toDouble();
        }
      return Result;
    }
    default:
      assert(false && "continuous distribution in a Boolean program");
      return Matrix::identity(N);
    }
  }
  case Stmt::Kind::Observe: {
    // ⟦observe(phi)⟧(s, t) = phi(s) · [s = t]
    Matrix Result(N, N);
    for (size_t S = 0; S != N; ++S)
      if (Space->evalCond(Action->observed(), S))
        Result.at(S, S) = 1.0;
    return Result;
  }
  default:
    assert(false && "not a data action");
    return Matrix::identity(N);
  }
}
