//===- domains/BoolStateSpace.cpp - Boolean-program state spaces ----------===//

#include "domains/BoolStateSpace.h"

using namespace pmaf;
using namespace pmaf::domains;
using namespace pmaf::lang;

BoolStateSpace::BoolStateSpace(const lang::Program &Prog) : Prog(&Prog) {
  for ([[maybe_unused]] const VarInfo &Var : Prog.Vars)
    assert(!Var.IsReal &&
           "Boolean state spaces require an all-Boolean program");
  NumVars = static_cast<unsigned>(Prog.Vars.size());
  assert(NumVars <= MaxVars && "Boolean state space too large");
}

bool BoolStateSpace::evalExpr(const Expr &E, size_t State) const {
  switch (E.kind()) {
  case Expr::Kind::BoolLit:
    return E.boolValue();
  case Expr::Kind::Var:
    return get(State, E.varIndex());
  case Expr::Kind::Number:
    // Accept 0/1 as Boolean constants for convenience.
    return !E.number().isZero();
  default:
    assert(false && "arithmetic expression in a Boolean program");
    return false;
  }
}

bool BoolStateSpace::evalCond(const Cond &C, size_t State) const {
  switch (C.kind()) {
  case Cond::Kind::True:
    return true;
  case Cond::Kind::False:
    return false;
  case Cond::Kind::BoolVar:
    return get(State, C.varIndex());
  case Cond::Kind::Cmp: {
    bool Lhs = evalExpr(C.cmpLhs(), State);
    bool Rhs = evalExpr(C.cmpRhs(), State);
    switch (C.cmpOp()) {
    case CmpOp::Eq:
      return Lhs == Rhs;
    case CmpOp::Ne:
      return Lhs != Rhs;
    default:
      assert(false && "ordered comparison in a Boolean program");
      return false;
    }
  }
  case Cond::Kind::Not:
    return !evalCond(C.operand(), State);
  case Cond::Kind::And:
    return evalCond(C.lhs(), State) && evalCond(C.rhs(), State);
  case Cond::Kind::Or:
    return evalCond(C.lhs(), State) || evalCond(C.rhs(), State);
  }
  assert(false && "unknown condition kind");
  return false;
}

std::string BoolStateSpace::stateToString(size_t State) const {
  std::string Out = "{";
  for (unsigned I = 0; I != NumVars; ++I) {
    if (I)
      Out += ", ";
    Out += Prog->Vars[I].Name;
    Out += get(State, I) ? "=T" : "=F";
  }
  return Out + "}";
}
