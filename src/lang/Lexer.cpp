//===- lang/Lexer.cpp - Tokenizer for the surface language ----------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace pmaf;
using namespace pmaf::lang;

namespace {

class LexerImpl {
public:
  explicit LexerImpl(const std::string &Source) : Source(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipTrivia();
      Token Tok = next();
      Tokens.push_back(Tok);
      if (Tok.TheKind == Token::Kind::Eof || Tok.TheKind == Token::Kind::Error)
        return Tokens;
    }
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }
  char peekAt(size_t Offset) const {
    return Pos + Offset >= Source.size() ? '\0' : Source[Pos + Offset];
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
      } else if (C == '#' || (C == '/' && peekAt(1) == '/')) {
        while (!atEnd() && peek() != '\n')
          advance();
      } else {
        return;
      }
    }
  }

  Token make(Token::Kind Kind, std::string Text, unsigned TokLine,
             unsigned TokCol) {
    Token Tok;
    Tok.TheKind = Kind;
    Tok.Text = std::move(Text);
    Tok.Line = TokLine;
    Tok.Col = TokCol;
    return Tok;
  }

  Token next() {
    unsigned TokLine = Line, TokCol = Col;
    if (atEnd())
      return make(Token::Kind::Eof, "", TokLine, TokCol);
    char C = advance();
    switch (C) {
    case '(':
      return make(Token::Kind::LParen, "(", TokLine, TokCol);
    case ')':
      return make(Token::Kind::RParen, ")", TokLine, TokCol);
    case '{':
      return make(Token::Kind::LBrace, "{", TokLine, TokCol);
    case '}':
      return make(Token::Kind::RBrace, "}", TokLine, TokCol);
    case ';':
      return make(Token::Kind::Semi, ";", TokLine, TokCol);
    case ',':
      return make(Token::Kind::Comma, ",", TokLine, TokCol);
    case '+':
      return make(Token::Kind::Plus, "+", TokLine, TokCol);
    case '-':
      return make(Token::Kind::Minus, "-", TokLine, TokCol);
    case '*':
      return make(Token::Kind::Star, "*", TokLine, TokCol);
    case '/':
      return make(Token::Kind::Slash, "/", TokLine, TokCol);
    case '~':
      return make(Token::Kind::Tilde, "~", TokLine, TokCol);
    case ':':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::Assign, ":=", TokLine, TokCol);
      }
      return make(Token::Kind::Colon, ":", TokLine, TokCol);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::NotEq, "!=", TokLine, TokCol);
      }
      return make(Token::Kind::Bang, "!", TokLine, TokCol);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Token::Kind::AndAnd, "&&", TokLine, TokCol);
      }
      return make(Token::Kind::Error, "stray '&'", TokLine, TokCol);
    case '|':
      if (peek() == '|') {
        advance();
        return make(Token::Kind::OrOr, "||", TokLine, TokCol);
      }
      return make(Token::Kind::Error, "stray '|'", TokLine, TokCol);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::EqEq, "==", TokLine, TokCol);
      }
      return make(Token::Kind::Error, "stray '=' (use ':=' or '==')", TokLine,
                  TokCol);
    case '<':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::LessEq, "<=", TokLine, TokCol);
      }
      return make(Token::Kind::Less, "<", TokLine, TokCol);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::GreaterEq, ">=", TokLine, TokCol);
      }
      return make(Token::Kind::Greater, ">", TokLine, TokCol);
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text(1, C);
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
      if (peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(peekAt(1)))) {
        Text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        size_t Skip = (peekAt(1) == '+' || peekAt(1) == '-') ? 2 : 1;
        if (std::isdigit(static_cast<unsigned char>(peekAt(Skip)))) {
          for (size_t I = 0; I != Skip; ++I)
            Text += advance();
          while (std::isdigit(static_cast<unsigned char>(peek())))
            Text += advance();
        }
      }
      return make(Token::Kind::Number, Text, TokLine, TokCol);
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text(1, C);
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Text += advance();
      return make(Token::Kind::Ident, Text, TokLine, TokCol);
    }
    return make(Token::Kind::Error,
                std::string("unexpected character '") + C + "'", TokLine,
                TokCol);
  }

  const std::string &Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

std::vector<Token> lang::tokenize(const std::string &Source) {
  return LexerImpl(Source).run();
}
