//===- lang/PosNegDecompose.cpp - Positive-negative decomposition ---------===//

#include "lang/PosNegDecompose.h"

#include <cassert>
#include <optional>
#include <vector>

using namespace pmaf;
using namespace pmaf::lang;

namespace {

/// A linear form over the original variables plus the sampling temporary:
/// Constant + sum Coeffs[i] * v_i + TempCoeff * __t.
struct LinearForm {
  std::vector<Rational> Coeffs;
  Rational TempCoeff;
  Rational Constant;
};

class Decomposer {
public:
  explicit Decomposer(const Program &Original) : Original(Original) {}

  DecomposeResult run() {
    DecomposeResult Result;
    auto Out = std::make_unique<Program>();
    for (const VarInfo &Var : Original.Vars) {
      if (!Var.IsReal) {
        Result.Error = "positive-negative decomposition applies to "
                       "real-valued programs only";
        return Result;
      }
      Out->Vars.push_back(VarInfo{Var.Name + "__p", true, {}});
      Out->Vars.push_back(VarInfo{Var.Name + "__n", true, {}});
    }
    NumOriginal = static_cast<unsigned>(Original.Vars.size());
    TempIndex = 2 * NumOriginal;      // __t: sampling offset
    ScratchP = 2 * NumOriginal + 1;   // __s: staged positive component
    ScratchN = 2 * NumOriginal + 2;   // __u: staged negative component
    Out->Vars.push_back(VarInfo{"__t", true, {}});
    Out->Vars.push_back(VarInfo{"__s", true, {}});
    Out->Vars.push_back(VarInfo{"__u", true, {}});

    for (const Procedure &Proc : Original.Procs) {
      Stmt::Ptr Body = rewriteStmt(*Proc.Body);
      if (!Error.empty()) {
        Result.Error = Error;
        return Result;
      }
      Out->Procs.push_back(Procedure{Proc.Name, std::move(Body), {}});
    }
    Result.Prog = std::move(Out);
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Linear forms
  //===--------------------------------------------------------------------===//

  std::optional<LinearForm> linearize(const Expr &E) const {
    LinearForm Form;
    Form.Coeffs.assign(NumOriginal, Rational(0));
    switch (E.kind()) {
    case Expr::Kind::Var:
      Form.Coeffs[E.varIndex()] = Rational(1);
      return Form;
    case Expr::Kind::Number:
      Form.Constant = E.number();
      return Form;
    case Expr::Kind::BoolLit:
      return std::nullopt;
    case Expr::Kind::Add:
    case Expr::Kind::Sub: {
      auto L = linearize(E.lhs()), R = linearize(E.rhs());
      if (!L || !R)
        return std::nullopt;
      bool Neg = E.kind() == Expr::Kind::Sub;
      for (unsigned I = 0; I != NumOriginal; ++I)
        L->Coeffs[I] += Neg ? -R->Coeffs[I] : R->Coeffs[I];
      L->TempCoeff += Neg ? -R->TempCoeff : R->TempCoeff;
      L->Constant += Neg ? -R->Constant : R->Constant;
      return L;
    }
    case Expr::Kind::Mul:
    case Expr::Kind::Div: {
      auto L = linearize(E.lhs()), R = linearize(E.rhs());
      if (!L || !R)
        return std::nullopt;
      auto IsConst = [this](const LinearForm &F) {
        for (unsigned I = 0; I != NumOriginal; ++I)
          if (!F.Coeffs[I].isZero())
            return false;
        return F.TempCoeff.isZero();
      };
      if (E.kind() == Expr::Kind::Div) {
        if (!IsConst(*R) || R->Constant.isZero())
          return std::nullopt;
        Rational Inv = Rational(1) / R->Constant;
        for (Rational &C : L->Coeffs)
          C *= Inv;
        L->TempCoeff *= Inv;
        L->Constant *= Inv;
        return L;
      }
      const LinearForm *Scalar = IsConst(*L) ? &*L : nullptr;
      LinearForm *Other = Scalar ? &*R : &*L;
      if (!Scalar) {
        if (!IsConst(*R))
          return std::nullopt;
        Scalar = &*R;
      }
      for (Rational &C : Other->Coeffs)
        C *= Scalar->Constant;
      Other->TempCoeff *= Scalar->Constant;
      Other->Constant *= Scalar->Constant;
      return *Other;
    }
    }
    assert(false && "unknown expression kind");
    return std::nullopt;
  }

  /// Builds the nonnegative half of a linear form: positive coefficients
  /// go to the __p component, negative ones to the __n component (and
  /// vice versa when \p Negative).
  Expr::Ptr halfExpr(const LinearForm &Form, bool Negative) const {
    Expr::Ptr Acc;
    auto AddTerm = [&Acc](Rational Coeff, unsigned VarIndex) {
      if (Coeff.isZero())
        return;
      Expr::Ptr Term = Expr::makeBinary(
          Expr::Kind::Mul, Expr::makeNumber(std::move(Coeff)),
          Expr::makeVar(VarIndex));
      Acc = Acc ? Expr::makeBinary(Expr::Kind::Add, std::move(Acc),
                                   std::move(Term))
                : std::move(Term);
    };
    for (unsigned I = 0; I != NumOriginal; ++I) {
      const Rational &A = Form.Coeffs[I];
      Rational Pos = A.sign() > 0 ? A : Rational(0);
      Rational Neg = A.sign() < 0 ? -A : Rational(0);
      // x_i = x_i__p - x_i__n; contributing sign selects the component.
      AddTerm(Negative ? Neg : Pos, 2 * I);     // coeff for x_i__p
      AddTerm(Negative ? Pos : Neg, 2 * I + 1); // coeff for x_i__n
    }
    {
      // __t is itself a nonnegative variable (not decomposed): its
      // contribution lands in the half matching the coefficient sign.
      const Rational &T = Form.TempCoeff;
      Rational Pos = T.sign() > 0 ? T : Rational(0);
      Rational Neg = T.sign() < 0 ? -T : Rational(0);
      AddTerm(Negative ? Neg : Pos, TempIndex);
    }
    Rational C = Form.Constant;
    Rational Wanted = Negative ? (C.sign() < 0 ? -C : Rational(0))
                               : (C.sign() > 0 ? C : Rational(0));
    if (!Wanted.isZero() || !Acc)
      Acc = Acc ? Expr::makeBinary(Expr::Kind::Add, std::move(Acc),
                                   Expr::makeNumber(std::move(Wanted)))
                : Expr::makeNumber(std::move(Wanted));
    return Acc;
  }

  /// Rewrites an expression by substituting x_i -> x_i__p - x_i__n
  /// (for conditions and nonlinear contexts).
  Expr::Ptr substExpr(const Expr &E) const {
    switch (E.kind()) {
    case Expr::Kind::Var:
      return Expr::makeBinary(Expr::Kind::Sub,
                              Expr::makeVar(2 * E.varIndex()),
                              Expr::makeVar(2 * E.varIndex() + 1));
    case Expr::Kind::Number:
      return Expr::makeNumber(E.number());
    case Expr::Kind::BoolLit:
      return Expr::makeBool(E.boolValue());
    default:
      return Expr::makeBinary(E.kind(), substExpr(E.lhs()),
                              substExpr(E.rhs()));
    }
  }

  Cond::Ptr substCond(const Cond &C) const {
    switch (C.kind()) {
    case Cond::Kind::True:
      return Cond::makeTrue();
    case Cond::Kind::False:
      return Cond::makeFalse();
    case Cond::Kind::BoolVar:
      assert(false && "no Boolean variables in a real program");
      return Cond::makeTrue();
    case Cond::Kind::Cmp:
      return Cond::makeCmp(C.cmpOp(), substExpr(C.cmpLhs()),
                           substExpr(C.cmpRhs()));
    case Cond::Kind::Not:
      return Cond::makeNot(substCond(C.operand()));
    case Cond::Kind::And:
      return Cond::makeAnd(substCond(C.lhs()), substCond(C.rhs()));
    case Cond::Kind::Or:
      return Cond::makeOr(substCond(C.lhs()), substCond(C.rhs()));
    }
    assert(false && "unknown condition kind");
    return Cond::makeTrue();
  }

  Guard rewriteGuard(const Guard &G) const {
    Guard Out;
    Out.TheKind = G.TheKind;
    Out.Prob = G.Prob;
    if (G.Phi)
      Out.Phi = substCond(*G.Phi);
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Emits `__s := pos(Form); __u := neg(Form); x__p := __s; x__n := __u`
  /// (staging through scratch variables so self-references read the old
  /// components).
  void emitSplitAssign(std::vector<Stmt::Ptr> &Out, unsigned Target,
                       const LinearForm &Form) const {
    Out.push_back(Stmt::makeAssign(ScratchP, halfExpr(Form, false)));
    Out.push_back(Stmt::makeAssign(ScratchN, halfExpr(Form, true)));
    Out.push_back(Stmt::makeAssign(2 * Target, Expr::makeVar(ScratchP)));
    Out.push_back(
        Stmt::makeAssign(2 * Target + 1, Expr::makeVar(ScratchN)));
  }

  void rewriteAssign(std::vector<Stmt::Ptr> &Out, const Stmt &S) {
    std::optional<LinearForm> Form = linearize(S.value());
    if (!Form) {
      Error = "nonlinear assignment cannot be decomposed: " +
              toString(S.value(), Original);
      return;
    }
    emitSplitAssign(Out, S.varIndex(), *Form);
  }

  void rewriteSample(std::vector<Stmt::Ptr> &Out, const Stmt &S) {
    const Dist &D = S.dist();
    unsigned X = S.varIndex();
    switch (D.TheKind) {
    case Dist::Kind::Bernoulli: {
      // Support {0, 1} is already nonnegative: x__p ~ D, x__n := 0.
      Dist Sub;
      Sub.TheKind = D.TheKind;
      Sub.Params.push_back(substExpr(*D.Params[0]));
      Out.push_back(Stmt::makeSample(2 * X, std::move(Sub)));
      Out.push_back(
          Stmt::makeAssign(2 * X + 1, Expr::makeNumber(Rational(0))));
      return;
    }
    case Dist::Kind::Uniform:
    case Dist::Kind::UniformInt: {
      // x ~ D(lo, hi)  ~>  __t ~ D(0, hi - lo); x := lo + __t.
      std::optional<LinearForm> Lo = linearize(*D.Params[0]);
      std::optional<LinearForm> Hi = linearize(*D.Params[1]);
      if (!Lo || !Hi) {
        Error = "sampling with nonlinear bounds cannot be decomposed";
        return;
      }
      LinearForm Span = *Hi;
      for (unsigned I = 0; I != NumOriginal; ++I)
        Span.Coeffs[I] -= Lo->Coeffs[I];
      Span.TempCoeff -= Lo->TempCoeff;
      Span.Constant -= Lo->Constant;
      Dist Offset;
      Offset.TheKind = D.TheKind;
      Offset.Params.push_back(Expr::makeNumber(Rational(0)));
      // The span hi - lo is nonnegative by the semantics of the original
      // program, so the substituted expression is a valid upper bound.
      Offset.Params.push_back(halfExprAsSignedExpr(Span));
      Out.push_back(Stmt::makeSample(TempIndex, std::move(Offset)));
      LinearForm Assign = *Lo;
      Assign.TempCoeff += Rational(1);
      emitSplitAssign(Out, X, Assign);
      return;
    }
    case Dist::Kind::Discrete: {
      // Shift the (constant) support into the nonnegative range:
      // x__p ~ D + M, x__n := M with M = max(0, -min support).
      Rational Min;
      bool First = true;
      for (const Expr::Ptr &V : D.Params) {
        Rational Value = V->number();
        if (First || Value < Min)
          Min = Value;
        First = false;
      }
      Rational Shift = Min.sign() < 0 ? -Min : Rational(0);
      Dist Shifted;
      Shifted.TheKind = Dist::Kind::Discrete;
      Shifted.Weights = D.Weights;
      for (const Expr::Ptr &V : D.Params)
        Shifted.Params.push_back(Expr::makeNumber(V->number() + Shift));
      Out.push_back(Stmt::makeSample(2 * X, std::move(Shifted)));
      Out.push_back(
          Stmt::makeAssign(2 * X + 1, Expr::makeNumber(Shift)));
      return;
    }
    case Dist::Kind::Gaussian:
      Error = "Gaussian support is unbounded below and cannot be "
              "shifted into the nonnegative range";
      return;
    }
    assert(false && "unknown distribution kind");
  }

  /// Renders a signed linear form as a (possibly negative) expression over
  /// the decomposed variables: pos-half minus neg-half.
  Expr::Ptr halfExprAsSignedExpr(const LinearForm &Form) const {
    return Expr::makeBinary(Expr::Kind::Sub, halfExpr(Form, false),
                            halfExpr(Form, true));
  }

  Stmt::Ptr rewriteStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Skip:
      return Stmt::makeSkip();
    case Stmt::Kind::Reward:
      return Stmt::makeReward(S.reward());
    case Stmt::Kind::Break:
      return Stmt::makeBreak();
    case Stmt::Kind::Continue:
      return Stmt::makeContinue();
    case Stmt::Kind::Return:
      return Stmt::makeReturn();
    case Stmt::Kind::Call: {
      Stmt::Ptr Out = Stmt::makeCall(S.callee());
      Out->setCalleeIndex(S.calleeIndex());
      return Out;
    }
    case Stmt::Kind::Observe:
      return Stmt::makeObserve(substCond(S.observed()));
    case Stmt::Kind::Assert: {
      Stmt::Ptr Out;
      switch (S.assertKind()) {
      case AssertKind::Prob:
        Out = Stmt::makeAssertProb(substCond(S.assertCond()), S.assertOp(),
                                   S.assertBound());
        break;
      case AssertKind::Reward:
        Out = Stmt::makeAssertReward(S.assertOp(), S.assertBound());
        break;
      case AssertKind::Interval:
        Out = Stmt::makeAssertInterval(substExpr(S.assertTarget()),
                                       S.assertLo(), S.assertHi());
        break;
      }
      Out->setLoc(S.loc());
      return Out;
    }
    case Stmt::Kind::Assign: {
      std::vector<Stmt::Ptr> Out;
      rewriteAssign(Out, S);
      return Stmt::makeBlock(std::move(Out));
    }
    case Stmt::Kind::Sample: {
      std::vector<Stmt::Ptr> Out;
      rewriteSample(Out, S);
      return Stmt::makeBlock(std::move(Out));
    }
    case Stmt::Kind::Block: {
      std::vector<Stmt::Ptr> Out;
      for (const Stmt::Ptr &Child : S.stmts())
        Out.push_back(rewriteStmt(*Child));
      return Stmt::makeBlock(std::move(Out));
    }
    case Stmt::Kind::If: {
      Stmt::Ptr Then = rewriteStmt(S.thenStmt());
      Stmt::Ptr Else =
          S.elseStmt() ? rewriteStmt(*S.elseStmt()) : nullptr;
      return Stmt::makeIf(rewriteGuard(S.guard()), std::move(Then),
                          std::move(Else));
    }
    case Stmt::Kind::While:
      return Stmt::makeWhile(rewriteGuard(S.guard()),
                             rewriteStmt(S.body()));
    }
    assert(false && "unknown statement kind");
    return Stmt::makeSkip();
  }

  const Program &Original;
  unsigned NumOriginal = 0;
  unsigned TempIndex = 0, ScratchP = 0, ScratchN = 0;
  std::string Error;
};

} // namespace

DecomposeResult lang::decomposePosNeg(const Program &Prog) {
  return Decomposer(Prog).run();
}
