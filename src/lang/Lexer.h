//===- lang/Lexer.h - Tokenizer for the surface language -------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the probabilistic-program surface syntax. Comments are
/// `// ...` and `# ...` to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_LANG_LEXER_H
#define PMAF_LANG_LEXER_H

#include <string>
#include <vector>

namespace pmaf {
namespace lang {

/// A lexical token.
struct Token {
  enum class Kind {
    Eof,
    Error,
    Ident,
    Number,       // 12, 0.75, 1e-3
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Assign,       // :=
    Tilde,        // ~
    Bang,         // !
    AndAnd,       // &&
    OrOr,         // ||
    EqEq,         // ==
    NotEq,        // !=
    LessEq,       // <=
    GreaterEq,    // >=
    Less,         // <
    Greater,      // >
    Plus,
    Minus,
    Star,         // '*' (multiplication; the ndet guard keyword is `star`)
    Slash,
  };

  Kind TheKind = Kind::Eof;
  std::string Text;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes \p Source completely. On a lexical error the final token has
/// kind Error and its Text describes the problem; otherwise the vector ends
/// with an Eof token.
std::vector<Token> tokenize(const std::string &Source);

} // namespace lang
} // namespace pmaf

#endif // PMAF_LANG_LEXER_H
