//===- lang/Ast.cpp - AST factories, cloning, and pretty-printing ---------===//

#include "lang/Ast.h"

using namespace pmaf;
using namespace pmaf::lang;

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

Expr::Ptr Expr::makeVar(unsigned VarIndex) {
  Ptr E(new Expr());
  E->TheKind = Kind::Var;
  E->VarIndex = VarIndex;
  return E;
}

Expr::Ptr Expr::makeNumber(Rational Value) {
  Ptr E(new Expr());
  E->TheKind = Kind::Number;
  E->Value = std::move(Value);
  return E;
}

Expr::Ptr Expr::makeBool(bool Value) {
  Ptr E(new Expr());
  E->TheKind = Kind::BoolLit;
  E->BoolValue = Value;
  return E;
}

Expr::Ptr Expr::makeBinary(Kind Op, Ptr Lhs, Ptr Rhs) {
  assert(Op >= Kind::Add && "not a binary operator kind");
  Ptr E(new Expr());
  E->TheKind = Op;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

Expr::Ptr Expr::clone() const {
  Ptr Result;
  switch (TheKind) {
  case Kind::Var:
    Result = makeVar(VarIndex);
    break;
  case Kind::Number:
    Result = makeNumber(Value);
    break;
  case Kind::BoolLit:
    Result = makeBool(BoolValue);
    break;
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
    Result = makeBinary(TheKind, Lhs->clone(), Rhs->clone());
    break;
  }
  assert(Result && "unknown expression kind");
  Result->Loc = Loc;
  return Result;
}

//===----------------------------------------------------------------------===//
// Cond
//===----------------------------------------------------------------------===//

Cond::Ptr Cond::makeTrue() {
  Ptr C(new Cond());
  C->TheKind = Kind::True;
  return C;
}

Cond::Ptr Cond::makeFalse() {
  Ptr C(new Cond());
  C->TheKind = Kind::False;
  return C;
}

Cond::Ptr Cond::makeBoolVar(unsigned VarIndex) {
  Ptr C(new Cond());
  C->TheKind = Kind::BoolVar;
  C->VarIndex = VarIndex;
  return C;
}

Cond::Ptr Cond::makeCmp(CmpOp Op, Expr::Ptr Lhs, Expr::Ptr Rhs) {
  Ptr C(new Cond());
  C->TheKind = Kind::Cmp;
  C->Op = Op;
  C->CmpLhs = std::move(Lhs);
  C->CmpRhs = std::move(Rhs);
  return C;
}

Cond::Ptr Cond::makeNot(Ptr Operand) {
  Ptr C(new Cond());
  C->TheKind = Kind::Not;
  C->Lhs = std::move(Operand);
  return C;
}

Cond::Ptr Cond::makeAnd(Ptr Lhs, Ptr Rhs) {
  Ptr C(new Cond());
  C->TheKind = Kind::And;
  C->Lhs = std::move(Lhs);
  C->Rhs = std::move(Rhs);
  return C;
}

Cond::Ptr Cond::makeOr(Ptr Lhs, Ptr Rhs) {
  Ptr C(new Cond());
  C->TheKind = Kind::Or;
  C->Lhs = std::move(Lhs);
  C->Rhs = std::move(Rhs);
  return C;
}

Cond::Ptr Cond::clone() const {
  Ptr Result;
  switch (TheKind) {
  case Kind::True:
    Result = makeTrue();
    break;
  case Kind::False:
    Result = makeFalse();
    break;
  case Kind::BoolVar:
    Result = makeBoolVar(VarIndex);
    break;
  case Kind::Cmp:
    Result = makeCmp(Op, CmpLhs->clone(), CmpRhs->clone());
    break;
  case Kind::Not:
    Result = makeNot(Lhs->clone());
    break;
  case Kind::And:
    Result = makeAnd(Lhs->clone(), Rhs->clone());
    break;
  case Kind::Or:
    Result = makeOr(Lhs->clone(), Rhs->clone());
    break;
  }
  assert(Result && "unknown condition kind");
  Result->Loc = Loc;
  return Result;
}

//===----------------------------------------------------------------------===//
// Dist / Guard
//===----------------------------------------------------------------------===//

Dist Dist::clone() const {
  Dist Result;
  Result.TheKind = TheKind;
  Result.Params.reserve(Params.size());
  for (const Expr::Ptr &Param : Params)
    Result.Params.push_back(Param->clone());
  Result.Weights = Weights;
  Result.Loc = Loc;
  return Result;
}

Guard Guard::clone() const {
  Guard Result;
  Result.TheKind = TheKind;
  if (Phi)
    Result.Phi = Phi->clone();
  Result.Prob = Prob;
  Result.Loc = Loc;
  return Result;
}

//===----------------------------------------------------------------------===//
// Stmt
//===----------------------------------------------------------------------===//

Stmt::Ptr Stmt::makeSkip() { return Ptr(new Stmt()); }

Stmt::Ptr Stmt::makeAssign(unsigned VarIndex, Expr::Ptr Value) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Assign;
  S->VarIndex = VarIndex;
  S->Value = std::move(Value);
  return S;
}

Stmt::Ptr Stmt::makeSample(unsigned VarIndex, Dist D) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Sample;
  S->VarIndex = VarIndex;
  S->TheDist = std::move(D);
  return S;
}

Stmt::Ptr Stmt::makeObserve(Cond::Ptr Phi) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Observe;
  S->Phi = std::move(Phi);
  return S;
}

Stmt::Ptr Stmt::makeReward(Rational Amount) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Reward;
  S->Amount = std::move(Amount);
  return S;
}

Stmt::Ptr Stmt::makeAssertProb(Cond::Ptr Phi, CmpOp Op, Rational Bound) {
  assert((Op == CmpOp::Ge || Op == CmpOp::Le) &&
         "probability assertions compare with >= or <= only");
  Ptr S(new Stmt());
  S->TheKind = Kind::Assert;
  S->TheAssertKind = AssertKind::Prob;
  S->Phi = std::move(Phi);
  S->AssertOp = Op;
  S->Amount = std::move(Bound);
  return S;
}

Stmt::Ptr Stmt::makeAssertReward(CmpOp Op, Rational Bound) {
  assert((Op == CmpOp::Ge || Op == CmpOp::Le) &&
         "reward assertions compare with >= or <= only");
  Ptr S(new Stmt());
  S->TheKind = Kind::Assert;
  S->TheAssertKind = AssertKind::Reward;
  S->AssertOp = Op;
  S->Amount = std::move(Bound);
  return S;
}

Stmt::Ptr Stmt::makeAssertInterval(Expr::Ptr Target, Rational Lo,
                                   Rational Hi) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Assert;
  S->TheAssertKind = AssertKind::Interval;
  S->Value = std::move(Target);
  S->Lo = std::move(Lo);
  S->Hi = std::move(Hi);
  return S;
}

Stmt::Ptr Stmt::makeBlock(std::vector<Ptr> Stmts) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Block;
  S->Stmts = std::move(Stmts);
  return S;
}

Stmt::Ptr Stmt::makeIf(Guard G, Ptr Then, Ptr Else) {
  Ptr S(new Stmt());
  S->TheKind = Kind::If;
  S->TheGuard = std::move(G);
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  return S;
}

Stmt::Ptr Stmt::makeWhile(Guard G, Ptr Body) {
  Ptr S(new Stmt());
  S->TheKind = Kind::While;
  S->TheGuard = std::move(G);
  S->Then = std::move(Body);
  return S;
}

Stmt::Ptr Stmt::makeCall(std::string Callee) {
  Ptr S(new Stmt());
  S->TheKind = Kind::Call;
  S->Callee = std::move(Callee);
  return S;
}

Stmt::Ptr Stmt::makeBreak() {
  Ptr S(new Stmt());
  S->TheKind = Kind::Break;
  return S;
}

Stmt::Ptr Stmt::makeContinue() {
  Ptr S(new Stmt());
  S->TheKind = Kind::Continue;
  return S;
}

Stmt::Ptr Stmt::makeReturn() {
  Ptr S(new Stmt());
  S->TheKind = Kind::Return;
  return S;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

unsigned Program::findVar(const std::string &Name) const {
  for (unsigned I = 0; I != Vars.size(); ++I)
    if (Vars[I].Name == Name)
      return I;
  return ~0u;
}

unsigned Program::findProc(const std::string &Name) const {
  for (unsigned I = 0; I != Procs.size(); ++I)
    if (Procs[I].Name == Name)
      return I;
  return ~0u;
}

static unsigned countCallsIn(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Call:
    return 1;
  case Stmt::Kind::Block: {
    unsigned Count = 0;
    for (const Stmt::Ptr &Child : S.stmts())
      Count += countCallsIn(*Child);
    return Count;
  }
  case Stmt::Kind::If: {
    unsigned Count = countCallsIn(S.thenStmt());
    if (const Stmt *Else = S.elseStmt())
      Count += countCallsIn(*Else);
    return Count;
  }
  case Stmt::Kind::While:
    return countCallsIn(S.body());
  default:
    return 0;
  }
}

unsigned Program::countCalls() const {
  unsigned Count = 0;
  for (const Procedure &Proc : Procs)
    Count += countCallsIn(*Proc.Body);
  return Count;
}

//===----------------------------------------------------------------------===//
// Pretty-printing
//===----------------------------------------------------------------------===//

std::string lang::toString(const Expr &E, const Program &P) {
  switch (E.kind()) {
  case Expr::Kind::Var:
    return P.Vars[E.varIndex()].Name;
  case Expr::Kind::Number:
    return E.number().toString();
  case Expr::Kind::BoolLit:
    return E.boolValue() ? "true" : "false";
  case Expr::Kind::Add:
    return "(" + toString(E.lhs(), P) + " + " + toString(E.rhs(), P) + ")";
  case Expr::Kind::Sub:
    return "(" + toString(E.lhs(), P) + " - " + toString(E.rhs(), P) + ")";
  case Expr::Kind::Mul:
    return "(" + toString(E.lhs(), P) + " * " + toString(E.rhs(), P) + ")";
  case Expr::Kind::Div:
    return "(" + toString(E.lhs(), P) + " / " + toString(E.rhs(), P) + ")";
  }
  assert(false && "unknown expression kind");
  return "";
}

static const char *cmpOpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Ge:
    return ">=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Gt:
    return ">";
  }
  assert(false && "unknown comparison operator");
  return "";
}

std::string lang::toString(const Cond &C, const Program &P) {
  switch (C.kind()) {
  case Cond::Kind::True:
    return "true";
  case Cond::Kind::False:
    return "false";
  case Cond::Kind::BoolVar:
    return P.Vars[C.varIndex()].Name;
  case Cond::Kind::Cmp:
    return toString(C.cmpLhs(), P) + " " + cmpOpSpelling(C.cmpOp()) + " " +
           toString(C.cmpRhs(), P);
  case Cond::Kind::Not:
    return "!(" + toString(C.operand(), P) + ")";
  case Cond::Kind::And:
    return "(" + toString(C.lhs(), P) + " && " + toString(C.rhs(), P) + ")";
  case Cond::Kind::Or:
    return "(" + toString(C.lhs(), P) + " || " + toString(C.rhs(), P) + ")";
  }
  assert(false && "unknown condition kind");
  return "";
}

std::string lang::toString(const Dist &D, const Program &P) {
  std::string Name;
  switch (D.TheKind) {
  case Dist::Kind::Bernoulli:
    Name = "bernoulli";
    break;
  case Dist::Kind::Uniform:
    Name = "uniform";
    break;
  case Dist::Kind::Gaussian:
    Name = "gaussian";
    break;
  case Dist::Kind::UniformInt:
    Name = "uniformint";
    break;
  case Dist::Kind::Discrete:
    Name = "discrete";
    break;
  }
  std::string Out = Name + "(";
  for (size_t I = 0; I != D.Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += toString(*D.Params[I], P);
    if (D.TheKind == Dist::Kind::Discrete)
      Out += ": " + D.Weights[I].toString();
  }
  return Out + ")";
}

static std::string guardToString(const Guard &G, const Program &P) {
  switch (G.TheKind) {
  case Guard::Kind::Cond:
    return "(" + toString(*G.Phi, P) + ")";
  case Guard::Kind::Prob:
    return "prob(" + G.Prob.toString() + ")";
  case Guard::Kind::Ndet:
    return "star";
  }
  assert(false && "unknown guard kind");
  return "";
}

std::string lang::toString(const Stmt &S, const Program &P, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S.kind()) {
  case Stmt::Kind::Skip:
    return Pad + "skip;\n";
  case Stmt::Kind::Assign:
    return Pad + P.Vars[S.varIndex()].Name + " := " + toString(S.value(), P) +
           ";\n";
  case Stmt::Kind::Sample:
    return Pad + P.Vars[S.varIndex()].Name + " ~ " + toString(S.dist(), P) +
           ";\n";
  case Stmt::Kind::Observe:
    return Pad + "observe(" + toString(S.observed(), P) + ");\n";
  case Stmt::Kind::Reward:
    return Pad + "reward(" + S.reward().toString() + ");\n";
  case Stmt::Kind::Assert:
    switch (S.assertKind()) {
    case AssertKind::Prob:
      return Pad + "assert_prob(" + toString(S.assertCond(), P) + ") " +
             cmpOpSpelling(S.assertOp()) + " " + S.assertBound().toString() +
             ";\n";
    case AssertKind::Reward:
      return Pad + "assert_reward " + cmpOpSpelling(S.assertOp()) + " " +
             S.assertBound().toString() + ";\n";
    case AssertKind::Interval:
      return Pad + "assert_interval(" + toString(S.assertTarget(), P) +
             ", " + S.assertLo().toString() + ", " + S.assertHi().toString() +
             ");\n";
    }
    assert(false && "unknown assertion kind");
    return "";
  case Stmt::Kind::Block: {
    std::string Out;
    for (const Stmt::Ptr &Child : S.stmts())
      Out += toString(*Child, P, Indent);
    return Out;
  }
  case Stmt::Kind::If: {
    std::string Out =
        Pad + "if " + guardToString(S.guard(), P) + " {\n" +
        toString(S.thenStmt(), P, Indent + 1) + Pad + "}";
    if (const Stmt *Else = S.elseStmt())
      Out += " else {\n" + toString(*Else, P, Indent + 1) + Pad + "}";
    return Out + "\n";
  }
  case Stmt::Kind::While:
    return Pad + "while " + guardToString(S.guard(), P) + " {\n" +
           toString(S.body(), P, Indent + 1) + Pad + "}\n";
  case Stmt::Kind::Call:
    return Pad + S.callee() + "();\n";
  case Stmt::Kind::Break:
    return Pad + "break;\n";
  case Stmt::Kind::Continue:
    return Pad + "continue;\n";
  case Stmt::Kind::Return:
    return Pad + "return;\n";
  }
  assert(false && "unknown statement kind");
  return "";
}

std::string lang::toString(const Program &P) {
  std::string Out;
  for (const VarInfo &Var : P.Vars)
    Out += std::string(Var.IsReal ? "real " : "bool ") + Var.Name + ";\n";
  if (!P.Vars.empty())
    Out += "\n";
  for (const Procedure &Proc : P.Procs) {
    Out += "proc " + Proc.Name + "() {\n" + toString(*Proc.Body, P, 1) +
           "}\n\n";
  }
  return Out;
}
