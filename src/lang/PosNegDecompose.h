//===- lang/PosNegDecompose.h - Positive-negative decomposition -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program transformation §6.2 applies to the LEIA benchmarks: "we
/// performed a positive-negative decomposition to make sure all program
/// variables are nonnegative. That is, we represented each variable x as
/// x+ - x- where x+, x- >= 0, and replaced every operation on variables
/// with appropriate operations on the decomposed variables."
///
/// Each real variable x becomes a pair (x__p, x__n) with the invariant
/// x = x__p - x__n. Linear assignments split by coefficient sign,
///
///   x := sum_i a_i v_i + c
///     ~>  x__p := sum_i (a_i^+ v_i__p + a_i^- v_i__n) + c^+
///         x__n := sum_i (a_i^- v_i__p + a_i^+ v_i__n) + c^-
///
/// which keeps both components nonnegative whenever the inputs are.
/// Sampling x ~ D with a constant, bounded-below support shifts the
/// distribution into the nonnegative range: x__p ~ D + M, x__n := M for
/// M = max(0, -min D). Conditions and expressions are rewritten by
/// substituting x ↦ x__p - x__n.
///
/// The LEIA domain then analyzes the decomposed program; expectation
/// invariants about the original x are queries about E[x__p' - x__n'].
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_LANG_POSNEGDECOMPOSE_H
#define PMAF_LANG_POSNEGDECOMPOSE_H

#include "lang/Ast.h"

#include <memory>
#include <string>

namespace pmaf {
namespace lang {

/// Result of the decomposition.
struct DecomposeResult {
  std::unique_ptr<Program> Prog;
  /// Empty on success; otherwise why the program cannot be decomposed
  /// (e.g. sampling from a distribution with unbounded-below support).
  std::string Error;

  explicit operator bool() const { return Prog != nullptr; }
};

/// Decomposes every real variable of \p Prog into a nonnegative pair.
/// Variable x at index i maps to x__p at index 2i and x__n at index 2i+1.
/// Boolean programs are rejected (the decomposition is a LEIA-side
/// transformation).
DecomposeResult decomposePosNeg(const Program &Prog);

} // namespace lang
} // namespace pmaf

#endif // PMAF_LANG_POSNEGDECOMPOSE_H
