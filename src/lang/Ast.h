//===- lang/Ast.h - Probabilistic imperative language AST -------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the paper's prototypical imperative probabilistic
/// language (§2.1 and Fig 4): data actions (assignment, sampling, skip,
/// observe, reward), logical conditions, and statements with three kinds of
/// binary choice — conditional (`if (phi)`), probabilistic (`if prob(p)`),
/// and nondeterministic (`if star`) — plus loops, procedure calls, and the
/// unstructured `break` / `continue` / `return` of Ex 3.4.
///
/// Variables are global (the paper's kernels act on a single state space
/// Omega = Var -> values); each is Boolean or real-valued.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_LANG_AST_H
#define PMAF_LANG_AST_H

#include "support/Diagnostics.h"
#include "support/Rational.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace pmaf {
namespace lang {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// An arithmetic or Boolean-literal expression (Exp of Fig 4).
class Expr {
public:
  enum class Kind { Var, Number, BoolLit, Add, Sub, Mul, Div };

  using Ptr = std::unique_ptr<Expr>;

  static Ptr makeVar(unsigned VarIndex);
  static Ptr makeNumber(Rational Value);
  static Ptr makeBool(bool Value);
  static Ptr makeBinary(Kind Op, Ptr Lhs, Ptr Rhs);

  Kind kind() const { return TheKind; }
  bool isBinary() const { return TheKind >= Kind::Add; }

  unsigned varIndex() const {
    assert(TheKind == Kind::Var && "not a variable");
    return VarIndex;
  }
  const Rational &number() const {
    assert(TheKind == Kind::Number && "not a number");
    return Value;
  }
  bool boolValue() const {
    assert(TheKind == Kind::BoolLit && "not a Boolean literal");
    return BoolValue;
  }
  const Expr &lhs() const {
    assert(isBinary() && "not a binary expression");
    return *Lhs;
  }
  const Expr &rhs() const {
    assert(isBinary() && "not a binary expression");
    return *Rhs;
  }

  /// Source position of the expression's first token (unknown for
  /// programmatically built ASTs).
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  Ptr clone() const;

private:
  Expr() = default;

  Kind TheKind = Kind::Number;
  unsigned VarIndex = 0;
  Rational Value;
  bool BoolValue = false;
  Ptr Lhs, Rhs;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Logical conditions
//===----------------------------------------------------------------------===//

/// Comparison operators for atomic conditions (Fig 4 allows =, <=, >=; we
/// additionally accept <, >, and != and let domains over-approximate).
enum class CmpOp { Eq, Ne, Le, Ge, Lt, Gt };

/// A logical condition (L of Fig 4), closed under negation, conjunction,
/// and disjunction; atoms are comparisons of expressions, Boolean
/// variables, and the constants true/false.
class Cond {
public:
  enum class Kind { True, False, BoolVar, Cmp, Not, And, Or };

  using Ptr = std::unique_ptr<Cond>;

  static Ptr makeTrue();
  static Ptr makeFalse();
  static Ptr makeBoolVar(unsigned VarIndex);
  static Ptr makeCmp(CmpOp Op, Expr::Ptr Lhs, Expr::Ptr Rhs);
  static Ptr makeNot(Ptr Operand);
  static Ptr makeAnd(Ptr Lhs, Ptr Rhs);
  static Ptr makeOr(Ptr Lhs, Ptr Rhs);

  Kind kind() const { return TheKind; }

  unsigned varIndex() const {
    assert(TheKind == Kind::BoolVar && "not a Boolean variable");
    return VarIndex;
  }
  CmpOp cmpOp() const {
    assert(TheKind == Kind::Cmp && "not a comparison");
    return Op;
  }
  const Expr &cmpLhs() const {
    assert(TheKind == Kind::Cmp && "not a comparison");
    return *CmpLhs;
  }
  const Expr &cmpRhs() const {
    assert(TheKind == Kind::Cmp && "not a comparison");
    return *CmpRhs;
  }
  const Cond &operand() const {
    assert(TheKind == Kind::Not && "not a negation");
    return *Lhs;
  }
  const Cond &lhs() const {
    assert((TheKind == Kind::And || TheKind == Kind::Or) && "not binary");
    return *Lhs;
  }
  const Cond &rhs() const {
    assert((TheKind == Kind::And || TheKind == Kind::Or) && "not binary");
    return *Rhs;
  }

  /// Source position of the condition's first token (unknown for
  /// programmatically built ASTs).
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  Ptr clone() const;

private:
  Cond() = default;

  Kind TheKind = Kind::True;
  unsigned VarIndex = 0;
  CmpOp Op = CmpOp::Eq;
  Expr::Ptr CmpLhs, CmpRhs;
  Ptr Lhs, Rhs;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Distributions
//===----------------------------------------------------------------------===//

/// A primitive distribution usable on the right of `x ~ D` (Dist of Fig 4).
/// Parameters are expressions, so e.g. `uniform(x, x + 2)` is allowed.
struct Dist {
  enum class Kind { Bernoulli, Uniform, Gaussian, UniformInt, Discrete };

  Kind TheKind = Kind::Bernoulli;
  /// Bernoulli: {p}; Uniform/UniformInt: {lo, hi}; Gaussian: {mean, stddev};
  /// Discrete: values (parallel to Weights).
  std::vector<Expr::Ptr> Params;
  /// Discrete only: probability of each corresponding entry of Params.
  std::vector<Rational> Weights;

  /// Source position of the distribution name.
  SourceLoc Loc;

  Dist clone() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// The three guard kinds of a branch or loop (§2.1): conditional-choice
/// `(phi)`, probabilistic-choice `prob(p)`, and nondeterministic-choice
/// `star`.
struct Guard {
  enum class Kind { Cond, Prob, Ndet };

  Kind TheKind = Kind::Ndet;
  Cond::Ptr Phi;  ///< Kind::Cond only.
  Rational Prob;  ///< Kind::Prob only; in [0, 1].
  SourceLoc Loc;  ///< Source position of the guard's first token.

  Guard clone() const;
};

/// The property class of an `assert_*` statement (checks/Checker.h turns
/// the solver fixpoint at the assertion's node into a verdict for it).
enum class AssertKind {
  Prob,     ///< assert_prob(phi) >= p / <= p — post-distribution mass.
  Reward,   ///< assert_reward >= r / <= r — expected reward to exit.
  Interval  ///< assert_interval(e, lo, hi) — expected value of e.
};

/// A statement.
class Stmt {
public:
  enum class Kind {
    Skip,
    Assign,   ///< x := e
    Sample,   ///< x ~ D
    Observe,  ///< observe(phi)
    Reward,   ///< reward(r)   (Defn 5.3 MDP reward action)
    Assert,   ///< assert_prob / assert_reward / assert_interval
    Block,    ///< { s1; ...; sn }
    If,       ///< if <guard> {..} else {..}
    While,    ///< while <guard> {..}
    Call,     ///< p()
    Break,
    Continue,
    Return
  };

  using Ptr = std::unique_ptr<Stmt>;

  static Ptr makeSkip();
  static Ptr makeAssign(unsigned VarIndex, Expr::Ptr Value);
  static Ptr makeSample(unsigned VarIndex, Dist D);
  static Ptr makeObserve(Cond::Ptr Phi);
  static Ptr makeReward(Rational Amount);
  static Ptr makeAssertProb(Cond::Ptr Phi, CmpOp Op, Rational Bound);
  static Ptr makeAssertReward(CmpOp Op, Rational Bound);
  static Ptr makeAssertInterval(Expr::Ptr Target, Rational Lo, Rational Hi);
  static Ptr makeBlock(std::vector<Ptr> Stmts);
  static Ptr makeIf(Guard G, Ptr Then, Ptr Else);
  static Ptr makeWhile(Guard G, Ptr Body);
  static Ptr makeCall(std::string Callee);
  static Ptr makeBreak();
  static Ptr makeContinue();
  static Ptr makeReturn();

  Kind kind() const { return TheKind; }

  unsigned varIndex() const {
    assert((TheKind == Kind::Assign || TheKind == Kind::Sample) &&
           "statement has no target variable");
    return VarIndex;
  }
  const Expr &value() const {
    assert(TheKind == Kind::Assign && "not an assignment");
    return *Value;
  }
  const Dist &dist() const {
    assert(TheKind == Kind::Sample && "not a sampling statement");
    return TheDist;
  }
  const Cond &observed() const {
    assert(TheKind == Kind::Observe && "not an observe statement");
    return *Phi;
  }
  const Rational &reward() const {
    assert(TheKind == Kind::Reward && "not a reward statement");
    return Amount;
  }
  AssertKind assertKind() const {
    assert(TheKind == Kind::Assert && "not an assert statement");
    return TheAssertKind;
  }
  /// The predicate of an `assert_prob` assertion.
  const Cond &assertCond() const {
    assert(TheKind == Kind::Assert && TheAssertKind == AssertKind::Prob &&
           "not a probability assertion");
    return *Phi;
  }
  /// The comparison (Le or Ge only) of a prob/reward assertion.
  CmpOp assertOp() const {
    assert(TheKind == Kind::Assert && TheAssertKind != AssertKind::Interval &&
           "assertion has no comparison operator");
    return AssertOp;
  }
  /// The bound of a prob/reward assertion.
  const Rational &assertBound() const {
    assert(TheKind == Kind::Assert && TheAssertKind != AssertKind::Interval &&
           "assertion has no scalar bound");
    return Amount;
  }
  /// The asserted expression of an `assert_interval` assertion.
  const Expr &assertTarget() const {
    assert(TheKind == Kind::Assert && TheAssertKind == AssertKind::Interval &&
           "not an interval assertion");
    return *Value;
  }
  const Rational &assertLo() const {
    assert(TheKind == Kind::Assert && TheAssertKind == AssertKind::Interval &&
           "not an interval assertion");
    return Lo;
  }
  const Rational &assertHi() const {
    assert(TheKind == Kind::Assert && TheAssertKind == AssertKind::Interval &&
           "not an interval assertion");
    return Hi;
  }
  const std::vector<Ptr> &stmts() const {
    assert(TheKind == Kind::Block && "not a block");
    return Stmts;
  }
  const Guard &guard() const {
    assert((TheKind == Kind::If || TheKind == Kind::While) && "no guard");
    return TheGuard;
  }
  const Stmt &thenStmt() const {
    assert(TheKind == Kind::If && "not an if");
    return *Then;
  }
  /// \returns the else branch, or null when absent (implicit skip).
  const Stmt *elseStmt() const {
    assert(TheKind == Kind::If && "not an if");
    return Else.get();
  }
  const Stmt &body() const {
    assert(TheKind == Kind::While && "not a while");
    return *Then;
  }
  const std::string &callee() const {
    assert(TheKind == Kind::Call && "not a call");
    return Callee;
  }
  /// Index of the callee procedure; resolved by Sema.
  unsigned calleeIndex() const {
    assert(TheKind == Kind::Call && "not a call");
    return CalleeIndex;
  }
  void setCalleeIndex(unsigned Index) {
    assert(TheKind == Kind::Call && "not a call");
    CalleeIndex = Index;
  }

  /// Source position of the statement's first token (unknown for
  /// programmatically built ASTs).
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

private:
  Stmt() = default;

  Kind TheKind = Kind::Skip;
  unsigned VarIndex = 0;
  Expr::Ptr Value;
  Dist TheDist;
  Cond::Ptr Phi;
  Rational Amount;
  AssertKind TheAssertKind = AssertKind::Prob;
  CmpOp AssertOp = CmpOp::Ge;
  Rational Lo, Hi;
  std::vector<Ptr> Stmts;
  Guard TheGuard;
  Ptr Then, Else;
  std::string Callee;
  unsigned CalleeIndex = 0;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// A program variable: Boolean (BI programs) or nonnegative-real (LEIA/MDP
/// programs; §5.3 assumes nonnegative variables after the paper's
/// positive-negative decomposition).
struct VarInfo {
  std::string Name;
  bool IsReal = false;
  SourceLoc Loc; ///< Position of the declaring identifier.
};

/// A procedure (no parameters; state is global, as in the paper's model).
struct Procedure {
  std::string Name;
  Stmt::Ptr Body;
  SourceLoc Loc; ///< Position of the procedure name.
};

/// A whole program: variable declarations plus procedures. The procedure
/// named "main" (or the first one) is the analysis entry.
struct Program {
  std::vector<VarInfo> Vars;
  std::vector<Procedure> Procs;

  /// \returns the index of variable \p Name, or ~0u when undeclared.
  unsigned findVar(const std::string &Name) const;

  /// \returns the index of procedure \p Name, or ~0u when undefined.
  unsigned findProc(const std::string &Name) const;

  /// \returns the number of call statements in the program.
  unsigned countCalls() const;
};

/// Pretty-prints back to (parseable) surface syntax.
std::string toString(const Expr &E, const Program &P);
std::string toString(const Cond &C, const Program &P);
std::string toString(const Dist &D, const Program &P);
std::string toString(const Stmt &S, const Program &P, unsigned Indent = 0);
std::string toString(const Program &P);

} // namespace lang
} // namespace pmaf

#endif // PMAF_LANG_AST_H
