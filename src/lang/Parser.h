//===- lang/Parser.h - Recursive-descent parser -----------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the surface language. Grammar sketch:
///
/// \code
///   program  := (vardecl | procdecl)*
///   vardecl  := ("bool" | "real") ident ("," ident)* ";"
///   procdecl := "proc" ident "(" ")" block
///   block    := "{" stmt* "}"
///   stmt     := ident ":=" expr ";"            // assignment
///             | ident "~" dist ";"             // sampling
///             | ident "(" ")" ";"              // procedure call
///             | "skip" ";" | "break" ";" | "continue" ";" | "return" ";"
///             | "observe" "(" cond ")" ";"
///             | "reward" "(" constexpr ")" ";"
///             | "assert_prob" "(" cond ")" (">=" | "<=") constexpr ";"
///             | "assert_reward" (">=" | "<=") constexpr ";"
///             | "assert_interval" "(" expr "," constexpr "," constexpr ")" ";"
///             | "if" guard block ("else" (block | ifstmt))?
///             | "while" guard block
///   guard    := "(" cond ")" | "prob" "(" constexpr ")" | "star"
///   dist     := "bernoulli" "(" expr ")" | "uniform" "(" expr "," expr ")"
///             | "gaussian" "(" expr "," expr ")"
///             | "uniformint" "(" expr "," expr ")"
///             | "discrete" "(" constexpr ":" constexpr
///                              ("," constexpr ":" constexpr)* ")"
/// \endcode
///
/// Variables must be declared before the procedures that use them;
/// procedures may call forward. Probabilities and rewards are constant
/// rational expressions (e.g. `prob(3/4)` or `prob(0.75)`).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_LANG_PARSER_H
#define PMAF_LANG_PARSER_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace pmaf {
namespace lang {

/// Result of a parse: either a program, or a diagnostic.
struct ParseResult {
  std::unique_ptr<Program> Prog;
  std::string Error; ///< "line:col: message" when Prog is null.
  /// Structured form of the error (severity, stable code, location,
  /// notes); meaningful only when Prog is null. Codes: "parse-error" for
  /// syntax errors, and "undefined-variable", "undefined-procedure",
  /// "redeclared-variable", "redefined-procedure", "misplaced-jump",
  /// "prob-range", "reward-range", "interval-range", "no-procedures" for
  /// the semantic checks the parser performs itself.
  Diagnostic Diag;

  explicit operator bool() const { return Prog != nullptr; }
};

/// Parses and semantically checks \p Source (variable resolution, call
/// resolution, break/continue placement, probability ranges).
ParseResult parseProgram(const std::string &Source);

/// As above, but additionally reports the failure into \p Diags (which
/// renders `file:line:col` with a caret when its source is set).
ParseResult parseProgram(const std::string &Source, DiagnosticEngine &Diags);

/// Convenience wrapper that aborts with a caret-rendered diagnostic on
/// failure; for trusted embedded benchmark sources and tests.
std::unique_ptr<Program> parseProgramOrDie(const std::string &Source);

} // namespace lang
} // namespace pmaf

#endif // PMAF_LANG_PARSER_H
