//===- lang/Parser.cpp - Recursive-descent parser --------------------------===//

#include "lang/Parser.h"
#include "lang/Lexer.h"

#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace pmaf;
using namespace pmaf::lang;

namespace {

/// Constant-folds \p E to a rational; fails on variables and division by
/// zero. Used for probabilities, rewards, and discrete-distribution tables.
std::optional<Rational> evalConstant(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return E.number();
  case Expr::Kind::Var:
  case Expr::Kind::BoolLit:
    return std::nullopt;
  default:
    break;
  }
  std::optional<Rational> L = evalConstant(E.lhs());
  std::optional<Rational> R = evalConstant(E.rhs());
  if (!L || !R)
    return std::nullopt;
  switch (E.kind()) {
  case Expr::Kind::Add:
    return *L + *R;
  case Expr::Kind::Sub:
    return *L - *R;
  case Expr::Kind::Mul:
    return *L * *R;
  case Expr::Kind::Div:
    if (R->isZero())
      return std::nullopt;
    return *L / *R;
  default:
    return std::nullopt;
  }
}

class ParserImpl {
public:
  explicit ParserImpl(const std::string &Source)
      : Tokens(tokenize(Source)) {}

  ParseResult run() {
    ParseResult Result;
    auto Prog = std::make_unique<Program>();
    Current = Prog.get();
    while (!check(Token::Kind::Eof)) {
      if (checkKeyword("bool") || checkKeyword("real")) {
        if (!parseVarDecl())
          break;
      } else if (checkKeyword("proc")) {
        if (!parseProcDecl())
          break;
      } else {
        fail("expected 'bool', 'real', or 'proc' at top level");
        break;
      }
    }
    if (Error.empty())
      resolveCalls(); // Sets Error on failure.
    if (Error.empty() && Current->Procs.empty())
      failAt(here(), "no-procedures", "program has no procedures");
    if (!Error.empty()) {
      Result.Error = Error;
      Result.Diag = std::move(Diag);
      return Result;
    }
    Result.Prog = std::move(Prog);
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek() const { return Tokens[Pos]; }

  static SourceLoc locOf(const Token &Tok) { return {Tok.Line, Tok.Col}; }

  /// Location of the next token to be consumed.
  SourceLoc here() const { return locOf(peek()); }

  bool check(Token::Kind Kind) const { return peek().TheKind == Kind; }

  bool checkKeyword(const char *Word) const {
    return check(Token::Kind::Ident) && peek().Text == Word;
  }

  const Token &advance() { return Tokens[Pos++]; }

  bool match(Token::Kind Kind) {
    if (!check(Kind))
      return false;
    ++Pos;
    return true;
  }

  bool matchKeyword(const char *Word) {
    if (!checkKeyword(Word))
      return false;
    ++Pos;
    return true;
  }

  bool expect(Token::Kind Kind, const char *What) {
    if (match(Kind))
      return true;
    fail(std::string("expected ") + What);
    return false;
  }

  /// Records the first error at \p Loc with the stable code \p Code;
  /// later failures are ignored (the parser unwinds on the first error).
  /// Returns the recorded diagnostic so callers can attach notes.
  Diagnostic &failAt(SourceLoc Loc, const char *Code,
                     std::string Message) {
    if (Error.empty()) {
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%u:%u: ", Loc.Line, Loc.Col);
      Error = Buffer + Message;
      Diag.Sev = Severity::Error;
      Diag.Code = Code;
      Diag.Loc = Loc;
      Diag.Message = std::move(Message);
    }
    return Diag;
  }

  /// Syntax-error helper: reports at the lookahead token and appends what
  /// was actually found.
  void fail(std::string Message) {
    if (!Error.empty())
      return;
    if (peek().TheKind == Token::Kind::Error)
      Message += " (" + peek().Text + ")";
    else if (!peek().Text.empty())
      Message += ", got '" + peek().Text + "'";
    failAt(here(), "parse-error", std::move(Message));
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  bool parseVarDecl() {
    bool IsReal = peek().Text == "real";
    advance();
    do {
      if (!check(Token::Kind::Ident)) {
        fail("expected variable name");
        return false;
      }
      SourceLoc NameLoc = here();
      std::string Name = advance().Text;
      unsigned Previous = Current->findVar(Name);
      if (Previous != ~0u) {
        failAt(NameLoc, "redeclared-variable",
               "redeclaration of variable '" + Name + "'")
            .addNote(Current->Vars[Previous].Loc,
                     "previous declaration is here");
        return false;
      }
      Current->Vars.push_back(VarInfo{Name, IsReal, NameLoc});
    } while (match(Token::Kind::Comma));
    return expect(Token::Kind::Semi, "';' after variable declaration");
  }

  bool parseProcDecl() {
    advance(); // 'proc'
    if (!check(Token::Kind::Ident)) {
      fail("expected procedure name");
      return false;
    }
    SourceLoc NameLoc = here();
    std::string Name = advance().Text;
    unsigned Previous = Current->findProc(Name);
    if (Previous != ~0u) {
      failAt(NameLoc, "redefined-procedure",
             "redefinition of procedure '" + Name + "'")
          .addNote(Current->Procs[Previous].Loc,
                   "previous definition is here");
      return false;
    }
    if (!expect(Token::Kind::LParen, "'('") ||
        !expect(Token::Kind::RParen, "')'"))
      return false;
    Stmt::Ptr Body = parseBlock();
    if (!Body)
      return false;
    Current->Procs.push_back(
        Procedure{std::move(Name), std::move(Body), NameLoc});
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Stmt::Ptr parseBlock() {
    SourceLoc BraceLoc = here();
    if (!expect(Token::Kind::LBrace, "'{'"))
      return nullptr;
    std::vector<Stmt::Ptr> Stmts;
    while (!check(Token::Kind::RBrace) && !check(Token::Kind::Eof)) {
      Stmt::Ptr S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(std::move(S));
    }
    if (!expect(Token::Kind::RBrace, "'}'"))
      return nullptr;
    Stmt::Ptr Block = Stmt::makeBlock(std::move(Stmts));
    Block->setLoc(BraceLoc);
    return Block;
  }

  Stmt::Ptr parseStmt() {
    SourceLoc StmtLoc = here();
    Stmt::Ptr S = parseStmtImpl();
    if (S)
      S->setLoc(StmtLoc);
    return S;
  }

  Stmt::Ptr parseStmtImpl() {
    if (matchKeyword("skip")) {
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeSkip();
    }
    if (checkKeyword("break")) {
      SourceLoc Loc = here();
      advance();
      if (LoopDepth == 0) {
        failAt(Loc, "misplaced-jump", "'break' outside of a loop");
        return nullptr;
      }
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeBreak();
    }
    if (checkKeyword("continue")) {
      SourceLoc Loc = here();
      advance();
      if (LoopDepth == 0) {
        failAt(Loc, "misplaced-jump", "'continue' outside of a loop");
        return nullptr;
      }
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeContinue();
    }
    if (matchKeyword("return")) {
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeReturn();
    }
    if (matchKeyword("observe")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      Cond::Ptr Phi = parseCond();
      if (!Phi || !expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeObserve(std::move(Phi));
    }
    if (matchKeyword("reward")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      SourceLoc AmountLoc = here();
      std::optional<Rational> Amount = parseConstant();
      if (!Amount || !expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      if (Amount->sign() < 0) {
        failAt(AmountLoc, "reward-range", "rewards must be nonnegative");
        return nullptr;
      }
      return Stmt::makeReward(std::move(*Amount));
    }
    if (matchKeyword("assert_prob")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      Cond::Ptr Phi = parseCond();
      if (!Phi || !expect(Token::Kind::RParen, "')'"))
        return nullptr;
      SourceLoc OpLoc = here();
      std::optional<CmpOp> Op = matchCmpOp();
      if (!Op || (*Op != CmpOp::Ge && *Op != CmpOp::Le)) {
        failAt(OpLoc, "parse-error",
               "expected '>=' or '<=' after assert_prob(...)");
        return nullptr;
      }
      SourceLoc BoundLoc = here();
      std::optional<Rational> Bound = parseConstant();
      if (!Bound || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      if (Bound->sign() < 0 || *Bound > Rational(1)) {
        failAt(BoundLoc, "prob-range",
               "asserted probability must lie in [0, 1]");
        return nullptr;
      }
      return Stmt::makeAssertProb(std::move(Phi), *Op, std::move(*Bound));
    }
    if (matchKeyword("assert_reward")) {
      SourceLoc OpLoc = here();
      std::optional<CmpOp> Op = matchCmpOp();
      if (!Op || (*Op != CmpOp::Ge && *Op != CmpOp::Le)) {
        failAt(OpLoc, "parse-error",
               "expected '>=' or '<=' after assert_reward");
        return nullptr;
      }
      SourceLoc BoundLoc = here();
      std::optional<Rational> Bound = parseConstant();
      if (!Bound || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      if (Bound->sign() < 0) {
        failAt(BoundLoc, "reward-range",
               "asserted reward bound must be nonnegative");
        return nullptr;
      }
      return Stmt::makeAssertReward(*Op, std::move(*Bound));
    }
    if (matchKeyword("assert_interval")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      Expr::Ptr Target = parseExpr();
      if (!Target || !expect(Token::Kind::Comma, "','"))
        return nullptr;
      std::optional<Rational> Lo = parseConstant();
      if (!Lo || !expect(Token::Kind::Comma, "','"))
        return nullptr;
      SourceLoc HiLoc = here();
      std::optional<Rational> Hi = parseConstant();
      if (!Hi || !expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      if (*Hi < *Lo) {
        failAt(HiLoc, "interval-range",
               "asserted interval is empty: upper bound " + Hi->toString() +
                   " is below lower bound " + Lo->toString());
        return nullptr;
      }
      return Stmt::makeAssertInterval(std::move(Target), std::move(*Lo),
                                      std::move(*Hi));
    }
    if (matchKeyword("if"))
      return parseIf();
    if (matchKeyword("while")) {
      Guard G;
      if (!parseGuard(G))
        return nullptr;
      ++LoopDepth;
      Stmt::Ptr Body = parseBlock();
      --LoopDepth;
      if (!Body)
        return nullptr;
      return Stmt::makeWhile(std::move(G), std::move(Body));
    }
    if (!check(Token::Kind::Ident)) {
      fail("expected a statement");
      return nullptr;
    }
    SourceLoc NameLoc = here();
    std::string Name = advance().Text;
    if (match(Token::Kind::LParen)) {
      // Procedure call.
      if (!expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeCall(std::move(Name));
    }
    unsigned VarIndex = Current->findVar(Name);
    if (VarIndex == ~0u) {
      failAt(NameLoc, "undefined-variable",
             "use of undeclared variable '" + Name + "'");
      return nullptr;
    }
    if (match(Token::Kind::Assign)) {
      Expr::Ptr Value = parseExpr();
      if (!Value || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeAssign(VarIndex, std::move(Value));
    }
    if (match(Token::Kind::Tilde)) {
      std::optional<Dist> D = parseDist();
      if (!D || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeSample(VarIndex, std::move(*D));
    }
    fail("expected ':=', '~', or '(' after identifier");
    return nullptr;
  }

  Stmt::Ptr parseIf() {
    SourceLoc IfLoc = here();
    Guard G;
    if (!parseGuard(G))
      return nullptr;
    Stmt::Ptr Then = parseBlock();
    if (!Then)
      return nullptr;
    Stmt::Ptr Else;
    if (matchKeyword("else")) {
      if (matchKeyword("if")) {
        Else = parseIf(); // else-if chains without extra braces
      } else {
        Else = parseBlock();
      }
      if (!Else)
        return nullptr;
    }
    Stmt::Ptr S =
        Stmt::makeIf(std::move(G), std::move(Then), std::move(Else));
    S->setLoc(IfLoc);
    return S;
  }

  bool parseGuard(Guard &G) {
    G.Loc = here();
    if (matchKeyword("star")) {
      G.TheKind = Guard::Kind::Ndet;
      return true;
    }
    if (matchKeyword("prob")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return false;
      SourceLoc ProbLoc = here();
      std::optional<Rational> P = parseConstant();
      if (!P || !expect(Token::Kind::RParen, "')'"))
        return false;
      if (P->sign() < 0 || *P > Rational(1)) {
        failAt(ProbLoc, "prob-range", "probability must lie in [0, 1]");
        return false;
      }
      G.TheKind = Guard::Kind::Prob;
      G.Prob = std::move(*P);
      return true;
    }
    if (!expect(Token::Kind::LParen, "'(', 'prob', or 'star'"))
      return false;
    Cond::Ptr Phi = parseCond();
    if (!Phi || !expect(Token::Kind::RParen, "')'"))
      return false;
    G.TheKind = Guard::Kind::Cond;
    G.Phi = std::move(Phi);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Distributions
  //===--------------------------------------------------------------------===//

  std::optional<Dist> parseDist() {
    if (!check(Token::Kind::Ident)) {
      fail("expected a distribution name");
      return std::nullopt;
    }
    SourceLoc NameLoc = here();
    std::string Name = advance().Text;
    Dist D;
    D.Loc = NameLoc;
    unsigned Arity = 0;
    if (Name == "bernoulli") {
      D.TheKind = Dist::Kind::Bernoulli;
      Arity = 1;
    } else if (Name == "uniform") {
      D.TheKind = Dist::Kind::Uniform;
      Arity = 2;
    } else if (Name == "gaussian") {
      D.TheKind = Dist::Kind::Gaussian;
      Arity = 2;
    } else if (Name == "uniformint") {
      D.TheKind = Dist::Kind::UniformInt;
      Arity = 2;
    } else if (Name == "discrete") {
      D.TheKind = Dist::Kind::Discrete;
    } else {
      failAt(NameLoc, "parse-error", "unknown distribution '" + Name + "'");
      return std::nullopt;
    }
    if (!expect(Token::Kind::LParen, "'('"))
      return std::nullopt;
    if (D.TheKind == Dist::Kind::Discrete) {
      // discrete(v1: p1, v2: p2, ...)
      Rational Total(0);
      do {
        SourceLoc EntryLoc = here();
        std::optional<Rational> Value = parseConstant();
        if (!Value || !expect(Token::Kind::Colon, "':'"))
          return std::nullopt;
        SourceLoc WeightLoc = here();
        std::optional<Rational> Weight = parseConstant();
        if (!Weight)
          return std::nullopt;
        if (Weight->sign() < 0) {
          failAt(WeightLoc, "prob-range",
                 "discrete weights must be nonnegative");
          return std::nullopt;
        }
        Expr::Ptr ValueExpr = Expr::makeNumber(std::move(*Value));
        ValueExpr->setLoc(EntryLoc);
        D.Params.push_back(std::move(ValueExpr));
        D.Weights.push_back(*Weight);
        Total += *Weight;
      } while (match(Token::Kind::Comma));
      if (Total > Rational(1)) {
        failAt(NameLoc, "prob-range",
               "discrete weights must sum to at most 1");
        return std::nullopt;
      }
    } else {
      for (unsigned I = 0; I != Arity; ++I) {
        if (I && !expect(Token::Kind::Comma, "','"))
          return std::nullopt;
        SourceLoc ParamLoc = here();
        Expr::Ptr Param = parseExpr();
        if (!Param)
          return std::nullopt;
        // Fold constant parameters (e.g. `bernoulli(3/4)`) to Number nodes:
        // the abstract domains require literal constants here, and a folded
        // fraction is semantically identical to its decimal spelling.
        if (std::optional<Rational> Folded = evalConstant(*Param)) {
          Param = Expr::makeNumber(std::move(*Folded));
          Param->setLoc(ParamLoc);
        }
        D.Params.push_back(std::move(Param));
      }
    }
    if (!expect(Token::Kind::RParen, "')'"))
      return std::nullopt;
    return D;
  }

  //===--------------------------------------------------------------------===//
  // Conditions
  //===--------------------------------------------------------------------===//

  Cond::Ptr parseCond() { return parseCondOr(); }

  Cond::Ptr parseCondOr() {
    Cond::Ptr Lhs = parseCondAnd();
    while (Lhs && match(Token::Kind::OrOr)) {
      Cond::Ptr Rhs = parseCondAnd();
      if (!Rhs)
        return nullptr;
      SourceLoc Loc = Lhs->loc();
      Lhs = Cond::makeOr(std::move(Lhs), std::move(Rhs));
      Lhs->setLoc(Loc);
    }
    return Lhs;
  }

  Cond::Ptr parseCondAnd() {
    Cond::Ptr Lhs = parseCondUnary();
    while (Lhs && match(Token::Kind::AndAnd)) {
      Cond::Ptr Rhs = parseCondUnary();
      if (!Rhs)
        return nullptr;
      SourceLoc Loc = Lhs->loc();
      Lhs = Cond::makeAnd(std::move(Lhs), std::move(Rhs));
      Lhs->setLoc(Loc);
    }
    return Lhs;
  }

  Cond::Ptr parseCondUnary() {
    SourceLoc Loc = here();
    if (match(Token::Kind::Bang)) {
      Cond::Ptr Operand = parseCondUnary();
      if (!Operand)
        return nullptr;
      Cond::Ptr C = Cond::makeNot(std::move(Operand));
      C->setLoc(Loc);
      return C;
    }
    return parseCondAtom();
  }

  Cond::Ptr parseCondAtom() {
    SourceLoc Loc = here();
    if (matchKeyword("true")) {
      Cond::Ptr C = Cond::makeTrue();
      C->setLoc(Loc);
      return C;
    }
    if (matchKeyword("false")) {
      Cond::Ptr C = Cond::makeFalse();
      C->setLoc(Loc);
      return C;
    }
    if (check(Token::Kind::LParen)) {
      // Ambiguity: '(' may open a nested condition or a parenthesized
      // arithmetic operand of a comparison. Try the condition reading
      // first; backtrack on failure (tokens are pre-lexed, so this is a
      // cheap position reset).
      size_t Saved = Pos;
      std::string SavedError = Error;
      Diagnostic SavedDiag = Diag;
      advance();
      Cond::Ptr Inner = parseCond();
      if (Inner && match(Token::Kind::RParen) && !startsComparisonTail()) {
        return Inner;
      }
      Pos = Saved;
      Error = std::move(SavedError);
      Diag = std::move(SavedDiag);
    }
    // Comparison or Boolean variable.
    Expr::Ptr Lhs = parseExpr();
    if (!Lhs)
      return nullptr;
    std::optional<CmpOp> Op = matchCmpOp();
    if (Op) {
      Expr::Ptr Rhs = parseExpr();
      if (!Rhs)
        return nullptr;
      Cond::Ptr C = Cond::makeCmp(*Op, std::move(Lhs), std::move(Rhs));
      C->setLoc(Loc);
      return C;
    }
    if (Lhs->kind() == Expr::Kind::Var &&
        !Current->Vars[Lhs->varIndex()].IsReal) {
      Cond::Ptr C = Cond::makeBoolVar(Lhs->varIndex());
      C->setLoc(Loc);
      return C;
    }
    fail("expected a comparison or a Boolean variable");
    return nullptr;
  }

  /// After a successfully parsed parenthesized condition, a comparison
  /// operator means we actually saw a parenthesized arithmetic operand.
  bool startsComparisonTail() const {
    switch (peek().TheKind) {
    case Token::Kind::EqEq:
    case Token::Kind::NotEq:
    case Token::Kind::LessEq:
    case Token::Kind::GreaterEq:
    case Token::Kind::Less:
    case Token::Kind::Greater:
    case Token::Kind::Plus:
    case Token::Kind::Minus:
    case Token::Kind::Star:
    case Token::Kind::Slash:
      return true;
    default:
      return false;
    }
  }

  std::optional<CmpOp> matchCmpOp() {
    if (match(Token::Kind::EqEq))
      return CmpOp::Eq;
    if (match(Token::Kind::NotEq))
      return CmpOp::Ne;
    if (match(Token::Kind::LessEq))
      return CmpOp::Le;
    if (match(Token::Kind::GreaterEq))
      return CmpOp::Ge;
    if (match(Token::Kind::Less))
      return CmpOp::Lt;
    if (match(Token::Kind::Greater))
      return CmpOp::Gt;
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expr::Ptr parseExpr() { return parseAdditive(); }

  /// Builds a located binary expression whose position is its left
  /// operand's.
  static Expr::Ptr makeLocatedBinary(Expr::Kind Op, Expr::Ptr Lhs,
                                     Expr::Ptr Rhs) {
    SourceLoc Loc = Lhs->loc();
    Expr::Ptr E = Expr::makeBinary(Op, std::move(Lhs), std::move(Rhs));
    E->setLoc(Loc);
    return E;
  }

  Expr::Ptr parseAdditive() {
    Expr::Ptr Lhs = parseMultiplicative();
    while (Lhs) {
      if (match(Token::Kind::Plus)) {
        Expr::Ptr Rhs = parseMultiplicative();
        if (!Rhs)
          return nullptr;
        Lhs = makeLocatedBinary(Expr::Kind::Add, std::move(Lhs),
                                std::move(Rhs));
      } else if (match(Token::Kind::Minus)) {
        Expr::Ptr Rhs = parseMultiplicative();
        if (!Rhs)
          return nullptr;
        Lhs = makeLocatedBinary(Expr::Kind::Sub, std::move(Lhs),
                                std::move(Rhs));
      } else {
        break;
      }
    }
    return Lhs;
  }

  Expr::Ptr parseMultiplicative() {
    Expr::Ptr Lhs = parseUnaryExpr();
    while (Lhs) {
      if (match(Token::Kind::Star)) {
        Expr::Ptr Rhs = parseUnaryExpr();
        if (!Rhs)
          return nullptr;
        Lhs = makeLocatedBinary(Expr::Kind::Mul, std::move(Lhs),
                                std::move(Rhs));
      } else if (match(Token::Kind::Slash)) {
        Expr::Ptr Rhs = parseUnaryExpr();
        if (!Rhs)
          return nullptr;
        Lhs = makeLocatedBinary(Expr::Kind::Div, std::move(Lhs),
                                std::move(Rhs));
      } else {
        break;
      }
    }
    return Lhs;
  }

  Expr::Ptr parseUnaryExpr() {
    SourceLoc Loc = here();
    if (match(Token::Kind::Minus)) {
      Expr::Ptr Operand = parseUnaryExpr();
      if (!Operand)
        return nullptr;
      Expr::Ptr Zero = Expr::makeNumber(Rational(0));
      Zero->setLoc(Loc);
      Expr::Ptr E = Expr::makeBinary(Expr::Kind::Sub, std::move(Zero),
                                     std::move(Operand));
      E->setLoc(Loc);
      return E;
    }
    return parsePrimaryExpr();
  }

  Expr::Ptr parsePrimaryExpr() {
    SourceLoc Loc = here();
    if (check(Token::Kind::Number)) {
      Expr::Ptr E = Expr::makeNumber(Rational::fromString(advance().Text));
      E->setLoc(Loc);
      return E;
    }
    if (matchKeyword("true")) {
      Expr::Ptr E = Expr::makeBool(true);
      E->setLoc(Loc);
      return E;
    }
    if (matchKeyword("false")) {
      Expr::Ptr E = Expr::makeBool(false);
      E->setLoc(Loc);
      return E;
    }
    if (check(Token::Kind::Ident)) {
      std::string Name = advance().Text;
      unsigned VarIndex = Current->findVar(Name);
      if (VarIndex == ~0u) {
        failAt(Loc, "undefined-variable",
               "use of undeclared variable '" + Name + "'");
        return nullptr;
      }
      Expr::Ptr E = Expr::makeVar(VarIndex);
      E->setLoc(Loc);
      return E;
    }
    if (match(Token::Kind::LParen)) {
      Expr::Ptr Inner = parseExpr();
      if (!Inner || !expect(Token::Kind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    fail("expected an expression");
    return nullptr;
  }

  std::optional<Rational> parseConstant() {
    Expr::Ptr E = parseExpr();
    if (!E)
      return std::nullopt;
    std::optional<Rational> Value = evalConstant(*E);
    if (!Value)
      fail("expected a constant rational expression");
    return Value;
  }

  //===--------------------------------------------------------------------===//
  // Post-pass: call resolution
  //===--------------------------------------------------------------------===//

  bool resolveCallsIn(Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Call: {
      unsigned Index = Current->findProc(S.callee());
      if (Index == ~0u) {
        failAt(S.loc(), "undefined-procedure",
               "call to undefined procedure '" + S.callee() + "'");
        return false;
      }
      S.setCalleeIndex(Index);
      return true;
    }
    case Stmt::Kind::Block:
      for (const Stmt::Ptr &Child : S.stmts())
        if (!resolveCallsIn(*Child))
          return false;
      return true;
    case Stmt::Kind::If:
      if (!resolveCallsIn(const_cast<Stmt &>(S.thenStmt())))
        return false;
      if (const Stmt *Else = S.elseStmt())
        return resolveCallsIn(const_cast<Stmt &>(*Else));
      return true;
    case Stmt::Kind::While:
      return resolveCallsIn(const_cast<Stmt &>(S.body()));
    default:
      return true;
    }
  }

  bool resolveCalls() {
    for (Procedure &Proc : Current->Procs)
      if (!resolveCallsIn(*Proc.Body))
        return false;
    return true;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program *Current = nullptr;
  unsigned LoopDepth = 0;
  std::string Error;
  Diagnostic Diag;
};

} // namespace

ParseResult lang::parseProgram(const std::string &Source) {
  return ParserImpl(Source).run();
}

ParseResult lang::parseProgram(const std::string &Source,
                               DiagnosticEngine &Diags) {
  ParseResult Result = parseProgram(Source);
  if (!Result)
    Diags.report(Result.Diag);
  return Result;
}

std::unique_ptr<Program> lang::parseProgramOrDie(const std::string &Source) {
  ParseResult Result = parseProgram(Source);
  if (!Result) {
    DiagnosticEngine Diags;
    Diags.setSource("<input>", Source);
    std::fprintf(stderr, "parse error: %s\n%s", Result.Error.c_str(),
                 Diags.render(Result.Diag).c_str());
    std::abort();
  }
  return std::move(Result.Prog);
}
