//===- lang/Parser.cpp - Recursive-descent parser --------------------------===//

#include "lang/Parser.h"
#include "lang/Lexer.h"

#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace pmaf;
using namespace pmaf::lang;

namespace {

/// Constant-folds \p E to a rational; fails on variables and division by
/// zero. Used for probabilities, rewards, and discrete-distribution tables.
std::optional<Rational> evalConstant(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return E.number();
  case Expr::Kind::Var:
  case Expr::Kind::BoolLit:
    return std::nullopt;
  default:
    break;
  }
  std::optional<Rational> L = evalConstant(E.lhs());
  std::optional<Rational> R = evalConstant(E.rhs());
  if (!L || !R)
    return std::nullopt;
  switch (E.kind()) {
  case Expr::Kind::Add:
    return *L + *R;
  case Expr::Kind::Sub:
    return *L - *R;
  case Expr::Kind::Mul:
    return *L * *R;
  case Expr::Kind::Div:
    if (R->isZero())
      return std::nullopt;
    return *L / *R;
  default:
    return std::nullopt;
  }
}

class ParserImpl {
public:
  explicit ParserImpl(const std::string &Source)
      : Tokens(tokenize(Source)) {}

  ParseResult run() {
    ParseResult Result;
    auto Prog = std::make_unique<Program>();
    Current = Prog.get();
    while (!check(Token::Kind::Eof)) {
      if (checkKeyword("bool") || checkKeyword("real")) {
        if (!parseVarDecl())
          break;
      } else if (checkKeyword("proc")) {
        if (!parseProcDecl())
          break;
      } else {
        fail("expected 'bool', 'real', or 'proc' at top level");
        break;
      }
    }
    if (Error.empty())
      resolveCalls(); // Sets Error on failure.
    if (Error.empty() && Current->Procs.empty())
      fail("program has no procedures");
    if (!Error.empty()) {
      Result.Error = Error;
      return Result;
    }
    Result.Prog = std::move(Prog);
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek() const { return Tokens[Pos]; }

  bool check(Token::Kind Kind) const { return peek().TheKind == Kind; }

  bool checkKeyword(const char *Word) const {
    return check(Token::Kind::Ident) && peek().Text == Word;
  }

  const Token &advance() { return Tokens[Pos++]; }

  bool match(Token::Kind Kind) {
    if (!check(Kind))
      return false;
    ++Pos;
    return true;
  }

  bool matchKeyword(const char *Word) {
    if (!checkKeyword(Word))
      return false;
    ++Pos;
    return true;
  }

  bool expect(Token::Kind Kind, const char *What) {
    if (match(Kind))
      return true;
    fail(std::string("expected ") + What);
    return false;
  }

  void fail(const std::string &Message) {
    if (!Error.empty())
      return;
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%u:%u: ", peek().Line, peek().Col);
    Error = Buffer + Message;
    if (peek().TheKind == Token::Kind::Error)
      Error += " (" + peek().Text + ")";
    else if (!peek().Text.empty())
      Error += ", got '" + peek().Text + "'";
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  bool parseVarDecl() {
    bool IsReal = peek().Text == "real";
    advance();
    do {
      if (!check(Token::Kind::Ident)) {
        fail("expected variable name");
        return false;
      }
      std::string Name = advance().Text;
      if (Current->findVar(Name) != ~0u) {
        fail("redeclaration of variable '" + Name + "'");
        return false;
      }
      Current->Vars.push_back(VarInfo{Name, IsReal});
    } while (match(Token::Kind::Comma));
    return expect(Token::Kind::Semi, "';' after variable declaration");
  }

  bool parseProcDecl() {
    advance(); // 'proc'
    if (!check(Token::Kind::Ident)) {
      fail("expected procedure name");
      return false;
    }
    std::string Name = advance().Text;
    if (Current->findProc(Name) != ~0u) {
      fail("redefinition of procedure '" + Name + "'");
      return false;
    }
    if (!expect(Token::Kind::LParen, "'('") ||
        !expect(Token::Kind::RParen, "')'"))
      return false;
    Stmt::Ptr Body = parseBlock();
    if (!Body)
      return false;
    Current->Procs.push_back(Procedure{std::move(Name), std::move(Body)});
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Stmt::Ptr parseBlock() {
    if (!expect(Token::Kind::LBrace, "'{'"))
      return nullptr;
    std::vector<Stmt::Ptr> Stmts;
    while (!check(Token::Kind::RBrace) && !check(Token::Kind::Eof)) {
      Stmt::Ptr S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(std::move(S));
    }
    if (!expect(Token::Kind::RBrace, "'}'"))
      return nullptr;
    return Stmt::makeBlock(std::move(Stmts));
  }

  Stmt::Ptr parseStmt() {
    if (matchKeyword("skip")) {
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeSkip();
    }
    if (matchKeyword("break")) {
      if (LoopDepth == 0) {
        fail("'break' outside of a loop");
        return nullptr;
      }
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeBreak();
    }
    if (matchKeyword("continue")) {
      if (LoopDepth == 0) {
        fail("'continue' outside of a loop");
        return nullptr;
      }
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeContinue();
    }
    if (matchKeyword("return")) {
      if (!expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeReturn();
    }
    if (matchKeyword("observe")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      Cond::Ptr Phi = parseCond();
      if (!Phi || !expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeObserve(std::move(Phi));
    }
    if (matchKeyword("reward")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return nullptr;
      std::optional<Rational> Amount = parseConstant();
      if (!Amount || !expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      if (Amount->sign() < 0) {
        fail("rewards must be nonnegative");
        return nullptr;
      }
      return Stmt::makeReward(std::move(*Amount));
    }
    if (matchKeyword("if"))
      return parseIf();
    if (matchKeyword("while")) {
      Guard G;
      if (!parseGuard(G))
        return nullptr;
      ++LoopDepth;
      Stmt::Ptr Body = parseBlock();
      --LoopDepth;
      if (!Body)
        return nullptr;
      return Stmt::makeWhile(std::move(G), std::move(Body));
    }
    if (!check(Token::Kind::Ident)) {
      fail("expected a statement");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (match(Token::Kind::LParen)) {
      // Procedure call.
      if (!expect(Token::Kind::RParen, "')'") ||
          !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeCall(std::move(Name));
    }
    unsigned VarIndex = Current->findVar(Name);
    if (VarIndex == ~0u) {
      fail("use of undeclared variable '" + Name + "'");
      return nullptr;
    }
    if (match(Token::Kind::Assign)) {
      Expr::Ptr Value = parseExpr();
      if (!Value || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeAssign(VarIndex, std::move(Value));
    }
    if (match(Token::Kind::Tilde)) {
      std::optional<Dist> D = parseDist();
      if (!D || !expect(Token::Kind::Semi, "';'"))
        return nullptr;
      return Stmt::makeSample(VarIndex, std::move(*D));
    }
    fail("expected ':=', '~', or '(' after identifier");
    return nullptr;
  }

  Stmt::Ptr parseIf() {
    Guard G;
    if (!parseGuard(G))
      return nullptr;
    Stmt::Ptr Then = parseBlock();
    if (!Then)
      return nullptr;
    Stmt::Ptr Else;
    if (matchKeyword("else")) {
      if (matchKeyword("if")) {
        Else = parseIf(); // else-if chains without extra braces
      } else {
        Else = parseBlock();
      }
      if (!Else)
        return nullptr;
    }
    return Stmt::makeIf(std::move(G), std::move(Then), std::move(Else));
  }

  bool parseGuard(Guard &G) {
    if (matchKeyword("star")) {
      G.TheKind = Guard::Kind::Ndet;
      return true;
    }
    if (matchKeyword("prob")) {
      if (!expect(Token::Kind::LParen, "'('"))
        return false;
      std::optional<Rational> P = parseConstant();
      if (!P || !expect(Token::Kind::RParen, "')'"))
        return false;
      if (P->sign() < 0 || *P > Rational(1)) {
        fail("probability must lie in [0, 1]");
        return false;
      }
      G.TheKind = Guard::Kind::Prob;
      G.Prob = std::move(*P);
      return true;
    }
    if (!expect(Token::Kind::LParen, "'(', 'prob', or 'star'"))
      return false;
    Cond::Ptr Phi = parseCond();
    if (!Phi || !expect(Token::Kind::RParen, "')'"))
      return false;
    G.TheKind = Guard::Kind::Cond;
    G.Phi = std::move(Phi);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Distributions
  //===--------------------------------------------------------------------===//

  std::optional<Dist> parseDist() {
    if (!check(Token::Kind::Ident)) {
      fail("expected a distribution name");
      return std::nullopt;
    }
    std::string Name = advance().Text;
    Dist D;
    unsigned Arity = 0;
    if (Name == "bernoulli") {
      D.TheKind = Dist::Kind::Bernoulli;
      Arity = 1;
    } else if (Name == "uniform") {
      D.TheKind = Dist::Kind::Uniform;
      Arity = 2;
    } else if (Name == "gaussian") {
      D.TheKind = Dist::Kind::Gaussian;
      Arity = 2;
    } else if (Name == "uniformint") {
      D.TheKind = Dist::Kind::UniformInt;
      Arity = 2;
    } else if (Name == "discrete") {
      D.TheKind = Dist::Kind::Discrete;
    } else {
      fail("unknown distribution '" + Name + "'");
      return std::nullopt;
    }
    if (!expect(Token::Kind::LParen, "'('"))
      return std::nullopt;
    if (D.TheKind == Dist::Kind::Discrete) {
      // discrete(v1: p1, v2: p2, ...)
      Rational Total(0);
      do {
        std::optional<Rational> Value = parseConstant();
        if (!Value || !expect(Token::Kind::Colon, "':'"))
          return std::nullopt;
        std::optional<Rational> Weight = parseConstant();
        if (!Weight)
          return std::nullopt;
        if (Weight->sign() < 0) {
          fail("discrete weights must be nonnegative");
          return std::nullopt;
        }
        D.Params.push_back(Expr::makeNumber(std::move(*Value)));
        D.Weights.push_back(*Weight);
        Total += *Weight;
      } while (match(Token::Kind::Comma));
      if (Total > Rational(1)) {
        fail("discrete weights must sum to at most 1");
        return std::nullopt;
      }
    } else {
      for (unsigned I = 0; I != Arity; ++I) {
        if (I && !expect(Token::Kind::Comma, "','"))
          return std::nullopt;
        Expr::Ptr Param = parseExpr();
        if (!Param)
          return std::nullopt;
        D.Params.push_back(std::move(Param));
      }
    }
    if (!expect(Token::Kind::RParen, "')'"))
      return std::nullopt;
    return D;
  }

  //===--------------------------------------------------------------------===//
  // Conditions
  //===--------------------------------------------------------------------===//

  Cond::Ptr parseCond() { return parseCondOr(); }

  Cond::Ptr parseCondOr() {
    Cond::Ptr Lhs = parseCondAnd();
    while (Lhs && match(Token::Kind::OrOr)) {
      Cond::Ptr Rhs = parseCondAnd();
      if (!Rhs)
        return nullptr;
      Lhs = Cond::makeOr(std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  Cond::Ptr parseCondAnd() {
    Cond::Ptr Lhs = parseCondUnary();
    while (Lhs && match(Token::Kind::AndAnd)) {
      Cond::Ptr Rhs = parseCondUnary();
      if (!Rhs)
        return nullptr;
      Lhs = Cond::makeAnd(std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  Cond::Ptr parseCondUnary() {
    if (match(Token::Kind::Bang)) {
      Cond::Ptr Operand = parseCondUnary();
      if (!Operand)
        return nullptr;
      return Cond::makeNot(std::move(Operand));
    }
    return parseCondAtom();
  }

  Cond::Ptr parseCondAtom() {
    if (matchKeyword("true"))
      return Cond::makeTrue();
    if (matchKeyword("false"))
      return Cond::makeFalse();
    if (check(Token::Kind::LParen)) {
      // Ambiguity: '(' may open a nested condition or a parenthesized
      // arithmetic operand of a comparison. Try the condition reading
      // first; backtrack on failure (tokens are pre-lexed, so this is a
      // cheap position reset).
      size_t Saved = Pos;
      std::string SavedError = Error;
      advance();
      Cond::Ptr Inner = parseCond();
      if (Inner && match(Token::Kind::RParen) && !startsComparisonTail()) {
        return Inner;
      }
      Pos = Saved;
      Error = SavedError;
    }
    // Comparison or Boolean variable.
    Expr::Ptr Lhs = parseExpr();
    if (!Lhs)
      return nullptr;
    std::optional<CmpOp> Op = matchCmpOp();
    if (Op) {
      Expr::Ptr Rhs = parseExpr();
      if (!Rhs)
        return nullptr;
      return Cond::makeCmp(*Op, std::move(Lhs), std::move(Rhs));
    }
    if (Lhs->kind() == Expr::Kind::Var &&
        !Current->Vars[Lhs->varIndex()].IsReal)
      return Cond::makeBoolVar(Lhs->varIndex());
    fail("expected a comparison or a Boolean variable");
    return nullptr;
  }

  /// After a successfully parsed parenthesized condition, a comparison
  /// operator means we actually saw a parenthesized arithmetic operand.
  bool startsComparisonTail() const {
    switch (peek().TheKind) {
    case Token::Kind::EqEq:
    case Token::Kind::NotEq:
    case Token::Kind::LessEq:
    case Token::Kind::GreaterEq:
    case Token::Kind::Less:
    case Token::Kind::Greater:
    case Token::Kind::Plus:
    case Token::Kind::Minus:
    case Token::Kind::Star:
    case Token::Kind::Slash:
      return true;
    default:
      return false;
    }
  }

  std::optional<CmpOp> matchCmpOp() {
    if (match(Token::Kind::EqEq))
      return CmpOp::Eq;
    if (match(Token::Kind::NotEq))
      return CmpOp::Ne;
    if (match(Token::Kind::LessEq))
      return CmpOp::Le;
    if (match(Token::Kind::GreaterEq))
      return CmpOp::Ge;
    if (match(Token::Kind::Less))
      return CmpOp::Lt;
    if (match(Token::Kind::Greater))
      return CmpOp::Gt;
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expr::Ptr parseExpr() { return parseAdditive(); }

  Expr::Ptr parseAdditive() {
    Expr::Ptr Lhs = parseMultiplicative();
    while (Lhs) {
      if (match(Token::Kind::Plus)) {
        Expr::Ptr Rhs = parseMultiplicative();
        if (!Rhs)
          return nullptr;
        Lhs = Expr::makeBinary(Expr::Kind::Add, std::move(Lhs),
                               std::move(Rhs));
      } else if (match(Token::Kind::Minus)) {
        Expr::Ptr Rhs = parseMultiplicative();
        if (!Rhs)
          return nullptr;
        Lhs = Expr::makeBinary(Expr::Kind::Sub, std::move(Lhs),
                               std::move(Rhs));
      } else {
        break;
      }
    }
    return Lhs;
  }

  Expr::Ptr parseMultiplicative() {
    Expr::Ptr Lhs = parseUnaryExpr();
    while (Lhs) {
      if (match(Token::Kind::Star)) {
        Expr::Ptr Rhs = parseUnaryExpr();
        if (!Rhs)
          return nullptr;
        Lhs = Expr::makeBinary(Expr::Kind::Mul, std::move(Lhs),
                               std::move(Rhs));
      } else if (match(Token::Kind::Slash)) {
        Expr::Ptr Rhs = parseUnaryExpr();
        if (!Rhs)
          return nullptr;
        Lhs = Expr::makeBinary(Expr::Kind::Div, std::move(Lhs),
                               std::move(Rhs));
      } else {
        break;
      }
    }
    return Lhs;
  }

  Expr::Ptr parseUnaryExpr() {
    if (match(Token::Kind::Minus)) {
      Expr::Ptr Operand = parseUnaryExpr();
      if (!Operand)
        return nullptr;
      return Expr::makeBinary(Expr::Kind::Sub, Expr::makeNumber(Rational(0)),
                              std::move(Operand));
    }
    return parsePrimaryExpr();
  }

  Expr::Ptr parsePrimaryExpr() {
    if (check(Token::Kind::Number))
      return Expr::makeNumber(Rational::fromString(advance().Text));
    if (matchKeyword("true"))
      return Expr::makeBool(true);
    if (matchKeyword("false"))
      return Expr::makeBool(false);
    if (check(Token::Kind::Ident)) {
      std::string Name = advance().Text;
      unsigned VarIndex = Current->findVar(Name);
      if (VarIndex == ~0u) {
        fail("use of undeclared variable '" + Name + "'");
        return nullptr;
      }
      return Expr::makeVar(VarIndex);
    }
    if (match(Token::Kind::LParen)) {
      Expr::Ptr Inner = parseExpr();
      if (!Inner || !expect(Token::Kind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    fail("expected an expression");
    return nullptr;
  }

  std::optional<Rational> parseConstant() {
    Expr::Ptr E = parseExpr();
    if (!E)
      return std::nullopt;
    std::optional<Rational> Value = evalConstant(*E);
    if (!Value)
      fail("expected a constant rational expression");
    return Value;
  }

  //===--------------------------------------------------------------------===//
  // Post-pass: call resolution
  //===--------------------------------------------------------------------===//

  bool resolveCallsIn(Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Call: {
      unsigned Index = Current->findProc(S.callee());
      if (Index == ~0u) {
        Error = "call to undefined procedure '" + S.callee() + "'";
        return false;
      }
      S.setCalleeIndex(Index);
      return true;
    }
    case Stmt::Kind::Block:
      for (const Stmt::Ptr &Child : S.stmts())
        if (!resolveCallsIn(*Child))
          return false;
      return true;
    case Stmt::Kind::If:
      if (!resolveCallsIn(const_cast<Stmt &>(S.thenStmt())))
        return false;
      if (const Stmt *Else = S.elseStmt())
        return resolveCallsIn(const_cast<Stmt &>(*Else));
      return true;
    case Stmt::Kind::While:
      return resolveCallsIn(const_cast<Stmt &>(S.body()));
    default:
      return true;
    }
  }

  bool resolveCalls() {
    for (Procedure &Proc : Current->Procs)
      if (!resolveCallsIn(*Proc.Body))
        return false;
    return true;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program *Current = nullptr;
  unsigned LoopDepth = 0;
  std::string Error;
};

} // namespace

ParseResult lang::parseProgram(const std::string &Source) {
  return ParserImpl(Source).run();
}

std::unique_ptr<Program> lang::parseProgramOrDie(const std::string &Source) {
  ParseResult Result = parseProgram(Source);
  if (!Result) {
    std::fprintf(stderr, "parse error: %s\n", Result.Error.c_str());
    std::abort();
  }
  return std::move(Result.Prog);
}
