//===- analysis/Lint.h - Semantic lint over AST and hyper-graph -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-pass semantic lint that runs before the fixpoint analysis. It
/// checks three layers:
///
///  - the AST: probability literals outside [0, 1], degenerate prob(0) /
///    prob(1) guards, out-of-range variable and procedure references (from
///    programmatically built ASTs), Boolean/real type mismatches, division
///    by a constant zero, statements unreachable after break / continue /
///    return, and negative rewards;
///
///  - the lowered hyper-graph (Defn 3.2): nodes unreachable from the
///    procedure entry, and procedures whose exit is unreachable once
///    constant guards (cond[true], cond[false], prob(1), prob(0)) prune
///    the dead branch — i.e. certain divergence, propagated through calls;
///
///  - domain preconditions: signed-variable hazards under LEIA without the
///    positive-negative decomposition of §6.2 (constant negative
///    assignments, gaussian samples, uniform with a constant negative lower
///    bound), reward statements that a non-MDP domain ignores, and programs
///    outside a domain's state-space model (real variables or more than
///    BoolStateSpace::MaxVars Booleans under BI, Boolean variables under
///    LEIA).
///
/// Diagnostic codes are stable kebab-case strings: "prob-range",
/// "degenerate-prob", "undefined-variable", "undefined-procedure",
/// "misplaced-jump", "type-mismatch", "div-by-zero", "reward-range",
/// "unreachable-stmt", "unreachable-node", "divergent-loop",
/// "unreachable-exit", "signed-var", "reward-ignored", "domain-mismatch".
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_ANALYSIS_LINT_H
#define PMAF_ANALYSIS_LINT_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

namespace pmaf {
namespace analysis {

/// The abstract domain the program is being checked against. None runs
/// only the domain-independent checks; Termination additionally suppresses
/// the divergence warnings (divergence is the property that domain
/// measures, so divergent inputs are intended).
enum class TargetDomain { None, Leia, Bi, Mdp, Termination };

struct LintOptions {
  TargetDomain Domain = TargetDomain::None;
  /// True when the program has already been through the positive-negative
  /// decomposition (§6.2); disables the signed-variable checks.
  bool Decomposed = false;
};

/// Runs all applicable checks over \p Prog, reporting into \p Diags.
/// \returns the number of diagnostics reported. The graph checks are
/// skipped when the AST checks find unresolved references or misplaced
/// jumps (the lowering requires a well-formed program).
unsigned lintProgram(const lang::Program &Prog, DiagnosticEngine &Diags,
                     const LintOptions &Opts = {});

} // namespace analysis
} // namespace pmaf

#endif // PMAF_ANALYSIS_LINT_H
