//===- analysis/Lint.cpp - Semantic lint over AST and hyper-graph ----------===//

#include "analysis/Lint.h"

#include "cfg/HyperGraph.h"
#include "domains/BoolStateSpace.h"

#include <optional>
#include <set>
#include <vector>

using namespace pmaf;
using namespace pmaf::analysis;
using namespace pmaf::lang;

namespace {

enum class Type { Bool, Real, Unknown };

class Linter {
public:
  Linter(const Program &Prog, DiagnosticEngine &Diags,
         const LintOptions &Opts)
      : Prog(Prog), Diags(Diags), Opts(Opts) {}

  unsigned run() {
    size_t Before = Diags.diagnostics().size();
    checkDomainModel();
    for (const Procedure &Proc : Prog.Procs)
      checkStmt(*Proc.Body, /*LoopDepth=*/0);
    if (!HasStructuralError)
      checkGraph();
    return static_cast<unsigned>(Diags.diagnostics().size() - Before);
  }

private:
  //===--------------------------------------------------------------------===//
  // Reporting helpers
  //===--------------------------------------------------------------------===//

  void error(SourceLoc Loc, const char *Code, std::string Message) {
    Diags.report(Severity::Error, Loc, Code, std::move(Message));
  }
  void warning(SourceLoc Loc, const char *Code, std::string Message) {
    Diags.report(Severity::Warning, Loc, Code, std::move(Message));
  }

  bool divergenceChecksEnabled() const {
    return Opts.Domain != TargetDomain::Termination;
  }

  //===--------------------------------------------------------------------===//
  // Constant folding
  //===--------------------------------------------------------------------===//

  /// Folds \p E to a rational constant when it contains no variables and
  /// no division by zero.
  static std::optional<Rational> foldConst(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Number:
      return E.number();
    case Expr::Kind::Var:
    case Expr::Kind::BoolLit:
      return std::nullopt;
    case Expr::Kind::Add:
    case Expr::Kind::Sub:
    case Expr::Kind::Mul:
    case Expr::Kind::Div: {
      std::optional<Rational> L = foldConst(E.lhs());
      std::optional<Rational> R = foldConst(E.rhs());
      if (!L || !R)
        return std::nullopt;
      switch (E.kind()) {
      case Expr::Kind::Add:
        return *L + *R;
      case Expr::Kind::Sub:
        return *L - *R;
      case Expr::Kind::Mul:
        return *L * *R;
      default:
        if (R->isZero())
          return std::nullopt;
        return *L / *R;
      }
    }
    }
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Expressions and conditions
  //===--------------------------------------------------------------------===//

  Type varType(unsigned Index) const {
    return Prog.Vars[Index].IsReal ? Type::Real : Type::Bool;
  }

  /// Type-checks \p E; reports undefined variables, Boolean operands of
  /// arithmetic, and division by a constant zero.
  Type checkExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Var:
      if (E.varIndex() >= Prog.Vars.size()) {
        error(E.loc(), "undefined-variable",
              "reference to undeclared variable #" +
                  std::to_string(E.varIndex()));
        HasStructuralError = true;
        return Type::Unknown;
      }
      return varType(E.varIndex());
    case Expr::Kind::Number:
      return Type::Real;
    case Expr::Kind::BoolLit:
      return Type::Bool;
    case Expr::Kind::Add:
    case Expr::Kind::Sub:
    case Expr::Kind::Mul:
    case Expr::Kind::Div: {
      requireReal(E.lhs(), "arithmetic");
      requireReal(E.rhs(), "arithmetic");
      if (E.kind() == Expr::Kind::Div) {
        std::optional<Rational> Divisor = foldConst(E.rhs());
        if (Divisor && Divisor->isZero())
          error(E.rhs().loc(), "div-by-zero",
                "division by constant zero");
      }
      return Type::Real;
    }
    }
    return Type::Unknown;
  }

  void requireReal(const Expr &E, const char *Context) {
    if (checkExpr(E) == Type::Bool)
      error(E.loc(), "type-mismatch",
            std::string("Boolean operand in ") + Context +
                " (expected a real-valued expression)");
  }

  void checkCond(const Cond &C) {
    switch (C.kind()) {
    case Cond::Kind::True:
    case Cond::Kind::False:
      return;
    case Cond::Kind::BoolVar:
      if (C.varIndex() >= Prog.Vars.size()) {
        error(C.loc(), "undefined-variable",
              "reference to undeclared variable #" +
                  std::to_string(C.varIndex()));
        HasStructuralError = true;
      } else if (varType(C.varIndex()) != Type::Bool) {
        error(C.loc(), "type-mismatch",
              "real-valued variable '" + Prog.Vars[C.varIndex()].Name +
                  "' used as a Boolean condition");
      }
      return;
    case Cond::Kind::Cmp: {
      // Equality compares like types (Booleans compare fine with = and
      // !=); the ordered comparisons require real operands.
      CmpOp Op = C.cmpOp();
      if (Op == CmpOp::Eq || Op == CmpOp::Ne) {
        Type L = checkExpr(C.cmpLhs());
        Type R = checkExpr(C.cmpRhs());
        if (L != Type::Unknown && R != Type::Unknown && L != R)
          error(C.cmpLhs().loc(), "type-mismatch",
                "equality comparison of a Boolean and a real value");
      } else {
        requireReal(C.cmpLhs(), "an ordered comparison");
        requireReal(C.cmpRhs(), "an ordered comparison");
      }
      return;
    }
    case Cond::Kind::Not:
      checkCond(C.operand());
      return;
    case Cond::Kind::And:
    case Cond::Kind::Or:
      checkCond(C.lhs());
      checkCond(C.rhs());
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Guards, distributions, statements
  //===--------------------------------------------------------------------===//

  void checkGuard(const Guard &G) {
    switch (G.TheKind) {
    case Guard::Kind::Cond:
      checkCond(*G.Phi);
      return;
    case Guard::Kind::Prob:
      if (G.Prob.sign() < 0 || G.Prob > Rational(1))
        error(G.Loc, "prob-range",
              "probability " + G.Prob.toString() +
                  " lies outside [0, 1]");
      else if (G.Prob.isZero() || G.Prob == Rational(1))
        warning(G.Loc, "degenerate-prob",
                "probabilistic choice prob(" + G.Prob.toString() +
                    ") always takes the " +
                    (G.Prob.isZero() ? "else" : "then") + " branch");
      return;
    case Guard::Kind::Ndet:
      return;
    }
  }

  void checkDist(const Dist &D, unsigned Target, SourceLoc StmtLoc) {
    bool TargetKnown = Target < Prog.Vars.size();
    // Every distribution except bernoulli produces a real value; bernoulli
    // may target either a Boolean or a real (0/1-valued) variable.
    if (TargetKnown && D.TheKind != Dist::Kind::Bernoulli &&
        varType(Target) == Type::Bool)
      error(StmtLoc, "type-mismatch",
            "sampling a real-valued distribution into Boolean variable '" +
                Prog.Vars[Target].Name + "'");
    for (const Expr::Ptr &Param : D.Params)
      requireReal(*Param, "a distribution parameter");
    if (D.TheKind == Dist::Kind::Bernoulli && !D.Params.empty()) {
      std::optional<Rational> P = foldConst(*D.Params[0]);
      if (P && (P->sign() < 0 || *P > Rational(1)))
        error(D.Params[0]->loc(), "prob-range",
              "bernoulli parameter " + P->toString() +
                  " lies outside [0, 1]");
    }
    if (D.TheKind == Dist::Kind::Discrete) {
      Rational Sum;
      for (const Rational &W : D.Weights) {
        if (W.sign() < 0 || W > Rational(1))
          error(D.Loc, "prob-range",
                "discrete weight " + W.toString() +
                    " lies outside [0, 1]");
        Sum += W;
      }
      if (!D.Weights.empty() && Sum != Rational(1))
        error(D.Loc, "prob-range",
              "discrete weights sum to " + Sum.toString() + ", not 1");
    }
  }

  void checkStmt(const Stmt &S, unsigned LoopDepth) {
    switch (S.kind()) {
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Assign: {
      Type Target = Type::Unknown;
      if (S.varIndex() >= Prog.Vars.size()) {
        error(S.loc(), "undefined-variable",
              "assignment to undeclared variable #" +
                  std::to_string(S.varIndex()));
        HasStructuralError = true;
      } else {
        Target = varType(S.varIndex());
      }
      Type Value = checkExpr(S.value());
      if (Target != Type::Unknown && Value != Type::Unknown &&
          Target != Value)
        error(S.loc(), "type-mismatch",
              std::string("assignment of a ") +
                  (Value == Type::Bool ? "Boolean" : "real") +
                  " value to " +
                  (Target == Type::Bool ? "Boolean" : "real") +
                  " variable '" + Prog.Vars[S.varIndex()].Name + "'");
      checkSignedAssign(S);
      return;
    }
    case Stmt::Kind::Sample:
      if (S.varIndex() >= Prog.Vars.size()) {
        error(S.loc(), "undefined-variable",
              "sampling into undeclared variable #" +
                  std::to_string(S.varIndex()));
        HasStructuralError = true;
      }
      checkDist(S.dist(), S.varIndex(), S.loc());
      checkSignedSample(S);
      return;
    case Stmt::Kind::Observe:
      checkCond(S.observed());
      return;
    case Stmt::Kind::Reward:
      if (S.reward().sign() < 0)
        error(S.loc(), "reward-range",
              "reward " + S.reward().toString() + " is negative");
      if (Opts.Domain != TargetDomain::None &&
          Opts.Domain != TargetDomain::Mdp)
        warning(S.loc(), "reward-ignored",
                "reward statement has no effect under the " +
                    std::string(domainName(Opts.Domain)) + " domain");
      return;
    case Stmt::Kind::Assert:
      switch (S.assertKind()) {
      case AssertKind::Prob:
        checkCond(S.assertCond());
        break;
      case AssertKind::Reward:
        break;
      case AssertKind::Interval:
        requireReal(S.assertTarget(), "an interval assertion");
        break;
      }
      return;
    case Stmt::Kind::Block: {
      const std::vector<Stmt::Ptr> &Stmts = S.stmts();
      bool Terminated = false;
      for (const Stmt::Ptr &Child : Stmts) {
        if (Terminated) {
          warning(Child->loc(), "unreachable-stmt",
                  "statement is unreachable (control already left the "
                  "block)");
          ReportedUnreachable.insert(Child->loc());
          Terminated = false; // One report per trailing region.
        }
        checkStmt(*Child, LoopDepth);
        Stmt::Kind K = Child->kind();
        if (K == Stmt::Kind::Break || K == Stmt::Kind::Continue ||
            K == Stmt::Kind::Return)
          Terminated = true;
      }
      return;
    }
    case Stmt::Kind::If:
      checkGuard(S.guard());
      checkStmt(S.thenStmt(), LoopDepth);
      if (S.elseStmt())
        checkStmt(*S.elseStmt(), LoopDepth);
      return;
    case Stmt::Kind::While:
      checkGuard(S.guard());
      checkStmt(S.body(), LoopDepth + 1);
      if (divergenceChecksEnabled() && isConstantTrue(S.guard()) &&
          !canEscapeLoop(S.body(), /*BreaksTargetThisLoop=*/true))
        warning(S.loc(), "divergent-loop",
                "loop guard is always true and the body never breaks or "
                "returns; the loop cannot terminate");
      return;
    case Stmt::Kind::Call:
      if (S.calleeIndex() >= Prog.Procs.size()) {
        error(S.loc(), "undefined-procedure",
              "call to unresolved procedure '" + S.callee() + "'");
        HasStructuralError = true;
      }
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      if (LoopDepth == 0) {
        error(S.loc(), "misplaced-jump",
              std::string(S.kind() == Stmt::Kind::Break ? "break"
                                                        : "continue") +
                  " outside of a loop");
        HasStructuralError = true;
      }
      return;
    case Stmt::Kind::Return:
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Divergence (AST level)
  //===--------------------------------------------------------------------===//

  static bool isConstantTrue(const Guard &G) {
    if (G.TheKind == Guard::Kind::Cond)
      return G.Phi->kind() == Cond::Kind::True;
    if (G.TheKind == Guard::Kind::Prob)
      return G.Prob == Rational(1);
    return false;
  }

  /// Whether executing \p S can transfer control out of the enclosing
  /// loop: a break bound to that loop, or a return. Calls are assumed to
  /// come back (interprocedural divergence is the graph check's job).
  static bool canEscapeLoop(const Stmt &S, bool BreaksTargetThisLoop) {
    switch (S.kind()) {
    case Stmt::Kind::Break:
      return BreaksTargetThisLoop;
    case Stmt::Kind::Return:
      return true;
    case Stmt::Kind::Block:
      for (const Stmt::Ptr &Child : S.stmts())
        if (canEscapeLoop(*Child, BreaksTargetThisLoop))
          return true;
      return false;
    case Stmt::Kind::If:
      if (canEscapeLoop(S.thenStmt(), BreaksTargetThisLoop))
        return true;
      return S.elseStmt() &&
             canEscapeLoop(*S.elseStmt(), BreaksTargetThisLoop);
    case Stmt::Kind::While:
      // Breaks inside the inner loop bind to it; returns still escape.
      return canEscapeLoop(S.body(), /*BreaksTargetThisLoop=*/false);
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Domain preconditions
  //===--------------------------------------------------------------------===//

  static const char *domainName(TargetDomain D) {
    switch (D) {
    case TargetDomain::None:
      return "none";
    case TargetDomain::Leia:
      return "LEIA";
    case TargetDomain::Bi:
      return "BI";
    case TargetDomain::Mdp:
      return "MDP";
    case TargetDomain::Termination:
      return "termination";
    }
    return "unknown";
  }

  bool signedChecksEnabled() const {
    return Opts.Domain == TargetDomain::Leia && !Opts.Decomposed;
  }

  /// LEIA interprets states as nonnegative-real vectors (§5.3); without
  /// the positive-negative decomposition of §6.2 a variable that certainly
  /// goes negative is outside the model. Only constant-foldable negative
  /// values are flagged — expressions like `x - 1/2` may stay nonnegative.
  void checkSignedAssign(const Stmt &S) {
    if (!signedChecksEnabled())
      return;
    std::optional<Rational> V = foldConst(S.value());
    if (V && V->sign() < 0)
      error(S.loc(), "signed-var",
            "assignment of negative constant " + V->toString() +
                " under LEIA; rerun with --decompose (§6.2) or rewrite "
                "the program to keep variables nonnegative");
  }

  void checkSignedSample(const Stmt &S) {
    if (!signedChecksEnabled())
      return;
    const Dist &D = S.dist();
    if (D.TheKind == Dist::Kind::Gaussian) {
      error(S.loc(), "signed-var",
            "gaussian samples are signed; LEIA requires nonnegative "
            "variables (use --decompose, §6.2)");
      return;
    }
    bool HasLower = (D.TheKind == Dist::Kind::Uniform ||
                     D.TheKind == Dist::Kind::UniformInt) &&
                    !D.Params.empty();
    if (HasLower) {
      std::optional<Rational> Lo = foldConst(*D.Params[0]);
      if (Lo && Lo->sign() < 0)
        error(S.loc(), "signed-var",
              "sampling from a range with constant negative lower bound " +
                  Lo->toString() +
                  " under LEIA (use --decompose, §6.2)");
    }
    if (D.TheKind == Dist::Kind::Discrete) {
      for (const Expr::Ptr &Value : D.Params) {
        std::optional<Rational> V = foldConst(*Value);
        if (V && V->sign() < 0) {
          error(S.loc(), "signed-var",
                "discrete distribution contains negative value " +
                    V->toString() + " under LEIA (use --decompose, §6.2)");
          break;
        }
      }
    }
  }

  /// Structural fit between the program's variables and the chosen
  /// domain's state-space model.
  void checkDomainModel() {
    if (Opts.Domain == TargetDomain::Bi) {
      unsigned NumBools = 0;
      for (const VarInfo &Var : Prog.Vars) {
        if (Var.IsReal) {
          error(Var.Loc, "domain-mismatch",
                "real-valued variable '" + Var.Name +
                    "' is outside the BI domain's Boolean state space");
        } else if (++NumBools == domains::BoolStateSpace::MaxVars + 1) {
          error(Var.Loc, "domain-mismatch",
                "more than " +
                    std::to_string(domains::BoolStateSpace::MaxVars) +
                    " Boolean variables; the BI state space is "
                    "exponential in the variable count");
        }
      }
    }
    if (Opts.Domain == TargetDomain::Leia) {
      for (const VarInfo &Var : Prog.Vars)
        if (!Var.IsReal)
          error(Var.Loc, "domain-mismatch",
                "Boolean variable '" + Var.Name +
                    "' is outside the LEIA domain's real state space");
    }
  }

  //===--------------------------------------------------------------------===//
  // Graph checks
  //===--------------------------------------------------------------------===//

  /// Destinations of \p E that are actually takeable: a constant guard
  /// (cond[true], cond[false], prob(1), prob(0)) prunes its dead branch.
  static void takeableDsts(const cfg::HyperEdge &E,
                           std::vector<unsigned> &Out) {
    Out.clear();
    if (E.Dsts.size() == 2) {
      if (E.Ctrl.TheKind == cfg::ControlAction::Kind::Cond) {
        if (E.Ctrl.Phi->kind() == Cond::Kind::True) {
          Out.push_back(E.Dsts[0]);
          return;
        }
        if (E.Ctrl.Phi->kind() == Cond::Kind::False) {
          Out.push_back(E.Dsts[1]);
          return;
        }
      }
      if (E.Ctrl.TheKind == cfg::ControlAction::Kind::Prob) {
        if (E.Ctrl.Prob == Rational(1)) {
          Out.push_back(E.Dsts[0]);
          return;
        }
        if (E.Ctrl.Prob.isZero()) {
          Out.push_back(E.Dsts[1]);
          return;
        }
      }
    }
    Out = E.Dsts;
  }

  /// Forward reachability from \p Entry. When \p PruneConstantGuards is
  /// set, constant guards only reach their live branch and call edges only
  /// continue past callees in \p MayReturn.
  std::vector<bool> reachableFrom(const cfg::ProgramGraph &Graph,
                                  unsigned Entry, bool PruneConstantGuards,
                                  const std::vector<bool> &MayReturn) const {
    std::vector<bool> Seen(Graph.numNodes(), false);
    std::vector<unsigned> Work{Entry};
    Seen[Entry] = true;
    std::vector<unsigned> Dsts;
    while (!Work.empty()) {
      unsigned Node = Work.back();
      Work.pop_back();
      const cfg::HyperEdge *E = Graph.outgoing(Node);
      if (!E)
        continue;
      if (PruneConstantGuards &&
          E->Ctrl.TheKind == cfg::ControlAction::Kind::Call &&
          !MayReturn[E->Ctrl.Callee])
        continue;
      if (PruneConstantGuards)
        takeableDsts(*E, Dsts);
      else
        Dsts = E->Dsts;
      for (unsigned Dst : Dsts)
        if (!Seen[Dst]) {
          Seen[Dst] = true;
          Work.push_back(Dst);
        }
    }
    return Seen;
  }

  void checkGraph() {
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
    std::vector<bool> AllReturn(Graph.numProcs(), true);

    // Structurally unreachable nodes (no path from the entry at all).
    // Statements after return/break/continue lower to such nodes; skip the
    // ones the AST pass already reported at the same position.
    for (unsigned P = 0; P != Graph.numProcs(); ++P) {
      std::vector<bool> Seen =
          reachableFrom(Graph, Graph.proc(P).Entry,
                        /*PruneConstantGuards=*/false, AllReturn);
      std::set<SourceLoc> Reported = ReportedUnreachable;
      for (unsigned V = 0; V != Graph.numNodes(); ++V) {
        if (Graph.procOf(V) != P || Seen[V])
          continue;
        SourceLoc Loc = Graph.nodeLoc(V);
        if (!Loc.isValid() || !Reported.insert(Loc).second)
          continue;
        warning(Loc, "unreachable-node",
                "no control-flow path from the entry of procedure '" +
                    Prog.Procs[P].Name + "' reaches this point");
      }
    }

    if (!divergenceChecksEnabled())
      return;

    // Procedures certainly diverging: the exit is unreachable once
    // constant guards prune dead branches. A call to a diverging procedure
    // never comes back, so recompute until the may-return set is stable
    // (monotone shrinking; at most numProcs rounds).
    std::vector<bool> MayReturn(Graph.numProcs(), true);
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (unsigned P = 0; P != Graph.numProcs(); ++P) {
        if (!MayReturn[P])
          continue;
        std::vector<bool> Seen =
            reachableFrom(Graph, Graph.proc(P).Entry,
                          /*PruneConstantGuards=*/true, MayReturn);
        if (!Seen[Graph.proc(P).Exit]) {
          MayReturn[P] = false;
          Changed = true;
        }
      }
    }
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      if (!MayReturn[P])
        warning(Prog.Procs[P].Loc, "unreachable-exit",
                "procedure '" + Prog.Procs[P].Name +
                    "' never reaches its exit: every execution diverges");
  }

  const Program &Prog;
  DiagnosticEngine &Diags;
  const LintOptions &Opts;
  /// Locations already reported as unreachable by the AST pass.
  std::set<SourceLoc> ReportedUnreachable;
  /// Unresolved references or misplaced jumps; the lowering would assert.
  bool HasStructuralError = false;
};

} // namespace

unsigned analysis::lintProgram(const Program &Prog, DiagnosticEngine &Diags,
                               const LintOptions &Opts) {
  return Linter(Prog, Diags, Opts).run();
}
