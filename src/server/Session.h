//===- server/Session.h - Resident analysis sessions ------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is one resident program under analysis: the parsed AST, the
/// lowered hyper-graph, the WTO/intra-plans, the precompiled transformer
/// cache, and the last fixpoint all stay in memory between requests, so
/// repeated `analyze` calls pay nothing for what has not changed.
///
/// The incremental contract (`edit`): PMAF interpretation is
/// compositional — per-edge transformers and per-procedure summaries are
/// independent algebra elements — so an edit to one procedure body only
/// invalidates (a) the transformer slots of that procedure's own edges
/// and (b) the dependence-closure of its nodes (its transitive callers:
/// every node whose equation can observe the change). Everything else is
/// *adopted*: transformers of unchanged procedures are seeded into the
/// rebuilt CompiledProgram (core::CompiledProgram::seedTransformer), and
/// the prior fixpoint warm-starts the next solve (core::WarmStart) with
/// only the dirty closure re-iterated from bottom. The result is
/// bit-identical to a from-scratch solve — ServerTest proves it per
/// procedure across domains and job counts — because clean nodes read
/// only clean nodes (the closure is dependence-closed) and dirty nodes
/// restart with cold widening histories against clean inputs already at
/// their (identical) fixpoints.
///
/// Edits that change the variable table, or add/remove/rename
/// procedures, fall back to a full rebuild: the mapping of node/edge ids
/// and domain values across graphs is only defined when the state space
/// and the procedure skeleton are unchanged.
///
/// Sessions are internally locked: one analyze/edit runs at a time per
/// session, while different sessions proceed concurrently (heavy matrix
/// kernels still batch through the process-wide shared pool).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SERVER_SESSION_H
#define PMAF_SERVER_SESSION_H

#include "checks/Checker.h"
#include "core/Solver.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace server {

/// What an incremental solve reused from the resident state — the
/// headline counters of every `analyze` reply.
struct IncrementalReuse {
  /// True when the solve warm-started from a prior fixpoint (false for
  /// the first solve after load and for forced-cold solves).
  bool Incremental = false;
  /// Transformer slots adopted from the pre-edit compiled program vs the
  /// program's total `seq`-edge count.
  uint64_t TransformersReused = 0;
  uint64_t TransformersTotal = 0;
  /// WTO components skipped outright (all member nodes clean) vs
  /// re-stabilized.
  uint64_t SccsSkipped = 0;
  uint64_t SccsResolved = 0;
  /// Nodes whose prior fixpoint value was kept verbatim.
  uint64_t NodesReused = 0;
  uint64_t NodesTotal = 0;
};

/// Solver knobs for one analyze. Unset fields keep the per-domain presets
/// (bi solves without widening, mdp with a long widening delay) exactly as
/// the CLI's CliSolverConfig overlay does.
struct AnalyzeRequest {
  std::optional<core::IterationStrategy> Strategy;
  std::optional<unsigned> WideningDelay;
  std::optional<uint64_t> MaxUpdates;
  std::optional<unsigned> Jobs;
  std::optional<bool> Affinity;
  /// Discard all resident artifacts first and solve from scratch — the
  /// reference point incremental replies are measured (and tested)
  /// against.
  bool Cold = false;
  /// Fail unproved/skipped assertions, mirroring the CLI's --werror.
  bool Werror = false;
};

struct AnalyzeReply {
  bool Ok = false;
  std::string ErrorCode; ///< Stable code when !Ok.
  std::string Error;
  std::string Domain;
  bool Converged = true;
  /// CLI-compatible outcome: 0 converged and checks pass, 1 failed
  /// checks, 3 budget exhausted.
  int Exit = 0;
  /// FNV-1a over every node's rendered fixpoint value plus the checks
  /// JSON: two solves agree on this iff they computed the same
  /// annotation and verdicts.
  std::string Fingerprint;
  checks::ChecksDb Checks;
  std::string ChecksJson;
  /// Structured check diagnostics (DiagnosticEngine::renderJson).
  std::string DiagnosticsJson;
  core::SolverStats Stats;
  IncrementalReuse Reuse;
  /// Wall-clock seconds of the solve itself.
  double SolveSeconds = 0.0;
};

struct EditReply {
  bool Ok = false;
  std::string ErrorCode;
  std::string Error;
  /// True when the edit could not be applied incrementally (variable
  /// table or procedure skeleton changed) and the session rebuilt from
  /// scratch.
  bool FullRebuild = false;
  std::vector<std::string> ChangedProcs;
  /// Size of the dependence closure that the next analyze re-solves.
  uint64_t DirtyNodes = 0;
  uint64_t TotalNodes = 0;
};

struct LoadReply {
  bool Ok = false;
  std::string ErrorCode;
  std::string Error;
  std::string Domain; ///< Resolved domain (after auto-detection).
  unsigned Procs = 0;
  unsigned Nodes = 0;
  std::string DiagnosticsJson; ///< Lint/parse diagnostics, JSON array.
};

/// One resident program plus everything derived from it. Thread-safe:
/// every public method takes the session lock.
class Session {
public:
  Session();
  ~Session();

  /// Parses, lints, and lowers \p Source, replacing any prior program.
  /// \p DomainName is "auto" (detect: real vars -> leia, rewards -> mdp,
  /// else bi), "bi", "mdp", or "leia"; \p Numeric selects the LEIA
  /// backend.
  LoadReply load(const std::string &Source, const std::string &DomainName,
                 core::NumericBackend Numeric);

  /// Solves the resident program (warm-started when a fixpoint is
  /// resident and the request is not Cold) and checks assertions.
  AnalyzeReply analyze(const AnalyzeRequest &Req);

  /// Replaces the program source, invalidating incrementally when the
  /// edit is confined to procedure bodies.
  EditReply edit(const std::string &NewSource);

  /// Session counters for the `stats` command.
  struct Counters {
    uint64_t Loads = 0;
    uint64_t Edits = 0;
    uint64_t FullRebuilds = 0;
    uint64_t Solves = 0;
    uint64_t IncrementalSolves = 0;
  };
  Counters counters() const;
  std::string domainName() const;

private:
  class EngineBase;
  template <typename Box> class Engine;

  mutable std::mutex Mu;
  std::unique_ptr<EngineBase> TheEngine;
  std::string Domain;
  core::NumericBackend Numeric = core::NumericBackend::Ladder;
  Counters TheCounters;
};

} // namespace server
} // namespace pmaf

#endif // PMAF_SERVER_SESSION_H
