//===- server/Daemon.cpp - The pmafd analysis daemon ----------------------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include "core/Schedule.h"
#include "server/Protocol.h"
#include "support/ThreadPool.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pmaf;
using namespace pmaf::server;

namespace {

Json errorReply(const char *Code, std::string Message) {
  Json R = Json::object();
  R.set("ok", Json::boolean(false));
  R.set("code", Json::string(Code));
  R.set("error", Json::string(std::move(Message)));
  return R;
}

std::string getString(const Json &Req, const char *Key,
                      const char *Default) {
  const Json *J = Req.get(Key);
  return J && J->isString() ? J->asString() : std::string(Default);
}

bool getBool(const Json &Req, const char *Key, bool Default) {
  const Json *J = Req.get(Key);
  return J ? J->asBool(Default) : Default;
}

/// Strictly reads an optional unsigned field; distinguishes "absent"
/// (Ok, no value) from "present but not an unsigned integer" (!Ok).
struct OptUnsigned {
  bool Ok = true;
  std::optional<uint64_t> Value;
};

OptUnsigned getUnsigned(const Json &Req, const char *Key) {
  OptUnsigned Out;
  const Json *J = Req.get(Key);
  if (!J)
    return Out;
  Out.Value = J->asUnsigned();
  Out.Ok = Out.Value.has_value();
  return Out;
}

Json reuseToJson(const IncrementalReuse &Reuse) {
  Json R = Json::object();
  R.set("incremental", Json::boolean(Reuse.Incremental));
  R.set("transformers_reused", Json::number(Reuse.TransformersReused));
  R.set("transformers_total", Json::number(Reuse.TransformersTotal));
  R.set("sccs_skipped", Json::number(Reuse.SccsSkipped));
  R.set("sccs_resolved", Json::number(Reuse.SccsResolved));
  R.set("nodes_reused", Json::number(Reuse.NodesReused));
  R.set("nodes_total", Json::number(Reuse.NodesTotal));
  return R;
}

Json statsToJson(const core::SolverStats &S) {
  Json R = Json::object();
  R.set("node_updates", Json::number(S.NodeUpdates));
  R.set("widenings", Json::number(S.WideningApplications));
  R.set("interpret_calls", Json::number(S.InterpretCalls));
  R.set("interpret_cache_hits", Json::number(S.InterpretCacheHits));
  R.set("precompiled_transformers", Json::number(S.PrecompiledTransformers));
  R.set("jobs_used", Json::number(uint64_t(S.JobsUsed)));
  R.set("max_parallel_sccs", Json::number(uint64_t(S.MaxParallelSccs)));
  R.set("pool_tasks_run", Json::number(S.PoolTasksRun));
  R.set("pool_steals", Json::number(S.PoolSteals));
  R.set("pool_affinity_hits", Json::number(S.PoolAffinityHits));
  R.set("thread_busy_seconds", Json::number(S.ThreadBusySeconds));
  Json Numeric = Json::object();
  Numeric.set("minimization_calls", Json::number(S.Numeric.MinimizationCalls));
  Numeric.set("conversion_cache_hits",
              Json::number(S.Numeric.ConversionCacheHits));
  Numeric.set("conversion_cache_misses",
              Json::number(S.Numeric.ConversionCacheMisses));
  Numeric.set("escalations", Json::number(S.Numeric.Escalations));
  R.set("numeric", Numeric);
  return R;
}

} // namespace

Daemon::Daemon(DaemonOptions InitOpts) : Opts(InitOpts) {}

Daemon::~Daemon() {
  requestStop();
  wait();
}

bool Daemon::start(std::string &Error) {
  // A client that disconnects mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Opts.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    Error = std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof Addr;
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0) {
    Error = std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Daemon::acceptLoop() {
  for (;;) {
    int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed (shutdown) or fatal: stop accepting.
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Client);
      return;
    }
    std::lock_guard<std::mutex> Lock(ConnMu);
    ActiveFds.push_back(Client);
    Connections.emplace_back([this, Client] { serveConnection(Client); });
  }
}

void Daemon::serveConnection(int ClientFd) {
  std::string Payload;
  for (;;) {
    std::string Error;
    if (!readFrame(ClientFd, Payload, Error))
      break; // Clean EOF or framing error either way ends the connection.
    bool Shutdown = false;
    const std::string Reply = handle(Payload, Shutdown);
    const bool Wrote = writeFrame(ClientFd, Reply);
    if (Shutdown) {
      requestStop();
      break;
    }
    if (!Wrote)
      break;
  }
  ::close(ClientFd);
  std::lock_guard<std::mutex> Lock(ConnMu);
  for (size_t I = 0; I != ActiveFds.size(); ++I)
    if (ActiveFds[I] == ClientFd) {
      ActiveFds.erase(ActiveFds.begin() + I);
      break;
    }
}

void Daemon::requestStop() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true))
    return;
  // Closing the listener unblocks accept(); shutting active sockets down
  // unblocks any connection thread parked in readFrame.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : ActiveFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  StopCv.notify_all();
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> Lock(StopMu);
    StopCv.wait(Lock, [this] {
      return Stopping.load(std::memory_order_relaxed);
    });
  }
  if (Acceptor.joinable())
    Acceptor.join();
  for (;;) {
    std::thread Conn;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      if (Connections.empty())
        break;
      Conn = std::move(Connections.back());
      Connections.pop_back();
    }
    if (Conn.joinable())
      Conn.join();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

std::shared_ptr<Session> Daemon::sessionFor(const std::string &Name,
                                            bool Create) {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  auto It = Sessions.find(Name);
  if (It != Sessions.end())
    return It->second;
  if (!Create)
    return nullptr;
  auto S = std::make_shared<Session>();
  Sessions.emplace(Name, S);
  return S;
}

std::string Daemon::handle(const std::string &Payload, bool &Shutdown) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  std::string ParseError;
  std::optional<Json> Req = Json::parse(Payload, &ParseError);
  if (!Req || !Req->isObject())
    return errorReply("protocol-error",
                      "request is not a JSON object: " + ParseError)
        .dump();
  const Json *Cmd = Req->get("cmd");
  if (!Cmd || !Cmd->isString())
    return errorReply("protocol-error", "request has no string \"cmd\" field")
        .dump();
  const std::string &Name = Cmd->asString();
  const std::string SessionName = getString(*Req, "session", "default");

  if (Name == "shutdown") {
    Shutdown = true;
    Json R = Json::object();
    R.set("ok", Json::boolean(true));
    R.set("stopping", Json::boolean(true));
    return R.dump();
  }

  if (Name == "configure") {
    OptUnsigned Jobs = getUnsigned(*Req, "jobs");
    if (!Jobs.Ok || !Jobs.Value || *Jobs.Value > 65536)
      return errorReply("invalid-flag-value",
                        "configure requires \"jobs\", an unsigned integer")
          .dump();
    std::string Why;
    if (!support::setSharedParallelism(static_cast<unsigned>(*Jobs.Value),
                                       &Why))
      return errorReply("pool-busy", Why).dump();
    Json R = Json::object();
    R.set("ok", Json::boolean(true));
    R.set("jobs", Json::number(uint64_t(support::sharedParallelism())));
    return R.dump();
  }

  if (Name == "load") {
    const Json *Source = Req->get("source");
    if (!Source || !Source->isString())
      return errorReply("protocol-error",
                        "load requires a string \"source\" field")
          .dump();
    const std::string DomainName = getString(*Req, "domain", "auto");
    const std::string NumericName = getString(*Req, "numeric", "ladder");
    std::optional<core::NumericBackend> Backend =
        core::parseNumericBackend(NumericName);
    if (!Backend)
      return errorReply("invalid-flag-value",
                        "unknown numeric backend '" + NumericName + "'")
          .dump();
    std::shared_ptr<Session> S = sessionFor(SessionName, /*Create=*/true);
    LoadReply LR = S->load(Source->asString(), DomainName, *Backend);
    Json R = Json::object();
    R.set("ok", Json::boolean(LR.Ok));
    if (!LR.Ok) {
      R.set("code", Json::string(LR.ErrorCode));
      R.set("error", Json::string(LR.Error));
    } else {
      R.set("session", Json::string(SessionName));
      R.set("domain", Json::string(LR.Domain));
      R.set("procs", Json::number(uint64_t(LR.Procs)));
      R.set("nodes", Json::number(uint64_t(LR.Nodes)));
    }
    if (!LR.DiagnosticsJson.empty())
      R.set("diagnostics", Json::raw(LR.DiagnosticsJson));
    return R.dump();
  }

  if (Name == "analyze" || Name == "edit" || Name == "stats") {
    std::shared_ptr<Session> S = sessionFor(SessionName, /*Create=*/false);
    if (!S)
      return errorReply("unknown-session",
                        "no session named '" + SessionName +
                            "' (load a program first)")
          .dump();

    if (Name == "edit") {
      const Json *Source = Req->get("source");
      if (!Source || !Source->isString())
        return errorReply("protocol-error",
                          "edit requires a string \"source\" field")
            .dump();
      EditReply ER = S->edit(Source->asString());
      Json R = Json::object();
      R.set("ok", Json::boolean(ER.Ok));
      if (!ER.Ok) {
        R.set("code", Json::string(ER.ErrorCode));
        R.set("error", Json::string(ER.Error));
        return R.dump();
      }
      R.set("full_rebuild", Json::boolean(ER.FullRebuild));
      Json Procs = Json::array();
      for (const std::string &P : ER.ChangedProcs)
        Procs.push(Json::string(P));
      R.set("changed_procs", Procs);
      R.set("dirty_nodes", Json::number(ER.DirtyNodes));
      R.set("total_nodes", Json::number(ER.TotalNodes));
      return R.dump();
    }

    if (Name == "stats") {
      Session::Counters C = S->counters();
      Json R = Json::object();
      R.set("ok", Json::boolean(true));
      R.set("session", Json::string(SessionName));
      R.set("domain", Json::string(S->domainName()));
      R.set("loads", Json::number(C.Loads));
      R.set("edits", Json::number(C.Edits));
      R.set("full_rebuilds", Json::number(C.FullRebuilds));
      R.set("solves", Json::number(C.Solves));
      R.set("incremental_solves", Json::number(C.IncrementalSolves));
      {
        std::lock_guard<std::mutex> Lock(SessionsMu);
        R.set("sessions", Json::number(uint64_t(Sessions.size())));
      }
      R.set("requests",
            Json::number(Requests.load(std::memory_order_relaxed)));
      Json Pool = Json::object();
      Pool.set("parallelism",
               Json::number(uint64_t(support::sharedParallelism())));
      if (const support::ThreadPool *P = support::sharedPool()) {
        Pool.set("tasks_run", Json::number(P->totalTasksRun()));
        Pool.set("steals", Json::number(P->totalSteals()));
        Pool.set("affinity_hits", Json::number(P->totalAffinityHits()));
      }
      R.set("pool", Pool);
      return R.dump();
    }

    // analyze
    AnalyzeRequest AReq;
    AReq.Affinity = Opts.Affinity;
    AReq.Cold = getBool(*Req, "cold", false);
    AReq.Werror = getBool(*Req, "werror", false);
    if (const Json *J = Req->get("affinity"))
      AReq.Affinity = J->asBool(Opts.Affinity);
    if (const Json *J = Req->get("strategy")) {
      std::optional<core::IterationStrategy> Strategy =
          J->isString() ? core::parseIterationStrategy(J->asString())
                        : std::nullopt;
      if (!Strategy)
        return errorReply("invalid-flag-value",
                          "unknown iteration strategy" +
                              (J->isString() ? " '" + J->asString() + "'"
                                             : std::string(" (not a string)")))
            .dump();
      AReq.Strategy = Strategy;
    }
    OptUnsigned Jobs = getUnsigned(*Req, "jobs");
    OptUnsigned Delay = getUnsigned(*Req, "widening_delay");
    OptUnsigned MaxUpdates = getUnsigned(*Req, "max_updates");
    if (!Jobs.Ok || (Jobs.Value && *Jobs.Value > 65536))
      return errorReply("invalid-flag-value",
                        "\"jobs\" must be an unsigned integer")
          .dump();
    if (!Delay.Ok || (Delay.Value && *Delay.Value > 0xffffffffull))
      return errorReply("invalid-flag-value",
                        "\"widening_delay\" must be an unsigned integer")
          .dump();
    if (!MaxUpdates.Ok)
      return errorReply("invalid-flag-value",
                        "\"max_updates\" must be an unsigned integer")
          .dump();
    if (Jobs.Value)
      AReq.Jobs = static_cast<unsigned>(*Jobs.Value);
    if (Delay.Value)
      AReq.WideningDelay = static_cast<unsigned>(*Delay.Value);
    if (MaxUpdates.Value)
      AReq.MaxUpdates = *MaxUpdates.Value;

    AnalyzeReply AR = S->analyze(AReq);
    Json R = Json::object();
    R.set("ok", Json::boolean(AR.Ok));
    if (!AR.Ok) {
      R.set("code", Json::string(AR.ErrorCode));
      R.set("error", Json::string(AR.Error));
      return R.dump();
    }
    R.set("session", Json::string(SessionName));
    R.set("domain", Json::string(AR.Domain));
    R.set("exit", Json::number(uint64_t(AR.Exit)));
    R.set("converged", Json::boolean(AR.Converged));
    R.set("fingerprint", Json::string(AR.Fingerprint));
    R.set("solve_seconds", Json::number(AR.SolveSeconds));
    R.set("reuse", reuseToJson(AR.Reuse));
    R.set("stats", statsToJson(AR.Stats));
    if (!AR.ChecksJson.empty())
      R.set("checks", Json::raw(AR.ChecksJson));
    if (!AR.DiagnosticsJson.empty())
      R.set("diagnostics", Json::raw(AR.DiagnosticsJson));
    return R.dump();
  }

  return errorReply("unknown-command", "unknown command '" + Name + "'")
      .dump();
}

int pmaf::server::runDaemon(const DaemonOptions &Opts) {
  if (Opts.Jobs != 1) {
    std::string Why;
    if (!support::setSharedParallelism(Opts.Jobs, &Why))
      std::fprintf(stderr,
                   "warning: --jobs=%u not applied to the shared pool: %s "
                   "[pool-busy]\n",
                   Opts.Jobs, Why.c_str());
  }
  Daemon D(Opts);
  std::string Error;
  if (!D.start(Error)) {
    std::fprintf(stderr, "error: pmafd cannot listen on 127.0.0.1:%u: %s "
                         "[bind-error]\n",
                 Opts.Port, Error.c_str());
    return 1;
  }
  std::printf("pmafd: listening on 127.0.0.1:%u\n", unsigned(D.port()));
  std::fflush(stdout);
  D.wait();
  std::printf("pmafd: shutdown\n");
  return 0;
}
