//===- server/Session.cpp - Resident analysis sessions --------------------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include "analysis/Lint.h"
#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/CompiledProgram.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <cstdio>
#include <utility>

using namespace pmaf;
using namespace pmaf::server;

namespace {

/// Domain auto-detection, mirroring the CLI: real variables -> leia,
/// reward statements -> mdp, else bi.
bool stmtHasReward(const lang::Stmt &S) {
  if (S.kind() == lang::Stmt::Kind::Reward)
    return true;
  switch (S.kind()) {
  case lang::Stmt::Kind::Block:
    for (const lang::Stmt::Ptr &Child : S.stmts())
      if (stmtHasReward(*Child))
        return true;
    return false;
  case lang::Stmt::Kind::If:
    return stmtHasReward(S.thenStmt()) ||
           (S.elseStmt() && stmtHasReward(*S.elseStmt()));
  case lang::Stmt::Kind::While:
    return stmtHasReward(S.body());
  default:
    return false;
  }
}

std::string detectDomainName(const lang::Program &Prog) {
  for (const lang::VarInfo &V : Prog.Vars)
    if (V.IsReal)
      return "leia";
  for (const lang::Procedure &P : Prog.Procs)
    if (P.Body && stmtHasReward(*P.Body))
      return "mdp";
  return "bi";
}

analysis::TargetDomain targetFromName(const std::string &Name) {
  if (Name == "leia")
    return analysis::TargetDomain::Leia;
  if (Name == "bi")
    return analysis::TargetDomain::Bi;
  if (Name == "mdp")
    return analysis::TargetDomain::Mdp;
  return analysis::TargetDomain::None;
}

/// Per-node contiguous ranges [begin, end) of each procedure's nodes.
/// The lowering allocates every procedure's nodes in one contiguous,
/// deterministic run, so unchanged procedures map across graphs by a
/// constant offset; returns nullopt if a graph ever violates that layout
/// (the caller then falls back to a full rebuild rather than guessing).
std::optional<std::vector<std::pair<unsigned, unsigned>>>
procNodeRanges(const cfg::ProgramGraph &G) {
  std::vector<std::pair<unsigned, unsigned>> Ranges(G.numProcs(), {0, 0});
  std::vector<char> Seen(G.numProcs(), 0);
  const unsigned N = G.numNodes();
  unsigned V = 0;
  while (V != N) {
    const unsigned P = G.procOf(V);
    if (P >= G.numProcs() || Seen[P])
      return std::nullopt;
    Seen[P] = 1;
    const unsigned Begin = V;
    while (V != N && G.procOf(V) == P)
      ++V;
    Ranges[P] = {Begin, V};
  }
  for (unsigned P = 0; P != G.numProcs(); ++P)
    if (!Seen[P])
      return std::nullopt;
  return Ranges;
}

uint64_t countSeqEdges(const cfg::ProgramGraph &G) {
  uint64_t N = 0;
  for (const cfg::HyperEdge &E : G.edges())
    if (E.Ctrl.TheKind == cfg::ControlAction::Kind::Seq)
      ++N;
  return N;
}

std::string fnvFingerprint(uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx", (unsigned long long)H);
  return Buf;
}

/// Domain "boxes": one per analyzable domain, bundling construction, the
/// CLI-matching solver preset, and the assertion checker. Engine<Box> is
/// instantiated over these.
struct BiBox {
  using DomainT = domains::BiDomain;
  explicit BiBox(const lang::Program &P) : Space(P), Dom(Space) {}
  DomainT &domain() { return Dom; }
  static void preset(core::SolverOptions &O) { O.UseWidening = false; }
  checks::ChecksDb check(const cfg::ProgramGraph &G,
                         const std::vector<typename DomainT::Value> &V,
                         const checks::CheckerOptions &O) const {
    return checks::checkBiSummaries(
        Space, G, [&](unsigned N) { return V[N]; }, O);
  }
  domains::BoolStateSpace Space;
  domains::BiDomain Dom;
};

struct MdpBox {
  using DomainT = domains::MdpDomain;
  explicit MdpBox(const lang::Program &) {}
  DomainT &domain() { return Dom; }
  static void preset(core::SolverOptions &O) { O.WideningDelay = 10000; }
  checks::ChecksDb check(const cfg::ProgramGraph &G,
                         const std::vector<double> &V,
                         const checks::CheckerOptions &O) const {
    return checks::checkMdp(G, V, O);
  }
  domains::MdpDomain Dom;
};

template <typename NumV> struct LeiaBox {
  using DomainT = domains::LeiaDomainT<NumV>;
  explicit LeiaBox(const lang::Program &P) : Dom(P) {}
  DomainT &domain() { return Dom; }
  static void preset(core::SolverOptions &) {}
  checks::ChecksDb check(const cfg::ProgramGraph &G,
                         const std::vector<typename DomainT::Value> &V,
                         const checks::CheckerOptions &O) const {
    return checks::checkLeia(Dom, G, V, O);
  }
  DomainT Dom;
};

} // namespace

//===----------------------------------------------------------------------===//
// Engine: the domain-typed resident state
//===----------------------------------------------------------------------===//

class Session::EngineBase {
public:
  virtual ~EngineBase() = default;
  virtual AnalyzeReply analyze(const AnalyzeRequest &Req,
                               const std::string &DomainName) = 0;
  /// Applies a body-only edit (ChangedProcs indexes into the new
  /// program's procedures); falls back to reload() when node mapping is
  /// not possible, reporting Reply.FullRebuild.
  virtual void applyEdit(std::unique_ptr<lang::Program> NewProg,
                         const std::string &NewSource,
                         const std::vector<unsigned> &ChangedProcs,
                         EditReply &Reply) = 0;
  virtual void reload(std::unique_ptr<lang::Program> NewProg,
                      std::string NewSource) = 0;
  virtual const lang::Program &program() const = 0;
  virtual unsigned numNodes() const = 0;
};

template <typename Box> class Session::Engine : public Session::EngineBase {
  using D = typename Box::DomainT;
  using Value = typename D::Value;

public:
  Engine(std::unique_ptr<lang::Program> P, std::string Source) {
    reload(std::move(P), std::move(Source));
  }

  void reload(std::unique_ptr<lang::Program> NewProg,
              std::string NewSource) override {
    // The compiled program references the box's domain, which (for BI)
    // references the state space, which references the graph's program:
    // tear down strictly inside-out before rebuilding.
    Compiled.reset();
    TheBox.reset();
    Graph.reset();
    Prog = std::move(NewProg);
    SourceText = std::move(NewSource);
    Graph = std::make_unique<cfg::ProgramGraph>(cfg::ProgramGraph::build(*Prog));
    TheBox = std::make_unique<Box>(*Prog);
    Compiled = std::make_unique<core::CompiledProgram<D>>(*Graph, TheBox->domain());
    LastValues.clear();
    HaveFixpoint = false;
    WarmReady = false;
    Dirty.assign(Graph->numNodes(), 1);
  }

  const lang::Program &program() const override { return *Prog; }
  unsigned numNodes() const override { return Graph->numNodes(); }

  void applyEdit(std::unique_ptr<lang::Program> NewProg,
                 const std::string &NewSource,
                 const std::vector<unsigned> &ChangedProcs,
                 EditReply &Reply) override {
    auto NewGraph =
        std::make_unique<cfg::ProgramGraph>(cfg::ProgramGraph::build(*NewProg));
    const auto OldRanges = procNodeRanges(*Graph);
    const auto NewRanges = procNodeRanges(*NewGraph);
    const unsigned NumProcs = NewGraph->numProcs();
    std::vector<char> Changed(NumProcs, 0);
    for (unsigned P : ChangedProcs)
      if (P < NumProcs)
        Changed[P] = 1;
    bool Mappable =
        OldRanges && NewRanges && Graph->numProcs() == NumProcs;
    if (Mappable)
      for (unsigned P = 0; P != NumProcs; ++P)
        if (!Changed[P] &&
            (*OldRanges)[P].second - (*OldRanges)[P].first !=
                (*NewRanges)[P].second - (*NewRanges)[P].first) {
          Mappable = false;
          break;
        }
    if (!Mappable) {
      reload(std::move(NewProg), NewSource);
      Reply.FullRebuild = true;
      Reply.DirtyNodes = Graph->numNodes();
      Reply.TotalNodes = Graph->numNodes();
      return;
    }

    auto NewBox = std::make_unique<Box>(*NewProg);
    auto NewCompiled =
        std::make_unique<core::CompiledProgram<D>>(*NewGraph, NewBox->domain());

    // Adopt what the edit cannot have touched: per-edge transformers and
    // (when a converged fixpoint is resident) per-node values of every
    // unchanged procedure, remapped by the per-procedure node offset.
    const bool CarryValues =
        HaveFixpoint && LastValues.size() == Graph->numNodes();
    std::vector<Value> NewValues;
    if (CarryValues)
      NewValues.assign(NewGraph->numNodes(), NewBox->domain().bottom());
    std::vector<unsigned> DirtySeeds;
    for (unsigned P = 0; P != NumProcs; ++P) {
      const auto [NewBegin, NewEnd] = (*NewRanges)[P];
      if (Changed[P]) {
        for (unsigned V = NewBegin; V != NewEnd; ++V)
          DirtySeeds.push_back(V);
        continue;
      }
      const unsigned OldBegin = (*OldRanges)[P].first;
      for (unsigned I = 0; I != NewEnd - NewBegin; ++I) {
        const unsigned OldV = OldBegin + I;
        const unsigned NewV = NewBegin + I;
        if (CarryValues)
          NewValues[NewV] = LastValues[OldV];
        const int OldE = Graph->outgoingIndex(OldV);
        const int NewE = NewGraph->outgoingIndex(NewV);
        if (OldE < 0 || NewE < 0)
          continue;
        if (Graph->edges()[OldE].Ctrl.TheKind !=
                cfg::ControlAction::Kind::Seq ||
            NewGraph->edges()[NewE].Ctrl.TheKind !=
                cfg::ControlAction::Kind::Seq)
          continue;
        if (const Value *T =
                Compiled->peekTransformer(static_cast<unsigned>(OldE)))
          NewCompiled->seedTransformer(static_cast<unsigned>(NewE), *T);
      }
    }
    // Everything that can observe the changed bodies — their own nodes
    // plus all transitive dependents (callers) — re-solves from bottom;
    // the rest of the fixpoint is provably unchanged.
    Dirty = cfg::reachableFrom(NewCompiled->dependents(), DirtySeeds);
    WarmReady = CarryValues;
    if (CarryValues) {
      LastValues = std::move(NewValues);
    } else {
      LastValues.clear();
      HaveFixpoint = false;
    }
    Compiled = std::move(NewCompiled);
    TheBox = std::move(NewBox);
    Graph = std::move(NewGraph);
    Prog = std::move(NewProg);
    SourceText = NewSource;

    uint64_t DirtyCount = 0;
    for (char C : Dirty)
      DirtyCount += C != 0;
    Reply.DirtyNodes = DirtyCount;
    Reply.TotalNodes = Graph->numNodes();
  }

  AnalyzeReply analyze(const AnalyzeRequest &Req,
                       const std::string &DomainName) override {
    AnalyzeReply Reply;
    Reply.Domain = DomainName;
    if (Req.Cold) {
      // Forget every resident artifact (fixpoint, transformer cache) but
      // keep the program: the next solve is a true from-scratch baseline.
      auto KeepProg = std::move(Prog);
      auto KeepSource = std::move(SourceText);
      reload(std::move(KeepProg), std::move(KeepSource));
    }
    core::SolverOptions Opts;
    Box::preset(Opts);
    if (Req.Strategy)
      Opts.Strategy = *Req.Strategy;
    if (Req.WideningDelay)
      Opts.WideningDelay = *Req.WideningDelay;
    if (Req.MaxUpdates)
      Opts.MaxUpdates = *Req.MaxUpdates;
    if (Req.Jobs)
      Opts.Jobs = *Req.Jobs;
    if (Req.Affinity)
      Opts.Affinity = *Req.Affinity;

    const unsigned NumNodes = Graph->numNodes();
    core::WarmStart<Value> Warm;
    const bool UseWarm = WarmReady && !Req.Cold && HaveFixpoint &&
                         LastValues.size() == NumNodes &&
                         Dirty.size() == NumNodes;
    if (UseWarm) {
      Warm.Values = LastValues;
      Warm.Dirty = Dirty;
    }
    const auto Start = std::chrono::steady_clock::now();
    auto Result =
        core::solve(*Compiled, Opts, nullptr, UseWarm ? &Warm : nullptr);
    Reply.SolveSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();

    Reply.Stats = Result.Stats;
    Reply.Converged = Result.Stats.Converged;
    Reply.Reuse.Incremental = UseWarm;
    Reply.Reuse.TransformersReused = Compiled->seededTransformers();
    Reply.Reuse.TransformersTotal = countSeqEdges(*Graph);
    Reply.Reuse.SccsSkipped = Result.Stats.SccsSkipped;
    Reply.Reuse.SccsResolved = Result.Stats.SccsResolved;
    Reply.Reuse.NodesReused = Result.Stats.NodesReused;
    Reply.Reuse.NodesTotal = NumNodes;

    checks::CheckerOptions COpts;
    COpts.Converged = Result.Stats.Converged;
    Reply.Checks = TheBox->check(*Graph, Result.Values, COpts);
    Reply.ChecksJson = Reply.Checks.toJson();

    DiagnosticEngine Diags;
    Diags.setSource("<session>", SourceText);
    Diags.setWarningsAsErrors(Req.Werror);
    checks::reportChecks(Reply.Checks, Diags);
    Diags.sortByLocation();
    Reply.DiagnosticsJson = Diags.renderJson();
    if (Diags.hasErrors())
      Reply.Exit = 1;
    else if (!Result.Stats.Converged)
      Reply.Exit = 3;
    else
      Reply.Exit = 0;

    // FNV-1a over every node's rendered value plus the verdicts: two
    // solves agree on the fingerprint iff they computed the same
    // annotation — the daemon's bit-identity witness.
    uint64_t H = 1469598103934665603ull;
    const auto Mix = [&H](std::string_view S) {
      for (unsigned char C : S) {
        H ^= C;
        H *= 1099511628211ull;
      }
    };
    for (unsigned V = 0; V != NumNodes; ++V) {
      Mix(TheBox->domain().toString(Result.Values[V]));
      Mix("\n");
    }
    Mix(Reply.ChecksJson);
    Reply.Fingerprint = fnvFingerprint(H);

    // Retain the fixpoint: re-analyzing without an edit warm-starts with
    // nothing dirty, and the next edit remaps it across graphs. A
    // budget-exhausted partial result is never reused.
    LastValues = std::move(Result.Values);
    HaveFixpoint = Result.Stats.Converged;
    Dirty.assign(NumNodes, 0);
    WarmReady = HaveFixpoint;
    Reply.Ok = true;
    return Reply;
  }

private:
  std::unique_ptr<lang::Program> Prog;
  std::string SourceText;
  std::unique_ptr<cfg::ProgramGraph> Graph;
  std::unique_ptr<Box> TheBox;
  std::unique_ptr<core::CompiledProgram<D>> Compiled;
  /// Last computed per-node values, indexed by the *current* graph.
  std::vector<Value> LastValues;
  /// LastValues is a converged fixpoint (warm-start eligible).
  bool HaveFixpoint = false;
  /// Dirty mask for the next solve; valid when WarmReady.
  std::vector<char> Dirty;
  bool WarmReady = false;
};

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session() = default;
Session::~Session() = default;

LoadReply Session::load(const std::string &Source,
                        const std::string &DomainName,
                        core::NumericBackend Backend) {
  std::lock_guard<std::mutex> Lock(Mu);
  LoadReply R;
  DiagnosticEngine Diags;
  Diags.setSource("<session>", Source);
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  if (!Parsed) {
    Diags.sortByLocation();
    R.ErrorCode = "parse-error";
    R.Error = "the program does not parse";
    R.DiagnosticsJson = Diags.renderJson();
    return R;
  }
  std::unique_ptr<lang::Program> Prog = std::move(Parsed.Prog);
  const std::string Resolved = (DomainName.empty() || DomainName == "auto")
                                   ? detectDomainName(*Prog)
                                   : DomainName;
  if (Resolved != "bi" && Resolved != "mdp" && Resolved != "leia") {
    R.ErrorCode = "unknown-domain";
    R.Error = "unsupported domain '" + Resolved +
              "' (expected auto, bi, mdp, or leia)";
    return R;
  }
  analysis::LintOptions LOpts;
  LOpts.Domain = targetFromName(Resolved);
  analysis::lintProgram(*Prog, Diags, LOpts);
  Diags.sortByLocation();
  R.DiagnosticsJson = Diags.renderJson();
  if (Diags.hasErrors()) {
    R.ErrorCode = "lint-error";
    R.Error = "the program does not lint";
    return R;
  }

  std::unique_ptr<EngineBase> NewEngine;
  if (Resolved == "bi") {
    NewEngine = std::make_unique<Engine<BiBox>>(std::move(Prog), Source);
  } else if (Resolved == "mdp") {
    NewEngine = std::make_unique<Engine<MdpBox>>(std::move(Prog), Source);
  } else {
    switch (Backend) {
    case core::NumericBackend::Poly:
      NewEngine = std::make_unique<Engine<LeiaBox<poly::Polyhedron>>>(
          std::move(Prog), Source);
      break;
    case core::NumericBackend::Ladder:
      NewEngine = std::make_unique<Engine<LeiaBox<poly::LadderValue>>>(
          std::move(Prog), Source);
      break;
    case core::NumericBackend::Zones:
      NewEngine = std::make_unique<Engine<LeiaBox<poly::Zones>>>(
          std::move(Prog), Source);
      break;
    case core::NumericBackend::Intervals:
      NewEngine = std::make_unique<Engine<LeiaBox<poly::Intervals>>>(
          std::move(Prog), Source);
      break;
    }
  }
  TheEngine = std::move(NewEngine);
  Domain = Resolved;
  Numeric = Backend;
  ++TheCounters.Loads;
  R.Ok = true;
  R.Domain = Resolved;
  R.Procs = static_cast<unsigned>(TheEngine->program().Procs.size());
  R.Nodes = TheEngine->numNodes();
  return R;
}

AnalyzeReply Session::analyze(const AnalyzeRequest &Req) {
  std::lock_guard<std::mutex> Lock(Mu);
  AnalyzeReply R;
  if (!TheEngine) {
    R.ErrorCode = "no-program";
    R.Error = "no program loaded in this session";
    return R;
  }
  R = TheEngine->analyze(Req, Domain);
  ++TheCounters.Solves;
  if (R.Reuse.Incremental)
    ++TheCounters.IncrementalSolves;
  return R;
}

EditReply Session::edit(const std::string &NewSource) {
  std::lock_guard<std::mutex> Lock(Mu);
  EditReply R;
  if (!TheEngine) {
    R.ErrorCode = "no-program";
    R.Error = "no program loaded in this session";
    return R;
  }
  DiagnosticEngine Diags;
  Diags.setSource("<edit>", NewSource);
  lang::ParseResult Parsed = lang::parseProgram(NewSource, Diags);
  if (!Parsed) {
    R.ErrorCode = "parse-error";
    R.Error = "the edited program does not parse; "
              "the previous program stays resident";
    return R;
  }
  std::unique_ptr<lang::Program> NewProg = std::move(Parsed.Prog);
  analysis::LintOptions LOpts;
  LOpts.Domain = targetFromName(Domain);
  analysis::lintProgram(*NewProg, Diags, LOpts);
  if (Diags.hasErrors()) {
    R.ErrorCode = "lint-error";
    R.Error = "the edited program does not lint; "
              "the previous program stays resident";
    return R;
  }
  ++TheCounters.Edits;

  // Body-only edits invalidate incrementally; a changed variable table or
  // procedure skeleton voids the node/value mapping and rebuilds.
  const lang::Program &Old = TheEngine->program();
  bool SameShape = Old.Vars.size() == NewProg->Vars.size() &&
                   Old.Procs.size() == NewProg->Procs.size();
  for (size_t I = 0; SameShape && I != Old.Vars.size(); ++I)
    SameShape = Old.Vars[I].Name == NewProg->Vars[I].Name &&
                Old.Vars[I].IsReal == NewProg->Vars[I].IsReal;
  for (size_t P = 0; SameShape && P != Old.Procs.size(); ++P)
    SameShape = Old.Procs[P].Name == NewProg->Procs[P].Name &&
                Old.Procs[P].Body != nullptr &&
                NewProg->Procs[P].Body != nullptr;
  if (!SameShape) {
    for (const lang::Procedure &P : NewProg->Procs)
      R.ChangedProcs.push_back(P.Name);
    TheEngine->reload(std::move(NewProg), NewSource);
    R.FullRebuild = true;
    ++TheCounters.FullRebuilds;
    R.DirtyNodes = TheEngine->numNodes();
    R.TotalNodes = TheEngine->numNodes();
    R.Ok = true;
    return R;
  }

  std::vector<unsigned> ChangedProcs;
  for (unsigned P = 0; P != Old.Procs.size(); ++P)
    if (lang::toString(*Old.Procs[P].Body, Old, 1) !=
        lang::toString(*NewProg->Procs[P].Body, *NewProg, 1))
      ChangedProcs.push_back(P);
  if (ChangedProcs.empty()) {
    // Textually identical bodies: nothing to invalidate, keep every
    // resident artifact (including the fixpoint) untouched.
    R.DirtyNodes = 0;
    R.TotalNodes = TheEngine->numNodes();
    R.Ok = true;
    return R;
  }
  for (unsigned P : ChangedProcs)
    R.ChangedProcs.push_back(Old.Procs[P].Name);
  TheEngine->applyEdit(std::move(NewProg), NewSource, ChangedProcs, R);
  if (R.FullRebuild)
    ++TheCounters.FullRebuilds;
  R.Ok = true;
  return R;
}

Session::Counters Session::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TheCounters;
}

std::string Session::domainName() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Domain;
}
