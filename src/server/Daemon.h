//===- server/Daemon.h - The pmafd analysis daemon --------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pmafd daemon: a loopback TCP listener speaking the length-prefixed
/// JSON protocol of server/Protocol.h, one thread per connection, with a
/// shared registry of named resident Sessions. Connections are
/// independent — two clients analyzing two sessions solve concurrently,
/// their heavy matrix kernels batching through the one process-wide
/// work-stealing pool — while requests against the *same* session
/// serialize on the session lock.
///
/// Solves run on the connection threads, never as shared-pool tasks:
/// a solve *uses* the pool (parallelFor from inside a pool task would
/// deadlock the workers on themselves).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SERVER_DAEMON_H
#define PMAF_SERVER_DAEMON_H

#include "server/Session.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pmaf {
namespace server {

struct DaemonOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// Daemon::port(), printed by runDaemon).
  uint16_t Port = 0;
  /// Shared-pool width to establish at startup (the CLI's --jobs);
  /// 1 keeps solves sequential unless a request asks for more, 0 means
  /// one worker per hardware thread.
  unsigned Jobs = 1;
  /// Default component->worker affinity for solves (requests may
  /// override per analyze).
  bool Affinity = true;
};

/// The daemon: bind/listen/accept plus the request dispatcher. Embeddable
/// (ServerTest and the SERVED benchmarks run it in-process on an
/// ephemeral port) as well as the heart of `pmafd` / `pmaf serve`.
class Daemon {
public:
  explicit Daemon(DaemonOptions Opts = {});
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds 127.0.0.1 and starts the acceptor thread. False + \p Error on
  /// failure (port in use, out of fds, ...).
  bool start(std::string &Error);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Initiates shutdown: stops accepting, unblocks every connection.
  /// Returns immediately; pair with wait().
  void requestStop();

  /// Blocks until a `shutdown` request (or requestStop()) arrives, then
  /// joins the acceptor and all connection threads.
  void wait();

private:
  void acceptLoop();
  void serveConnection(int ClientFd);
  /// Dispatches one request payload to a reply payload; sets
  /// \p Shutdown when the request was a `shutdown`.
  std::string handle(const std::string &Payload, bool &Shutdown);

  std::shared_ptr<Session> sessionFor(const std::string &Name, bool Create);

  DaemonOptions Opts;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Acceptor;

  std::mutex ConnMu;
  std::vector<std::thread> Connections;
  std::vector<int> ActiveFds;

  std::mutex StopMu;
  std::condition_variable StopCv;
  std::atomic<bool> Stopping{false};

  mutable std::mutex SessionsMu;
  std::map<std::string, std::shared_ptr<Session>> Sessions;
  std::atomic<uint64_t> Requests{0};
};

/// `pmafd` / `pmaf serve`: run a daemon in the foreground. Prints
/// "pmafd: listening on 127.0.0.1:PORT" once ready; returns 0 after a
/// clean `shutdown` request, 1 when the listener cannot start.
int runDaemon(const DaemonOptions &Opts);

} // namespace server
} // namespace pmaf

#endif // PMAF_SERVER_DAEMON_H
