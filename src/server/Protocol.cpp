//===- server/Protocol.cpp - pmafd wire protocol --------------------------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/NumParse.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace pmaf;
using namespace pmaf::server;

//===----------------------------------------------------------------------===//
// Json: construction
//===----------------------------------------------------------------------===//

Json Json::boolean(bool B) {
  Json J;
  J.TheKind = Kind::Bool;
  J.BoolVal = B;
  return J;
}

Json Json::number(double D) {
  Json J;
  J.TheKind = Kind::Number;
  J.Num = D;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  J.NumText = Buf;
  return J;
}

Json Json::number(uint64_t U) {
  Json J;
  J.TheKind = Kind::Number;
  J.Num = static_cast<double>(U);
  J.NumText = std::to_string(U);
  return J;
}

Json Json::string(std::string S) {
  Json J;
  J.TheKind = Kind::String;
  J.Str = std::move(S);
  return J;
}

Json Json::array() {
  Json J;
  J.TheKind = Kind::Array;
  return J;
}

Json Json::object() {
  Json J;
  J.TheKind = Kind::Object;
  return J;
}

Json Json::raw(std::string Rendered) {
  Json J;
  J.TheKind = Kind::Raw;
  J.Str = std::move(Rendered);
  return J;
}

//===----------------------------------------------------------------------===//
// Json: access
//===----------------------------------------------------------------------===//

bool Json::asBool(bool Default) const {
  return TheKind == Kind::Bool ? BoolVal : Default;
}

double Json::asDouble(double Default) const {
  return TheKind == Kind::Number ? Num : Default;
}

std::optional<uint64_t> Json::asUnsigned() const {
  if (TheKind != Kind::Number)
    return std::nullopt;
  return support::parseUnsigned(NumText);
}

const Json *Json::get(std::string_view Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Fields)
    if (Name == Key)
      return &Value;
  return nullptr;
}

void Json::set(std::string Key, Json Value) {
  if (TheKind == Kind::Null)
    TheKind = Kind::Object;
  for (auto &[Name, Existing] : Fields) {
    if (Name == Key) {
      Existing = std::move(Value);
      return;
    }
  }
  Fields.emplace_back(std::move(Key), std::move(Value));
}

void Json::push(Json Value) {
  if (TheKind == Kind::Null)
    TheKind = Kind::Array;
  Items.push_back(std::move(Value));
}

//===----------------------------------------------------------------------===//
// Json: rendering
//===----------------------------------------------------------------------===//

void pmaf::server::appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Json::dumpTo(std::string &Out) const {
  switch (TheKind) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    return;
  case Kind::Number:
    Out += NumText;
    return;
  case Kind::String:
    appendJsonString(Out, Str);
    return;
  case Kind::Raw:
    Out += Str;
    return;
  case Kind::Array: {
    Out += '[';
    for (size_t I = 0; I != Items.size(); ++I) {
      if (I)
        Out += ", ";
      Items[I].dumpTo(Out);
    }
    Out += ']';
    return;
  }
  case Kind::Object: {
    Out += '{';
    for (size_t I = 0; I != Fields.size(); ++I) {
      if (I)
        Out += ", ";
      appendJsonString(Out, Fields[I].first);
      Out += ": ";
      Fields[I].second.dumpTo(Out);
    }
    Out += '}';
    return;
  }
  }
}

std::string Json::dump() const {
  std::string Out;
  dumpTo(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Json: parsing (recursive descent)
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Json> run() {
    std::optional<Json> Value = parseValue();
    if (!Value)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return Value;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
  unsigned Depth = 0;

  void fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = Message + " at byte " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos != Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parseValue() {
    skipWs();
    if (Pos == Text.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    if (++Depth > 128) {
      fail("nesting too deep");
      return std::nullopt;
    }
    std::optional<Json> Result;
    char C = Text[Pos];
    if (C == '{')
      Result = parseObject();
    else if (C == '[')
      Result = parseArray();
    else if (C == '"')
      Result = parseString();
    else if (literal("true"))
      Result = Json::boolean(true);
    else if (literal("false"))
      Result = Json::boolean(false);
    else if (literal("null"))
      Result = Json::null();
    else
      Result = parseNumber();
    --Depth;
    return Result;
  }

  std::optional<Json> parseObject() {
    ++Pos; // '{'
    Json Obj = Json::object();
    skipWs();
    if (consume('}'))
      return Obj;
    while (true) {
      skipWs();
      if (Pos == Text.size() || Text[Pos] != '"') {
        fail("expected object key string");
        return std::nullopt;
      }
      std::optional<Json> Key = parseString();
      if (!Key)
        return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Json> Value = parseValue();
      if (!Value)
        return std::nullopt;
      Obj.set(Key->asString(), std::move(*Value));
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> parseArray() {
    ++Pos; // '['
    Json Arr = Json::array();
    skipWs();
    if (consume(']'))
      return Arr;
    while (true) {
      std::optional<Json> Value = parseValue();
      if (!Value)
        return std::nullopt;
      Arr.push(std::move(*Value));
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Json> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (true) {
      if (Pos == Text.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      char C = Text[Pos++];
      if (C == '"')
        return Json::string(std::move(Out));
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("bad hex digit in \\u escape");
            return std::nullopt;
          }
        }
        // UTF-8 encode the code point (BMP only; protocol payloads are
        // program text and identifiers, surrogate pairs are not needed).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("unknown escape");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> parseNumber() {
    size_t Start = Pos;
    if (Pos != Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos != Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    std::string_view Token = Text.substr(Start, Pos - Start);
    std::optional<double> Value = support::parseDouble(Token);
    if (!Value) {
      Pos = Start;
      fail("malformed number");
      return std::nullopt;
    }
    // Plain unsigned-integer tokens round-trip through number(uint64_t)
    // so asUnsigned stays strict and exact; everything else (signs,
    // fractions, exponents) is a double and asUnsigned on it fails.
    if (std::optional<uint64_t> AsInt = support::parseUnsigned(Token))
      return Json::number(*AsInt);
    return Json::number(*Value);
  }
};

} // namespace

std::optional<Json> Json::parse(std::string_view Text, std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

bool readExact(int Fd, char *Buf, size_t N, bool &SawEof) {
  size_t Got = 0;
  SawEof = false;
  while (Got != N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R == 0) {
      SawEof = Got == 0;
      return false;
    }
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Got += static_cast<size_t>(R);
  }
  return true;
}

} // namespace

bool pmaf::server::readFrame(int Fd, std::string &Payload,
                             std::string &Error) {
  Error.clear();
  unsigned char Header[4];
  bool SawEof = false;
  if (!readExact(Fd, reinterpret_cast<char *>(Header), 4, SawEof)) {
    if (!SawEof)
      Error = "short or failed read of frame header";
    return false; // Clean EOF between frames leaves Error empty.
  }
  uint32_t Length = (static_cast<uint32_t>(Header[0]) << 24) |
                    (static_cast<uint32_t>(Header[1]) << 16) |
                    (static_cast<uint32_t>(Header[2]) << 8) |
                    static_cast<uint32_t>(Header[3]);
  if (Length > MaxFrameBytes) {
    Error = "frame length " + std::to_string(Length) + " exceeds limit";
    return false;
  }
  Payload.resize(Length);
  if (Length == 0)
    return true;
  if (!readExact(Fd, Payload.data(), Length, SawEof)) {
    Error = "connection closed mid-frame";
    return false;
  }
  return true;
}

bool pmaf::server::writeFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Length = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {static_cast<unsigned char>(Length >> 24),
                             static_cast<unsigned char>(Length >> 16),
                             static_cast<unsigned char>(Length >> 8),
                             static_cast<unsigned char>(Length)};
  std::string Buffer(reinterpret_cast<char *>(Header), 4);
  Buffer.append(Payload);
  size_t Sent = 0;
  while (Sent != Buffer.size()) {
    ssize_t W = ::write(Fd, Buffer.data() + Sent, Buffer.size() - Sent);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}
