//===- server/Protocol.h - pmafd wire protocol ------------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pmafd wire protocol: length-prefixed JSON over a stream socket.
///
/// Framing: every message — request or reply — is a 4-byte big-endian
/// payload length followed by that many bytes of UTF-8 JSON. One request
/// frame yields exactly one reply frame, in order, per connection.
///
/// Requests are JSON objects dispatched on their `"cmd"` field:
///
///   {"cmd":"load",    "session":"s", "source":"proc main() {...}",
///                     "domain":"auto|bi|mdp|leia", "numeric":"ladder"}
///   {"cmd":"analyze", "session":"s", "jobs":4, "strategy":"parallel-scc",
///                     "cold":false, "widening_delay":2, "max_updates":1e6}
///   {"cmd":"edit",    "session":"s", "source":"<full new source>"}
///   {"cmd":"stats",   "session":"s"}
///   {"cmd":"configure", "jobs":8}
///   {"cmd":"shutdown"}
///
/// Every reply carries `"ok"`; failures add stable `"code"` + `"error"`
/// fields (`protocol-error`, `unknown-command`, `unknown-session`,
/// `invalid-flag-value`, `parse-error`, `lint-error`, `pool-busy`, ...).
///
/// The Json class here is a deliberately small, dependency-free value
/// type — parse, build, dump — sufficient for the protocol; it is not a
/// general JSON library (no comments, no NaN, objects keep insertion
/// order so replies render deterministically).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_SERVER_PROTOCOL_H
#define PMAF_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmaf {
namespace server {

/// A JSON value: parseable, buildable, dumpable. Numbers remember their
/// exact token text, so 64-bit counters round-trip without double
/// truncation and `"jobs":-2` / `"jobs":1.5` are *rejected* by
/// asUnsigned rather than silently coerced.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object, Raw };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool B);
  static Json number(double D);
  static Json number(uint64_t U);
  static Json number(int I) { return number(static_cast<uint64_t>(I < 0 ? 0 : I)); }
  static Json string(std::string S);
  static Json array();
  static Json object();
  /// Pre-rendered JSON spliced verbatim into dump() — the bridge for
  /// subsystems that already render their own JSON (ChecksDb::toJson,
  /// DiagnosticEngine::renderJson). Never produced by parse().
  static Json raw(std::string Rendered);

  Kind kind() const { return TheKind; }
  bool isObject() const { return TheKind == Kind::Object; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isString() const { return TheKind == Kind::String; }
  bool isNumber() const { return TheKind == Kind::Number; }

  bool asBool(bool Default = false) const;
  double asDouble(double Default = 0.0) const;
  /// Strict: the number token must be a plain unsigned decimal integer
  /// (no sign, fraction, or exponent) that fits uint64. Strings fail.
  std::optional<uint64_t> asUnsigned() const;
  const std::string &asString() const { return Str; }

  /// Object field lookup; nullptr when absent or not an object.
  const Json *get(std::string_view Key) const;
  /// Array elements (empty unless isArray()).
  const std::vector<Json> &items() const { return Items; }

  /// Object field insert/overwrite (insertion-ordered).
  void set(std::string Key, Json Value);
  /// Array append.
  void push(Json Value);

  std::string dump() const;

  /// Parses \p Text as a single JSON value; trailing non-whitespace is an
  /// error. On failure returns nullopt and, when \p Error is non-null,
  /// a one-line description with the byte offset.
  static std::optional<Json> parse(std::string_view Text,
                                   std::string *Error = nullptr);

private:
  Kind TheKind = Kind::Null;
  bool BoolVal = false;
  double Num = 0.0;
  std::string NumText; ///< Exact token text (parse) / rendering (build).
  std::string Str;     ///< String payload, or raw JSON for Kind::Raw.
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Fields;

  void dumpTo(std::string &Out) const;
};

/// Appends \p S to \p Out as a JSON string literal (quotes + escapes).
void appendJsonString(std::string &Out, std::string_view S);

/// Upper bound on a single frame's payload (64 MiB) — a corrupted or
/// hostile length prefix must not drive a daemon allocation.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Reads one length-prefixed frame from \p Fd into \p Payload. Returns
/// false on EOF before a frame starts (clean disconnect, \p Error empty)
/// and on any malformed/short frame (\p Error set).
bool readFrame(int Fd, std::string &Payload, std::string &Error);

/// Writes one length-prefixed frame. Returns false on I/O error.
bool writeFrame(int Fd, std::string_view Payload);

} // namespace server
} // namespace pmaf

#endif // PMAF_SERVER_PROTOCOL_H
