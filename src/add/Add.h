//===- add/Add.h - Algebraic decision diagrams ------------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algebraic decision diagrams (ADDs; Bahar et al., reference [2] of the
/// paper): ordered, reduced decision diagrams whose terminals are real
/// values, representing pseudo-Boolean functions B^n -> R compactly.
///
/// §6.2 observes that the Bayesian-inference instantiation's explicit
/// matrices grow exponentially with the number of program variables and
/// suggests ADDs as the compact representation; domains/AddBiDomain.h is
/// that extension, built on this manager.
///
/// The manager hash-conses nodes (so structural equality is pointer
/// equality), memoizes the binary `apply` combinators, and provides the
/// operations matrix algebra over 2^n x 2^n transformers needs:
/// pointwise arithmetic, scalar scaling, existential summation (for the
/// contraction in matrix products), and level renaming (a linear
/// structural rebuild for order-preserving maps, an apply-based
/// reconstruction for general injective permutations).
///
/// A manager is deliberately a single-threaded object: its unique table
/// and operation caches are unsynchronized. Concurrency is layered above
/// it by `migrate` — the rename-and-merge primitive of the parallel
/// ADD-backed BI domain — which structurally copies a diagram from one
/// manager into another, re-hash-consing every node so the copy is
/// canonical in the destination (two migrations of extensionally equal
/// functions land on the identical NodeRef). Each worker computes in a
/// private manager and migrates results into the shared one under a lock
/// (domains/AddBiDomain.cpp owns that protocol).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_ADD_ADD_H
#define PMAF_ADD_ADD_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pmaf {
namespace add {

/// Node and function handle; value-type, owned by an AddManager.
using NodeRef = uint32_t;

/// Pointwise binary combinators for apply().
enum class Op { Add, Sub, Mul, Min, Max };

/// Memo for repeated migrations between one fixed (source, destination)
/// manager pair: source NodeRef -> destination NodeRef. Entries stay
/// valid forever (managers never delete nodes), so callers that migrate
/// many diagrams across the same pair keep one cache and each shared
/// subgraph is copied exactly once over the cache's lifetime.
using MigrationCache = std::unordered_map<NodeRef, NodeRef>;

/// The node store and operation cache for a family of ADDs.
class AddManager {
public:
  AddManager();

  static constexpr unsigned TerminalLevel = ~0u;

  /// \returns the (hash-consed) terminal with value \p Value.
  NodeRef terminal(double Value);

  /// \returns the function `if x_Level then Hi else Lo` (reduced: returns
  /// Lo when Lo == Hi). Children must only test levels > \p Level.
  NodeRef makeNode(unsigned Level, NodeRef Lo, NodeRef Hi);

  /// The 0/1 indicator of variable \p Level.
  NodeRef indicator(unsigned Level) {
    return makeNode(Level, Zero, One);
  }

  bool isTerminal(NodeRef N) const { return levelOf(N) == TerminalLevel; }
  double terminalValue(NodeRef N) const;
  unsigned levelOf(NodeRef N) const { return Nodes[N].Level; }
  NodeRef lo(NodeRef N) const { return Nodes[N].Lo; }
  NodeRef hi(NodeRef N) const { return Nodes[N].Hi; }

  /// Pointwise combination of two functions.
  NodeRef apply(Op TheOp, NodeRef A, NodeRef B);

  /// Pointwise scalar multiple.
  NodeRef scale(NodeRef A, double Factor);

  /// Pointwise affine map factor * A + offset.
  NodeRef affine(NodeRef A, double Factor, double Offset);

  /// Sums the function over all assignments to the (sorted, distinct)
  /// \p Levels: the result no longer depends on them, and levels absent
  /// from a path contribute a factor of 2 as usual.
  NodeRef sumOut(NodeRef A, const std::vector<unsigned> &Levels);

  /// Renames decision levels: NewLevel = Map(OldLevel). \p Map must be
  /// injective on the levels \p A actually tests; it may otherwise reorder
  /// them freely (e.g. swap adjacent levels). Maps that preserve the level
  /// order on the support take a linear-time structural rebuild; general
  /// permutations fall back to an apply-based reconstruction that re-sorts
  /// the decisions, so the result is canonical either way.
  NodeRef rename(NodeRef A,
                 const std::function<unsigned(unsigned)> &Map);

  /// Rename-and-merge: structurally copies the diagram rooted at \p A from
  /// \p From into this manager and \returns the copy's root. Every node is
  /// re-hash-consed here, so migration preserves canonicity: extensionally
  /// equal diagrams — whether migrated from different managers or built
  /// natively — land on the identical NodeRef, and terminal values are
  /// preserved bit-for-bit. \p Cache memoizes the copy (see
  /// MigrationCache); migrating from *this is the identity. Reads \p From
  /// and writes *this: the caller synchronizes both sides when either is
  /// shared across threads.
  NodeRef migrate(NodeRef A, const AddManager &From, MigrationCache &Cache);

  /// One-shot migrate with a throwaway cache.
  NodeRef migrate(NodeRef A, const AddManager &From) {
    MigrationCache Cache;
    return migrate(A, From, Cache);
  }

  /// The sorted distinct levels the diagram rooted at \p A tests.
  std::vector<unsigned> support(NodeRef A) const;

  /// Largest / smallest terminal value reachable from \p A.
  double maxTerminal(NodeRef A) const;
  double minTerminal(NodeRef A) const;

  /// max over all inputs of |A - B|.
  double maxAbsDiff(NodeRef A, NodeRef B) {
    NodeRef Diff = apply(Op::Sub, A, B);
    return std::max(maxTerminal(Diff), -minTerminal(Diff));
  }

  /// Evaluates under a variable assignment (level -> bool).
  double evaluate(NodeRef A,
                  const std::function<bool(unsigned)> &Assignment) const;

  /// Number of distinct nodes reachable from \p A (diagram size).
  size_t nodeCount(NodeRef A) const;

  /// Total nodes allocated by this manager (monotone; no GC).
  size_t totalNodes() const { return Nodes.size(); }

  /// Constants 0 and 1, premade.
  NodeRef zero() const { return Zero; }
  NodeRef one() const { return One; }

private:
  struct Node {
    unsigned Level;
    NodeRef Lo, Hi;
    double Value; // Terminals only.
  };

  struct NodeKey {
    unsigned Level;
    NodeRef Lo, Hi;
    bool operator==(const NodeKey &O) const {
      return Level == O.Level && Lo == O.Lo && Hi == O.Hi;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      size_t H = K.Level;
      H = H * 1000003u + K.Lo;
      H = H * 1000003u + K.Hi;
      return H;
    }
  };
  struct ApplyKey {
    Op TheOp;
    NodeRef A, B;
    bool operator==(const ApplyKey &O) const {
      return TheOp == O.TheOp && A == O.A && B == O.B;
    }
  };
  struct ApplyKeyHash {
    size_t operator()(const ApplyKey &K) const {
      size_t H = static_cast<size_t>(K.TheOp);
      H = H * 1000003u + K.A;
      H = H * 1000003u + K.B;
      return H;
    }
  };

  static double combine(Op TheOp, double A, double B);

  NodeRef applyRec(Op TheOp, NodeRef A, NodeRef B,
                   std::unordered_map<ApplyKey, NodeRef, ApplyKeyHash>
                       &Cache);
  NodeRef sumOutRec(NodeRef A, const std::vector<unsigned> &Levels,
                    size_t Index,
                    std::unordered_map<uint64_t, NodeRef> &Cache);

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, NodeRef> Terminals; // by double bits
  std::unordered_map<NodeKey, NodeRef, NodeKeyHash> Unique;
  std::unordered_map<ApplyKey, NodeRef, ApplyKeyHash> ApplyCache;
  NodeRef Zero = 0, One = 0;
};

} // namespace add
} // namespace pmaf

#endif // PMAF_ADD_ADD_H
