//===- add/Add.cpp - Algebraic decision diagrams ---------------------------===//

#include "add/Add.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace pmaf;
using namespace pmaf::add;

AddManager::AddManager() {
  Zero = terminal(0.0);
  One = terminal(1.0);
}

NodeRef AddManager::terminal(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  auto [It, Inserted] = Terminals.try_emplace(Bits, 0);
  if (Inserted) {
    Node N;
    N.Level = TerminalLevel;
    N.Lo = N.Hi = 0;
    N.Value = Value;
    Nodes.push_back(N);
    It->second = static_cast<NodeRef>(Nodes.size() - 1);
  }
  return It->second;
}

double AddManager::terminalValue(NodeRef N) const {
  assert(isTerminal(N) && "not a terminal");
  return Nodes[N].Value;
}

NodeRef AddManager::makeNode(unsigned Level, NodeRef Lo, NodeRef Hi) {
  if (Lo == Hi)
    return Lo; // Reduction rule.
  assert(Level < levelOf(Lo) && Level < levelOf(Hi) &&
         "children must test strictly lower (later) levels");
  auto [It, Inserted] = Unique.try_emplace(NodeKey{Level, Lo, Hi}, 0);
  if (Inserted) {
    Node N;
    N.Level = Level;
    N.Lo = Lo;
    N.Hi = Hi;
    N.Value = 0.0;
    Nodes.push_back(N);
    It->second = static_cast<NodeRef>(Nodes.size() - 1);
  }
  return It->second;
}

double AddManager::combine(Op TheOp, double A, double B) {
  switch (TheOp) {
  case Op::Add:
    return A + B;
  case Op::Sub:
    return A - B;
  case Op::Mul:
    return A * B;
  case Op::Min:
    return A < B ? A : B;
  case Op::Max:
    return A > B ? A : B;
  }
  assert(false && "unknown op");
  return 0.0;
}

NodeRef AddManager::applyRec(
    Op TheOp, NodeRef A, NodeRef B,
    std::unordered_map<ApplyKey, NodeRef, ApplyKeyHash> &Cache) {
  if (isTerminal(A) && isTerminal(B))
    return terminal(combine(TheOp, Nodes[A].Value, Nodes[B].Value));
  // Short circuits for multiplication by constant 0.
  if (TheOp == Op::Mul && (A == Zero || B == Zero))
    return Zero;
  ApplyKey Key{TheOp, A, B};
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  unsigned LevelA = levelOf(A), LevelB = levelOf(B);
  unsigned Level = std::min(LevelA, LevelB);
  NodeRef ALo = LevelA == Level ? lo(A) : A;
  NodeRef AHi = LevelA == Level ? hi(A) : A;
  NodeRef BLo = LevelB == Level ? lo(B) : B;
  NodeRef BHi = LevelB == Level ? hi(B) : B;
  NodeRef Result = makeNode(Level, applyRec(TheOp, ALo, BLo, Cache),
                            applyRec(TheOp, AHi, BHi, Cache));
  Cache.emplace(Key, Result);
  return Result;
}

NodeRef AddManager::apply(Op TheOp, NodeRef A, NodeRef B) {
  return applyRec(TheOp, A, B, ApplyCache);
}

NodeRef AddManager::scale(NodeRef A, double Factor) {
  return affine(A, Factor, 0.0);
}

NodeRef AddManager::affine(NodeRef A, double Factor, double Offset) {
  // Expressed through apply for memoization: Factor * A + Offset.
  NodeRef Scaled = apply(Op::Mul, A, terminal(Factor));
  if (Offset == 0.0)
    return Scaled;
  return apply(Op::Add, Scaled, terminal(Offset));
}

NodeRef AddManager::sumOutRec(NodeRef A,
                              const std::vector<unsigned> &Levels,
                              size_t Index,
                              std::unordered_map<uint64_t, NodeRef> &Cache) {
  if (Index == Levels.size())
    return A;
  uint64_t Key = (static_cast<uint64_t>(Index) << 32) | A;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  unsigned Target = Levels[Index];
  unsigned Level = levelOf(A);
  NodeRef Result;
  if (Level < Target) {
    Result = makeNode(Level, sumOutRec(lo(A), Levels, Index, Cache),
                      sumOutRec(hi(A), Levels, Index, Cache));
  } else if (Level == Target) {
    Result = apply(Op::Add, sumOutRec(lo(A), Levels, Index + 1, Cache),
                   sumOutRec(hi(A), Levels, Index + 1, Cache));
  } else {
    // Independent of the summed variable: both assignments contribute.
    Result = scale(sumOutRec(A, Levels, Index + 1, Cache), 2.0);
  }
  Cache.emplace(Key, Result);
  return Result;
}

NodeRef AddManager::sumOut(NodeRef A, const std::vector<unsigned> &Levels) {
  assert(std::is_sorted(Levels.begin(), Levels.end()) &&
         "levels must be sorted");
  std::unordered_map<uint64_t, NodeRef> Cache;
  return sumOutRec(A, Levels, 0, Cache);
}

std::vector<unsigned> AddManager::support(NodeRef A) const {
  std::vector<NodeRef> Stack = {A};
  std::unordered_map<NodeRef, bool> Seen;
  std::vector<unsigned> Levels;
  while (!Stack.empty()) {
    NodeRef N = Stack.back();
    Stack.pop_back();
    bool &Visited = Seen[N];
    if (Visited || isTerminal(N))
      continue;
    Visited = true;
    Levels.push_back(levelOf(N));
    Stack.push_back(lo(N));
    Stack.push_back(hi(N));
  }
  std::sort(Levels.begin(), Levels.end());
  Levels.erase(std::unique(Levels.begin(), Levels.end()), Levels.end());
  return Levels;
}

NodeRef AddManager::rename(NodeRef A,
                           const std::function<unsigned(unsigned)> &Map) {
  // The map only matters on the support; decide there whether the cheap
  // order-preserving rebuild is sound. (A map that is non-monotone only on
  // absent levels still takes the fast path.)
  std::vector<unsigned> Support = support(A);
  std::vector<unsigned> Mapped(Support.size());
  for (size_t I = 0; I != Support.size(); ++I)
    Mapped[I] = Map(Support[I]);
#ifndef NDEBUG
  {
    std::vector<unsigned> Check = Mapped;
    std::sort(Check.begin(), Check.end());
    assert(std::adjacent_find(Check.begin(), Check.end()) == Check.end() &&
           "rename map must be injective on the support");
  }
#endif
  bool Monotone = std::is_sorted(Mapped.begin(), Mapped.end()) &&
                  std::adjacent_find(Mapped.begin(), Mapped.end()) ==
                      Mapped.end();

  std::unordered_map<NodeRef, NodeRef> Cache;
  if (Monotone) {
    // Order-preserving: a top-down structural rebuild keeps the node
    // ordering invariant, so each source node maps to exactly one result
    // node and the per-node memo is collision-free.
    auto Rec = [&](const auto &Self, NodeRef N) -> NodeRef {
      if (isTerminal(N))
        return N;
      auto It = Cache.find(N);
      if (It != Cache.end())
        return It->second;
      NodeRef Result =
          makeNode(Map(levelOf(N)), Self(Self, lo(N)), Self(Self, hi(N)));
      Cache.emplace(N, Result);
      return Result;
    };
    return Rec(Rec, A);
  }

  // General permutation (e.g. a swap of adjacent levels): the structural
  // rebuild would emit nodes whose children test *smaller* levels —
  // malformed diagrams whose unique-table entries collide with well-formed
  // nodes of different functions. Rebuild through apply instead:
  //   rename(x_L ? h : l) = ind(Map(L)) * rename(h)
  //                       + (1 - ind(Map(L))) * rename(l),
  // which re-sorts every decision and lands on the canonical diagram.
  // Injectivity keeps the branches independent of ind(Map(L)). The memo
  // stays keyed by source node: the result depends only on the subdiagram.
  auto Rec = [&](const auto &Self, NodeRef N) -> NodeRef {
    if (isTerminal(N))
      return N;
    auto It = Cache.find(N);
    if (It != Cache.end())
      return It->second;
    NodeRef Lo = Self(Self, lo(N));
    NodeRef Hi = Self(Self, hi(N));
    NodeRef Ind = indicator(Map(levelOf(N)));
    NodeRef Result =
        apply(Op::Add, apply(Op::Mul, Ind, Hi),
              apply(Op::Mul, affine(Ind, -1.0, 1.0), Lo));
    Cache.emplace(N, Result);
    return Result;
  };
  return Rec(Rec, A);
}

NodeRef AddManager::migrate(NodeRef A, const AddManager &From,
                            MigrationCache &Cache) {
  if (&From == this)
    return A;
  // Recursion depth is bounded by the number of decision levels (diagrams
  // are ordered), not by the node count.
  auto Rec = [&](const auto &Self, NodeRef N) -> NodeRef {
    auto It = Cache.find(N);
    if (It != Cache.end())
      return It->second;
    NodeRef Result =
        From.isTerminal(N)
            ? terminal(From.terminalValue(N))
            : makeNode(From.levelOf(N), Self(Self, From.lo(N)),
                       Self(Self, From.hi(N)));
    Cache.emplace(N, Result);
    return Result;
  };
  return Rec(Rec, A);
}

namespace {

/// DAG traversal (visited-set, so shared subgraphs are walked once)
/// folding the terminal values with \p Fold.
template <typename F>
double foldTerminals(const AddManager &Mgr, NodeRef Root, double Init,
                     F &&Fold) {
  std::vector<NodeRef> Stack = {Root};
  std::unordered_map<NodeRef, bool> Seen;
  double Acc = Init;
  while (!Stack.empty()) {
    NodeRef N = Stack.back();
    Stack.pop_back();
    bool &Visited = Seen[N];
    if (Visited)
      continue;
    Visited = true;
    if (Mgr.isTerminal(N)) {
      Acc = Fold(Acc, Mgr.terminalValue(N));
    } else {
      Stack.push_back(Mgr.lo(N));
      Stack.push_back(Mgr.hi(N));
    }
  }
  return Acc;
}

} // namespace

double AddManager::maxTerminal(NodeRef A) const {
  return foldTerminals(*this, A, -HUGE_VAL,
                       [](double X, double Y) { return X > Y ? X : Y; });
}

double AddManager::minTerminal(NodeRef A) const {
  return foldTerminals(*this, A, HUGE_VAL,
                       [](double X, double Y) { return X < Y ? X : Y; });
}

double AddManager::evaluate(
    NodeRef A, const std::function<bool(unsigned)> &Assignment) const {
  while (!isTerminal(A))
    A = Assignment(levelOf(A)) ? hi(A) : lo(A);
  return Nodes[A].Value;
}

size_t AddManager::nodeCount(NodeRef A) const {
  std::vector<NodeRef> Stack = {A};
  std::unordered_map<NodeRef, bool> Seen;
  size_t Count = 0;
  while (!Stack.empty()) {
    NodeRef N = Stack.back();
    Stack.pop_back();
    if (Seen[N])
      continue;
    Seen[N] = true;
    ++Count;
    if (!isTerminal(N)) {
      Stack.push_back(lo(N));
      Stack.push_back(hi(N));
    }
  }
  return Count;
}
