//===- add/Add.cpp - Algebraic decision diagrams ---------------------------===//

#include "add/Add.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace pmaf;
using namespace pmaf::add;

AddManager::AddManager() {
  Zero = terminal(0.0);
  One = terminal(1.0);
}

NodeRef AddManager::terminal(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  auto [It, Inserted] = Terminals.try_emplace(Bits, 0);
  if (Inserted) {
    Node N;
    N.Level = TerminalLevel;
    N.Lo = N.Hi = 0;
    N.Value = Value;
    Nodes.push_back(N);
    It->second = static_cast<NodeRef>(Nodes.size() - 1);
  }
  return It->second;
}

double AddManager::terminalValue(NodeRef N) const {
  assert(isTerminal(N) && "not a terminal");
  return Nodes[N].Value;
}

NodeRef AddManager::makeNode(unsigned Level, NodeRef Lo, NodeRef Hi) {
  if (Lo == Hi)
    return Lo; // Reduction rule.
  assert(Level < levelOf(Lo) && Level < levelOf(Hi) &&
         "children must test strictly lower (later) levels");
  auto [It, Inserted] = Unique.try_emplace(NodeKey{Level, Lo, Hi}, 0);
  if (Inserted) {
    Node N;
    N.Level = Level;
    N.Lo = Lo;
    N.Hi = Hi;
    N.Value = 0.0;
    Nodes.push_back(N);
    It->second = static_cast<NodeRef>(Nodes.size() - 1);
  }
  return It->second;
}

double AddManager::combine(Op TheOp, double A, double B) {
  switch (TheOp) {
  case Op::Add:
    return A + B;
  case Op::Sub:
    return A - B;
  case Op::Mul:
    return A * B;
  case Op::Min:
    return A < B ? A : B;
  case Op::Max:
    return A > B ? A : B;
  }
  assert(false && "unknown op");
  return 0.0;
}

NodeRef AddManager::applyRec(
    Op TheOp, NodeRef A, NodeRef B,
    std::unordered_map<ApplyKey, NodeRef, ApplyKeyHash> &Cache) {
  if (isTerminal(A) && isTerminal(B))
    return terminal(combine(TheOp, Nodes[A].Value, Nodes[B].Value));
  // Short circuits for multiplication by constant 0.
  if (TheOp == Op::Mul && (A == Zero || B == Zero))
    return Zero;
  ApplyKey Key{TheOp, A, B};
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  unsigned LevelA = levelOf(A), LevelB = levelOf(B);
  unsigned Level = std::min(LevelA, LevelB);
  NodeRef ALo = LevelA == Level ? lo(A) : A;
  NodeRef AHi = LevelA == Level ? hi(A) : A;
  NodeRef BLo = LevelB == Level ? lo(B) : B;
  NodeRef BHi = LevelB == Level ? hi(B) : B;
  NodeRef Result = makeNode(Level, applyRec(TheOp, ALo, BLo, Cache),
                            applyRec(TheOp, AHi, BHi, Cache));
  Cache.emplace(Key, Result);
  return Result;
}

NodeRef AddManager::apply(Op TheOp, NodeRef A, NodeRef B) {
  return applyRec(TheOp, A, B, ApplyCache);
}

NodeRef AddManager::scale(NodeRef A, double Factor) {
  return affine(A, Factor, 0.0);
}

NodeRef AddManager::affine(NodeRef A, double Factor, double Offset) {
  // Expressed through apply for memoization: Factor * A + Offset.
  NodeRef Scaled = apply(Op::Mul, A, terminal(Factor));
  if (Offset == 0.0)
    return Scaled;
  return apply(Op::Add, Scaled, terminal(Offset));
}

NodeRef AddManager::sumOutRec(NodeRef A,
                              const std::vector<unsigned> &Levels,
                              size_t Index,
                              std::unordered_map<uint64_t, NodeRef> &Cache) {
  if (Index == Levels.size())
    return A;
  uint64_t Key = (static_cast<uint64_t>(Index) << 32) | A;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  unsigned Target = Levels[Index];
  unsigned Level = levelOf(A);
  NodeRef Result;
  if (Level < Target) {
    Result = makeNode(Level, sumOutRec(lo(A), Levels, Index, Cache),
                      sumOutRec(hi(A), Levels, Index, Cache));
  } else if (Level == Target) {
    Result = apply(Op::Add, sumOutRec(lo(A), Levels, Index + 1, Cache),
                   sumOutRec(hi(A), Levels, Index + 1, Cache));
  } else {
    // Independent of the summed variable: both assignments contribute.
    Result = scale(sumOutRec(A, Levels, Index + 1, Cache), 2.0);
  }
  Cache.emplace(Key, Result);
  return Result;
}

NodeRef AddManager::sumOut(NodeRef A, const std::vector<unsigned> &Levels) {
  assert(std::is_sorted(Levels.begin(), Levels.end()) &&
         "levels must be sorted");
  std::unordered_map<uint64_t, NodeRef> Cache;
  return sumOutRec(A, Levels, 0, Cache);
}

NodeRef AddManager::rename(NodeRef A,
                           const std::function<unsigned(unsigned)> &Map) {
  std::unordered_map<NodeRef, NodeRef> Cache;
  auto Rec = [&](const auto &Self, NodeRef N) -> NodeRef {
    if (isTerminal(N))
      return N;
    auto It = Cache.find(N);
    if (It != Cache.end())
      return It->second;
    NodeRef Result =
        makeNode(Map(levelOf(N)), Self(Self, lo(N)), Self(Self, hi(N)));
    Cache.emplace(N, Result);
    return Result;
  };
  return Rec(Rec, A);
}

namespace {

/// DAG traversal (visited-set, so shared subgraphs are walked once)
/// folding the terminal values with \p Fold.
template <typename F>
double foldTerminals(const AddManager &Mgr, NodeRef Root, double Init,
                     F &&Fold) {
  std::vector<NodeRef> Stack = {Root};
  std::unordered_map<NodeRef, bool> Seen;
  double Acc = Init;
  while (!Stack.empty()) {
    NodeRef N = Stack.back();
    Stack.pop_back();
    bool &Visited = Seen[N];
    if (Visited)
      continue;
    Visited = true;
    if (Mgr.isTerminal(N)) {
      Acc = Fold(Acc, Mgr.terminalValue(N));
    } else {
      Stack.push_back(Mgr.lo(N));
      Stack.push_back(Mgr.hi(N));
    }
  }
  return Acc;
}

} // namespace

double AddManager::maxTerminal(NodeRef A) const {
  return foldTerminals(*this, A, -HUGE_VAL,
                       [](double X, double Y) { return X > Y ? X : Y; });
}

double AddManager::minTerminal(NodeRef A) const {
  return foldTerminals(*this, A, HUGE_VAL,
                       [](double X, double Y) { return X < Y ? X : Y; });
}

double AddManager::evaluate(
    NodeRef A, const std::function<bool(unsigned)> &Assignment) const {
  while (!isTerminal(A))
    A = Assignment(levelOf(A)) ? hi(A) : lo(A);
  return Nodes[A].Value;
}

size_t AddManager::nodeCount(NodeRef A) const {
  std::vector<NodeRef> Stack = {A};
  std::unordered_map<NodeRef, bool> Seen;
  size_t Count = 0;
  while (!Stack.empty()) {
    NodeRef N = Stack.back();
    Stack.pop_back();
    if (Seen[N])
      continue;
    Seen[N] = true;
    ++Count;
    if (!isTerminal(N)) {
      Stack.push_back(lo(N));
      Stack.push_back(hi(N));
    }
  }
  return Count;
}
