//===- checks/Checker.h - Assertion verdicts from solver fixpoints -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker layer: turns the solver's fixpoint annotation into a verdict
/// for every `assert_*` statement of the program.
///
/// PMAF values at a node are transformers *from that node to the procedure
/// exit*, so an assertion's node value already summarizes everything the
/// analysis knows about executions that start at the assertion — the
/// checker only has to interrogate it:
///
///  * `assert_prob(phi) >= p` / `<= p` (BI, dense or ADD-backed): the
///    summary matrix gives, per pre-state, a guaranteed lower bound and a
///    complement upper bound on the post-distribution mass of phi
///    (domains::probMassBounds). SAFE means the bound holds from *every*
///    pre-state; ERROR means it is violated from every pre-state.
///  * `assert_reward <= r` / `>= r` (MDP): the node value is an *upper*
///    bound on the greatest expected reward, so `<=` can be proved but
///    never refuted and `>=` can be refuted but never proved.
///  * `assert_interval(e, lo, hi)` (LEIA): objectiveBounds yields the range
///    of E[e'] over every admitted pre-state; containment is SAFE,
///    disjointness is ERROR, and a bottom/empty expectation slice means
///    zero terminating mass, i.e. the sub-probability expectation is
///    exactly 0 — the verdict is the containment of 0.
///
/// A non-converged solve degrades every verdict to WARNING (the snapshot is
/// not a post-fixpoint), and an assertion kind the analyzed domain cannot
/// express is SKIPPED with its own stable code, never silently dropped.
///
/// Verdicts accumulate in a ChecksDb (mergeable across files for
/// `pmaf verify-corpus`) and are reported as structured Diagnostics with
/// stable codes `assert-<kind>-{safe,unproved,violated}` / `assert-skipped`.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CHECKS_CHECKER_H
#define PMAF_CHECKS_CHECKER_H

#include "cfg/HyperGraph.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pmaf {
namespace checks {

/// Outcome of one assertion check.
enum class Verdict {
  Safe,    ///< Proved: the property holds on every analyzed execution.
  Warning, ///< Unproved: the fixpoint neither proves nor refutes it.
  Error,   ///< Refuted: the fixpoint proves the property violated.
  Skipped  ///< The analyzed domain cannot express this assertion kind.
};

const char *toString(Verdict V);

/// One checked assertion: where it is, what was asserted, what the
/// fixpoint said about it.
struct CheckRecord {
  lang::AssertKind Kind = lang::AssertKind::Prob;
  Verdict TheVerdict = Verdict::Warning;
  SourceLoc Loc;
  std::string Code;    ///< Stable diagnostic code.
  std::string Message; ///< Human-readable explanation with the bounds.
  std::string File;    ///< Set by corpus drivers before merging; else empty.
};

/// Accumulated check results: the per-record list plus per-verdict and
/// per-code counters, mergeable across files for corpus-scale runs.
class ChecksDb {
public:
  void add(CheckRecord R);
  void merge(const ChecksDb &Other);

  /// Stamps every record with \p File (corpus drivers call this before
  /// merging per-file results into the aggregate).
  void tagFile(const std::string &File);

  const std::vector<CheckRecord> &records() const { return Records; }
  unsigned count(Verdict V) const {
    return Counts[static_cast<unsigned>(V)];
  }
  const std::map<std::string, unsigned> &codeCounts() const {
    return CodeCounts;
  }
  unsigned total() const { return static_cast<unsigned>(Records.size()); }

  /// One-line human summary, e.g. "3 safe, 1 warning, 0 errors, 0 skipped".
  std::string summary() const;

  /// Aggregated JSON: counts, per-code counts, and all records.
  std::string toJson() const;

private:
  std::vector<CheckRecord> Records;
  unsigned Counts[4] = {0, 0, 0, 0};
  std::map<std::string, unsigned> CodeCounts;
};

/// Checker knobs shared by every domain evaluator.
struct CheckerOptions {
  /// False when the solver ran out of budget: the value vector is a
  /// mid-iteration snapshot, so every verdict degrades to WARNING.
  bool Converged = true;
  /// Slack for floating-point comparisons against asserted bounds.
  double Tolerance = 1e-9;
};

/// Collects the assertion sites of \p Graph: (node, assert statement) for
/// every seq hyper-edge whose data action is an Assert, in node order.
std::vector<std::pair<unsigned, const lang::Stmt *>>
collectAssertions(const cfg::ProgramGraph &Graph);

/// Checks every assertion against BI summaries supplied by \p SummaryAt
/// (dense rows for the checked node). Both BI backends funnel through
/// here: the dense domain passes its values straight, the ADD-backed one
/// expands per assertion site (cheap — assertions are sparse).
ChecksDb checkBiSummaries(const domains::BoolStateSpace &Space,
                          const cfg::ProgramGraph &Graph,
                          const std::function<Matrix(unsigned)> &SummaryAt,
                          const CheckerOptions &Opts);

/// Checks every assertion against MDP node values (\p Values indexed by
/// hyper-graph node: upper bounds on greatest expected reward to exit).
ChecksDb checkMdp(const cfg::ProgramGraph &Graph,
                  const std::vector<double> &Values,
                  const CheckerOptions &Opts);

/// Checks every assertion against LEIA node values; instantiated for the
/// four numeric backends.
template <poly::NumericDomain NumV>
ChecksDb checkLeia(const domains::LeiaDomainT<NumV> &Dom,
                   const cfg::ProgramGraph &Graph,
                   const std::vector<domains::LeiaValueT<NumV>> &Values,
                   const CheckerOptions &Opts);

/// Marks every assertion SKIPPED with \p Reason (for analyses with no
/// checker support, e.g. the termination domain).
ChecksDb skipAllChecks(const cfg::ProgramGraph &Graph,
                       const std::string &Reason);

/// Reports every record of \p Db through \p Diags: ERROR verdicts as
/// errors, WARNING/SKIPPED as warnings (so --werror promotes them), SAFE
/// as notes (visible and JSON-rendered, but never affecting exit status)
/// unless \p IncludeSafe is false.
void reportChecks(const ChecksDb &Db, DiagnosticEngine &Diags,
                  bool IncludeSafe = true);

} // namespace checks
} // namespace pmaf

#endif // PMAF_CHECKS_CHECKER_H
