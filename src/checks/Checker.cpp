//===- checks/Checker.cpp - Assertion verdicts from solver fixpoints ------===//

#include "checks/Checker.h"

#include <cassert>
#include <cstdio>

using namespace pmaf;
using namespace pmaf::checks;
using namespace pmaf::lang;

const char *checks::toString(Verdict V) {
  switch (V) {
  case Verdict::Safe:
    return "safe";
  case Verdict::Warning:
    return "warning";
  case Verdict::Error:
    return "error";
  case Verdict::Skipped:
    return "skipped";
  }
  return "warning";
}

//===----------------------------------------------------------------------===//
// ChecksDb
//===----------------------------------------------------------------------===//

void ChecksDb::add(CheckRecord R) {
  ++Counts[static_cast<unsigned>(R.TheVerdict)];
  ++CodeCounts[R.Code];
  Records.push_back(std::move(R));
}

void ChecksDb::tagFile(const std::string &File) {
  for (CheckRecord &R : Records)
    R.File = File;
}

void ChecksDb::merge(const ChecksDb &Other) {
  for (unsigned I = 0; I != 4; ++I)
    Counts[I] += Other.Counts[I];
  for (const auto &[Code, N] : Other.CodeCounts)
    CodeCounts[Code] += N;
  Records.insert(Records.end(), Other.Records.begin(), Other.Records.end());
}

std::string ChecksDb::summary() const {
  std::string Out = std::to_string(count(Verdict::Safe)) + " safe, ";
  Out += std::to_string(count(Verdict::Warning)) + " unproved, ";
  Out += std::to_string(count(Verdict::Error)) + " violated, ";
  Out += std::to_string(count(Verdict::Skipped)) + " skipped";
  return Out;
}

namespace {

void appendJsonEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

const char *assertKindName(AssertKind K) {
  switch (K) {
  case AssertKind::Prob:
    return "prob";
  case AssertKind::Reward:
    return "reward";
  case AssertKind::Interval:
    return "interval";
  }
  return "prob";
}

} // namespace

std::string ChecksDb::toJson() const {
  std::string Out = "{\"total\": " + std::to_string(total());
  Out += ", \"safe\": " + std::to_string(count(Verdict::Safe));
  Out += ", \"unproved\": " + std::to_string(count(Verdict::Warning));
  Out += ", \"violated\": " + std::to_string(count(Verdict::Error));
  Out += ", \"skipped\": " + std::to_string(count(Verdict::Skipped));
  Out += ", \"codes\": {";
  bool First = true;
  for (const auto &[Code, N] : CodeCounts) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"";
    appendJsonEscaped(Out, Code);
    Out += "\": " + std::to_string(N);
  }
  Out += "}, \"records\": [";
  for (size_t I = 0; I != Records.size(); ++I) {
    const CheckRecord &R = Records[I];
    if (I)
      Out += ", ";
    Out += "{";
    if (!R.File.empty()) {
      Out += "\"file\": \"";
      appendJsonEscaped(Out, R.File);
      Out += "\", ";
    }
    Out += "\"line\": " + std::to_string(R.Loc.Line);
    Out += ", \"column\": " + std::to_string(R.Loc.Col);
    Out += ", \"kind\": \"";
    Out += assertKindName(R.Kind);
    Out += "\", \"verdict\": \"";
    Out += checks::toString(R.TheVerdict);
    Out += "\", \"code\": \"";
    appendJsonEscaped(Out, R.Code);
    Out += "\", \"message\": \"";
    appendJsonEscaped(Out, R.Message);
    Out += "\"}";
  }
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

std::vector<std::pair<unsigned, const Stmt *>>
checks::collectAssertions(const cfg::ProgramGraph &Graph) {
  std::vector<std::pair<unsigned, const Stmt *>> Out;
  for (unsigned Node = 0; Node != Graph.numNodes(); ++Node) {
    const cfg::HyperEdge *E = Graph.outgoing(Node);
    if (E && E->Ctrl.TheKind == cfg::ControlAction::Kind::Seq &&
        E->Ctrl.DataAction &&
        E->Ctrl.DataAction->kind() == Stmt::Kind::Assert)
      Out.emplace_back(Node, E->Ctrl.DataAction);
  }
  return Out;
}

namespace {

std::string fmt(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", X);
  return Buf;
}

/// The stable code for an assertion kind and verdict.
std::string codeFor(AssertKind K, Verdict V) {
  if (V == Verdict::Skipped)
    return "assert-skipped";
  std::string Code = "assert-";
  Code += assertKindName(K);
  switch (V) {
  case Verdict::Safe:
    Code += "-safe";
    break;
  case Verdict::Warning:
    Code += "-unproved";
    break;
  case Verdict::Error:
    Code += "-violated";
    break;
  case Verdict::Skipped:
    break;
  }
  return Code;
}

CheckRecord makeRecord(const Stmt &S, Verdict V, std::string Message) {
  CheckRecord R;
  R.Kind = S.assertKind();
  R.TheVerdict = V;
  R.Loc = S.loc();
  R.Code = codeFor(S.assertKind(), V);
  R.Message = std::move(Message);
  return R;
}

CheckRecord notConvergedRecord(const Stmt &S) {
  return makeRecord(S, Verdict::Warning,
                    "solver did not converge within its update budget; "
                    "treating the assertion as unproved");
}

const char *cmpSpelling(CmpOp Op) { return Op == CmpOp::Ge ? ">=" : "<="; }

/// Folds \p E into an affine form c0 + sum ci * x_i over the program
/// variables; false if the expression is nonlinear (or divides by zero).
bool affineFold(const Expr &E, std::vector<Rational> &Coeffs,
                Rational &Constant) {
  switch (E.kind()) {
  case Expr::Kind::Var:
    Coeffs[E.varIndex()] += Rational(1);
    return true;
  case Expr::Kind::Number:
    Constant += E.number();
    return true;
  case Expr::Kind::BoolLit:
    return false;
  case Expr::Kind::Add:
    return affineFold(E.lhs(), Coeffs, Constant) &&
           affineFold(E.rhs(), Coeffs, Constant);
  case Expr::Kind::Sub: {
    std::vector<Rational> RhsCoeffs(Coeffs.size());
    Rational RhsConst;
    if (!affineFold(E.lhs(), Coeffs, Constant) ||
        !affineFold(E.rhs(), RhsCoeffs, RhsConst))
      return false;
    for (size_t I = 0; I != Coeffs.size(); ++I)
      Coeffs[I] -= RhsCoeffs[I];
    Constant -= RhsConst;
    return true;
  }
  case Expr::Kind::Mul: {
    // One side must be constant.
    const Expr *Scalar = nullptr, *Affine = nullptr;
    if (E.lhs().kind() == Expr::Kind::Number) {
      Scalar = &E.lhs();
      Affine = &E.rhs();
    } else if (E.rhs().kind() == Expr::Kind::Number) {
      Scalar = &E.rhs();
      Affine = &E.lhs();
    } else {
      return false;
    }
    std::vector<Rational> SubCoeffs(Coeffs.size());
    Rational SubConst;
    if (!affineFold(*Affine, SubCoeffs, SubConst))
      return false;
    const Rational &K = Scalar->number();
    for (size_t I = 0; I != Coeffs.size(); ++I)
      Coeffs[I] += K * SubCoeffs[I];
    Constant += K * SubConst;
    return true;
  }
  case Expr::Kind::Div: {
    if (E.rhs().kind() != Expr::Kind::Number || E.rhs().number().isZero())
      return false;
    std::vector<Rational> SubCoeffs(Coeffs.size());
    Rational SubConst;
    if (!affineFold(E.lhs(), SubCoeffs, SubConst))
      return false;
    const Rational &K = E.rhs().number();
    for (size_t I = 0; I != Coeffs.size(); ++I)
      Coeffs[I] += SubCoeffs[I] / K;
    Constant += SubConst / K;
    return true;
  }
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// BI: assert_prob over summary matrices
//===----------------------------------------------------------------------===//

ChecksDb checks::checkBiSummaries(
    const domains::BoolStateSpace &Space, const cfg::ProgramGraph &Graph,
    const std::function<Matrix(unsigned)> &SummaryAt,
    const CheckerOptions &Opts) {
  ChecksDb Db;
  for (auto [Node, S] : collectAssertions(Graph)) {
    if (S->assertKind() != AssertKind::Prob) {
      Db.add(makeRecord(*S, Verdict::Skipped,
                        std::string("the Bayesian-inference domain checks "
                                    "only assert_prob; assert_") +
                            assertKindName(S->assertKind()) + " skipped"));
      continue;
    }
    if (!Opts.Converged) {
      Db.add(notConvergedRecord(*S));
      continue;
    }
    domains::ProbMassBounds B =
        domains::probMassBounds(SummaryAt(Node), Space, S->assertCond());
    double P = S->assertBound().toDouble();
    double Tol = Opts.Tolerance;
    std::string BoundText =
        std::string(cmpSpelling(S->assertOp())) + " " +
        S->assertBound().toString();
    Verdict V = Verdict::Warning;
    std::string Msg;
    if (S->assertOp() == CmpOp::Ge) {
      if (B.MinLower >= P - Tol) {
        V = Verdict::Safe;
        Msg = "probability assertion proved: guaranteed mass " +
              fmt(B.MinLower) + " from every pre-state satisfies " +
              BoundText;
      } else if (B.MaxUpper < P - Tol) {
        V = Verdict::Error;
        Msg = "probability assertion violated: mass is at most " +
              fmt(B.MaxUpper) + " from every pre-state, below the asserted " +
              BoundText;
      }
    } else {
      if (B.MaxUpper <= P + Tol) {
        V = Verdict::Safe;
        Msg = "probability assertion proved: possible mass at most " +
              fmt(B.MaxUpper) + " from every pre-state satisfies " +
              BoundText;
      } else if (B.MinLower > P + Tol) {
        V = Verdict::Error;
        Msg = "probability assertion violated: mass is at least " +
              fmt(B.MinLower) +
              " from every pre-state, above the asserted " + BoundText;
      }
    }
    if (V == Verdict::Warning)
      Msg = "cannot prove the probability assertion: analyzed mass bounds "
            "[" +
            fmt(B.MinLower) + ", " + fmt(B.MaxUpper) +
            "] over pre-states do not establish " + BoundText;
    Db.add(makeRecord(*S, V, std::move(Msg)));
  }
  return Db;
}

//===----------------------------------------------------------------------===//
// MDP: assert_reward over expected-reward upper bounds
//===----------------------------------------------------------------------===//

ChecksDb checks::checkMdp(const cfg::ProgramGraph &Graph,
                          const std::vector<double> &Values,
                          const CheckerOptions &Opts) {
  ChecksDb Db;
  for (auto [Node, S] : collectAssertions(Graph)) {
    if (S->assertKind() != AssertKind::Reward) {
      Db.add(makeRecord(*S, Verdict::Skipped,
                        std::string("the MDP domain checks only "
                                    "assert_reward; assert_") +
                            assertKindName(S->assertKind()) + " skipped"));
      continue;
    }
    if (!Opts.Converged) {
      Db.add(notConvergedRecord(*S));
      continue;
    }
    assert(Node < Values.size() && "value vector does not cover the graph");
    double V = Values[Node];
    double R = S->assertBound().toDouble();
    double Tol = Opts.Tolerance;
    std::string BoundText =
        std::string(cmpSpelling(S->assertOp())) + " " +
        S->assertBound().toString();
    Verdict Out = Verdict::Warning;
    std::string Msg;
    if (S->assertOp() == CmpOp::Le) {
      // The node value is an upper bound on the greatest expected reward,
      // so it can prove <= but never refute it.
      if (V <= R + Tol) {
        Out = Verdict::Safe;
        Msg = "reward assertion proved: expected reward is at most " +
              fmt(V) + ", satisfying " + BoundText;
      } else {
        Msg = "cannot prove the reward assertion: the analyzed upper bound " +
              fmt(V) + " exceeds the asserted " + BoundText +
              " (upper bounds cannot refute <=)";
      }
    } else {
      // ... and it can refute >= but never prove it.
      if (V < R - Tol) {
        Out = Verdict::Error;
        Msg = "reward assertion violated: expected reward is at most " +
              fmt(V) + " under every scheduler, below the asserted " +
              BoundText;
      } else {
        Msg = "cannot prove the reward assertion: the MDP domain computes "
              "upper bounds only, and the bound " +
              fmt(V) + " does not refute " + BoundText;
      }
    }
    Db.add(makeRecord(*S, Out, std::move(Msg)));
  }
  return Db;
}

//===----------------------------------------------------------------------===//
// LEIA: assert_interval over expectation invariants
//===----------------------------------------------------------------------===//

template <poly::NumericDomain NumV>
ChecksDb checks::checkLeia(const domains::LeiaDomainT<NumV> &Dom,
                           const cfg::ProgramGraph &Graph,
                           const std::vector<domains::LeiaValueT<NumV>> &Values,
                           const CheckerOptions &Opts) {
  ChecksDb Db;
  const lang::Program &Prog = Graph.program();
  for (auto [Node, S] : collectAssertions(Graph)) {
    if (S->assertKind() != AssertKind::Interval) {
      Db.add(makeRecord(*S, Verdict::Skipped,
                        std::string("the LEIA domain checks only "
                                    "assert_interval; assert_") +
                            assertKindName(S->assertKind()) + " skipped"));
      continue;
    }
    std::vector<Rational> Coeffs(Prog.Vars.size());
    Rational Constant;
    if (!affineFold(S->assertTarget(), Coeffs, Constant)) {
      Db.add(makeRecord(*S, Verdict::Skipped,
                        "the asserted expression is not affine in the "
                        "program variables; assert_interval skipped"));
      continue;
    }
    if (!Opts.Converged) {
      Db.add(notConvergedRecord(*S));
      continue;
    }
    assert(Node < Values.size() && "value vector does not cover the graph");
    auto Bounds = Dom.objectiveBounds(Values[Node], Coeffs);
    Rational Lo = S->assertLo(), Hi = S->assertHi();
    std::string IntervalText =
        "[" + Lo.toString() + ", " + Hi.toString() + "]";
    if (!Bounds) {
      // A bottom expectation slice is not vacuous: under sub-probability
      // semantics zero terminating mass from every pre-state makes the
      // expectation of ANY objective exactly 0, so the verdict is the
      // containment of 0 (a fuzz-found fix — calling this SAFE was a
      // real soundness hole for asserted intervals excluding 0).
      if (Lo <= Rational(0) && Rational(0) <= Hi)
        Db.add(makeRecord(
            *S, Verdict::Safe,
            "interval assertion proved: no execution from the assertion "
            "terminates, so the expected value is exactly 0, which the "
            "asserted " +
                IntervalText + " contains"));
      else
        Db.add(makeRecord(
            *S, Verdict::Error,
            "interval assertion violated: no execution from the assertion "
            "terminates, so the expected value is exactly 0, which the "
            "asserted " +
                IntervalText + " excludes"));
      continue;
    }
    // The objective bounds are over E[target'] with the constant offset
    // applied afterwards: E[c0 + sum ci x_i'] = c0 + sum ci E[x_i'].
    std::optional<Rational> Min = Bounds->first, Max = Bounds->second;
    if (Min)
      *Min += Constant;
    if (Max)
      *Max += Constant;
    std::string RangeText = "[";
    RangeText += Min ? Min->toString() : "-inf";
    RangeText += ", ";
    RangeText += Max ? Max->toString() : "+inf";
    RangeText += "]";
    Verdict V = Verdict::Warning;
    std::string Msg;
    if (Min && Max && *Min >= Lo && *Max <= Hi) {
      V = Verdict::Safe;
      Msg = "interval assertion proved: the expected value lies in " +
            RangeText + " which is contained in the asserted " + IntervalText;
    } else if ((Min && *Min > Hi) || (Max && *Max < Lo)) {
      V = Verdict::Error;
      Msg = "interval assertion violated: the expected value lies in " +
            RangeText + " which is disjoint from the asserted " +
            IntervalText;
    } else {
      Msg = "cannot prove the interval assertion: the analyzed expectation "
            "range " +
            RangeText + " is not contained in the asserted " + IntervalText;
    }
    Db.add(makeRecord(*S, V, std::move(Msg)));
  }
  return Db;
}

// The four numeric backends of LeiaDomainT.
template ChecksDb checks::checkLeia<poly::Polyhedron>(
    const domains::LeiaDomainT<poly::Polyhedron> &, const cfg::ProgramGraph &,
    const std::vector<domains::LeiaValueT<poly::Polyhedron>> &,
    const CheckerOptions &);
template ChecksDb checks::checkLeia<poly::LadderValue>(
    const domains::LeiaDomainT<poly::LadderValue> &, const cfg::ProgramGraph &,
    const std::vector<domains::LeiaValueT<poly::LadderValue>> &,
    const CheckerOptions &);
template ChecksDb checks::checkLeia<poly::Zones>(
    const domains::LeiaDomainT<poly::Zones> &, const cfg::ProgramGraph &,
    const std::vector<domains::LeiaValueT<poly::Zones>> &,
    const CheckerOptions &);
template ChecksDb checks::checkLeia<poly::Intervals>(
    const domains::LeiaDomainT<poly::Intervals> &, const cfg::ProgramGraph &,
    const std::vector<domains::LeiaValueT<poly::Intervals>> &,
    const CheckerOptions &);

//===----------------------------------------------------------------------===//
// Skipping and reporting
//===----------------------------------------------------------------------===//

ChecksDb checks::skipAllChecks(const cfg::ProgramGraph &Graph,
                               const std::string &Reason) {
  ChecksDb Db;
  for (auto [Node, S] : collectAssertions(Graph)) {
    (void)Node;
    Db.add(makeRecord(*S, Verdict::Skipped, Reason));
  }
  return Db;
}

void checks::reportChecks(const ChecksDb &Db, DiagnosticEngine &Diags,
                          bool IncludeSafe) {
  for (const CheckRecord &R : Db.records()) {
    Severity Sev = Severity::Warning;
    switch (R.TheVerdict) {
    case Verdict::Safe:
      if (!IncludeSafe)
        continue;
      Sev = Severity::Note;
      break;
    case Verdict::Warning:
    case Verdict::Skipped:
      Sev = Severity::Warning;
      break;
    case Verdict::Error:
      Sev = Severity::Error;
      break;
    }
    Diags.report(Sev, R.Loc, R.Code, R.Message);
  }
}
