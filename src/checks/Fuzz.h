//===- checks/Fuzz.h - Assertion planting and soundness oracles -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soundness-fuzzing rig behind `pmaf gen-corpus` / `verify-corpus` and
/// tests/ChecksTest: helpers that plant a random `assert_*` at the start of
/// a (generated) program's main procedure, estimate the asserted quantity's
/// ground truth by Monte-Carlo execution (concrete::Interpreter), and judge
/// whether a checker verdict is consistent with that estimate.
///
/// The planting shape is deliberate: the assertion goes *first*, followed
/// by a prologue that (re)initializes every variable with constants, then
/// the original body. Because PMAF values are transformers to the exit,
/// the prologue makes all pre-state rows of the assertion's summary
/// coincide, so the checker's for-all-pre-states verdicts become decisive
/// exactly when the analysis is precise — and the concrete runs (which
/// start from the all-zero state, one of the quantified pre-states) remain
/// a sound witness against SAFE/ERROR verdicts.
///
/// The oracle accepts WARNING/SKIPPED unconditionally and tests:
///  * SAFE  — the sampled estimate must satisfy the asserted bound(s);
///  * ERROR — the sampled estimate must violate them,
/// each with a sampling tolerance supplied by the caller.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CHECKS_FUZZ_H
#define PMAF_CHECKS_FUZZ_H

#include "checks/Checker.h"
#include "lang/Ast.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace pmaf {
namespace checks {
namespace fuzz {

/// Rewrites main's body to { Assertion; Prologue...; old body }. The
/// assertion must be an Assert statement; \p Prologue may be empty.
void plantAssertion(lang::Program &Prog, lang::Stmt::Ptr Assertion,
                    std::vector<lang::Stmt::Ptr> Prologue);

/// A random `assert_prob(phi) >= p | <= p` over the Boolean variables of
/// \p Prog (small random predicate, bound on a 1/8 grid).
lang::Stmt::Ptr randomProbAssertion(Rng &R, const lang::Program &Prog);

/// A random `assert_reward >= r | <= r` with a small nonnegative bound.
lang::Stmt::Ptr randomRewardAssertion(Rng &R);

/// A random `assert_interval(e, lo, hi)` whose target is a small affine
/// combination of the real variables of \p Prog.
lang::Stmt::Ptr randomIntervalAssertion(Rng &R, const lang::Program &Prog);

/// Constant (re)initialization statements for every variable of \p Prog:
/// Booleans get `b := true/false` or a Bernoulli sample, reals a small
/// constant assignment.
std::vector<lang::Stmt::Ptr> randomInitPrologue(Rng &R,
                                                const lang::Program &Prog);

/// Inserts \p Count `reward(c)` statements at random top-level positions
/// of main (turning a Boolean program into an MDP benchmark).
void sprinkleRewards(Rng &R, lang::Program &Prog, unsigned Count);

/// Monte-Carlo estimate of the quantity asserted by the planted assertion.
struct GroundTruth {
  /// Prob: post-distribution mass of the predicate (terminated runs whose
  /// final state satisfies it, over *all* runs — rejected and out-of-fuel
  /// runs stay in the denominator, matching sub-probability kernels).
  /// Reward: mean accumulated reward. Interval: mean final target value
  /// over terminated runs, over all runs (divergence contributes 0).
  double Estimate = 0.0;
  unsigned Runs = 0;
};

/// Estimates the ground truth of \p Assertion (planted at the start of
/// main) by running main \p Runs times from the all-zero state with a
/// fair-coin scheduler, deterministically from \p Seed.
GroundTruth estimateGroundTruth(const lang::Program &Prog,
                                const lang::Stmt &Assertion, uint64_t Seed,
                                unsigned Runs = 4000,
                                unsigned MaxSteps = 20000);

/// The soundness oracle: \returns an explanation when verdict \p V is
/// inconsistent with the concrete estimate at tolerance \p Tol, or the
/// empty string when consistent. WARNING and SKIPPED are always
/// consistent.
std::string soundnessViolation(const lang::Stmt &Assertion, Verdict V,
                               const GroundTruth &GT, double Tol);

} // namespace fuzz
} // namespace checks
} // namespace pmaf

#endif // PMAF_CHECKS_FUZZ_H
