//===- checks/Fuzz.cpp - Assertion planting and soundness oracles ---------===//

#include "checks/Fuzz.h"

#include "concrete/Interpreter.h"

#include <cassert>
#include <cstdio>
#include <utility>

using namespace pmaf;
using namespace pmaf::checks;
using namespace pmaf::checks::fuzz;
using namespace pmaf::lang;

namespace {

unsigned mainProcIndex(const Program &Prog) {
  unsigned M = Prog.findProc("main");
  return M == ~0u ? 0 : M;
}

std::string fmt(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", X);
  return Buf;
}

/// A small random predicate over the Boolean variables of \p Prog (one or
/// two atoms; depth is kept tiny so the asserted mass is rarely trivial).
Cond::Ptr randomPlantCond(Rng &R, const Program &Prog) {
  std::vector<unsigned> Bools;
  for (unsigned I = 0; I != Prog.Vars.size(); ++I)
    if (!Prog.Vars[I].IsReal)
      Bools.push_back(I);
  if (Bools.empty())
    return Cond::makeTrue();
  auto Pick = [&] {
    return Cond::makeBoolVar(
        Bools[static_cast<size_t>(R.below(Bools.size()))]);
  };
  switch (R.below(4)) {
  case 0:
    return Pick();
  case 1:
    return Cond::makeNot(Pick());
  case 2:
    return Cond::makeAnd(Pick(), Pick());
  default:
    return Cond::makeOr(Pick(), Pick());
  }
}

} // namespace

void fuzz::plantAssertion(Program &Prog, Stmt::Ptr Assertion,
                          std::vector<Stmt::Ptr> Prologue) {
  assert(Assertion->kind() == Stmt::Kind::Assert && "not an assertion");
  Procedure &Main = Prog.Procs[mainProcIndex(Prog)];
  std::vector<Stmt::Ptr> Stmts;
  Stmts.push_back(std::move(Assertion));
  for (Stmt::Ptr &S : Prologue)
    Stmts.push_back(std::move(S));
  Stmts.push_back(std::move(Main.Body));
  Main.Body = Stmt::makeBlock(std::move(Stmts));
}

Stmt::Ptr fuzz::randomProbAssertion(Rng &R, const Program &Prog) {
  CmpOp Op = R.below(2) == 0 ? CmpOp::Ge : CmpOp::Le;
  Rational Bound(static_cast<int64_t>(R.below(9)), 8);
  return Stmt::makeAssertProb(randomPlantCond(R, Prog), Op,
                              std::move(Bound));
}

Stmt::Ptr fuzz::randomRewardAssertion(Rng &R) {
  CmpOp Op = R.below(2) == 0 ? CmpOp::Ge : CmpOp::Le;
  Rational Bound(static_cast<int64_t>(R.below(13)), 2);
  return Stmt::makeAssertReward(Op, std::move(Bound));
}

Stmt::Ptr fuzz::randomIntervalAssertion(Rng &R, const Program &Prog) {
  std::vector<unsigned> Reals;
  for (unsigned I = 0; I != Prog.Vars.size(); ++I)
    if (Prog.Vars[I].IsReal)
      Reals.push_back(I);
  Expr::Ptr Target;
  if (Reals.empty()) {
    Target = Expr::makeNumber(Rational(0));
  } else {
    auto Pick = [&] {
      return Expr::makeVar(
          Reals[static_cast<size_t>(R.below(Reals.size()))]);
    };
    switch (R.below(3)) {
    case 0:
      Target = Pick();
      break;
    case 1:
      Target = Expr::makeBinary(Expr::Kind::Add, Pick(), Pick());
      break;
    default:
      Target = Expr::makeBinary(
          Expr::Kind::Mul,
          Expr::makeNumber(Rational(static_cast<int64_t>(1 + R.below(3)))),
          Pick());
      break;
    }
  }
  Rational Lo(static_cast<int64_t>(R.below(9)), 2);
  Rational Hi = Lo + Rational(static_cast<int64_t>(R.below(9)), 2);
  return Stmt::makeAssertInterval(std::move(Target), std::move(Lo),
                                  std::move(Hi));
}

std::vector<Stmt::Ptr> fuzz::randomInitPrologue(Rng &R, const Program &Prog) {
  std::vector<Stmt::Ptr> Out;
  for (unsigned I = 0; I != Prog.Vars.size(); ++I) {
    if (!Prog.Vars[I].IsReal) {
      if (R.below(5) < 3) {
        Out.push_back(Stmt::makeAssign(I, Expr::makeBool(R.below(2) == 0)));
      } else {
        Dist D;
        D.TheKind = Dist::Kind::Bernoulli;
        D.Params.push_back(Expr::makeNumber(
            Rational(static_cast<int64_t>(R.below(5)), 4)));
        Out.push_back(Stmt::makeSample(I, std::move(D)));
      }
    } else {
      Out.push_back(Stmt::makeAssign(
          I, Expr::makeNumber(Rational(static_cast<int64_t>(R.below(9)), 2))));
    }
  }
  return Out;
}

void fuzz::sprinkleRewards(Rng &R, Program &Prog, unsigned Count) {
  Procedure &Main = Prog.Procs[mainProcIndex(Prog)];
  // The AST exposes block statements read-only, so rewards are layered
  // around the existing body: some plain, some behind a probabilistic
  // branch (so expectations mix), before and after the original block.
  std::vector<Stmt::Ptr> Before, After;
  for (unsigned I = 0; I != Count; ++I) {
    Rational Amount(static_cast<int64_t>(R.below(9)), 2);
    Stmt::Ptr S;
    if (R.below(2) == 0) {
      S = Stmt::makeReward(std::move(Amount));
    } else {
      Guard G;
      G.TheKind = Guard::Kind::Prob;
      G.Prob = Rational(static_cast<int64_t>(R.below(5)), 4);
      std::vector<Stmt::Ptr> Then, Else;
      Then.push_back(Stmt::makeReward(std::move(Amount)));
      Else.push_back(Stmt::makeReward(
          Rational(static_cast<int64_t>(R.below(5)), 2)));
      S = Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                       Stmt::makeBlock(std::move(Else)));
    }
    (R.below(2) == 0 ? Before : After).push_back(std::move(S));
  }
  std::vector<Stmt::Ptr> Stmts;
  for (Stmt::Ptr &S : Before)
    Stmts.push_back(std::move(S));
  Stmts.push_back(std::move(Main.Body));
  for (Stmt::Ptr &S : After)
    Stmts.push_back(std::move(S));
  Main.Body = Stmt::makeBlock(std::move(Stmts));
}

GroundTruth fuzz::estimateGroundTruth(const Program &Prog,
                                      const Stmt &Assertion, uint64_t Seed,
                                      unsigned Runs, unsigned MaxSteps) {
  assert(Assertion.kind() == Stmt::Kind::Assert && "not an assertion");
  concrete::Interpreter Interp(Prog, Seed);
  unsigned Main = mainProcIndex(Prog);
  std::vector<double> Zero(Prog.Vars.size(), 0.0);
  double Sum = 0.0;
  for (unsigned I = 0; I != Runs; ++I) {
    concrete::ExecResult Res = Interp.run(Main, Zero, MaxSteps);
    switch (Assertion.assertKind()) {
    case AssertKind::Prob:
      if (Res.terminated() &&
          Interp.evalCond(Assertion.assertCond(), Res.State))
        Sum += 1.0;
      break;
    case AssertKind::Reward:
      Sum += Res.Reward;
      break;
    case AssertKind::Interval:
      if (Res.terminated())
        Sum += Interp.evalExpr(Assertion.assertTarget(), Res.State);
      break;
    }
  }
  GroundTruth GT;
  GT.Runs = Runs;
  GT.Estimate = Runs ? Sum / Runs : 0.0;
  return GT;
}

std::string fuzz::soundnessViolation(const Stmt &Assertion, Verdict V,
                                     const GroundTruth &GT, double Tol) {
  if (V == Verdict::Warning || V == Verdict::Skipped)
    return "";
  double Est = GT.Estimate;
  switch (Assertion.assertKind()) {
  case AssertKind::Prob: {
    double P = Assertion.assertBound().toDouble();
    bool Ge = Assertion.assertOp() == CmpOp::Ge;
    if (V == Verdict::Safe && (Ge ? Est < P - Tol : Est > P + Tol))
      return "checker proved assert_prob " + std::string(Ge ? ">=" : "<=") +
             " " + Assertion.assertBound().toString() +
             " SAFE but the sampled mass is " + fmt(Est);
    if (V == Verdict::Error && (Ge ? Est >= P + Tol : Est <= P - Tol))
      return "checker proved assert_prob " + std::string(Ge ? ">=" : "<=") +
             " " + Assertion.assertBound().toString() +
             " VIOLATED but the sampled mass is " + fmt(Est);
    return "";
  }
  case AssertKind::Reward: {
    double Bound = Assertion.assertBound().toDouble();
    bool Ge = Assertion.assertOp() == CmpOp::Ge;
    // The sampled mean is one scheduler's expectation, a lower bound on
    // the supremum: it can witness against "sup <= r" style claims but
    // cannot refute SAFE >= (sup may be reached by another scheduler).
    if (V == Verdict::Safe && !Ge && Est > Bound + Tol)
      return "checker proved assert_reward <= " +
             Assertion.assertBound().toString() +
             " SAFE but the sampled mean reward is " + fmt(Est);
    if (V == Verdict::Error && Ge && Est >= Bound + Tol)
      return "checker proved assert_reward >= " +
             Assertion.assertBound().toString() +
             " VIOLATED but the sampled mean reward is " + fmt(Est);
    if (V == Verdict::Error && !Ge && Est <= Bound - Tol)
      return "checker proved assert_reward <= " +
             Assertion.assertBound().toString() +
             " VIOLATED but the sampled mean reward is " + fmt(Est);
    return "";
  }
  case AssertKind::Interval: {
    double Lo = Assertion.assertLo().toDouble();
    double Hi = Assertion.assertHi().toDouble();
    if (V == Verdict::Safe && (Est < Lo - Tol || Est > Hi + Tol))
      return "checker proved assert_interval [" +
             Assertion.assertLo().toString() + ", " +
             Assertion.assertHi().toString() +
             "] SAFE but the sampled expectation is " + fmt(Est);
    if (V == Verdict::Error && Est >= Lo + Tol && Est <= Hi - Tol)
      return "checker proved assert_interval [" +
             Assertion.assertLo().toString() + ", " +
             Assertion.assertHi().toString() +
             "] VIOLATED but the sampled expectation is " + fmt(Est);
    return "";
  }
  }
  return "";
}
