//===- baselines/ClaretForward.h - Forward Bayesian inference ---*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original *intraprocedural, forward* Bayesian-inference algorithm of
/// Claret et al. [FSE'13], which §5.1 of the paper reformulates inside
/// PMAF: dataflow facts are one-vocabulary distributions over Boolean
/// states, propagated forward through the structured AST (their Alg. 2),
/// with loops iterated to a fixpoint over the terminating mass.
///
/// The implementation serves two roles: (i) a baseline against which the
/// PMAF reformulation is validated (the backward two-vocabulary summary
/// applied to a prior must match the forward posterior), and (ii) the
/// contrast object for interprocedurality — it inlines calls and therefore
/// rejects recursive programs, exactly the limitation the paper's
/// reformulation lifts.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_BASELINES_CLARETFORWARD_H
#define PMAF_BASELINES_CLARETFORWARD_H

#include "domains/BoolStateSpace.h"
#include "lang/Ast.h"

#include <vector>

namespace pmaf {
namespace baselines {

/// Forward distribution-propagation Bayesian inference.
class ClaretForward {
public:
  /// \param Space Boolean state space (the program must be all-Boolean,
  /// single-vocabulary, without nondeterministic choice).
  /// \param Tolerance loop-mass fixpoint tolerance.
  explicit ClaretForward(const domains::BoolStateSpace &Space,
                         double Tolerance = 1e-12)
      : Space(&Space), Tolerance(Tolerance) {}

  /// Computes the (sub-probability) posterior of running procedure
  /// \p ProcIndex on \p Prior. Rejects nondeterminism and recursion by
  /// assertion — the limitations the PMAF reformulation removes.
  std::vector<double> posterior(unsigned ProcIndex,
                                const std::vector<double> &Prior) const;

private:
  std::vector<double> post(const std::vector<double> &Mu,
                           const lang::Stmt &S, unsigned Depth) const;

  const domains::BoolStateSpace *Space;
  double Tolerance;
};

} // namespace baselines
} // namespace pmaf

#endif // PMAF_BASELINES_CLARETFORWARD_H
