//===- baselines/PolySystem.cpp - Monotone polynomial equation systems ----===//

#include "baselines/PolySystem.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pmaf;
using namespace pmaf::baselines;

//===----------------------------------------------------------------------===//
// Arena construction
//===----------------------------------------------------------------------===//

PolySystem::ExprRef PolySystem::constant(double Value) {
  assert(Value >= 0.0 && "monotone systems need nonnegative constants");
  Node N;
  N.TheKind = Node::Kind::Const;
  N.Value = Value;
  Arena.push_back(N);
  return static_cast<ExprRef>(Arena.size() - 1);
}

PolySystem::ExprRef PolySystem::variable(unsigned EquationIndex) {
  Node N;
  N.TheKind = Node::Kind::Var;
  N.Var = EquationIndex;
  Arena.push_back(N);
  return static_cast<ExprRef>(Arena.size() - 1);
}

static PolySystem::ExprRef pushBinary(std::vector<PolySystem::Node> &Arena,
                                      PolySystem::Node::Kind Kind, int Lhs,
                                      int Rhs) {
  PolySystem::Node N;
  N.TheKind = Kind;
  N.Lhs = Lhs;
  N.Rhs = Rhs;
  Arena.push_back(N);
  return static_cast<PolySystem::ExprRef>(Arena.size() - 1);
}

PolySystem::ExprRef PolySystem::add(ExprRef Lhs, ExprRef Rhs) {
  return pushBinary(Arena, Node::Kind::Add, Lhs, Rhs);
}
PolySystem::ExprRef PolySystem::mul(ExprRef Lhs, ExprRef Rhs) {
  return pushBinary(Arena, Node::Kind::Mul, Lhs, Rhs);
}
PolySystem::ExprRef PolySystem::max(ExprRef Lhs, ExprRef Rhs) {
  return pushBinary(Arena, Node::Kind::Max, Lhs, Rhs);
}
PolySystem::ExprRef PolySystem::min(ExprRef Lhs, ExprRef Rhs) {
  return pushBinary(Arena, Node::Kind::Min, Lhs, Rhs);
}

unsigned PolySystem::addEquation(ExprRef Rhs) {
  Equations.push_back(Rhs);
  return static_cast<unsigned>(Equations.size() - 1);
}

bool PolySystem::isPolynomial() const {
  for (const Node &N : Arena)
    if (N.TheKind == Node::Kind::Max || N.TheKind == Node::Kind::Min)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

double PolySystem::eval(ExprRef Ref, const std::vector<double> &X) const {
  const Node &N = Arena[Ref];
  switch (N.TheKind) {
  case Node::Kind::Const:
    return N.Value;
  case Node::Kind::Var:
    return X[N.Var];
  case Node::Kind::Add:
    return eval(N.Lhs, X) + eval(N.Rhs, X);
  case Node::Kind::Mul:
    return eval(N.Lhs, X) * eval(N.Rhs, X);
  case Node::Kind::Max:
    return std::max(eval(N.Lhs, X), eval(N.Rhs, X));
  case Node::Kind::Min:
    return std::min(eval(N.Lhs, X), eval(N.Rhs, X));
  }
  assert(false && "unknown node kind");
  return 0.0;
}

double PolySystem::evalDerivative(ExprRef Ref, unsigned Var,
                                  const std::vector<double> &X) const {
  const Node &N = Arena[Ref];
  switch (N.TheKind) {
  case Node::Kind::Const:
    return 0.0;
  case Node::Kind::Var:
    return N.Var == Var ? 1.0 : 0.0;
  case Node::Kind::Add:
    return evalDerivative(N.Lhs, Var, X) + evalDerivative(N.Rhs, Var, X);
  case Node::Kind::Mul:
    return evalDerivative(N.Lhs, Var, X) * eval(N.Rhs, X) +
           eval(N.Lhs, X) * evalDerivative(N.Rhs, Var, X);
  case Node::Kind::Max:
  case Node::Kind::Min:
    assert(false && "derivative of a non-polynomial system");
    return 0.0;
  }
  assert(false && "unknown node kind");
  return 0.0;
}

std::vector<double> PolySystem::apply(const std::vector<double> &X) const {
  std::vector<double> Result(Equations.size());
  for (size_t I = 0; I != Equations.size(); ++I)
    Result[I] = eval(Equations[I], X);
  return Result;
}

//===----------------------------------------------------------------------===//
// Solvers
//===----------------------------------------------------------------------===//

std::vector<double> PolySystem::solveKleene(double Tolerance,
                                            unsigned MaxIterations,
                                            Stats *StatsOut) const {
  std::vector<double> X(Equations.size(), 0.0);
  Stats S;
  for (; S.Iterations != MaxIterations; ++S.Iterations) {
    std::vector<double> Next = apply(X);
    double Delta = 0.0;
    for (size_t I = 0; I != X.size(); ++I)
      Delta = std::max(Delta, std::fabs(Next[I] - X[I]));
    X = std::move(Next);
    if (Delta <= Tolerance) {
      S.Converged = true;
      ++S.Iterations;
      break;
    }
  }
  if (StatsOut)
    *StatsOut = S;
  return X;
}

namespace {

/// Solves A y = b by Gaussian elimination with partial pivoting; returns
/// false if A is (numerically) singular.
bool solveLinear(std::vector<std::vector<double>> A, std::vector<double> B,
                 std::vector<double> &Y) {
  size_t N = B.size();
  for (size_t Col = 0; Col != N; ++Col) {
    size_t Pivot = Col;
    for (size_t Row = Col + 1; Row != N; ++Row)
      if (std::fabs(A[Row][Col]) > std::fabs(A[Pivot][Col]))
        Pivot = Row;
    if (std::fabs(A[Pivot][Col]) < 1e-14)
      return false;
    std::swap(A[Col], A[Pivot]);
    std::swap(B[Col], B[Pivot]);
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = A[Row][Col] / A[Col][Col];
      if (Factor == 0.0)
        continue;
      for (size_t K = Col; K != N; ++K)
        A[Row][K] -= Factor * A[Col][K];
      B[Row] -= Factor * B[Col];
    }
  }
  Y.assign(N, 0.0);
  for (size_t Row = N; Row-- > 0;) {
    double Sum = B[Row];
    for (size_t K = Row + 1; K != N; ++K)
      Sum -= A[Row][K] * Y[K];
    Y[Row] = Sum / A[Row][Row];
  }
  return true;
}

} // namespace

std::vector<double> PolySystem::solveNewton(double Tolerance,
                                            unsigned MaxIterations,
                                            Stats *StatsOut) const {
  assert(isPolynomial() && "Newton requires a min/max-free system");
  size_t N = Equations.size();
  std::vector<double> X(N, 0.0);
  Stats S;
  for (; S.Iterations != MaxIterations; ++S.Iterations) {
    std::vector<double> FX = apply(X);
    double Residual = 0.0;
    for (size_t I = 0; I != N; ++I)
      Residual = std::max(Residual, std::fabs(FX[I] - X[I]));
    if (Residual <= Tolerance) {
      S.Converged = true;
      break;
    }
    // Solve (I - J_f(X)) d = f(X) - X and step X += d.
    std::vector<std::vector<double>> A(N, std::vector<double>(N, 0.0));
    std::vector<double> B(N);
    for (size_t I = 0; I != N; ++I) {
      for (size_t J = 0; J != N; ++J) {
        A[I][J] = -evalDerivative(Equations[I], static_cast<unsigned>(J), X);
        if (I == J)
          A[I][J] += 1.0;
      }
      B[I] = FX[I] - X[I];
    }
    std::vector<double> D;
    if (!solveLinear(std::move(A), std::move(B), D)) {
      // Singular at the fixed point boundary; fall back to a Kleene step.
      X = std::move(FX);
      continue;
    }
    bool Progressed = false;
    for (size_t I = 0; I != N; ++I) {
      // Clamp to stay monotone from below (damped Newton).
      double Step = D[I];
      if (Step < 0.0)
        Step = FX[I] - X[I];
      if (Step > 0.0)
        Progressed = true;
      X[I] += Step;
    }
    if (!Progressed)
      X = std::move(FX);
  }
  if (StatsOut)
    *StatsOut = S;
  return X;
}

//===----------------------------------------------------------------------===//
// Builders from hyper-graph programs
//===----------------------------------------------------------------------===//

namespace {

enum class SystemKind { Termination, Reward };

PolySystem buildSystem(const cfg::ProgramGraph &Graph, NdetResolution Ndet,
                       SystemKind Kind) {
  PolySystem Sys;
  unsigned NumNodes = Graph.numNodes();
  // One equation per node, in node order; build the right-hand sides
  // after reserving all variables (addEquation assigns indices in order,
  // so first create placeholder refs).
  std::vector<PolySystem::ExprRef> Rhs(NumNodes, -1);
  for (unsigned V = 0; V != NumNodes; ++V) {
    const cfg::HyperEdge *E = Graph.outgoing(V);
    if (!E) {
      Rhs[V] = Sys.constant(Kind == SystemKind::Termination ? 1.0 : 0.0);
      continue;
    }
    switch (E->Ctrl.TheKind) {
    case cfg::ControlAction::Kind::Seq: {
      PolySystem::ExprRef Succ = Sys.variable(E->Dsts[0]);
      const lang::Stmt *Act = E->Ctrl.DataAction;
      if (Kind == SystemKind::Reward && Act &&
          Act->kind() == lang::Stmt::Kind::Reward)
        Rhs[V] = Sys.add(Sys.constant(Act->reward().toDouble()), Succ);
      else
        Rhs[V] = Succ;
      break;
    }
    case cfg::ControlAction::Kind::Call: {
      PolySystem::ExprRef Entry =
          Sys.variable(Graph.proc(E->Ctrl.Callee).Entry);
      PolySystem::ExprRef Succ = Sys.variable(E->Dsts[0]);
      Rhs[V] = Kind == SystemKind::Termination ? Sys.mul(Entry, Succ)
                                               : Sys.add(Entry, Succ);
      break;
    }
    case cfg::ControlAction::Kind::Prob: {
      double P = E->Ctrl.Prob.toDouble();
      Rhs[V] = Sys.add(
          Sys.mul(Sys.constant(P), Sys.variable(E->Dsts[0])),
          Sys.mul(Sys.constant(1.0 - P), Sys.variable(E->Dsts[1])));
      break;
    }
    case cfg::ControlAction::Kind::Ndet: {
      PolySystem::ExprRef L = Sys.variable(E->Dsts[0]);
      PolySystem::ExprRef R = Sys.variable(E->Dsts[1]);
      Rhs[V] = Ndet == NdetResolution::Max ? Sys.max(L, R) : Sys.min(L, R);
      break;
    }
    case cfg::ControlAction::Kind::Cond:
      assert(false &&
             "recursive Markov chains/MDPs have no conditional-choice");
      Rhs[V] = Sys.constant(0.0);
      break;
    }
  }
  for (unsigned V = 0; V != NumNodes; ++V)
    Sys.addEquation(Rhs[V]);
  return Sys;
}

} // namespace

PolySystem baselines::terminationSystem(const cfg::ProgramGraph &Graph,
                                        NdetResolution Ndet) {
  return buildSystem(Graph, Ndet, SystemKind::Termination);
}

PolySystem baselines::rewardSystem(const cfg::ProgramGraph &Graph,
                                   NdetResolution Ndet) {
  return buildSystem(Graph, Ndet, SystemKind::Reward);
}
