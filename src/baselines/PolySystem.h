//===- baselines/PolySystem.h - Monotone polynomial equation systems ------===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A PReMo-style analyzer for recursive Markov chains and recursive Markov
/// decision processes (Wojtczak & Etessami; Etessami & Yannakakis): systems
/// of monotone equations x = f(x) over [0, ∞], where each f_i is built from
/// nonnegative constants, variables, +, *, and (for MDPs) min/max. §6.2 of
/// the paper validates PMAF by checking that it "computed the same answer
/// as PReMo"; this module reproduces that comparison, and the
/// Newton-vs-Kleene bench reproduces the classic convergence-speed contrast
/// on which PReMo is built.
///
/// Solvers:
///  * Kleene iteration from 0 (always applicable; linear convergence).
///  * Newton's method (decomposition-free dense variant; polynomial
///    systems only, i.e. no min/max), which converges quadratically near
///    the least fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_BASELINES_POLYSYSTEM_H
#define PMAF_BASELINES_POLYSYSTEM_H

#include "cfg/HyperGraph.h"

#include <cstdint>
#include <vector>

namespace pmaf {
namespace baselines {

/// A system of monotone equations x_i = f_i(x).
class PolySystem {
public:
  /// Expression node in a flat arena.
  struct Node {
    enum class Kind { Const, Var, Add, Mul, Max, Min };
    Kind TheKind = Kind::Const;
    double Value = 0.0; ///< Kind::Const.
    unsigned Var = 0;   ///< Kind::Var (equation index).
    int Lhs = -1, Rhs = -1;
  };

  /// Handle to an expression (index into the arena).
  using ExprRef = int;

  ExprRef constant(double Value);
  ExprRef variable(unsigned EquationIndex);
  ExprRef add(ExprRef Lhs, ExprRef Rhs);
  ExprRef mul(ExprRef Lhs, ExprRef Rhs);
  ExprRef max(ExprRef Lhs, ExprRef Rhs);
  ExprRef min(ExprRef Lhs, ExprRef Rhs);

  /// Defines x_i = Rhs for the next i; returns i.
  unsigned addEquation(ExprRef Rhs);

  unsigned numEquations() const {
    return static_cast<unsigned>(Equations.size());
  }

  /// \returns true if no equation uses min or max.
  bool isPolynomial() const;

  /// Solver telemetry.
  struct Stats {
    unsigned Iterations = 0;
    bool Converged = false;
  };

  /// Kleene iteration from 0 until the step is below \p Tolerance.
  std::vector<double> solveKleene(double Tolerance = 1e-12,
                                  unsigned MaxIterations = 1000000,
                                  Stats *StatsOut = nullptr) const;

  /// Newton's method from 0 (monotone for such systems); requires
  /// isPolynomial().
  std::vector<double> solveNewton(double Tolerance = 1e-12,
                                  unsigned MaxIterations = 200,
                                  Stats *StatsOut = nullptr) const;

  /// Evaluates f at \p X.
  std::vector<double> apply(const std::vector<double> &X) const;

private:
  double eval(ExprRef Ref, const std::vector<double> &X) const;
  /// d f(Ref) / d x_Var at X.
  double evalDerivative(ExprRef Ref, unsigned Var,
                        const std::vector<double> &X) const;

  std::vector<Node> Arena;
  std::vector<ExprRef> Equations;
};

/// How a builder resolves nondeterministic choice.
enum class NdetResolution { Max, Min };

/// Builds the termination-probability system of a (recursive) Markov chain
/// or MDP given as a hyper-graph program: one variable per node, with
///   x_v = p x_u1 + (1-p) x_u2        (prob)
///   x_v = max/min(x_u1, x_u2)        (ndet)
///   x_v = x_u1                       (seq; data actions are state-blind)
///   x_v = x_entry(i) * x_u1          (call — the quadratic RMC case)
///   x_exit = 1.
/// Conditional-choice edges are rejected (asserted): the models of Defn 5.3
/// have none.
PolySystem terminationSystem(const cfg::ProgramGraph &Graph,
                             NdetResolution Ndet);

/// Builds the expected-total-reward system: like terminationSystem but
///   x_v = r + x_u1 for seq[reward(r)] and x_v = x_entry(i) + x_u1 for
/// calls, with x_exit = 0. (Assumes almost-sure termination, as PReMo does
/// for reward queries.)
PolySystem rewardSystem(const cfg::ProgramGraph &Graph, NdetResolution Ndet);

} // namespace baselines
} // namespace pmaf

#endif // PMAF_BASELINES_POLYSYSTEM_H
