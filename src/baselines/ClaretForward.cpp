//===- baselines/ClaretForward.cpp - Forward Bayesian inference -----------===//

#include "baselines/ClaretForward.h"

#include <cassert>

using namespace pmaf;
using namespace pmaf::baselines;
using namespace pmaf::domains;
using namespace pmaf::lang;

namespace {

double totalMass(const std::vector<double> &Mu) {
  double Sum = 0.0;
  for (double M : Mu)
    Sum += M;
  return Sum;
}

} // namespace

std::vector<double> ClaretForward::post(const std::vector<double> &Mu,
                                        const Stmt &S,
                                        unsigned Depth) const {
  assert(Depth < 256 && "recursion is out of scope for the forward "
                        "intraprocedural algorithm");
  size_t N = Space->numStates();
  switch (S.kind()) {
  case Stmt::Kind::Skip:
  case Stmt::Kind::Reward:
  case Stmt::Kind::Assert:
  case Stmt::Kind::Return: // Only allowed in tail position here.
    return Mu;
  case Stmt::Kind::Assign: {
    std::vector<double> Nu(N, 0.0);
    for (size_t State = 0; State != N; ++State)
      Nu[Space->set(State, S.varIndex(),
                    Space->evalExpr(S.value(), State))] += Mu[State];
    return Nu;
  }
  case Stmt::Kind::Sample: {
    const Dist &D = S.dist();
    std::vector<double> Nu(N, 0.0);
    switch (D.TheKind) {
    case Dist::Kind::Bernoulli: {
      assert(D.Params[0]->kind() == Expr::Kind::Number &&
             "Bernoulli parameter must be constant");
      double P = D.Params[0]->number().toDouble();
      for (size_t State = 0; State != N; ++State) {
        Nu[Space->set(State, S.varIndex(), true)] += P * Mu[State];
        Nu[Space->set(State, S.varIndex(), false)] += (1 - P) * Mu[State];
      }
      return Nu;
    }
    case Dist::Kind::Discrete: {
      for (size_t State = 0; State != N; ++State)
        for (size_t I = 0; I != D.Params.size(); ++I) {
          bool V = !D.Params[I]->number().isZero();
          Nu[Space->set(State, S.varIndex(), V)] +=
              D.Weights[I].toDouble() * Mu[State];
        }
      return Nu;
    }
    default:
      assert(false && "continuous distribution in a Boolean program");
      return Mu;
    }
  }
  case Stmt::Kind::Observe: {
    std::vector<double> Nu(N, 0.0);
    for (size_t State = 0; State != N; ++State)
      if (Space->evalCond(S.observed(), State))
        Nu[State] = Mu[State];
    return Nu;
  }
  case Stmt::Kind::Block: {
    std::vector<double> Cur = Mu;
    for (const Stmt::Ptr &Child : S.stmts())
      Cur = post(Cur, *Child, Depth);
    return Cur;
  }
  case Stmt::Kind::If: {
    const Guard &G = S.guard();
    std::vector<double> ThenMu(N, 0.0), ElseMu(N, 0.0);
    switch (G.TheKind) {
    case Guard::Kind::Cond:
      for (size_t State = 0; State != N; ++State)
        (Space->evalCond(*G.Phi, State) ? ThenMu : ElseMu)[State] =
            Mu[State];
      break;
    case Guard::Kind::Prob: {
      double P = G.Prob.toDouble();
      for (size_t State = 0; State != N; ++State) {
        ThenMu[State] = P * Mu[State];
        ElseMu[State] = (1 - P) * Mu[State];
      }
      break;
    }
    case Guard::Kind::Ndet:
      assert(false && "the forward algorithm does not support "
                      "nondeterminism (see §5.1)");
      break;
    }
    std::vector<double> ThenOut = post(ThenMu, S.thenStmt(), Depth);
    std::vector<double> ElseOut =
        S.elseStmt() ? post(ElseMu, *S.elseStmt(), Depth) : ElseMu;
    for (size_t State = 0; State != N; ++State)
      ThenOut[State] += ElseOut[State];
    return ThenOut;
  }
  case Stmt::Kind::While: {
    const Guard &G = S.guard();
    std::vector<double> Inside = Mu;
    std::vector<double> Out(N, 0.0);
    // Iterate the loop, accumulating the exiting mass, until the mass
    // still inside is negligible (Alg. 2 of Claret et al., with the
    // float-chain convergence of §6.1).
    for (unsigned Iter = 0; Iter != 100000; ++Iter) {
      if (totalMass(Inside) <= Tolerance)
        break;
      std::vector<double> Continue(N, 0.0);
      switch (G.TheKind) {
      case Guard::Kind::Cond:
        for (size_t State = 0; State != N; ++State)
          (Space->evalCond(*G.Phi, State) ? Continue : Out)[State] +=
              Inside[State];
        break;
      case Guard::Kind::Prob: {
        double P = G.Prob.toDouble();
        for (size_t State = 0; State != N; ++State) {
          Continue[State] += P * Inside[State];
          Out[State] += (1 - P) * Inside[State];
        }
        break;
      }
      case Guard::Kind::Ndet:
        assert(false && "the forward algorithm does not support "
                        "nondeterminism (see §5.1)");
        break;
      }
      Inside = post(Continue, S.body(), Depth);
    }
    return Out;
  }
  case Stmt::Kind::Call:
    // Inline the callee (intraprocedural algorithm); recursion overflows
    // the depth guard above, which is the point of the comparison.
    return post(Mu, *Space->program().Procs[S.calleeIndex()].Body,
                Depth + 1);
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    assert(false && "unstructured control flow is out of scope for the "
                    "structural forward algorithm");
    return Mu;
  }
  assert(false && "unknown statement kind");
  return Mu;
}

std::vector<double>
ClaretForward::posterior(unsigned ProcIndex,
                         const std::vector<double> &Prior) const {
  assert(Prior.size() == Space->numStates() && "prior dimension mismatch");
  return post(Prior, *Space->program().Procs[ProcIndex].Body, 0);
}
