//===- cfg/HyperGraph.h - Control-flow hyper-graphs -------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow hyper-graphs (Defn 3.1) and the hyper-graph program model
/// (Defn 3.2): a program is a set of procedures, each a single-entry /
/// single-exit hyper-graph in which every node except the exit has exactly
/// one outgoing hyper-edge, and each hyper-edge carries a control-flow
/// action
///
///   Ctrl ::= seq[act] | call[i] | cond[phi] | prob[p] | ndet
///
/// with one destination for seq/call and two for the choice actions
/// (destination 0 is the then/true/weight-p branch).
///
/// Nodes are numbered globally across the whole program so that the
/// interprocedural equation system of §4.3 is a single vector of values.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CFG_HYPERGRAPH_H
#define PMAF_CFG_HYPERGRAPH_H

#include "lang/Ast.h"
#include "support/Rational.h"

#include <string>
#include <vector>

namespace pmaf {
namespace cfg {

/// The control-flow action attached to a hyper-edge (Defn 3.2).
struct ControlAction {
  enum class Kind { Seq, Call, Cond, Prob, Ndet };

  Kind TheKind = Kind::Seq;

  /// Kind::Seq: the data action (Assign/Sample/Observe/Reward statement),
  /// or nullptr for the trivial action skip.
  const lang::Stmt *DataAction = nullptr;

  /// Kind::Call: callee procedure index.
  unsigned Callee = 0;

  /// Kind::Cond: the branch condition (true-branch is destination 0).
  const lang::Cond *Phi = nullptr;

  /// Kind::Prob: probability of destination 0.
  Rational Prob;

  static ControlAction seq(const lang::Stmt *Action) {
    ControlAction A;
    A.TheKind = Kind::Seq;
    A.DataAction = Action;
    return A;
  }
  static ControlAction call(unsigned Callee) {
    ControlAction A;
    A.TheKind = Kind::Call;
    A.Callee = Callee;
    return A;
  }
  static ControlAction cond(const lang::Cond *Phi) {
    ControlAction A;
    A.TheKind = Kind::Cond;
    A.Phi = Phi;
    return A;
  }
  static ControlAction prob(Rational P) {
    ControlAction A;
    A.TheKind = Kind::Prob;
    A.Prob = std::move(P);
    return A;
  }
  static ControlAction ndet() {
    ControlAction A;
    A.TheKind = Kind::Ndet;
    return A;
  }
};

/// A hyper-edge <Src, Dsts> with its control action; |Dsts| is 1 for
/// seq/call and 2 for cond/prob/ndet.
struct HyperEdge {
  unsigned Src = 0;
  std::vector<unsigned> Dsts;
  ControlAction Ctrl;
};

/// A whole program as a family of control-flow hyper-graphs, plus the
/// queries the analysis framework needs. Holds non-owning pointers into
/// the lang::Program it was built from, which must outlive it.
class ProgramGraph {
public:
  struct ProcNodes {
    unsigned Entry = 0;
    unsigned Exit = 0;
  };

  /// Lowers \p Prog to hyper-graphs. Requires a semantically checked
  /// program (calls resolved).
  static ProgramGraph build(const lang::Program &Prog);

  const lang::Program &program() const { return *Prog; }

  unsigned numNodes() const { return static_cast<unsigned>(OutEdge.size()); }
  unsigned numProcs() const { return static_cast<unsigned>(Procs.size()); }

  const ProcNodes &proc(unsigned Index) const { return Procs[Index]; }

  /// \returns the unique outgoing hyper-edge of \p Node, or nullptr when
  /// \p Node is a procedure exit.
  const HyperEdge *outgoing(unsigned Node) const {
    int Index = OutEdge[Node];
    return Index < 0 ? nullptr : &Edges[Index];
  }

  /// \returns the index into edges() of \p Node's unique outgoing
  /// hyper-edge, or -1 when \p Node is a procedure exit. Edge indices are
  /// the keys of core::CompiledProgram's transformer cache.
  int outgoingIndex(unsigned Node) const { return OutEdge[Node]; }

  const std::vector<HyperEdge> &edges() const { return Edges; }

  /// \returns the procedure containing \p Node.
  unsigned procOf(unsigned Node) const { return ProcOfNode[Node]; }

  /// \returns the source position of the statement or guard that produced
  /// \p Node (unknown for synthetic nodes of programmatically built ASTs).
  SourceLoc nodeLoc(unsigned Node) const { return NodeLocs[Node]; }

  /// The dependence graph of Eqn 2, as successor lists: an arc u -> v means
  /// the value of v is computed from the value of u (v = src of a
  /// hyper-edge with u among its destinations, or v is a call site of the
  /// procedure whose entry is u).
  std::vector<std::vector<unsigned>> dependenceSuccessors() const;

  /// Graphviz rendering of all procedures (hyper-edges are drawn through a
  /// small point node when they have two destinations, as in Fig 2).
  std::string toDot() const;

private:
  friend class GraphBuilder;

  const lang::Program *Prog = nullptr;
  /// Outgoing hyper-edge index per node; -1 for procedure exits.
  std::vector<int> OutEdge;
  std::vector<unsigned> ProcOfNode;
  std::vector<SourceLoc> NodeLocs;
  std::vector<HyperEdge> Edges;
  std::vector<ProcNodes> Procs;
};

} // namespace cfg
} // namespace pmaf

#endif // PMAF_CFG_HYPERGRAPH_H
