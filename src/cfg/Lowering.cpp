//===- cfg/Lowering.cpp - AST to control-flow hyper-graph ------------------===//
//
// Lowers the structured AST (plus break/continue/return, which produce
// unstructured control flow as in Ex 3.4) to the hyper-graph program model
// of Defn 3.2. The translation is driven backward: each statement is lowered
// against its successor node, which matches the backward orientation of the
// analysis (§2.3).
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"

#include <cassert>

using namespace pmaf;
using namespace pmaf::cfg;
using namespace pmaf::lang;

namespace pmaf {
namespace cfg {

class GraphBuilder {
public:
  explicit GraphBuilder(const Program &Prog) { Graph.Prog = &Prog; }

  ProgramGraph run() {
    const Program &Prog = *Graph.Prog;
    Graph.Procs.resize(Prog.Procs.size());
    for (unsigned I = 0; I != Prog.Procs.size(); ++I) {
      CurrentProc = I;
      unsigned Exit = newNode(Prog.Procs[I].Loc);
      unsigned Entry =
          lowerStmt(*Prog.Procs[I].Body, Exit, ~0u, ~0u, Exit);
      Entry = ensureFreshEntry(Entry, Prog.Procs[I].Loc);
      Graph.Procs[I].Entry = Entry;
      Graph.Procs[I].Exit = Exit;
    }
    return std::move(Graph);
  }

private:
  unsigned newNode(SourceLoc Loc = {}) {
    Graph.OutEdge.push_back(-1);
    Graph.ProcOfNode.push_back(CurrentProc);
    Graph.NodeLocs.push_back(Loc);
    return static_cast<unsigned>(Graph.OutEdge.size() - 1);
  }

  void addEdge(unsigned Src, std::vector<unsigned> Dsts, ControlAction Ctrl) {
    assert(Graph.OutEdge[Src] < 0 && "node already has an outgoing edge");
    Graph.OutEdge[Src] = static_cast<int>(Graph.Edges.size());
    Graph.Edges.push_back(
        HyperEdge{Src, std::move(Dsts), std::move(Ctrl)});
  }

  static ControlAction guardAction(const Guard &G) {
    switch (G.TheKind) {
    case Guard::Kind::Cond:
      return ControlAction::cond(G.Phi.get());
    case Guard::Kind::Prob:
      return ControlAction::prob(G.Prob);
    case Guard::Kind::Ndet:
      return ControlAction::ndet();
    }
    assert(false && "unknown guard kind");
    return ControlAction::ndet();
  }

  /// Lowers \p S so that control continues at \p Succ; returns the entry
  /// node of the lowered fragment. \p BreakTarget and \p ContinueTarget are
  /// the current loop's exit and head (~0u outside loops); \p ExitNode is
  /// the procedure exit (the target of `return`).
  unsigned lowerStmt(const Stmt &S, unsigned Succ, unsigned BreakTarget,
                     unsigned ContinueTarget, unsigned ExitNode) {
    switch (S.kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Sample:
    case Stmt::Kind::Observe:
    case Stmt::Kind::Reward:
    case Stmt::Kind::Assert: {
      unsigned Node = newNode(S.loc());
      addEdge(Node, {Succ}, ControlAction::seq(&S));
      return Node;
    }
    case Stmt::Kind::Call: {
      unsigned Node = newNode(S.loc());
      addEdge(Node, {Succ}, ControlAction::call(S.calleeIndex()));
      return Node;
    }
    case Stmt::Kind::Block: {
      unsigned Cursor = Succ;
      const std::vector<Stmt::Ptr> &Stmts = S.stmts();
      for (size_t I = Stmts.size(); I-- > 0;)
        Cursor = lowerStmt(*Stmts[I], Cursor, BreakTarget, ContinueTarget,
                           ExitNode);
      return Cursor;
    }
    case Stmt::Kind::If: {
      unsigned ThenEntry =
          lowerStmt(S.thenStmt(), Succ, BreakTarget, ContinueTarget,
                    ExitNode);
      unsigned ElseEntry =
          S.elseStmt() ? lowerStmt(*S.elseStmt(), Succ, BreakTarget,
                                   ContinueTarget, ExitNode)
                       : Succ;
      unsigned Node = newNode(S.guard().Loc);
      addEdge(Node, {ThenEntry, ElseEntry}, guardAction(S.guard()));
      return Node;
    }
    case Stmt::Kind::While: {
      // The loop head is the confluence node; the body's normal successor
      // and `continue` return to it, `break` leaves to Succ.
      unsigned Head = newNode(S.guard().Loc);
      unsigned BodyEntry = lowerStmt(S.body(), Head, Succ, Head, ExitNode);
      addEdge(Head, {BodyEntry, Succ}, guardAction(S.guard()));
      return Head;
    }
    case Stmt::Kind::Break:
      assert(BreakTarget != ~0u && "break outside loop");
      return BreakTarget;
    case Stmt::Kind::Continue:
      assert(ContinueTarget != ~0u && "continue outside loop");
      return ContinueTarget;
    case Stmt::Kind::Return:
      return ExitNode;
    }
    assert(false && "unknown statement kind");
    return Succ;
  }

  /// Defn 3.1 requires the entry node to have no incoming hyper-edges; if
  /// lowering produced an entry that is a loop head (or the exit itself),
  /// prepend a skip node.
  unsigned ensureFreshEntry(unsigned Entry, SourceLoc ProcLoc) {
    bool Incoming = false;
    for (const HyperEdge &E : Graph.Edges)
      for (unsigned Dst : E.Dsts)
        if (Dst == Entry)
          Incoming = true;
    if (!Incoming && Graph.OutEdge[Entry] >= 0)
      return Entry;
    unsigned Fresh = newNode(ProcLoc);
    addEdge(Fresh, {Entry}, ControlAction::seq(nullptr));
    return Fresh;
  }

  ProgramGraph Graph;
  unsigned CurrentProc = 0;
};

} // namespace cfg
} // namespace pmaf

ProgramGraph ProgramGraph::build(const Program &Prog) {
  return GraphBuilder(Prog).run();
}

std::vector<std::vector<unsigned>> ProgramGraph::dependenceSuccessors() const {
  std::vector<std::vector<unsigned>> Succs(numNodes());
  auto AddArc = [&Succs](unsigned From, unsigned To) {
    for (unsigned Existing : Succs[From])
      if (Existing == To)
        return;
    Succs[From].push_back(To);
  };
  for (const HyperEdge &E : Edges) {
    for (unsigned Dst : E.Dsts)
      AddArc(Dst, E.Src);
    if (E.Ctrl.TheKind == ControlAction::Kind::Call)
      AddArc(Procs[E.Ctrl.Callee].Entry, E.Src);
  }
  return Succs;
}

std::string ProgramGraph::toDot() const {
  std::string Out = "digraph pmaf {\n  node [shape=circle];\n";
  auto NodeName = [](unsigned V) { return "v" + std::to_string(V); };
  for (unsigned P = 0; P != Procs.size(); ++P) {
    Out += "  subgraph cluster_" + std::to_string(P) + " {\n";
    Out += "    label=\"" + Prog->Procs[P].Name + "\";\n";
    for (unsigned V = 0; V != numNodes(); ++V)
      if (ProcOfNode[V] == P) {
        std::string Shape =
            V == Procs[P].Entry || V == Procs[P].Exit ? "doublecircle"
                                                      : "circle";
        Out += "    " + NodeName(V) + " [shape=" + Shape + "];\n";
      }
    Out += "  }\n";
  }
  unsigned PointId = 0;
  for (const HyperEdge &E : Edges) {
    std::string Label;
    switch (E.Ctrl.TheKind) {
    case ControlAction::Kind::Seq:
      Label = E.Ctrl.DataAction
                  ? lang::toString(*E.Ctrl.DataAction, *Prog)
                  : "skip";
      // Strip trailing ";\n" produced by the statement printer.
      while (!Label.empty() && (Label.back() == '\n' || Label.back() == ';'))
        Label.pop_back();
      break;
    case ControlAction::Kind::Call:
      Label = "call " + Prog->Procs[E.Ctrl.Callee].Name;
      break;
    case ControlAction::Kind::Cond:
      Label = "cond[" + lang::toString(*E.Ctrl.Phi, *Prog) + "]";
      break;
    case ControlAction::Kind::Prob:
      Label = "prob[" + E.Ctrl.Prob.toString() + "]";
      break;
    case ControlAction::Kind::Ndet:
      Label = "ndet";
      break;
    }
    if (E.Dsts.size() == 1) {
      Out += "  " + NodeName(E.Src) + " -> " + NodeName(E.Dsts[0]) +
             " [label=\"" + Label + "\"];\n";
    } else {
      std::string Point = "p" + std::to_string(PointId++);
      Out += "  " + Point + " [shape=point];\n";
      Out += "  " + NodeName(E.Src) + " -> " + Point + " [label=\"" + Label +
             "\", arrowhead=none];\n";
      Out += "  " + Point + " -> " + NodeName(E.Dsts[0]) +
             " [label=\"1\"];\n";
      Out += "  " + Point + " -> " + NodeName(E.Dsts[1]) +
             " [label=\"2\"];\n";
    }
  }
  Out += "}\n";
  return Out;
}
