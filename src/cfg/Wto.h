//===- cfg/Wto.h - Bourdoncle weak topological order ------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bourdoncle's weak topological order (WTO) and widening-point
/// computation ("Efficient chaotic iteration strategies with widenings",
/// 1993, Fig 4), applied — as §4.4 of the paper prescribes — to the
/// dependence graph obtained from the hyper-graph by Eqn 2, so that every
/// cycle, including cycles through procedure calls, is cut by a widening
/// point.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CFG_WTO_H
#define PMAF_CFG_WTO_H

#include <string>
#include <vector>

namespace pmaf {
namespace cfg {

/// One element of a weak topological order: either a plain vertex
/// (Body empty, IsComponent false) or a component with head Node and
/// nested body.
struct WtoElement {
  unsigned Node = 0;
  bool IsComponent = false;
  std::vector<WtoElement> Body;
};

/// A weak topological order of a directed graph.
struct Wto {
  /// Top-level elements, in iteration order (dependencies first).
  std::vector<WtoElement> Elements;

  /// WideningPoint[v] is true iff v heads some component.
  std::vector<bool> WideningPoint;

  /// Computes the WTO of the graph given by successor lists. \p Roots are
  /// visited first (in order); any vertex unreachable from them is then
  /// used as an additional root so the order covers the whole graph.
  static Wto compute(const std::vector<std::vector<unsigned>> &Successors,
                     const std::vector<unsigned> &Roots);

  /// Positions[v] is v's index in the left-to-right linearization of the
  /// order (components flattened in place). Priority key for worklist
  /// iteration: processing dirty nodes in ascending position reproduces
  /// the stabilization discipline of the recursive strategy.
  std::vector<unsigned> positions() const;

  /// Renders e.g. "0 1 (2 3 (4 5)) 6" with components parenthesized.
  std::string toString() const;
};

/// Flattens \p Element into \p Nodes (the head followed by every body
/// node, recursively). Helper for invalidation bookkeeping that needs a
/// component's member set (the incremental server's dirty-SCC accounting).
inline void collectElementNodes(const WtoElement &Element,
                                std::vector<unsigned> &Nodes) {
  Nodes.push_back(Element.Node);
  for (const WtoElement &Child : Element.Body)
    collectElementNodes(Child, Nodes);
}

/// Forward closure of \p Seeds in the graph given by successor lists:
/// Reached[v] != 0 iff v is a seed or reachable from one. Over the
/// dependence graph (dependents(u) = readers of u) this is exactly the
/// set of nodes whose equation can observe a change at any seed — the
/// invalidation frontier of an incremental re-solve: everything outside
/// it keeps its prior fixpoint value (its right-hand side reads only
/// unreached nodes, whose equations and values are unchanged).
inline std::vector<char>
reachableFrom(const std::vector<std::vector<unsigned>> &Successors,
              const std::vector<unsigned> &Seeds) {
  std::vector<char> Reached(Successors.size(), 0);
  std::vector<unsigned> Work;
  for (unsigned S : Seeds) {
    if (S < Reached.size() && !Reached[S]) {
      Reached[S] = 1;
      Work.push_back(S);
    }
  }
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    for (unsigned W : Successors[V]) {
      if (!Reached[W]) {
        Reached[W] = 1;
        Work.push_back(W);
      }
    }
  }
  return Reached;
}

/// Conflict-free batching of one WTO component's body, the schedule of
/// the intra-component parallel strategy. Each *unit* is one top-level
/// body element of the component (a plain vertex or a whole nested
/// component, with all of its nodes); two units *conflict* when any
/// dependence arc connects their member sets, in either direction.
/// Batches[b] lists unit indices (positions in WtoElement::Body, in body
/// order); units within a batch are pairwise conflict-free, and every
/// conflict crosses from a lower to a strictly higher batch in body
/// order. Running batches in sequence with a barrier between them is
/// therefore extensionally identical to the sequential body pass: every
/// unit reads exactly the values it would have read sequentially.
struct IntraComponentPlan {
  std::vector<std::vector<unsigned>> Batches;
  /// Size of the widest batch (1 everywhere = the plan degenerates to
  /// the sequential body order).
  unsigned MaxWidth = 0;
};

/// Computes an IntraComponentPlan for every component of \p Order at any
/// nesting depth, by greedy level assignment in body order (unit j's
/// level is one more than the highest level among earlier units it
/// conflicts with). \p Successors is the dependence graph the order was
/// computed over. Indexed by component-head node id; non-head entries
/// are empty plans.
std::vector<IntraComponentPlan>
computeIntraPlans(const Wto &Order,
                  const std::vector<std::vector<unsigned>> &Successors);

} // namespace cfg
} // namespace pmaf

#endif // PMAF_CFG_WTO_H
