//===- cfg/Wto.h - Bourdoncle weak topological order ------------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bourdoncle's weak topological order (WTO) and widening-point
/// computation ("Efficient chaotic iteration strategies with widenings",
/// 1993, Fig 4), applied — as §4.4 of the paper prescribes — to the
/// dependence graph obtained from the hyper-graph by Eqn 2, so that every
/// cycle, including cycles through procedure calls, is cut by a widening
/// point.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CFG_WTO_H
#define PMAF_CFG_WTO_H

#include <string>
#include <vector>

namespace pmaf {
namespace cfg {

/// One element of a weak topological order: either a plain vertex
/// (Body empty, IsComponent false) or a component with head Node and
/// nested body.
struct WtoElement {
  unsigned Node = 0;
  bool IsComponent = false;
  std::vector<WtoElement> Body;
};

/// A weak topological order of a directed graph.
struct Wto {
  /// Top-level elements, in iteration order (dependencies first).
  std::vector<WtoElement> Elements;

  /// WideningPoint[v] is true iff v heads some component.
  std::vector<bool> WideningPoint;

  /// Computes the WTO of the graph given by successor lists. \p Roots are
  /// visited first (in order); any vertex unreachable from them is then
  /// used as an additional root so the order covers the whole graph.
  static Wto compute(const std::vector<std::vector<unsigned>> &Successors,
                     const std::vector<unsigned> &Roots);

  /// Positions[v] is v's index in the left-to-right linearization of the
  /// order (components flattened in place). Priority key for worklist
  /// iteration: processing dirty nodes in ascending position reproduces
  /// the stabilization discipline of the recursive strategy.
  std::vector<unsigned> positions() const;

  /// Renders e.g. "0 1 (2 3 (4 5)) 6" with components parenthesized.
  std::string toString() const;
};

} // namespace cfg
} // namespace pmaf

#endif // PMAF_CFG_WTO_H
