//===- cfg/Wto.cpp - Bourdoncle weak topological order --------------------===//

#include "cfg/Wto.h"

#include <cassert>
#include <limits>

using namespace pmaf;
using namespace pmaf::cfg;

namespace {

/// Direct implementation of Bourdoncle's Partition algorithm (1993, Fig 4).
/// Components are discovered by Tarjan-style DFS; each strongly connected
/// subcomponent becomes a nested WTO component whose head is a widening
/// point.
class WtoBuilder {
public:
  explicit WtoBuilder(const std::vector<std::vector<unsigned>> &Successors)
      : Successors(Successors), Dfn(Successors.size(), 0) {}

  Wto run(const std::vector<unsigned> &Roots) {
    Wto Result;
    Result.WideningPoint.assign(Successors.size(), false);
    Widening = &Result.WideningPoint;
    for (unsigned Root : Roots)
      if (Dfn[Root] == 0)
        visit(Root, Result.Elements);
    for (unsigned V = 0; V != Successors.size(); ++V)
      if (Dfn[V] == 0)
        visit(V, Result.Elements);
    return Result;
  }

private:
  static constexpr uint64_t Infinity =
      std::numeric_limits<uint64_t>::max();

  uint64_t visit(unsigned V, std::vector<WtoElement> &Partition) {
    Stack.push_back(V);
    Dfn[V] = ++Num;
    uint64_t Head = Dfn[V];
    bool Loop = false;
    for (unsigned W : Successors[V]) {
      uint64_t Min = Dfn[W] == 0 ? visit(W, Partition) : Dfn[W];
      if (Min <= Head) {
        Head = Min;
        Loop = true;
      }
    }
    if (Head == Dfn[V]) {
      Dfn[V] = Infinity;
      unsigned Element = Stack.back();
      Stack.pop_back();
      if (Loop) {
        // Reset the DFS numbers of the component's members and rebuild the
        // component with a fresh traversal rooted at its head.
        while (Element != V) {
          Dfn[Element] = 0;
          Element = Stack.back();
          Stack.pop_back();
        }
        Partition.insert(Partition.begin(), component(V));
      } else {
        WtoElement Vertex;
        Vertex.Node = V;
        Partition.insert(Partition.begin(), Vertex);
      }
    }
    return Head;
  }

  WtoElement component(unsigned V) {
    WtoElement Comp;
    Comp.Node = V;
    Comp.IsComponent = true;
    (*Widening)[V] = true;
    for (unsigned W : Successors[V])
      if (Dfn[W] == 0)
        visit(W, Comp.Body);
    return Comp;
  }

  const std::vector<std::vector<unsigned>> &Successors;
  std::vector<uint64_t> Dfn;
  std::vector<unsigned> Stack;
  std::vector<bool> *Widening = nullptr;
  uint64_t Num = 0;
};

void elementToString(const WtoElement &Element, std::string &Out) {
  if (!Out.empty() && Out.back() != '(')
    Out += ' ';
  if (!Element.IsComponent) {
    Out += std::to_string(Element.Node);
    return;
  }
  Out += '(';
  Out += std::to_string(Element.Node);
  for (const WtoElement &Child : Element.Body)
    elementToString(Child, Out);
  Out += ')';
}

} // namespace

Wto Wto::compute(const std::vector<std::vector<unsigned>> &Successors,
                 const std::vector<unsigned> &Roots) {
  return WtoBuilder(Successors).run(Roots);
}

std::string Wto::toString() const {
  std::string Out;
  for (const WtoElement &Element : Elements)
    elementToString(Element, Out);
  return Out;
}

std::vector<unsigned> Wto::positions() const {
  std::vector<unsigned> Positions(WideningPoint.size(), 0);
  unsigned Next = 0;
  auto Assign = [&](const auto &Self, const WtoElement &Element) -> void {
    Positions[Element.Node] = Next++;
    for (const WtoElement &Child : Element.Body)
      Self(Self, Child);
  };
  for (const WtoElement &Element : Elements)
    Assign(Assign, Element);
  return Positions;
}
