//===- cfg/Wto.cpp - Bourdoncle weak topological order --------------------===//

#include "cfg/Wto.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace pmaf;
using namespace pmaf::cfg;

namespace {

/// Direct implementation of Bourdoncle's Partition algorithm (1993, Fig 4).
/// Components are discovered by Tarjan-style DFS; each strongly connected
/// subcomponent becomes a nested WTO component whose head is a widening
/// point.
class WtoBuilder {
public:
  explicit WtoBuilder(const std::vector<std::vector<unsigned>> &Successors)
      : Successors(Successors), Dfn(Successors.size(), 0) {}

  Wto run(const std::vector<unsigned> &Roots) {
    Wto Result;
    Result.WideningPoint.assign(Successors.size(), false);
    Widening = &Result.WideningPoint;
    for (unsigned Root : Roots)
      if (Dfn[Root] == 0)
        visit(Root, Result.Elements);
    for (unsigned V = 0; V != Successors.size(); ++V)
      if (Dfn[V] == 0)
        visit(V, Result.Elements);
    return Result;
  }

private:
  static constexpr uint64_t Infinity =
      std::numeric_limits<uint64_t>::max();

  uint64_t visit(unsigned V, std::vector<WtoElement> &Partition) {
    Stack.push_back(V);
    Dfn[V] = ++Num;
    uint64_t Head = Dfn[V];
    bool Loop = false;
    for (unsigned W : Successors[V]) {
      uint64_t Min = Dfn[W] == 0 ? visit(W, Partition) : Dfn[W];
      if (Min <= Head) {
        Head = Min;
        Loop = true;
      }
    }
    if (Head == Dfn[V]) {
      Dfn[V] = Infinity;
      unsigned Element = Stack.back();
      Stack.pop_back();
      if (Loop) {
        // Reset the DFS numbers of the component's members and rebuild the
        // component with a fresh traversal rooted at its head.
        while (Element != V) {
          Dfn[Element] = 0;
          Element = Stack.back();
          Stack.pop_back();
        }
        Partition.insert(Partition.begin(), component(V));
      } else {
        WtoElement Vertex;
        Vertex.Node = V;
        Partition.insert(Partition.begin(), Vertex);
      }
    }
    return Head;
  }

  WtoElement component(unsigned V) {
    WtoElement Comp;
    Comp.Node = V;
    Comp.IsComponent = true;
    (*Widening)[V] = true;
    for (unsigned W : Successors[V])
      if (Dfn[W] == 0)
        visit(W, Comp.Body);
    return Comp;
  }

  const std::vector<std::vector<unsigned>> &Successors;
  std::vector<uint64_t> Dfn;
  std::vector<unsigned> Stack;
  std::vector<bool> *Widening = nullptr;
  uint64_t Num = 0;
};

/// Registers every node of \p Element (its own plus any nested body) as
/// belonging to unit \p Unit.
void collectUnitNodes(const WtoElement &Element, unsigned Unit,
                      std::vector<unsigned> &UnitOf) {
  UnitOf[Element.Node] = Unit;
  for (const WtoElement &Child : Element.Body)
    collectUnitNodes(Child, Unit, UnitOf);
}

/// Appends every node of \p Element to \p Members.
void collectMemberNodes(const WtoElement &Element,
                        std::vector<unsigned> &Members) {
  Members.push_back(Element.Node);
  for (const WtoElement &Child : Element.Body)
    collectMemberNodes(Child, Members);
}

void planComponent(const WtoElement &Element,
                   const std::vector<std::vector<unsigned>> &Successors,
                   std::vector<unsigned> &UnitOf,
                   std::vector<IntraComponentPlan> &Plans) {
  if (!Element.IsComponent)
    return;
  const unsigned NoUnit = std::numeric_limits<unsigned>::max();
  const unsigned NumUnits = static_cast<unsigned>(Element.Body.size());
  // Tag the component's nodes with their owning unit. The head is left
  // untagged: only the coordinator updates it, outside the batched pass,
  // so arcs touching it never constrain the batching.
  for (unsigned J = 0; J != NumUnits; ++J)
    collectUnitNodes(Element.Body[J], J, UnitOf);
  // Phase 1: every dependence arc whose endpoints lie in two distinct
  // units is a conflict; record it against the later unit.
  std::vector<std::vector<unsigned>> EarlierConflicts(NumUnits);
  for (unsigned J = 0; J != NumUnits; ++J) {
    std::vector<unsigned> Members;
    collectMemberNodes(Element.Body[J], Members);
    for (unsigned U : Members)
      for (unsigned V : Successors[U]) {
        unsigned K = UnitOf[V];
        if (K == NoUnit || K == J)
          continue;
        EarlierConflicts[std::max(J, K)].push_back(std::min(J, K));
      }
  }
  // Phase 2: greedy levels in body order — a unit sits one level above
  // the highest-levelled earlier unit it conflicts with. Earlier levels
  // are final when read because conflicts only ever point backwards.
  std::vector<unsigned> Level(NumUnits, 0);
  for (unsigned J = 0; J != NumUnits; ++J)
    for (unsigned E : EarlierConflicts[J])
      Level[J] = std::max(Level[J], Level[E] + 1);
  IntraComponentPlan &Plan = Plans[Element.Node];
  unsigned NumLevels = 0;
  for (unsigned J = 0; J != NumUnits; ++J)
    NumLevels = std::max(NumLevels, Level[J] + 1);
  Plan.Batches.assign(NumLevels, {});
  for (unsigned J = 0; J != NumUnits; ++J)
    Plan.Batches[Level[J]].push_back(J);
  for (const std::vector<unsigned> &Batch : Plan.Batches)
    Plan.MaxWidth =
        std::max(Plan.MaxWidth, static_cast<unsigned>(Batch.size()));
  // Untag before descending so nested components see only their own
  // units, then plan them too.
  for (unsigned J = 0; J != NumUnits; ++J)
    collectUnitNodes(Element.Body[J], NoUnit, UnitOf);
  for (const WtoElement &Child : Element.Body)
    planComponent(Child, Successors, UnitOf, Plans);
}

void elementToString(const WtoElement &Element, std::string &Out) {
  if (!Out.empty() && Out.back() != '(')
    Out += ' ';
  if (!Element.IsComponent) {
    Out += std::to_string(Element.Node);
    return;
  }
  Out += '(';
  Out += std::to_string(Element.Node);
  for (const WtoElement &Child : Element.Body)
    elementToString(Child, Out);
  Out += ')';
}

} // namespace

Wto Wto::compute(const std::vector<std::vector<unsigned>> &Successors,
                 const std::vector<unsigned> &Roots) {
  return WtoBuilder(Successors).run(Roots);
}

std::string Wto::toString() const {
  std::string Out;
  for (const WtoElement &Element : Elements)
    elementToString(Element, Out);
  return Out;
}

std::vector<IntraComponentPlan>
cfg::computeIntraPlans(const Wto &Order,
                       const std::vector<std::vector<unsigned>> &Successors) {
  const unsigned NumNodes =
      static_cast<unsigned>(Order.WideningPoint.size());
  std::vector<IntraComponentPlan> Plans(NumNodes);
  std::vector<unsigned> UnitOf(NumNodes,
                               std::numeric_limits<unsigned>::max());
  for (const WtoElement &Element : Order.Elements)
    planComponent(Element, Successors, UnitOf, Plans);
  return Plans;
}

std::vector<unsigned> Wto::positions() const {
  std::vector<unsigned> Positions(WideningPoint.size(), 0);
  unsigned Next = 0;
  auto Assign = [&](const auto &Self, const WtoElement &Element) -> void {
    Positions[Element.Node] = Next++;
    for (const WtoElement &Child : Element.Body)
      Self(Self, Child);
  };
  for (const WtoElement &Element : Elements)
    Assign(Assign, Element);
  return Positions;
}
