//===- poly/Zones.h - Difference-bound matrices over Q ----------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zone backend of the numeric-domain ladder: difference-bound
/// matrices (DBMs) over the rationals. A zone over x_0..x_{d-1} is the
/// conjunction of constraints `v_i - v_j <= c` over the extended variable
/// set v_0 = 0, v_{k+1} = x_k, which covers exactly the fragment
/// `x - y <= c`, `x <= c`, `x >= c` (and, scale-invariantly,
/// `a(x - y) + b >= 0` / `a x + b >= 0`). The matrix is kept shortest-path
/// closed (Floyd–Warshall) whenever nonempty, so the representation is
/// canonical: equality and inclusion are entrywise, join (the zone hull)
/// is the entrywise maximum, and projection just discards rows.
///
/// Constraints outside the fragment are soundly dropped, which makes the
/// standalone `--numeric=zones` mode an over-approximation; the ladder
/// escalates a block to polyhedra before that can happen, so zone blocks
/// inside a LadderValue are always exact.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_ZONES_H
#define PMAF_POLY_ZONES_H

#include "poly/NumericDomain.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// A zone (DBM-representable polyhedron) in Q^d.
class Zones {
public:
  /// The universe zone of dimension 0 (value-type default).
  Zones() = default;

  static Zones universe(unsigned Dim);
  static Zones empty(unsigned Dim);

  /// Meets the universe with each constraint in turn; constraints outside
  /// the DBM fragment are dropped (sound over-approximation).
  static Zones fromConstraints(unsigned Dim,
                               const std::vector<Constraint> &Cons);

  unsigned dim() const { return Dim; }
  bool isEmpty() const { return Empty; }
  bool isUniverse() const;

  Zones meet(const Zones &Other) const;
  Zones meet(const Constraint &Con) const;
  Zones join(const Zones &Other) const;
  Zones project(const std::vector<unsigned> &DimsToForget) const;
  Zones extend(unsigned Count) const;
  Zones dropTrailing(unsigned Count) const;
  Zones permute(const std::vector<unsigned> &NewIndex) const;

  bool contains(const Zones &Other) const;
  bool containsApprox(const Zones &Other, double Eps) const;
  bool equals(const Zones &Other) const;

  /// DBM widening: entries of *this not stable in \p Other are dropped.
  /// The result is re-closed to keep the representation canonical — the
  /// textbook caveat that closure after widening can delay convergence is
  /// accepted here because the ladder (the exact mode) widens at the
  /// polyhedra rung and never calls this.
  Zones widen(const Zones &Other) const;

  /// Rounds each finite entry with the same row rounding the polyhedra
  /// backend applies to its constraint rows, then re-closes.
  Zones roundedCoefficients(unsigned MaxBits = 40) const;

  std::optional<Rational> maximize(const LinearExpr &Expr) const;
  std::optional<Rational> minimize(const LinearExpr &Expr) const;

  /// Minimized constraints (delegates to the polyhedra backend, which
  /// strips the redundancy the closure introduces).
  std::vector<Constraint> constraintList() const;

  /// Every finite entry of the closed DBM as a constraint — exact but
  /// redundant; promotion to Polyhedron minimizes it away.
  std::vector<Constraint> rawConstraintList() const;

  std::string toString(const std::vector<std::string> &Names = {}) const;

  /// True if entry v_I - v_J (0 = the zero variable, K+1 = x_K) is finite.
  bool entryFinite(unsigned I, unsigned J) const;

  /// The finite bound of entry v_I - v_J; requires entryFinite(I, J).
  const Rational &entryBound(unsigned I, unsigned J) const;

  /// Partitions the variables into independence classes: two variables
  /// are related iff some direct difference entry between them is strictly
  /// tighter than the path through v_0 — i.e. the zone does not factor
  /// into a product across them. The ladder uses this to split blocks.
  std::vector<std::vector<unsigned>> packComponents() const;

  /// The sub-zone over the variables in \p Sub (ascending), in their
  /// order. Exact: a closed DBM restricted to a variable subset is the
  /// projection onto it.
  Zones restrictTo(const std::vector<unsigned> &Sub) const;

private:
  /// One matrix entry: an upper bound on v_i - v_j, or +infinity.
  struct Entry {
    bool Finite = false;
    Rational Bound;

    bool operator==(const Entry &Other) const {
      return Finite == Other.Finite && (!Finite || Bound == Other.Bound);
    }
  };

  unsigned Dim = 0;
  bool Empty = false;
  std::vector<Entry> M; ///< (Dim+1)^2 row-major; closed when nonempty.

  Zones(unsigned Dim, bool Empty) : Dim(Dim), Empty(Empty) {}

  Entry &at(unsigned I, unsigned J) { return M[I * (Dim + 1) + J]; }
  const Entry &at(unsigned I, unsigned J) const {
    return M[I * (Dim + 1) + J];
  }

  /// Tightens entry (I, J) toward \p Bound.
  void tighten(unsigned I, unsigned J, const Rational &Bound);

  /// Adds one fragment constraint without re-closing; \returns false if
  /// the constraint was trivially contradictory.
  bool addInPlace(const Constraint &Con);

  /// Floyd–Warshall closure; detects emptiness (negative diagonal) and
  /// clears the matrix in that case.
  void close();
};

static_assert(NumericDomain<Zones>,
              "Zones must model the numeric-backend interface");

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_ZONES_H
