//===- poly/Intervals.h - Per-variable rational bounds ----------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval (box) backend of the numeric-domain ladder: one optional
/// rational lower and upper bound per variable. Exact for the single-
/// variable bound fragment `a x + b {>=,==} 0`; any other constraint is
/// soundly dropped (over-approximated), which is what makes the standalone
/// `--numeric=intervals` mode lossy. Inside the ladder a box block is
/// always a single variable, so no information is ever dropped there — the
/// ladder escalates before a non-bound constraint reaches a box.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_INTERVALS_H
#define PMAF_POLY_INTERVALS_H

#include "poly/NumericDomain.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// A product of per-variable rational intervals (a box) in Q^d.
class Intervals {
public:
  /// One variable's range; a missing bound means unbounded on that side.
  struct Range {
    std::optional<Rational> Lo, Hi;

    bool operator==(const Range &Other) const {
      return Lo == Other.Lo && Hi == Other.Hi;
    }
    bool isFree() const { return !Lo && !Hi; }
  };

  /// The universe box of dimension 0 (value-type default).
  Intervals() = default;

  static Intervals universe(unsigned Dim);
  static Intervals empty(unsigned Dim);

  /// Meets the universe with each constraint in turn; constraints outside
  /// the bound fragment are dropped (sound over-approximation).
  static Intervals fromConstraints(unsigned Dim,
                                   const std::vector<Constraint> &Cons);

  unsigned dim() const { return Dim; }
  bool isEmpty() const { return Empty; }
  bool isUniverse() const;

  Intervals meet(const Intervals &Other) const;
  Intervals meet(const Constraint &Con) const;
  Intervals join(const Intervals &Other) const;
  Intervals project(const std::vector<unsigned> &DimsToForget) const;
  Intervals extend(unsigned Count) const;
  Intervals dropTrailing(unsigned Count) const;
  Intervals permute(const std::vector<unsigned> &NewIndex) const;

  bool contains(const Intervals &Other) const;
  bool containsApprox(const Intervals &Other, double Eps) const;
  bool equals(const Intervals &Other) const;

  /// Interval widening: bounds not stable from *this to \p Other are
  /// dropped. Requires *this ⊑ Other for a meaningful result.
  Intervals widen(const Intervals &Other) const;

  /// Rounds each bound with the same row rounding the polyhedra backend
  /// applies to its constraint rows (see roundConstraintRow).
  Intervals roundedCoefficients(unsigned MaxBits = 40) const;

  std::optional<Rational> maximize(const LinearExpr &Expr) const;
  std::optional<Rational> minimize(const LinearExpr &Expr) const;

  std::vector<Constraint> constraintList() const;
  std::string toString(const std::vector<std::string> &Names = {}) const;

  /// The range of variable \p Index; requires a nonempty box.
  const Range &range(unsigned Index) const;

private:
  unsigned Dim = 0;
  bool Empty = false;
  std::vector<Range> Ranges; ///< Size Dim; cleared when Empty.

  Intervals(unsigned Dim, bool Empty) : Dim(Dim), Empty(Empty) {}
};

static_assert(NumericDomain<Intervals>,
              "Intervals must model the numeric-backend interface");

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_INTERVALS_H
