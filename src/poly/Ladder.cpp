//===- poly/Ladder.cpp - The escalating, variable-packed backend ----------===//

#include "poly/Ladder.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace pmaf;
using namespace pmaf::poly;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

namespace {

/// Re-expresses \p Con (over the id list \p FromIds) over the id list
/// \p ToIds; every id carrying a nonzero coefficient must occur in ToIds
/// (both lists ascending).
Constraint reindexConstraint(const Constraint &Con,
                             const std::vector<unsigned> &FromIds,
                             const std::vector<unsigned> &ToIds) {
  LinearExpr E(static_cast<unsigned>(ToIds.size()));
  E.constantTerm() = Con.Expr.constantTerm();
  for (unsigned I = 0; I != Con.Expr.dim(); ++I) {
    if (Con.Expr.coeff(I).isZero())
      continue;
    auto It = std::lower_bound(ToIds.begin(), ToIds.end(), FromIds[I]);
    assert(It != ToIds.end() && *It == FromIds[I] &&
           "constraint support escapes the target id list");
    E.coeff(static_cast<unsigned>(It - ToIds.begin())) = Con.Expr.coeff(I);
  }
  return Constraint{std::move(E), Con.TheKind};
}

/// The identity id list 0..Size-1.
std::vector<unsigned> iota(unsigned Size) {
  std::vector<unsigned> Ids(Size);
  for (unsigned I = 0; I != Size; ++I)
    Ids[I] = I;
  return Ids;
}

std::vector<unsigned> findRoots(std::vector<unsigned> &Parent) {
  std::vector<unsigned> Roots(Parent.size());
  for (unsigned I = 0; I != Parent.size(); ++I) {
    unsigned R = I;
    while (Parent[R] != R)
      R = Parent[R];
    // Path compression.
    unsigned Cur = I;
    while (Parent[Cur] != R) {
      unsigned Next = Parent[Cur];
      Parent[Cur] = R;
      Cur = Next;
    }
    Roots[I] = R;
  }
  return Roots;
}

} // namespace

//===----------------------------------------------------------------------===//
// Block primitives
//===----------------------------------------------------------------------===//

LadderValue::Block LadderValue::freeBlock(unsigned Var) {
  Block B;
  B.Vars = {Var};
  B.R = Rung::Box;
  B.Box = Intervals::universe(1);
  return B;
}

namespace {

bool blockIsFree(const LadderValue::Block &B);

} // namespace

std::vector<Constraint> LadderValue::blockConstraints(const Block &B) {
  switch (B.R) {
  case Rung::Box:
    return B.Box.constraintList();
  case Rung::Zone:
    return B.Zn.rawConstraintList();
  case Rung::Poly:
    return B.Py.constraintList();
  }
  return {};
}

Polyhedron LadderValue::blockToPoly(const Block &B) {
  if (B.R == Rung::Poly)
    return B.Py;
  return Polyhedron::fromConstraints(
      static_cast<unsigned>(B.Vars.size()), blockConstraints(B));
}

namespace {

bool blockIsFree(const LadderValue::Block &B) {
  return B.R == LadderValue::Rung::Box && B.Box.isUniverse();
}

bool blockEquals(const LadderValue::Block &A, const LadderValue::Block &B) {
  if (A.Vars != B.Vars || A.R != B.R)
    return false;
  switch (A.R) {
  case LadderValue::Rung::Box:
    return A.Box.equals(B.Box);
  case LadderValue::Rung::Zone:
    return A.Zn.equals(B.Zn);
  case LadderValue::Rung::Poly:
    return A.Py.equals(B.Py);
  }
  return false;
}

} // namespace

void LadderValue::appendFromZone(std::vector<Block> &Out,
                                 const std::vector<unsigned> &Vars,
                                 const Zones &Z) {
  assert(!Z.isEmpty() && "canonicalizing an empty zone block");
  std::vector<std::vector<unsigned>> Comps = Z.packComponents();
  std::sort(Comps.begin(), Comps.end(),
            [](const auto &A, const auto &B) { return A[0] < B[0]; });
  for (const std::vector<unsigned> &Comp : Comps) {
    Zones Sub = Z.restrictTo(Comp);
    Block B;
    B.Vars.reserve(Comp.size());
    for (unsigned Local : Comp)
      B.Vars.push_back(Vars[Local]);
    if (Comp.size() == 1) {
      B.R = Rung::Box;
      B.Box = Intervals::fromConstraints(1, Sub.rawConstraintList());
      assert(!B.Box.isEmpty() && "nonempty zone produced an empty range");
    } else {
      B.R = Rung::Zone;
      B.Zn = std::move(Sub);
    }
    Out.push_back(std::move(B));
  }
}

void LadderValue::appendFromPoly(std::vector<Block> &Out,
                                 const std::vector<unsigned> &Vars,
                                 const Polyhedron &P) {
  assert(!P.isEmpty() && "canonicalizing an empty poly block");
  unsigned D = static_cast<unsigned>(Vars.size());
  assert(P.dim() == D && "block dimension mismatch");
  std::vector<Constraint> Cons = P.constraintList();

  // Union-find over the local dimensions by constraint support.
  std::vector<unsigned> Parent = iota(D);
  auto Find = [&](unsigned I) {
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]];
      I = Parent[I];
    }
    return I;
  };
  for (const Constraint &Con : Cons) {
    unsigned First = D;
    for (unsigned I = 0; I != D; ++I) {
      if (Con.Expr.coeff(I).isZero())
        continue;
      if (First == D)
        First = I;
      else
        Parent[Find(I)] = Find(First);
    }
  }
  std::vector<unsigned> Roots = findRoots(Parent);

  std::map<unsigned, std::vector<unsigned>> CompVars;
  for (unsigned I = 0; I != D; ++I)
    CompVars[Roots[I]].push_back(I);
  std::map<unsigned, std::vector<const Constraint *>> CompCons;
  for (const Constraint &Con : Cons)
    for (unsigned I = 0; I != D; ++I)
      if (!Con.Expr.coeff(I).isZero()) {
        CompCons[Roots[I]].push_back(&Con);
        break;
      }

  for (const auto &[Root, Locals] : CompVars) {
    auto ConsIt = CompCons.find(Root);
    if (ConsIt == CompCons.end()) {
      // Unconstrained dimensions become free singletons.
      for (unsigned Local : Locals)
        Out.push_back(freeBlock(Vars[Local]));
      continue;
    }
    std::vector<Constraint> Local;
    bool Fragment = true;
    for (const Constraint *Con : ConsIt->second) {
      Local.push_back(reindexConstraint(*Con, iota(D), Locals));
      ConstraintClass Class = classifyConstraint(Local.back());
      Fragment &= Class == ConstraintClass::Bound ||
                  Class == ConstraintClass::Difference;
    }
    std::vector<unsigned> Globals;
    Globals.reserve(Locals.size());
    for (unsigned L : Locals)
      Globals.push_back(Vars[L]);
    if (Locals.size() == 1) {
      Block B;
      B.Vars = std::move(Globals);
      B.R = Rung::Box;
      B.Box = Intervals::fromConstraints(1, Local);
      assert(!B.Box.isEmpty() && "nonempty poly produced an empty range");
      Out.push_back(std::move(B));
    } else if (Fragment) {
      // Every minimized row is in the DBM fragment, so the component *is*
      // a zone; descend a rung.
      appendFromZone(Out, Globals,
                     Zones::fromConstraints(
                         static_cast<unsigned>(Locals.size()), Local));
    } else if (Locals.size() == D) {
      Block B;
      B.Vars = std::move(Globals);
      B.R = Rung::Poly;
      B.Py = P;
      Out.push_back(std::move(B));
    } else {
      Block B;
      B.Vars = std::move(Globals);
      B.R = Rung::Poly;
      B.Py = Polyhedron::fromConstraints(
          static_cast<unsigned>(Locals.size()), Local);
      Out.push_back(std::move(B));
    }
  }
}

void LadderValue::sortBlocks() {
  std::sort(Blocks.begin(), Blocks.end(),
            [](const Block &A, const Block &B) {
              return A.Vars.front() < B.Vars.front();
            });
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

LadderValue LadderValue::universe(unsigned Dim) {
  LadderValue V(Dim, /*Empty=*/false);
  V.Blocks.reserve(Dim);
  for (unsigned I = 0; I != Dim; ++I)
    V.Blocks.push_back(freeBlock(I));
  return V;
}

LadderValue LadderValue::empty(unsigned Dim) {
  return LadderValue(Dim, /*Empty=*/true);
}

LadderValue
LadderValue::fromConstraints(unsigned Dim,
                             const std::vector<Constraint> &Cons) {
  LadderValue V = universe(Dim);
  for (const Constraint &Con : Cons) {
    V = V.meet(Con);
    if (V.Empty)
      break;
  }
  return V;
}

bool LadderValue::isUniverse() const {
  return !Empty && std::all_of(Blocks.begin(), Blocks.end(), blockIsFree);
}

//===----------------------------------------------------------------------===//
// Group alignment and merging
//===----------------------------------------------------------------------===//

std::vector<unsigned> LadderValue::alignGroups(const LadderValue &A,
                                               const LadderValue &B) {
  assert(A.Dim == B.Dim && "dimension mismatch");
  std::vector<unsigned> Parent = iota(A.Dim);
  auto Find = [&](unsigned I) {
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]];
      I = Parent[I];
    }
    return I;
  };
  for (const LadderValue *V : {&A, &B})
    for (const Block &Blk : V->Blocks)
      for (size_t I = 1; I < Blk.Vars.size(); ++I)
        Parent[Find(Blk.Vars[I])] = Find(Blk.Vars[0]);
  return findRoots(Parent);
}

std::vector<const LadderValue::Block *>
LadderValue::groupMembers(const std::vector<unsigned> &GroupOf,
                          unsigned Group) const {
  std::vector<const Block *> Members;
  for (const Block &Blk : Blocks)
    if (GroupOf[Blk.Vars.front()] == Group)
      Members.push_back(&Blk);
  return Members;
}

namespace {

/// Sorted union of the members' variables.
std::vector<unsigned>
memberVars(const std::vector<const LadderValue::Block *> &Members) {
  std::vector<unsigned> Vars;
  for (const LadderValue::Block *B : Members)
    Vars.insert(Vars.end(), B->Vars.begin(), B->Vars.end());
  std::sort(Vars.begin(), Vars.end());
  return Vars;
}

bool anyPolyMember(const std::vector<const LadderValue::Block *> &Members) {
  return std::any_of(Members.begin(), Members.end(),
                     [](const LadderValue::Block *B) {
                       return B->R == LadderValue::Rung::Poly;
                     });
}

bool allFreeMembers(const std::vector<const LadderValue::Block *> &Members) {
  return std::all_of(Members.begin(), Members.end(),
                     [](const LadderValue::Block *B) {
                       return blockIsFree(*B);
                     });
}

bool sameMembers(const std::vector<const LadderValue::Block *> &A,
                 const std::vector<const LadderValue::Block *> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!blockEquals(*A[I], *B[I]))
      return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Meet
//===----------------------------------------------------------------------===//

LadderValue LadderValue::meet(const Constraint &Con) const {
  assert(Con.Expr.dim() == Dim && "dimension mismatch");
  if (Empty)
    return *this;

  ConstraintClass Class = classifyConstraint(Con);
  if (Class == ConstraintClass::Trivial) {
    const Rational &B = Con.Expr.constantTerm();
    bool Sat = Con.TheKind == Constraint::Kind::Eq ? B.isZero()
                                                   : B.sign() >= 0;
    return Sat ? *this : empty(Dim);
  }

  std::vector<unsigned> Support;
  for (unsigned I = 0; I != Dim; ++I)
    if (!Con.Expr.coeff(I).isZero())
      Support.push_back(I);

  LadderValue Out(Dim, /*Empty=*/false);
  std::vector<const Block *> Touched;
  for (const Block &Blk : Blocks) {
    bool Hits = std::any_of(Blk.Vars.begin(), Blk.Vars.end(),
                            [&](unsigned V) {
                              return std::binary_search(
                                  Support.begin(), Support.end(), V);
                            });
    if (Hits)
      Touched.push_back(&Blk);
    else
      Out.Blocks.push_back(Blk);
  }
  assert(!Touched.empty() && "support must hit at least one block");

  std::vector<unsigned> GroupVars = memberVars(Touched);
  atomicMax(numericCounters().MaxPackWidth,
            static_cast<unsigned>(GroupVars.size()));

  Rung Prior = Rung::Box;
  for (const Block *B : Touched)
    Prior = std::max(Prior, B->R);
  // Merging several blocks (or several variables of one block's group)
  // forces at least the zone representation even for a bound constraint.
  Rung Current = Prior;
  if (Touched.size() > 1 || GroupVars.size() > 1)
    Current = std::max(Current, Rung::Zone);
  Rung Needed = Class == ConstraintClass::Bound      ? Rung::Box
                : Class == ConstraintClass::Difference ? Rung::Zone
                                                       : Rung::Poly;
  Rung Target = std::max(Current, Needed);
  // An escalation is any climb above the rung the touched blocks already
  // sat at — including the box → zone promotion a pack merge implies.
  if (Target > Prior)
    numericCounters().LadderEscalations.fetch_add(1,
                                                  std::memory_order_relaxed);

  Constraint Local = reindexConstraint(Con, iota(Dim), GroupVars);
  if (Target == Rung::Box) {
    assert(Touched.size() == 1 && GroupVars.size() == 1);
    Intervals Met = Touched.front()->Box.meet(Local);
    if (Met.isEmpty())
      return empty(Dim);
    Block B;
    B.Vars = GroupVars;
    B.R = Rung::Box;
    B.Box = std::move(Met);
    Out.Blocks.push_back(std::move(B));
  } else if (Target == Rung::Zone) {
    std::vector<Constraint> Cons;
    for (const Block *B : Touched)
      for (const Constraint &C : blockConstraints(*B))
        Cons.push_back(reindexConstraint(C, B->Vars, GroupVars));
    Cons.push_back(Local);
    Zones Met = Zones::fromConstraints(
        static_cast<unsigned>(GroupVars.size()), Cons);
    if (Met.isEmpty())
      return empty(Dim);
    appendFromZone(Out.Blocks, GroupVars, Met);
  } else {
    std::vector<Constraint> Cons;
    for (const Block *B : Touched)
      for (const Constraint &C : blockConstraints(*B))
        Cons.push_back(reindexConstraint(C, B->Vars, GroupVars));
    Cons.push_back(Local);
    Polyhedron Met = Polyhedron::fromConstraints(
        static_cast<unsigned>(GroupVars.size()), Cons);
    if (Met.isEmpty())
      return empty(Dim);
    appendFromPoly(Out.Blocks, GroupVars, Met);
  }
  Out.sortBlocks();
  return Out;
}

LadderValue LadderValue::meet(const LadderValue &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return empty(Dim);
  if (isUniverse())
    return Other;
  if (Other.isUniverse())
    return *this;

  std::vector<unsigned> GroupOf = alignGroups(*this, Other);
  std::vector<unsigned> Groups;
  for (unsigned I = 0; I != Dim; ++I)
    if (GroupOf[I] == I)
      Groups.push_back(I);

  LadderValue Out(Dim, /*Empty=*/false);
  for (unsigned G : Groups) {
    std::vector<const Block *> A = groupMembers(GroupOf, G);
    std::vector<const Block *> B = Other.groupMembers(GroupOf, G);
    if (allFreeMembers(B) || sameMembers(A, B)) {
      for (const Block *Blk : A)
        Out.Blocks.push_back(*Blk);
      continue;
    }
    if (allFreeMembers(A)) {
      for (const Block *Blk : B)
        Out.Blocks.push_back(*Blk);
      continue;
    }
    std::vector<unsigned> GroupVars = memberVars(A);
    atomicMax(numericCounters().MaxPackWidth,
              static_cast<unsigned>(GroupVars.size()));
    std::vector<Constraint> Cons;
    for (const std::vector<const Block *> *Side : {&A, &B})
      for (const Block *Blk : *Side)
        for (const Constraint &C : blockConstraints(*Blk))
          Cons.push_back(reindexConstraint(C, Blk->Vars, GroupVars));
    if (!anyPolyMember(A) && !anyPolyMember(B)) {
      Zones Met = Zones::fromConstraints(
          static_cast<unsigned>(GroupVars.size()), Cons);
      if (Met.isEmpty())
        return empty(Dim);
      appendFromZone(Out.Blocks, GroupVars, Met);
    } else {
      Polyhedron Met = Polyhedron::fromConstraints(
          static_cast<unsigned>(GroupVars.size()), Cons);
      if (Met.isEmpty())
        return empty(Dim);
      appendFromPoly(Out.Blocks, GroupVars, Met);
    }
  }
  Out.sortBlocks();
  return Out;
}

//===----------------------------------------------------------------------===//
// Join and widening
//===----------------------------------------------------------------------===//

namespace {

/// The product of the members as one polyhedron over their sorted
/// variable union (members carry disjoint variable packs).
Polyhedron mergedPoly(const std::vector<const LadderValue::Block *> &Members,
                      const std::vector<unsigned> &GroupVars,
                      Polyhedron (*ToPoly)(const LadderValue::Block &)) {
  std::vector<const LadderValue::Block *> Ordered = Members;
  std::sort(Ordered.begin(), Ordered.end(),
            [](const LadderValue::Block *A, const LadderValue::Block *B) {
              return A->Vars.front() < B->Vars.front();
            });
  Polyhedron Acc = ToPoly(*Ordered.front());
  std::vector<unsigned> ConcatVars = Ordered.front()->Vars;
  for (size_t I = 1; I != Ordered.size(); ++I) {
    Acc = Polyhedron::product(Acc, ToPoly(*Ordered[I]));
    ConcatVars.insert(ConcatVars.end(), Ordered[I]->Vars.begin(),
                      Ordered[I]->Vars.end());
  }
  // Interleave the concatenated variables into sorted group order.
  std::vector<unsigned> NewIndex(ConcatVars.size());
  bool Identity = true;
  for (size_t I = 0; I != ConcatVars.size(); ++I) {
    auto It = std::lower_bound(GroupVars.begin(), GroupVars.end(),
                               ConcatVars[I]);
    NewIndex[I] = static_cast<unsigned>(It - GroupVars.begin());
    Identity &= NewIndex[I] == I;
  }
  return Identity ? Acc : Acc.permute(NewIndex);
}

} // namespace

LadderValue LadderValue::join(const LadderValue &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;

  std::vector<unsigned> GroupOf = alignGroups(*this, Other);
  std::vector<unsigned> Groups;
  for (unsigned I = 0; I != Dim; ++I)
    if (GroupOf[I] == I)
      Groups.push_back(I);

  // Partition the groups into those where both sides hold the same set
  // (they factor out of the hull) and the rest (which must be hulled
  // jointly — per-group hulls of differing factors over-approximate).
  struct OpenGroup {
    std::vector<const Block *> A, B;
    bool AContainsB = false, BContainsA = false;
  };
  std::vector<const Block *> EqualBlocks;
  std::vector<OpenGroup> Open;
  for (unsigned G : Groups) {
    OpenGroup OG{groupMembers(GroupOf, G), Other.groupMembers(GroupOf, G),
                 false, false};
    if (sameMembers(OG.A, OG.B)) {
      EqualBlocks.insert(EqualBlocks.end(), OG.A.begin(), OG.A.end());
      continue;
    }
    std::vector<unsigned> GroupVars = memberVars(OG.A);
    if (!anyPolyMember(OG.A) && !anyPolyMember(OG.B)) {
      std::vector<Constraint> ACons, BCons;
      for (const Block *Blk : OG.A)
        for (const Constraint &C : blockConstraints(*Blk))
          ACons.push_back(reindexConstraint(C, Blk->Vars, GroupVars));
      for (const Block *Blk : OG.B)
        for (const Constraint &C : blockConstraints(*Blk))
          BCons.push_back(reindexConstraint(C, Blk->Vars, GroupVars));
      unsigned GD = static_cast<unsigned>(GroupVars.size());
      Zones ZA = Zones::fromConstraints(GD, ACons);
      Zones ZB = Zones::fromConstraints(GD, BCons);
      OG.AContainsB = ZA.contains(ZB);
      OG.BContainsA = ZB.contains(ZA);
    } else {
      Polyhedron PA = mergedPoly(OG.A, GroupVars, &blockToPoly);
      Polyhedron PB = mergedPoly(OG.B, GroupVars, &blockToPoly);
      OG.AContainsB = PA.contains(PB);
      OG.BContainsA = PB.contains(PA);
    }
    Open.push_back(std::move(OG));
  }

  if (Open.empty())
    return *this;
  if (std::all_of(Open.begin(), Open.end(),
                  [](const OpenGroup &G) { return G.AContainsB; }))
    return *this;
  if (std::all_of(Open.begin(), Open.end(),
                  [](const OpenGroup &G) { return G.BContainsA; }))
    return Other;

  // Joint hull of every open group at the polyhedra rung.
  std::vector<const Block *> AllA, AllB;
  bool Escalated = false;
  for (const OpenGroup &G : Open) {
    AllA.insert(AllA.end(), G.A.begin(), G.A.end());
    AllB.insert(AllB.end(), G.B.begin(), G.B.end());
    Escalated |= !anyPolyMember(G.A) || !anyPolyMember(G.B);
  }
  std::vector<unsigned> SuperVars = memberVars(AllA);
  atomicMax(numericCounters().MaxPackWidth,
            static_cast<unsigned>(SuperVars.size()));
  if (Escalated)
    numericCounters().LadderEscalations.fetch_add(1,
                                                  std::memory_order_relaxed);
  Polyhedron Hull = mergedPoly(AllA, SuperVars, &blockToPoly)
                        .join(mergedPoly(AllB, SuperVars, &blockToPoly));

  LadderValue Out(Dim, /*Empty=*/false);
  for (const Block *Blk : EqualBlocks)
    Out.Blocks.push_back(*Blk);
  appendFromPoly(Out.Blocks, SuperVars, Hull);
  Out.sortBlocks();
  return Out;
}

LadderValue LadderValue::widen(const LadderValue &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this; // Degenerate; widening assumes this ⊑ other.

  std::vector<unsigned> GroupOf = alignGroups(*this, Other);
  LadderValue Out(Dim, /*Empty=*/false);
  for (unsigned G = 0; G != Dim; ++G) {
    if (GroupOf[G] != G)
      continue;
    std::vector<const Block *> A = groupMembers(GroupOf, G);
    std::vector<const Block *> B = Other.groupMembers(GroupOf, G);
    if (sameMembers(A, B)) {
      for (const Block *Blk : A)
        Out.Blocks.push_back(*Blk);
      continue;
    }
    // The CH78 widening factors exactly over independent groups: a kept
    // constraint has group-local support, and it survives iff the new
    // value's restriction to the group satisfies it.
    std::vector<unsigned> GroupVars = memberVars(A);
    atomicMax(numericCounters().MaxPackWidth,
              static_cast<unsigned>(GroupVars.size()));
    if (!anyPolyMember(A) || !anyPolyMember(B))
      numericCounters().LadderEscalations.fetch_add(
          1, std::memory_order_relaxed);
    Polyhedron Wide = mergedPoly(A, GroupVars, &blockToPoly)
                          .widen(mergedPoly(B, GroupVars, &blockToPoly));
    assert(!Wide.isEmpty() && "widening of nonempty iterates is nonempty");
    appendFromPoly(Out.Blocks, GroupVars, Wide);
  }
  Out.sortBlocks();
  return Out;
}

//===----------------------------------------------------------------------===//
// Dimension surgery
//===----------------------------------------------------------------------===//

LadderValue
LadderValue::project(const std::vector<unsigned> &DimsToForget) const {
  if (Empty || DimsToForget.empty())
    return *this;
  std::vector<bool> Forget(Dim, false);
  for (unsigned D : DimsToForget) {
    assert(D < Dim && "projected dimension out of range");
    Forget[D] = true;
  }
  LadderValue Out(Dim, /*Empty=*/false);
  for (const Block &Blk : Blocks) {
    std::vector<unsigned> Local;
    for (unsigned I = 0; I != Blk.Vars.size(); ++I)
      if (Forget[Blk.Vars[I]])
        Local.push_back(I);
    if (Local.empty()) {
      Out.Blocks.push_back(Blk);
      continue;
    }
    switch (Blk.R) {
    case Rung::Box:
      Out.Blocks.push_back(freeBlock(Blk.Vars.front()));
      break;
    case Rung::Zone:
      appendFromZone(Out.Blocks, Blk.Vars, Blk.Zn.project(Local));
      break;
    case Rung::Poly:
      appendFromPoly(Out.Blocks, Blk.Vars, Blk.Py.project(Local));
      break;
    }
  }
  Out.sortBlocks();
  return Out;
}

LadderValue LadderValue::extend(unsigned Count) const {
  LadderValue Out(Dim + Count, Empty);
  if (Empty)
    return Out;
  Out.Blocks = Blocks;
  for (unsigned I = 0; I != Count; ++I)
    Out.Blocks.push_back(freeBlock(Dim + I));
  return Out;
}

LadderValue LadderValue::dropTrailing(unsigned Count) const {
  assert(Count <= Dim && "dropping more dimensions than available");
  if (Count == 0)
    return *this;
  if (Empty)
    return empty(Dim - Count);
  unsigned Cut = Dim - Count;
  std::vector<unsigned> Trailing;
  for (unsigned I = Cut; I != Dim; ++I)
    Trailing.push_back(I);
  LadderValue Projected = project(Trailing);
  LadderValue Out(Cut, /*Empty=*/false);
  for (Block &Blk : Projected.Blocks)
    if (Blk.Vars.front() < Cut)
      Out.Blocks.push_back(std::move(Blk));
  return Out;
}

LadderValue
LadderValue::permute(const std::vector<unsigned> &NewIndex) const {
  assert(NewIndex.size() == Dim && "permutation size mismatch");
  if (Empty)
    return *this;
  LadderValue Out(Dim, /*Empty=*/false);
  Out.Blocks.reserve(Blocks.size());
  for (const Block &Blk : Blocks) {
    unsigned N = static_cast<unsigned>(Blk.Vars.size());
    std::vector<unsigned> NewVars(N);
    for (unsigned I = 0; I != N; ++I)
      NewVars[I] = NewIndex[Blk.Vars[I]];
    std::vector<unsigned> Sorted = NewVars;
    std::sort(Sorted.begin(), Sorted.end());
    std::vector<unsigned> LocalPerm(N);
    bool Identity = true;
    for (unsigned I = 0; I != N; ++I) {
      auto It = std::lower_bound(Sorted.begin(), Sorted.end(), NewVars[I]);
      LocalPerm[I] = static_cast<unsigned>(It - Sorted.begin());
      Identity &= LocalPerm[I] == I;
    }
    Block Moved;
    Moved.Vars = std::move(Sorted);
    Moved.R = Blk.R;
    switch (Blk.R) {
    case Rung::Box:
      Moved.Box = Blk.Box;
      break;
    case Rung::Zone:
      Moved.Zn = Identity ? Blk.Zn : Blk.Zn.permute(LocalPerm);
      break;
    case Rung::Poly:
      Moved.Py = Identity ? Blk.Py : Blk.Py.permute(LocalPerm);
      break;
    }
    Out.Blocks.push_back(std::move(Moved));
  }
  Out.sortBlocks();
  return Out;
}

//===----------------------------------------------------------------------===//
// Comparisons
//===----------------------------------------------------------------------===//

bool LadderValue::contains(const LadderValue &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  std::vector<unsigned> GroupOf = alignGroups(*this, Other);
  for (unsigned G = 0; G != Dim; ++G) {
    if (GroupOf[G] != G)
      continue;
    std::vector<const Block *> A = groupMembers(GroupOf, G);
    if (allFreeMembers(A))
      continue;
    std::vector<const Block *> B = Other.groupMembers(GroupOf, G);
    if (sameMembers(A, B))
      continue;
    std::vector<unsigned> GroupVars = memberVars(A);
    if (!mergedPoly(A, GroupVars, &blockToPoly)
             .contains(mergedPoly(B, GroupVars, &blockToPoly)))
      return false;
  }
  return true;
}

bool LadderValue::containsApprox(const LadderValue &Other,
                                 double Eps) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  std::vector<unsigned> GroupOf = alignGroups(*this, Other);
  for (unsigned G = 0; G != Dim; ++G) {
    if (GroupOf[G] != G)
      continue;
    std::vector<const Block *> A = groupMembers(GroupOf, G);
    if (allFreeMembers(A))
      continue;
    std::vector<const Block *> B = Other.groupMembers(GroupOf, G);
    if (sameMembers(A, B))
      continue;
    std::vector<unsigned> GroupVars = memberVars(A);
    if (!mergedPoly(A, GroupVars, &blockToPoly)
             .containsApprox(mergedPoly(B, GroupVars, &blockToPoly), Eps))
      return false;
  }
  return true;
}

bool LadderValue::equals(const LadderValue &Other) const {
  return contains(Other) && Other.contains(*this);
}

//===----------------------------------------------------------------------===//
// Rounding, optimization, rendering
//===----------------------------------------------------------------------===//

LadderValue LadderValue::roundedCoefficients(unsigned MaxBits) const {
  if (Empty)
    return *this;
  LadderValue Out(Dim, /*Empty=*/false);
  for (const Block &Blk : Blocks) {
    switch (Blk.R) {
    case Rung::Box: {
      Intervals Rounded = Blk.Box.roundedCoefficients(MaxBits);
      if (Rounded.isEmpty())
        return empty(Dim);
      Block B = Blk;
      B.Box = std::move(Rounded);
      Out.Blocks.push_back(std::move(B));
      break;
    }
    case Rung::Zone: {
      Zones Rounded = Blk.Zn.roundedCoefficients(MaxBits);
      if (Rounded.isEmpty())
        return empty(Dim);
      appendFromZone(Out.Blocks, Blk.Vars, Rounded);
      break;
    }
    case Rung::Poly: {
      Polyhedron Rounded = Blk.Py.roundedCoefficients(MaxBits);
      if (Rounded.isEmpty())
        return empty(Dim);
      appendFromPoly(Out.Blocks, Blk.Vars, Rounded);
      break;
    }
    }
  }
  Out.sortBlocks();
  return Out;
}

std::optional<Rational> LadderValue::maximize(const LinearExpr &Expr) const {
  assert(!Empty && "maximize over the empty value");
  assert(Expr.dim() == Dim && "expression dimension mismatch");
  Rational Total = Expr.constantTerm();
  for (const Block &Blk : Blocks) {
    LinearExpr Local(static_cast<unsigned>(Blk.Vars.size()));
    bool Nonzero = false;
    for (unsigned I = 0; I != Blk.Vars.size(); ++I) {
      Local.coeff(I) = Expr.coeff(Blk.Vars[I]);
      Nonzero |= !Local.coeff(I).isZero();
    }
    if (!Nonzero)
      continue;
    std::optional<Rational> Best;
    switch (Blk.R) {
    case Rung::Box:
      Best = Blk.Box.maximize(Local);
      break;
    case Rung::Zone:
      Best = Blk.Zn.maximize(Local);
      break;
    case Rung::Poly:
      Best = Blk.Py.maximize(Local);
      break;
    }
    if (!Best)
      return std::nullopt;
    Total += *Best;
  }
  return Total;
}

std::optional<Rational> LadderValue::minimize(const LinearExpr &Expr) const {
  std::optional<Rational> NegMax = maximize(-Expr);
  if (!NegMax)
    return std::nullopt;
  return -*NegMax;
}

std::vector<Constraint> LadderValue::constraintList() const {
  std::vector<Constraint> Result;
  if (Empty)
    return Result;
  std::vector<unsigned> Global = iota(Dim);
  for (const Block &Blk : Blocks) {
    std::vector<Constraint> Local = Blk.R == Rung::Zone
                                        ? Blk.Zn.constraintList()
                                        : blockConstraints(Blk);
    for (const Constraint &Con : Local)
      Result.push_back(reindexConstraint(Con, Blk.Vars, Global));
  }
  return Result;
}

std::string
LadderValue::toString(const std::vector<std::string> &Names) const {
  return renderConstraints(constraintList(), Names, Empty);
}

std::vector<std::pair<unsigned, LadderValue::Rung>>
LadderValue::blockProfile() const {
  std::vector<std::pair<unsigned, Rung>> Profile;
  for (const Block &Blk : Blocks)
    Profile.emplace_back(static_cast<unsigned>(Blk.Vars.size()), Blk.R);
  return Profile;
}

Polyhedron LadderValue::toPolyhedron() const {
  if (Empty)
    return Polyhedron::empty(Dim);
  if (Blocks.empty())
    return Polyhedron::universe(0);
  std::vector<const Block *> All;
  for (const Block &Blk : Blocks)
    All.push_back(&Blk);
  return mergedPoly(All, iota(Dim), &blockToPoly);
}
