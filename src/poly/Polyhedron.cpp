//===- poly/Polyhedron.cpp - Convex polyhedra over the rationals ----------===//

#include "poly/Polyhedron.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

using namespace pmaf;
using namespace pmaf::poly;

//===----------------------------------------------------------------------===//
// Rows
//===----------------------------------------------------------------------===//

bool ConeRow::normalize() {
  BigInt Content;
  for (const BigInt &C : Coeffs)
    Content = BigInt::gcd(Content, C);
  if (Content.isZero())
    return false;
  if (Content != BigInt(1))
    for (BigInt &C : Coeffs)
      C = C.divExact(Content);
  if (IsLinearity) {
    // Canonical sign: first nonzero coefficient positive.
    for (const BigInt &C : Coeffs) {
      if (C.isZero())
        continue;
      if (C.sign() < 0)
        for (BigInt &D : Coeffs)
          D = D.negated();
      break;
    }
  }
  return true;
}

BigInt poly::dotProduct(const ConeRow &A, const ConeRow &B) {
  assert(A.Coeffs.size() == B.Coeffs.size() && "row width mismatch");
  BigInt Sum;
  for (size_t I = 0; I != A.Coeffs.size(); ++I)
    if (!A.Coeffs[I].isZero() && !B.Coeffs[I].isZero())
      Sum += A.Coeffs[I] * B.Coeffs[I];
  return Sum;
}

namespace {

bool rowLess(const ConeRow &A, const ConeRow &B) {
  if (A.IsLinearity != B.IsLinearity)
    return A.IsLinearity > B.IsLinearity;
  for (size_t I = 0; I != A.Coeffs.size(); ++I) {
    int Cmp = A.Coeffs[I].compare(B.Coeffs[I]);
    if (Cmp != 0)
      return Cmp < 0;
  }
  return false;
}

void sortAndDedup(std::vector<ConeRow> &Rows) {
  std::sort(Rows.begin(), Rows.end(), rowLess);
  Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
}

} // namespace

//===----------------------------------------------------------------------===//
// Numeric-layer counters and the conversion memo cache
//===----------------------------------------------------------------------===//

NumericCounters &poly::numericCounters() {
  static NumericCounters Counters;
  return Counters;
}

void poly::resetNumericPeaks() {
  numericCounters().PeakGeneratorRows.store(0, std::memory_order_relaxed);
  numericCounters().MaxPackWidth.store(0, std::memory_order_relaxed);
}

namespace {

size_t hashBigInt(const BigInt &Value) {
  if (Value.fitsInt64())
    return std::hash<int64_t>{}(Value.toInt64());
  double Approx = Value.toDouble();
  uint64_t Bits;
  std::memcpy(&Bits, &Approx, sizeof(Bits));
  return std::hash<uint64_t>{}(Bits ^ (uint64_t(Value.bitLength()) << 1));
}

/// Key of one constraint⇄generator conversion: the canonicalized
/// (normalized, sorted, deduplicated) input rows. Equality is exact; the
/// hash only has to be good, not perfect.
struct ConvKey {
  bool FromGenerators = false;
  unsigned Dim = 0;
  std::vector<ConeRow> Rows;

  bool operator==(const ConvKey &Other) const {
    return FromGenerators == Other.FromGenerators && Dim == Other.Dim &&
           Rows == Other.Rows;
  }
};

struct ConvKeyHash {
  size_t operator()(const ConvKey &Key) const {
    size_t H = Key.Dim * 2 + (Key.FromGenerators ? 1 : 0);
    for (const ConeRow &Row : Key.Rows) {
      H = H * 1099511628211ull + (Row.IsLinearity ? 7 : 3);
      for (const BigInt &C : Row.Coeffs)
        H = H * 1099511628211ull + hashBigInt(C);
    }
    return H;
  }
};

/// Memoizes whole representation conversions in two levels:
///
///  * **L1** — a per-thread map probed without any locking. Canonicalizing
///    an unchanged system — e.g. after a no-op meet — is one hash lookup
///    instead of a Chernikova run.
///  * **L2** — a process-wide, lock-striped shard array keyed by the
///    ConvKey hash. The L2 is what keeps the ladder's conversion reuse
///    alive under parallelism: per-solve pool workers are born with cold
///    L1s, and a component stolen (or reassigned) across workers would
///    otherwise recompute every minimization its previous worker already
///    paid for. A shard mutex is held only for lookup/insert — never
///    across a Chernikova run — so two threads racing on the same missing
///    key at worst both compute it (the duplicate insert is a no-op).
///
/// Both levels are bounded: at cap they evict about half their entries
/// (every other element, in iteration order — effectively random for an
/// unordered_map, and O(n) amortized over the n insertions that filled
/// them), counted in NumericCounters::CacheEvictions so a long-lived
/// process can see churn.
constexpr size_t L1ConversionCacheCap = 2048;
constexpr size_t L2ConversionShards = 16;
constexpr size_t L2ConversionShardCap = 4096;

using ConvMap = std::unordered_map<ConvKey, Polyhedron, ConvKeyHash>;

void evictHalf(ConvMap &Map) {
  uint64_t Dropped = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    It = Map.erase(It);
    if (It != Map.end())
      ++It; // Keep every other entry.
    ++Dropped;
  }
  numericCounters().CacheEvictions.fetch_add(Dropped,
                                             std::memory_order_relaxed);
}

struct ConvShard {
  std::mutex Mutex;
  ConvMap Map;
};

ConvShard &shardFor(size_t Hash) {
  static ConvShard Shards[L2ConversionShards];
  return Shards[Hash % L2ConversionShards];
}

/// The shared conversion-cache protocol: L1 probe, then L2 probe, then
/// compute (outside all locks) and publish to both levels. \p Compute
/// receives the canonicalized key and must be pure in it.
template <typename ComputeFn>
Polyhedron cachedConversion(ConvKey Key, ComputeFn &&Compute) {
  NumericCounters &Counters = numericCounters();
  thread_local ConvMap L1;
  if (auto It = L1.find(Key); It != L1.end()) {
    Counters.ConversionCacheHits.fetch_add(1, std::memory_order_relaxed);
    return It->second;
  }
  const size_t Hash = ConvKeyHash{}(Key);
  ConvShard &Shard = shardFor(Hash);
  std::optional<Polyhedron> P;
  {
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    if (auto It = Shard.Map.find(Key); It != Shard.Map.end())
      P = It->second; // Deep copy under the lock; BigInt is a value type.
  }
  if (P) {
    Counters.ConversionCacheHits.fetch_add(1, std::memory_order_relaxed);
    Counters.SharedCacheHits.fetch_add(1, std::memory_order_relaxed);
  } else {
    Counters.ConversionCacheMisses.fetch_add(1, std::memory_order_relaxed);
    P = Compute(static_cast<const ConvKey &>(Key));
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    if (Shard.Map.size() >= L2ConversionShardCap)
      evictHalf(Shard.Map);
    Shard.Map.emplace(Key, *P); // No-op if another thread raced us here.
  }
  if (L1.size() >= L1ConversionCacheCap)
    evictHalf(L1);
  return L1.emplace(std::move(Key), std::move(*P)).first->second;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dualization (Chernikova's algorithm)
//===----------------------------------------------------------------------===//

std::vector<ConeRow> poly::dualize(const std::vector<ConeRow> &Input,
                                   unsigned Cols) {
  numericCounters().MinimizationCalls.fetch_add(1, std::memory_order_relaxed);
  unsigned PeakRows = 0;
  // Process linearities first: each consumes a line cheaply and keeps the
  // intermediate generator systems small.
  std::vector<const ConeRow *> Ordered;
  Ordered.reserve(Input.size());
  for (const ConeRow &Row : Input)
    if (Row.IsLinearity)
      Ordered.push_back(&Row);
  for (const ConeRow &Row : Input)
    if (!Row.IsLinearity)
      Ordered.push_back(&Row);

  // Start from the universe cone: Cols independent lines.
  std::vector<ConeRow> Gens;
  for (unsigned I = 0; I != Cols; ++I) {
    ConeRow Line;
    Line.IsLinearity = true;
    Line.Coeffs.assign(Cols, BigInt(0));
    Line.Coeffs[I] = BigInt(1);
    Gens.push_back(std::move(Line));
  }

  std::vector<const ConeRow *> Processed;
  for (const ConeRow *Con : Ordered) {
    std::vector<BigInt> S(Gens.size());
    for (size_t I = 0; I != Gens.size(); ++I)
      S[I] = dotProduct(Gens[I], *Con);

    // Pivot case: some line is not orthogonal to the new constraint; use
    // it to make every other generator orthogonal, then either drop it
    // (equality) or orient it into a ray (inequality).
    size_t Pivot = Gens.size();
    for (size_t I = 0; I != Gens.size(); ++I)
      if (Gens[I].IsLinearity && !S[I].isZero()) {
        Pivot = I;
        break;
      }

    if (Pivot != Gens.size()) {
      BigInt AbsSL = S[Pivot].abs();
      int SignSL = S[Pivot].sign();
      for (size_t I = 0; I != Gens.size(); ++I) {
        if (I == Pivot || S[I].isZero())
          continue;
        // g' = |s(L)| * g - sign(s(L)) * s(g) * L keeps conic orientation
        // (the multiplier of g is positive) and achieves s(g') = 0.
        BigInt Mult = SignSL > 0 ? S[I] : S[I].negated();
        for (size_t Col = 0; Col != Cols; ++Col)
          Gens[I].Coeffs[Col] = AbsSL * Gens[I].Coeffs[Col] -
                                Mult * Gens[Pivot].Coeffs[Col];
        Gens[I].normalize();
      }
      if (Con->IsLinearity) {
        Gens.erase(Gens.begin() + static_cast<ptrdiff_t>(Pivot));
      } else {
        if (SignSL < 0)
          for (BigInt &C : Gens[Pivot].Coeffs)
            C = C.negated();
        Gens[Pivot].IsLinearity = false;
        Gens[Pivot].normalize();
      }
      Processed.push_back(Con);
      continue;
    }

    // Split case: partition the rays by the sign of their product.
    std::vector<size_t> Plus, Zero, Minus;
    std::vector<ConeRow> Lines;
    for (size_t I = 0; I != Gens.size(); ++I) {
      if (Gens[I].IsLinearity) {
        assert(S[I].isZero() && "line escaped the pivot case");
        Lines.push_back(Gens[I]);
        continue;
      }
      int Sign = S[I].sign();
      if (Sign > 0)
        Plus.push_back(I);
      else if (Sign < 0)
        Minus.push_back(I);
      else
        Zero.push_back(I);
    }

    // Saturation bitsets over the processed constraints, for the
    // combinatorial adjacency test (two extreme rays are adjacent iff no
    // third ray saturates every constraint they both saturate).
    std::vector<std::vector<bool>> Sat(Gens.size());
    std::vector<size_t> Rays;
    for (size_t I = 0; I != Gens.size(); ++I) {
      if (Gens[I].IsLinearity)
        continue;
      Rays.push_back(I);
      Sat[I].resize(Processed.size());
      for (size_t K = 0; K != Processed.size(); ++K)
        Sat[I][K] = dotProduct(Gens[I], *Processed[K]).isZero();
    }
    auto Adjacent = [&](size_t A, size_t B) {
      for (size_t Other : Rays) {
        if (Other == A || Other == B)
          continue;
        bool Covers = true;
        for (size_t K = 0; K != Processed.size() && Covers; ++K)
          if (Sat[A][K] && Sat[B][K] && !Sat[Other][K])
            Covers = false;
        if (Covers)
          return false;
      }
      return true;
    };

    std::vector<ConeRow> Next = std::move(Lines);
    for (size_t I : Zero)
      Next.push_back(Gens[I]);
    if (!Con->IsLinearity)
      for (size_t I : Plus)
        Next.push_back(Gens[I]);
    for (size_t P : Plus)
      for (size_t M : Minus) {
        if (!Adjacent(P, M))
          continue;
        // s(P) * g_M - s(M) * g_P: a conic combination with s = 0.
        ConeRow Combo;
        Combo.Coeffs.resize(Cols);
        for (size_t Col = 0; Col != Cols; ++Col)
          Combo.Coeffs[Col] =
              S[P] * Gens[M].Coeffs[Col] - S[M] * Gens[P].Coeffs[Col];
        if (Combo.normalize())
          Next.push_back(std::move(Combo));
      }
    Gens = std::move(Next);
    sortAndDedup(Gens);
    PeakRows = std::max(PeakRows, static_cast<unsigned>(Gens.size()));
    Processed.push_back(Con);
  }

  sortAndDedup(Gens);
  PeakRows = std::max(PeakRows, static_cast<unsigned>(Gens.size()));
  atomicMax(numericCounters().PeakGeneratorRows, PeakRows);
  return Gens;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

ConeRow Polyhedron::positivityRow(unsigned Dim) {
  ConeRow Row;
  Row.Coeffs.assign(Dim + 1, BigInt(0));
  Row.Coeffs[0] = BigInt(1);
  return Row;
}

bool Polyhedron::isTrivialConstraint(const ConeRow &Row) {
  for (size_t I = 1; I != Row.Coeffs.size(); ++I)
    if (!Row.Coeffs[I].isZero())
      return false;
  // All-variable-zero: either the positivity row (c0 >= 0) or the zero
  // row; an infeasible row (c0 < 0 or equality with c0 != 0) is kept so
  // emptiness shows up downstream (it cannot occur for nonempty systems).
  if (Row.IsLinearity)
    return Row.Coeffs[0].isZero();
  return Row.Coeffs[0].sign() >= 0;
}

Polyhedron Polyhedron::fromConstraintRows(unsigned Dim,
                                          std::vector<ConeRow> Rows) {
  for (ConeRow &Row : Rows)
    Row.normalize();
  Rows.erase(std::remove_if(Rows.begin(), Rows.end(),
                            [](const ConeRow &Row) {
                              return std::all_of(
                                  Row.Coeffs.begin(), Row.Coeffs.end(),
                                  [](const BigInt &C) { return C.isZero(); });
                            }),
             Rows.end());
  Rows.push_back(positivityRow(Dim));
  sortAndDedup(Rows);

  ConvKey Key{/*FromGenerators=*/false, Dim, std::move(Rows)};
  return cachedConversion(std::move(Key), [Dim](const ConvKey &K) {
    Polyhedron P;
    P.Dim = Dim;
    P.Gens = dualize(K.Rows, Dim + 1);
    P.Empty = std::none_of(P.Gens.begin(), P.Gens.end(),
                           [](const ConeRow &G) {
                             return !G.IsLinearity && G.Coeffs[0].sign() > 0;
                           });
    if (P.Empty) {
      P.Gens.clear();
    } else {
      P.Cons = dualize(P.Gens, Dim + 1);
      P.Cons.erase(std::remove_if(P.Cons.begin(), P.Cons.end(),
                                  isTrivialConstraint),
                   P.Cons.end());
      // Re-minimize the generator side against the minimal constraints.
      std::vector<ConeRow> MinimalCons = P.Cons;
      MinimalCons.push_back(positivityRow(Dim));
      P.Gens = dualize(MinimalCons, Dim + 1);
    }
    return P;
  });
}

Polyhedron Polyhedron::fromGeneratorRows(unsigned Dim,
                                         std::vector<ConeRow> Rows) {
  for (ConeRow &Row : Rows)
    Row.normalize();
  Rows.erase(std::remove_if(Rows.begin(), Rows.end(),
                            [](const ConeRow &Row) {
                              return std::all_of(
                                  Row.Coeffs.begin(), Row.Coeffs.end(),
                                  [](const BigInt &C) { return C.isZero(); });
                            }),
             Rows.end());
  bool HasPoint = std::any_of(Rows.begin(), Rows.end(),
                              [](const ConeRow &G) {
                                return !G.IsLinearity &&
                                       G.Coeffs[0].sign() > 0;
                              });
  if (!HasPoint)
    return empty(Dim);
  sortAndDedup(Rows);

  ConvKey Key{/*FromGenerators=*/true, Dim, std::move(Rows)};
  return cachedConversion(std::move(Key), [Dim](const ConvKey &K) {
    std::vector<ConeRow> Cons = dualize(K.Rows, Dim + 1);
    Cons.erase(std::remove_if(Cons.begin(), Cons.end(), isTrivialConstraint),
               Cons.end());
    // Delegates to fromConstraintRows — a nested cachedConversion call;
    // safe because no shard lock is held while computing.
    return fromConstraintRows(Dim, std::move(Cons));
  });
}

Polyhedron Polyhedron::universe(unsigned Dim) {
  return fromConstraintRows(Dim, {});
}

Polyhedron Polyhedron::empty(unsigned Dim) {
  Polyhedron P;
  P.Dim = Dim;
  P.Empty = true;
  return P;
}

namespace {

/// Clears denominators: returns the integer cone row of a constraint.
ConeRow rowFromConstraint(const Constraint &Con) {
  unsigned Dim = Con.Expr.dim();
  BigInt Lcm(1);
  Lcm = BigInt::lcm(Lcm, Con.Expr.constantTerm().denominator());
  for (unsigned I = 0; I != Dim; ++I)
    Lcm = BigInt::lcm(Lcm, Con.Expr.coeff(I).denominator());
  ConeRow Row;
  Row.IsLinearity = Con.TheKind == Constraint::Kind::Eq;
  Row.Coeffs.resize(Dim + 1);
  auto Scale = [&Lcm](const Rational &R) {
    return R.numerator() * Lcm.divExact(R.denominator());
  };
  Row.Coeffs[0] = Scale(Con.Expr.constantTerm());
  for (unsigned I = 0; I != Dim; ++I)
    Row.Coeffs[I + 1] = Scale(Con.Expr.coeff(I));
  return Row;
}

} // namespace

Polyhedron Polyhedron::fromConstraints(unsigned Dim,
                                       const std::vector<Constraint> &Cons) {
  std::vector<ConeRow> Rows;
  Rows.reserve(Cons.size());
  for (const Constraint &Con : Cons) {
    assert(Con.Expr.dim() == Dim && "constraint dimension mismatch");
    Rows.push_back(rowFromConstraint(Con));
  }
  return fromConstraintRows(Dim, std::move(Rows));
}

Polyhedron Polyhedron::point(const std::vector<Rational> &Coords) {
  unsigned Dim = static_cast<unsigned>(Coords.size());
  BigInt Lcm(1);
  for (const Rational &C : Coords)
    Lcm = BigInt::lcm(Lcm, C.denominator());
  ConeRow Row;
  Row.Coeffs.resize(Dim + 1);
  Row.Coeffs[0] = Lcm;
  for (unsigned I = 0; I != Dim; ++I)
    Row.Coeffs[I + 1] =
        Coords[I].numerator() * Lcm.divExact(Coords[I].denominator());
  return fromGeneratorRows(Dim, {std::move(Row)});
}

Polyhedron Polyhedron::product(const Polyhedron &A, const Polyhedron &B) {
  unsigned Dim = A.Dim + B.Dim;
  if (A.Empty || B.Empty)
    return empty(Dim);
  Polyhedron P;
  P.Dim = Dim;
  P.Empty = false;

  // Rows of either factor embed at their factor's column offset; the
  // constant / homogeneous column is shared.
  auto Embed = [&](const ConeRow &Row, unsigned Base) {
    ConeRow Out;
    Out.IsLinearity = Row.IsLinearity;
    Out.Coeffs.assign(Dim + 1, BigInt(0));
    Out.Coeffs[0] = Row.Coeffs[0];
    for (size_t I = 1; I != Row.Coeffs.size(); ++I)
      Out.Coeffs[Base + I] = Row.Coeffs[I];
    return Out;
  };

  // Facets of A × B are exactly the embedded facets of the factors, so
  // the constraint side stays minimal.
  for (const ConeRow &Row : A.Cons)
    P.Cons.push_back(Embed(Row, 0));
  for (const ConeRow &Row : B.Cons)
    P.Cons.push_back(Embed(Row, A.Dim));

  // Generator side: recession rays and lines embed singly; points pair up
  // after scaling both to the common homogeneous coordinate a0·b0.
  for (const ConeRow &G : A.Gens)
    if (G.IsLinearity || G.Coeffs[0].isZero())
      P.Gens.push_back(Embed(G, 0));
  for (const ConeRow &G : B.Gens)
    if (G.IsLinearity || G.Coeffs[0].isZero())
      P.Gens.push_back(Embed(G, A.Dim));
  for (const ConeRow &GA : A.Gens) {
    if (GA.IsLinearity || GA.Coeffs[0].isZero())
      continue;
    for (const ConeRow &GB : B.Gens) {
      if (GB.IsLinearity || GB.Coeffs[0].isZero())
        continue;
      ConeRow Out;
      Out.Coeffs.assign(Dim + 1, BigInt(0));
      Out.Coeffs[0] = GA.Coeffs[0] * GB.Coeffs[0];
      for (unsigned I = 0; I != A.Dim; ++I)
        Out.Coeffs[1 + I] = GA.Coeffs[1 + I] * GB.Coeffs[0];
      for (unsigned I = 0; I != B.Dim; ++I)
        Out.Coeffs[1 + A.Dim + I] = GB.Coeffs[1 + I] * GA.Coeffs[0];
      Out.normalize();
      P.Gens.push_back(std::move(Out));
    }
  }
  sortAndDedup(P.Cons);
  sortAndDedup(P.Gens);
  return P;
}

//===----------------------------------------------------------------------===//
// Lattice operations
//===----------------------------------------------------------------------===//

Polyhedron Polyhedron::meet(const Polyhedron &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return empty(Dim);
  std::vector<ConeRow> Rows = Cons;
  Rows.insert(Rows.end(), Other.Cons.begin(), Other.Cons.end());
  return fromConstraintRows(Dim, std::move(Rows));
}

Polyhedron Polyhedron::meet(const Constraint &Con) const {
  assert(Con.Expr.dim() == Dim && "dimension mismatch");
  if (Empty)
    return *this;
  std::vector<ConeRow> Rows = Cons;
  Rows.push_back(rowFromConstraint(Con));
  return fromConstraintRows(Dim, std::move(Rows));
}

Polyhedron Polyhedron::join(const Polyhedron &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  std::vector<ConeRow> Rows = Gens;
  Rows.insert(Rows.end(), Other.Gens.begin(), Other.Gens.end());
  return fromGeneratorRows(Dim, std::move(Rows));
}

Polyhedron
Polyhedron::project(const std::vector<unsigned> &DimsToForget) const {
  if (Empty || DimsToForget.empty())
    return *this;
  // Cylindrification: add a full line along each forgotten dimension.
  std::vector<ConeRow> Rows = Gens;
  for (unsigned D : DimsToForget) {
    assert(D < Dim && "projected dimension out of range");
    ConeRow Line;
    Line.IsLinearity = true;
    Line.Coeffs.assign(Dim + 1, BigInt(0));
    Line.Coeffs[D + 1] = BigInt(1);
    Rows.push_back(std::move(Line));
  }
  return fromGeneratorRows(Dim, std::move(Rows));
}

Polyhedron Polyhedron::extend(unsigned Count) const {
  if (Count == 0)
    return *this;
  Polyhedron P;
  P.Dim = Dim + Count;
  P.Empty = Empty;
  if (Empty)
    return P;
  P.Cons = Cons;
  for (ConeRow &Row : P.Cons)
    Row.Coeffs.resize(Dim + Count + 1, BigInt(0));
  P.Gens = Gens;
  for (ConeRow &Row : P.Gens)
    Row.Coeffs.resize(Dim + Count + 1, BigInt(0));
  for (unsigned I = 0; I != Count; ++I) {
    ConeRow Line;
    Line.IsLinearity = true;
    Line.Coeffs.assign(Dim + Count + 1, BigInt(0));
    Line.Coeffs[Dim + I + 1] = BigInt(1);
    P.Gens.push_back(std::move(Line));
  }
  return P;
}

Polyhedron Polyhedron::dropTrailing(unsigned Count) const {
  assert(Count <= Dim && "dropping more dimensions than available");
  if (Count == 0)
    return *this;
  if (Empty)
    return empty(Dim - Count);
  // Dropping generator columns is exactly projection onto the prefix.
  std::vector<ConeRow> Rows = Gens;
  for (ConeRow &Row : Rows)
    Row.Coeffs.resize(Dim - Count + 1);
  return fromGeneratorRows(Dim - Count, std::move(Rows));
}

Polyhedron Polyhedron::permute(const std::vector<unsigned> &NewIndex) const {
  assert(NewIndex.size() == Dim && "permutation size mismatch");
  if (Empty)
    return *this;
  Polyhedron P;
  P.Dim = Dim;
  P.Empty = false;
  auto Apply = [this, &NewIndex](const std::vector<ConeRow> &Rows) {
    std::vector<ConeRow> Result = Rows;
    for (size_t R = 0; R != Rows.size(); ++R)
      for (unsigned I = 0; I != Dim; ++I)
        Result[R].Coeffs[NewIndex[I] + 1] = Rows[R].Coeffs[I + 1];
    for (ConeRow &Row : Result)
      Row.normalize();
    return Result;
  };
  P.Cons = Apply(Cons);
  P.Gens = Apply(Gens);
  sortAndDedup(P.Cons);
  sortAndDedup(P.Gens);
  return P;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

namespace {

/// Does generator \p G satisfy constraint row \p Con?
bool generatorSatisfies(const ConeRow &G, const ConeRow &Con) {
  BigInt Dot = dotProduct(G, Con);
  if (Con.IsLinearity || G.IsLinearity)
    return Dot.isZero();
  return Dot.sign() >= 0;
}

} // namespace

bool Polyhedron::contains(const Polyhedron &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  for (const ConeRow &Con : Cons)
    for (const ConeRow &G : Other.Gens)
      if (!generatorSatisfies(G, Con))
        return false;
  return true;
}

bool Polyhedron::containsApprox(const Polyhedron &Other, double Eps) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  auto InfNorm = [](const ConeRow &Row) {
    double Norm = 0.0;
    for (const BigInt &C : Row.Coeffs) {
      double Abs = C.toDouble();
      Norm = std::max(Norm, Abs < 0 ? -Abs : Abs);
    }
    return Norm;
  };
  for (const ConeRow &Con : Cons) {
    double CNorm = InfNorm(Con);
    for (const ConeRow &G : Other.Gens) {
      double Slack =
          Eps * CNorm * InfNorm(G) * static_cast<double>(Dim + 1);
      double Dot = dotProduct(G, Con).toDouble();
      if (Con.IsLinearity || G.IsLinearity) {
        if (Dot > Slack || Dot < -Slack)
          return false;
      } else if (Dot < -Slack) {
        return false;
      }
    }
  }
  return true;
}

bool Polyhedron::satisfies(const Constraint &Con) const {
  assert(Con.Expr.dim() == Dim && "dimension mismatch");
  if (Empty)
    return true;
  ConeRow Row = rowFromConstraint(Con);
  for (const ConeRow &G : Gens)
    if (!generatorSatisfies(G, Row))
      return false;
  return true;
}

bool Polyhedron::containsPoint(const std::vector<Rational> &Coords) const {
  assert(Coords.size() == Dim && "point dimension mismatch");
  if (Empty)
    return false;
  for (const ConeRow &Con : Cons) {
    Rational Value(Con.Coeffs[0], BigInt(1));
    for (unsigned I = 0; I != Dim; ++I)
      Value += Rational(Con.Coeffs[I + 1], BigInt(1)) * Coords[I];
    if (Con.IsLinearity ? !Value.isZero() : Value.sign() < 0)
      return false;
  }
  return true;
}

Polyhedron Polyhedron::widen(const Polyhedron &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this; // Degenerate; widening assumes this ⊑ other.
  // Keep the constraints of *this that Other satisfies. Equalities are
  // split into their two half-spaces so each can survive independently
  // (the classic Cousot-Halbwachs widening, first component).
  std::vector<ConeRow> Kept;
  for (const ConeRow &Con : Cons) {
    std::vector<ConeRow> Halves;
    if (Con.IsLinearity) {
      ConeRow Pos = Con, Neg = Con;
      Pos.IsLinearity = Neg.IsLinearity = false;
      for (BigInt &C : Neg.Coeffs)
        C = C.negated();
      Halves = {Pos, Neg};
    } else {
      Halves = {Con};
    }
    for (ConeRow &Half : Halves) {
      bool Satisfied = true;
      for (const ConeRow &G : Other.Gens)
        if (!generatorSatisfies(G, Half)) {
          Satisfied = false;
          break;
        }
      if (Satisfied)
        Kept.push_back(std::move(Half));
    }
  }
  return fromConstraintRows(Dim, std::move(Kept));
}

bool poly::roundConstraintRow(ConeRow &Row, unsigned MaxBits) {
  unsigned Widest = 0;
  for (const BigInt &C : Row.Coeffs)
    Widest = std::max(Widest, C.bitLength());
  if (Widest <= MaxBits)
    return false;
  // Rescale so the widest coefficient becomes 2^MaxBits; round the rest
  // by shifting away the low bits (with round-to-nearest).
  unsigned Shift = Widest - MaxBits;
  BigInt Half = BigInt(1).shiftLeft(Shift - 1);
  for (BigInt &C : Row.Coeffs) {
    // shiftRight keeps the sign and shifts the magnitude, so adding
    // sign(C) * Half first yields round-to-nearest in both directions.
    C = (C.sign() >= 0 ? C + Half : C - Half).shiftRight(Shift);
  }
  Row.normalize();
  return true;
}

Polyhedron Polyhedron::roundedCoefficients(unsigned MaxBits) const {
  if (Empty)
    return *this;
  bool AnyRounded = false;
  std::vector<ConeRow> Rows = Cons;
  for (ConeRow &Row : Rows)
    AnyRounded |= roundConstraintRow(Row, MaxBits);
  if (!AnyRounded)
    return *this;
  return fromConstraintRows(Dim, std::move(Rows));
}

std::optional<Rational> Polyhedron::maximize(const LinearExpr &Expr) const {
  assert(!Empty && "maximize over the empty polyhedron");
  assert(Expr.dim() == Dim && "expression dimension mismatch");
  Constraint AsCon{Expr, Constraint::Kind::Ge};
  ConeRow Row = rowFromConstraint(AsCon);
  // Row = Scale * Expr for a positive integer Scale; recover it from any
  // nonzero coefficient pair, defaulting to the denominator lcm used.
  // Simpler: recompute the scale directly.
  BigInt Scale(1);
  Scale = BigInt::lcm(Scale, Expr.constantTerm().denominator());
  for (unsigned I = 0; I != Dim; ++I)
    Scale = BigInt::lcm(Scale, Expr.coeff(I).denominator());

  std::optional<Rational> Best;
  for (const ConeRow &G : Gens) {
    BigInt Dot = dotProduct(G, Row);
    if (G.IsLinearity) {
      if (!Dot.isZero())
        return std::nullopt; // Unbounded along a line.
      continue;
    }
    if (G.Coeffs[0].isZero()) {
      if (Dot.sign() > 0)
        return std::nullopt; // Improving ray.
      continue;
    }
    Rational Value(Dot, Scale * G.Coeffs[0]);
    if (!Best || Value > *Best)
      Best = Value;
  }
  assert(Best && "nonempty polyhedron must have a point generator");
  return Best;
}

std::optional<Rational> Polyhedron::minimize(const LinearExpr &Expr) const {
  std::optional<Rational> NegMax = maximize(-Expr);
  if (!NegMax)
    return std::nullopt;
  return -*NegMax;
}

std::vector<Constraint> Polyhedron::constraintList() const {
  std::vector<Constraint> Result;
  for (const ConeRow &Row : Cons) {
    Constraint Con;
    Con.TheKind =
        Row.IsLinearity ? Constraint::Kind::Eq : Constraint::Kind::Ge;
    Con.Expr = LinearExpr(Dim);
    Con.Expr.constantTerm() = Rational(Row.Coeffs[0], BigInt(1));
    for (unsigned I = 0; I != Dim; ++I)
      Con.Expr.coeff(I) = Rational(Row.Coeffs[I + 1], BigInt(1));
    Result.push_back(std::move(Con));
  }
  return Result;
}

std::string
Polyhedron::toString(const std::vector<std::string> &Names) const {
  if (Empty)
    return "{false}";
  if (Cons.empty())
    return "{true}";
  std::string Out = "{";
  bool First = true;
  for (const Constraint &Con : constraintList()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Con.toString(Names);
  }
  return Out + "}";
}
