//===- poly/NumericDomain.h - The numeric-backend interface -----*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every numeric backend of the LEIA instantiation models:
/// closed convex sets over Q^d supporting the lattice operations the
/// two-vocabulary protocol of §5.3 needs (meet / join / project / rename /
/// widen / inclusion / addConstraint / roundedCoefficients). Backends are
/// value types checked structurally by the `NumericDomain` concept — no
/// virtual dispatch on the hot path — and the LEIA domain is a template
/// over any model:
///
///   * Polyhedron (Polyhedron.h)  — full convex polyhedra, the
///     double-description substrate; exact and complete, cost dominated by
///     Chernikova conversions;
///   * Intervals  (Intervals.h)   — per-variable bounds; exact only for
///     the `x <= c` fragment, over-approximates everything else;
///   * Zones      (Zones.h)       — difference-bound matrices with
///     closure; exact for the `x - y <= c, x <= c` fragment;
///   * LadderValue (Ladder.h)     — the domain ladder: a variable-packed
///     product of blocks, each held at the cheapest backend that is still
///     *exact* for it, escalating intervals → zones → polyhedra lazily.
///
/// The file also hosts the numeric-layer cost counters (Chernikova
/// minimization calls, conversion-cache traffic, ladder escalations, pack
/// widths) that the solver surfaces through SolverStats / `--stats`.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_NUMERICDOMAIN_H
#define PMAF_POLY_NUMERICDOMAIN_H

#include "poly/LinearExpr.h"

#include <atomic>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// Structural interface of a numeric backend. All operations are value
/// semantics (no in-place mutation), matching Polyhedron's historical API
/// so the LEIA domain's protocol code is backend-generic.
template <typename V>
concept NumericDomain = requires(const V &A, const V &B, const Constraint &C,
                                 const LinearExpr &E, unsigned N,
                                 const std::vector<unsigned> &Dims,
                                 const std::vector<std::string> &Names,
                                 double Eps) {
  { V::universe(N) } -> std::same_as<V>;
  { V::empty(N) } -> std::same_as<V>;
  { V::fromConstraints(N, std::vector<Constraint>{}) } -> std::same_as<V>;
  { A.dim() } -> std::convertible_to<unsigned>;
  { A.isEmpty() } -> std::same_as<bool>;
  { A.isUniverse() } -> std::same_as<bool>;
  { A.meet(B) } -> std::same_as<V>;
  { A.meet(C) } -> std::same_as<V>; // addConstraint
  { A.join(B) } -> std::same_as<V>;
  { A.project(Dims) } -> std::same_as<V>;
  { A.extend(N) } -> std::same_as<V>;
  { A.dropTrailing(N) } -> std::same_as<V>;
  { A.permute(Dims) } -> std::same_as<V>; // rename
  { A.contains(B) } -> std::same_as<bool>;
  { A.containsApprox(B, Eps) } -> std::same_as<bool>;
  { A.equals(B) } -> std::same_as<bool>;
  { A.widen(B) } -> std::same_as<V>;
  { A.roundedCoefficients(N) } -> std::same_as<V>;
  { A.maximize(E) } -> std::same_as<std::optional<Rational>>;
  { A.minimize(E) } -> std::same_as<std::optional<Rational>>;
  { A.constraintList() } -> std::same_as<std::vector<Constraint>>;
  { A.toString(Names) } -> std::same_as<std::string>;
};

/// The constraint fragments the ladder distinguishes. Classification is
/// scale-invariant: `2x - 2y >= 3` is a Difference, `3z == 1` a Bound.
enum class ConstraintClass {
  /// No variable occurs: the constraint is trivially true or false.
  Trivial,
  /// Exactly one variable: a single-variable bound `a x + b {>=,==} 0`.
  Bound,
  /// Two variables with opposite coefficients of equal magnitude:
  /// `a (x - y) + b {>=,==} 0` — the DBM fragment.
  Difference,
  /// Anything else: only full polyhedra represent it exactly.
  General,
};

/// Classifies \p Con into the ladder fragments.
ConstraintClass classifyConstraint(const Constraint &Con);

/// Cost counters of the numeric layer, accumulated process-wide (relaxed
/// atomics — the heavy operations they count dwarf the increment). The
/// solver snapshots them around a solve and reports deltas through
/// SolverStats; peaks are high-water marks since the last resetPeaks().
struct NumericCounters {
  /// Chernikova dualizations actually executed (each converts one cone
  /// representation into its dual — the system's dominant cost).
  std::atomic<uint64_t> MinimizationCalls{0};
  /// Constraint⇄generator conversions answered from the memo cache
  /// instead of running Chernikova.
  std::atomic<uint64_t> ConversionCacheHits{0};
  /// Conversions that missed the cache (equals MinimizationCalls modulo
  /// the re-minimization passes a single construction performs).
  std::atomic<uint64_t> ConversionCacheMisses{0};
  /// The subset of ConversionCacheHits answered by the process-wide
  /// sharded L2 cache (the thread-local L1 missed — typically a stolen
  /// component, a fresh pool worker, or a new per-solve pool reusing
  /// conversions an earlier solve computed).
  std::atomic<uint64_t> SharedCacheHits{0};
  /// Memo entries dropped by the bounded caches (L1 and L2 shards evict
  /// about half their entries when they reach their cap).
  std::atomic<uint64_t> CacheEvictions{0};
  /// Ladder blocks promoted to a more expensive rung because a constraint
  /// or image escaped the current fragment.
  std::atomic<uint64_t> LadderEscalations{0};
  /// Peak generator-row count inside any single dualization.
  std::atomic<unsigned> PeakGeneratorRows{0};
  /// Widest variable pack (block) the ladder has operated on.
  std::atomic<unsigned> MaxPackWidth{0};
};

/// The process-wide counter instance.
NumericCounters &numericCounters();

/// Resets the high-water marks (PeakGeneratorRows, MaxPackWidth) without
/// touching the monotone counters; benchmark harnesses call this between
/// programs so peaks are per-program evidence.
void resetNumericPeaks();

/// Relaxed fetch-max for the peak counters.
inline void atomicMax(std::atomic<unsigned> &Slot, unsigned Value) {
  unsigned Cur = Slot.load(std::memory_order_relaxed);
  while (Cur < Value &&
         !Slot.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

/// Rounds a single bound value `x {<=,>=} V` exactly as the polyhedra
/// backend rounds the corresponding integer constraint row (see
/// roundConstraintRow in Polyhedron.h): values whose numerator and
/// denominator fit \p MaxBits bits are returned unchanged. The result is
/// orientation-independent because row rounding only inspects coefficient
/// magnitudes, so boxes and zones share this one helper.
Rational roundedBoundValue(const Rational &V, unsigned MaxBits);

/// Shared rendering of a constraint system, used by every backend's
/// toString so the output format is uniform.
std::string renderConstraints(const std::vector<Constraint> &Cons,
                              const std::vector<std::string> &Names,
                              bool Empty);

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_NUMERICDOMAIN_H
