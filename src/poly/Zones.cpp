//===- poly/Zones.cpp - Difference-bound matrices over Q ------------------===//

#include "poly/Zones.h"

#include "poly/Polyhedron.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pmaf;
using namespace pmaf::poly;

Zones Zones::universe(unsigned Dim) {
  Zones Z(Dim, /*Empty=*/false);
  Z.M.assign((Dim + 1) * (Dim + 1), Entry{});
  for (unsigned I = 0; I != Dim + 1; ++I)
    Z.at(I, I) = Entry{true, Rational(0)};
  return Z;
}

Zones Zones::empty(unsigned Dim) { return Zones(Dim, /*Empty=*/true); }

bool Zones::isUniverse() const {
  if (Empty)
    return false;
  for (unsigned I = 0; I != Dim + 1; ++I)
    for (unsigned J = 0; J != Dim + 1; ++J)
      if (I != J && at(I, J).Finite)
        return false;
  return true;
}

void Zones::tighten(unsigned I, unsigned J, const Rational &Bound) {
  Entry &E = at(I, J);
  if (!E.Finite || Bound < E.Bound)
    E = Entry{true, Bound};
}

bool Zones::addInPlace(const Constraint &Con) {
  switch (classifyConstraint(Con)) {
  case ConstraintClass::Trivial: {
    const Rational &B = Con.Expr.constantTerm();
    return Con.TheKind == Constraint::Kind::Eq ? B.isZero()
                                               : B.sign() >= 0;
  }
  case ConstraintClass::Bound: {
    unsigned Var = 0;
    while (Con.Expr.coeff(Var).isZero())
      ++Var;
    const Rational &A = Con.Expr.coeff(Var);
    Rational V = -Con.Expr.constantTerm() / A;
    bool IsEq = Con.TheKind == Constraint::Kind::Eq;
    // a > 0 (or ==): x >= V, i.e. v0 - x <= -V.
    if (IsEq || A.sign() > 0)
      tighten(0, Var + 1, -V);
    // a < 0 (or ==): x <= V.
    if (IsEq || A.sign() < 0)
      tighten(Var + 1, 0, V);
    return true;
  }
  case ConstraintClass::Difference: {
    unsigned First = 0;
    while (Con.Expr.coeff(First).isZero())
      ++First;
    unsigned Second = First + 1;
    while (Con.Expr.coeff(Second).isZero())
      ++Second;
    const Rational &A = Con.Expr.coeff(First);
    // The constraint reads a (x_F - x_S) + b {>=,==} 0.
    Rational V = -Con.Expr.constantTerm() / A; // Bound on x_F - x_S.
    bool IsEq = Con.TheKind == Constraint::Kind::Eq;
    // a > 0 (or ==): x_F - x_S >= V, i.e. x_S - x_F <= -V.
    if (IsEq || A.sign() > 0)
      tighten(Second + 1, First + 1, -V);
    // a < 0 (or ==): x_F - x_S <= V.
    if (IsEq || A.sign() < 0)
      tighten(First + 1, Second + 1, V);
    return true;
  }
  case ConstraintClass::General:
    // Outside the DBM fragment: drop (sound over-approximation). The
    // ladder never reaches this path — it escalates the block first.
    return true;
  }
  return true;
}

void Zones::close() {
  if (Empty)
    return;
  unsigned N = Dim + 1;
  for (unsigned K = 0; K != N; ++K)
    for (unsigned I = 0; I != N; ++I) {
      const Entry &IK = at(I, K);
      if (!IK.Finite)
        continue;
      for (unsigned J = 0; J != N; ++J) {
        const Entry &KJ = at(K, J);
        if (!KJ.Finite)
          continue;
        Rational Via = IK.Bound + KJ.Bound;
        Entry &IJ = at(I, J);
        if (!IJ.Finite || Via < IJ.Bound)
          IJ = Entry{true, std::move(Via)};
      }
    }
  for (unsigned I = 0; I != N; ++I)
    if (at(I, I).Bound.sign() < 0) {
      Empty = true;
      M.clear();
      return;
    }
}

Zones Zones::fromConstraints(unsigned Dim,
                             const std::vector<Constraint> &Cons) {
  Zones Z = universe(Dim);
  for (const Constraint &Con : Cons) {
    assert(Con.Expr.dim() == Dim && "constraint dimension mismatch");
    if (!Z.addInPlace(Con))
      return empty(Dim);
  }
  Z.close();
  return Z;
}

Zones Zones::meet(const Zones &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return empty(Dim);
  Zones Out = *this;
  for (size_t I = 0; I != M.size(); ++I) {
    const Entry &E = Other.M[I];
    if (E.Finite && (!Out.M[I].Finite || E.Bound < Out.M[I].Bound))
      Out.M[I] = E;
  }
  Out.close();
  return Out;
}

Zones Zones::meet(const Constraint &Con) const {
  assert(Con.Expr.dim() == Dim && "dimension mismatch");
  if (Empty)
    return *this;
  Zones Out = *this;
  if (!Out.addInPlace(Con))
    return empty(Dim);
  Out.close();
  return Out;
}

Zones Zones::join(const Zones &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  // Entrywise maximum of two closed DBMs is the zone hull and is closed.
  Zones Out = *this;
  for (size_t I = 0; I != M.size(); ++I) {
    const Entry &A = M[I], &B = Other.M[I];
    if (!A.Finite || !B.Finite)
      Out.M[I] = Entry{};
    else
      Out.M[I] = A.Bound >= B.Bound ? A : B;
  }
  for (unsigned I = 0; I != Dim + 1; ++I)
    Out.at(I, I) = Entry{true, Rational(0)};
  return Out;
}

Zones Zones::project(const std::vector<unsigned> &DimsToForget) const {
  if (Empty || DimsToForget.empty())
    return *this;
  Zones Out = *this;
  for (unsigned D : DimsToForget) {
    assert(D < Dim && "projected dimension out of range");
    for (unsigned I = 0; I != Dim + 1; ++I) {
      if (I != D + 1) {
        Out.at(D + 1, I) = Entry{};
        Out.at(I, D + 1) = Entry{};
      }
    }
  }
  return Out; // A closed DBM stays closed under row/column erasure.
}

Zones Zones::extend(unsigned Count) const {
  Zones Out(Dim + Count, Empty);
  if (Empty)
    return Out;
  Out.M.assign((Dim + Count + 1) * (Dim + Count + 1), Entry{});
  for (unsigned I = 0; I != Dim + Count + 1; ++I)
    Out.at(I, I) = Entry{true, Rational(0)};
  for (unsigned I = 0; I != Dim + 1; ++I)
    for (unsigned J = 0; J != Dim + 1; ++J)
      Out.at(I, J) = at(I, J);
  return Out;
}

Zones Zones::dropTrailing(unsigned Count) const {
  assert(Count <= Dim && "dropping more dimensions than available");
  Zones Out(Dim - Count, Empty);
  if (Empty)
    return Out;
  Out.M.assign((Dim - Count + 1) * (Dim - Count + 1), Entry{});
  for (unsigned I = 0; I != Dim - Count + 1; ++I)
    for (unsigned J = 0; J != Dim - Count + 1; ++J)
      Out.at(I, J) = at(I, J);
  return Out; // A leading submatrix of a closed DBM is closed.
}

Zones Zones::permute(const std::vector<unsigned> &NewIndex) const {
  assert(NewIndex.size() == Dim && "permutation size mismatch");
  if (Empty)
    return *this;
  Zones Out = universe(Dim);
  auto Map = [&](unsigned I) { return I == 0 ? 0 : NewIndex[I - 1] + 1; };
  for (unsigned I = 0; I != Dim + 1; ++I)
    for (unsigned J = 0; J != Dim + 1; ++J)
      Out.at(Map(I), Map(J)) = at(I, J);
  return Out;
}

bool Zones::contains(const Zones &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  for (size_t I = 0; I != M.size(); ++I) {
    const Entry &A = M[I], &B = Other.M[I];
    if (A.Finite && (!B.Finite || B.Bound > A.Bound))
      return false;
  }
  return true;
}

bool Zones::containsApprox(const Zones &Other, double Eps) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  for (size_t I = 0; I != M.size(); ++I) {
    const Entry &A = M[I], &B = Other.M[I];
    if (!A.Finite)
      continue;
    if (!B.Finite)
      return false;
    double Slack = Eps * std::max(1.0, std::abs(A.Bound.toDouble())) *
                   static_cast<double>(Dim + 1);
    if (B.Bound.toDouble() > A.Bound.toDouble() + Slack)
      return false;
  }
  return true;
}

bool Zones::equals(const Zones &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  return M == Other.M;
}

Zones Zones::widen(const Zones &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this; // Degenerate; widening assumes this ⊑ other.
  Zones Out = *this;
  for (size_t I = 0; I != M.size(); ++I) {
    const Entry &A = M[I], &B = Other.M[I];
    // Keep the entries of *this that Other still satisfies.
    if (A.Finite && (!B.Finite || B.Bound > A.Bound))
      Out.M[I] = Entry{};
  }
  for (unsigned I = 0; I != Dim + 1; ++I)
    Out.at(I, I) = Entry{true, Rational(0)};
  Out.close();
  return Out;
}

Zones Zones::roundedCoefficients(unsigned MaxBits) const {
  if (Empty)
    return *this;
  Zones Out = *this;
  bool Changed = false;
  for (unsigned I = 0; I != Dim + 1; ++I)
    for (unsigned J = 0; J != Dim + 1; ++J) {
      if (I == J || !Out.at(I, J).Finite)
        continue;
      Rational Rounded = roundedBoundValue(Out.at(I, J).Bound, MaxBits);
      if (Rounded != Out.at(I, J).Bound) {
        Out.at(I, J).Bound = Rounded;
        Changed = true;
      }
    }
  if (!Changed)
    return *this;
  Out.close();
  return Out;
}

std::optional<Rational> Zones::maximize(const LinearExpr &Expr) const {
  assert(!Empty && "maximize over the empty zone");
  assert(Expr.dim() == Dim && "expression dimension mismatch");
  // General linear objectives need an LP over the zone; delegate to the
  // polyhedra backend (a query-path operation, memoized downstream).
  return Polyhedron::fromConstraints(Dim, rawConstraintList())
      .maximize(Expr);
}

std::optional<Rational> Zones::minimize(const LinearExpr &Expr) const {
  std::optional<Rational> NegMax = maximize(-Expr);
  if (!NegMax)
    return std::nullopt;
  return -*NegMax;
}

std::vector<Constraint> Zones::rawConstraintList() const {
  std::vector<Constraint> Result;
  if (Empty)
    return Result;
  for (unsigned I = 0; I != Dim + 1; ++I)
    for (unsigned J = 0; J != Dim + 1; ++J) {
      if (I == J || !at(I, J).Finite)
        continue;
      const Rational &C = at(I, J).Bound;
      LinearExpr Bound = LinearExpr::constant(Dim, C);
      if (I != 0 && J != 0)
        Result.push_back(
            Constraint::le(LinearExpr::variable(Dim, I - 1) -
                               LinearExpr::variable(Dim, J - 1),
                           Bound));
      else if (J == 0)
        Result.push_back(
            Constraint::le(LinearExpr::variable(Dim, I - 1), Bound));
      else
        Result.push_back(Constraint::ge(LinearExpr::variable(Dim, J - 1),
                                        LinearExpr::constant(Dim, -C)));
    }
  return Result;
}

std::vector<Constraint> Zones::constraintList() const {
  if (Empty)
    return {};
  // The closure makes entries pairwise redundant; the polyhedra backend's
  // minimization strips that so reported invariants match the poly mode.
  return Polyhedron::fromConstraints(Dim, rawConstraintList())
      .constraintList();
}

std::string Zones::toString(const std::vector<std::string> &Names) const {
  return renderConstraints(constraintList(), Names, Empty);
}

bool Zones::entryFinite(unsigned I, unsigned J) const {
  assert(!Empty && I <= Dim && J <= Dim && "entry of an empty zone");
  return at(I, J).Finite;
}

const Rational &Zones::entryBound(unsigned I, unsigned J) const {
  assert(entryFinite(I, J) && "infinite entry has no bound");
  return at(I, J).Bound;
}

std::vector<std::vector<unsigned>> Zones::packComponents() const {
  assert(!Empty && "components of an empty zone");
  std::vector<unsigned> Parent(Dim);
  for (unsigned I = 0; I != Dim; ++I)
    Parent[I] = I;
  auto Find = [&](unsigned I) {
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]];
      I = Parent[I];
    }
    return I;
  };
  // A direct entry couples two variables only when it is strictly tighter
  // than the path through v_0 — entries the closure merely derived from
  // the two variables' own bounds do not prevent factoring.
  auto StrictlyTight = [&](unsigned I, unsigned J) {
    const Entry &Direct = at(I + 1, J + 1);
    if (!Direct.Finite)
      return false;
    const Entry &IToZero = at(I + 1, 0), &ZeroToJ = at(0, J + 1);
    if (!IToZero.Finite || !ZeroToJ.Finite)
      return true;
    return Direct.Bound < IToZero.Bound + ZeroToJ.Bound;
  };
  for (unsigned I = 0; I != Dim; ++I)
    for (unsigned J = I + 1; J != Dim; ++J)
      if (StrictlyTight(I, J) || StrictlyTight(J, I))
        Parent[Find(I)] = Find(J);
  std::vector<std::vector<unsigned>> Components(Dim);
  for (unsigned I = 0; I != Dim; ++I)
    Components[Find(I)].push_back(I);
  Components.erase(std::remove_if(Components.begin(), Components.end(),
                                  [](const std::vector<unsigned> &C) {
                                    return C.empty();
                                  }),
                   Components.end());
  return Components;
}

Zones Zones::restrictTo(const std::vector<unsigned> &Sub) const {
  assert(!Empty && "restriction of an empty zone");
  Zones Out = universe(static_cast<unsigned>(Sub.size()));
  auto Map = [&](unsigned I) { return I == 0 ? 0u : Sub[I - 1] + 1; };
  for (unsigned I = 0; I != Out.Dim + 1; ++I)
    for (unsigned J = 0; J != Out.Dim + 1; ++J)
      Out.at(I, J) = at(Map(I), Map(J));
  return Out;
}
