//===- poly/Intervals.cpp - Per-variable rational bounds ------------------===//

#include "poly/Intervals.h"

#include "poly/Polyhedron.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pmaf;
using namespace pmaf::poly;

Intervals Intervals::universe(unsigned Dim) {
  Intervals Box(Dim, /*Empty=*/false);
  Box.Ranges.resize(Dim);
  return Box;
}

Intervals Intervals::empty(unsigned Dim) {
  return Intervals(Dim, /*Empty=*/true);
}

Intervals Intervals::fromConstraints(unsigned Dim,
                                     const std::vector<Constraint> &Cons) {
  Intervals Box = universe(Dim);
  for (const Constraint &Con : Cons)
    Box = Box.meet(Con);
  return Box;
}

bool Intervals::isUniverse() const {
  return !Empty && std::all_of(Ranges.begin(), Ranges.end(),
                               [](const Range &R) { return R.isFree(); });
}

const Intervals::Range &Intervals::range(unsigned Index) const {
  assert(!Empty && Index < Dim && "range of an empty box");
  return Ranges[Index];
}

namespace {

/// Lower bounds tighten upward, upper bounds downward; \returns false when
/// the range became contradictory.
bool tightenLo(Intervals::Range &R, const Rational &V) {
  if (!R.Lo || *R.Lo < V)
    R.Lo = V;
  return !R.Hi || *R.Lo <= *R.Hi;
}

bool tightenHi(Intervals::Range &R, const Rational &V) {
  if (!R.Hi || *R.Hi > V)
    R.Hi = V;
  return !R.Lo || *R.Lo <= *R.Hi;
}

} // namespace

Intervals Intervals::meet(const Intervals &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return empty(Dim);
  Intervals Out = *this;
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &R = Other.Ranges[I];
    if (R.Lo && !tightenLo(Out.Ranges[I], *R.Lo))
      return empty(Dim);
    if (R.Hi && !tightenHi(Out.Ranges[I], *R.Hi))
      return empty(Dim);
  }
  return Out;
}

Intervals Intervals::meet(const Constraint &Con) const {
  assert(Con.Expr.dim() == Dim && "dimension mismatch");
  if (Empty)
    return *this;
  switch (classifyConstraint(Con)) {
  case ConstraintClass::Trivial: {
    const Rational &B = Con.Expr.constantTerm();
    bool Sat = Con.TheKind == Constraint::Kind::Eq ? B.isZero()
                                                   : B.sign() >= 0;
    return Sat ? *this : empty(Dim);
  }
  case ConstraintClass::Bound: {
    unsigned Var = 0;
    while (Con.Expr.coeff(Var).isZero())
      ++Var;
    const Rational &A = Con.Expr.coeff(Var);
    Rational V = -Con.Expr.constantTerm() / A;
    Intervals Out = *this;
    Range &R = Out.Ranges[Var];
    bool IsEq = Con.TheKind == Constraint::Kind::Eq;
    if ((IsEq || A.sign() > 0) && !tightenLo(R, V))
      return empty(Dim);
    if ((IsEq || A.sign() < 0) && !tightenHi(R, V))
      return empty(Dim);
    return Out;
  }
  case ConstraintClass::Difference:
  case ConstraintClass::General:
    // Outside the box fragment: drop (sound over-approximation). The
    // ladder never reaches this path — it escalates the block first.
    return *this;
  }
  return *this;
}

Intervals Intervals::join(const Intervals &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  Intervals Out = universe(Dim);
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &A = Ranges[I], &B = Other.Ranges[I];
    if (A.Lo && B.Lo)
      Out.Ranges[I].Lo = std::min(*A.Lo, *B.Lo);
    if (A.Hi && B.Hi)
      Out.Ranges[I].Hi = std::max(*A.Hi, *B.Hi);
  }
  return Out;
}

Intervals
Intervals::project(const std::vector<unsigned> &DimsToForget) const {
  if (Empty || DimsToForget.empty())
    return *this;
  Intervals Out = *this;
  for (unsigned D : DimsToForget) {
    assert(D < Dim && "projected dimension out of range");
    Out.Ranges[D] = Range{};
  }
  return Out;
}

Intervals Intervals::extend(unsigned Count) const {
  Intervals Out(Dim + Count, Empty);
  if (!Empty) {
    Out.Ranges = Ranges;
    Out.Ranges.resize(Dim + Count);
  }
  return Out;
}

Intervals Intervals::dropTrailing(unsigned Count) const {
  assert(Count <= Dim && "dropping more dimensions than available");
  Intervals Out(Dim - Count, Empty);
  if (!Empty)
    Out.Ranges.assign(Ranges.begin(), Ranges.begin() + (Dim - Count));
  return Out;
}

Intervals Intervals::permute(const std::vector<unsigned> &NewIndex) const {
  assert(NewIndex.size() == Dim && "permutation size mismatch");
  if (Empty)
    return *this;
  Intervals Out = universe(Dim);
  for (unsigned I = 0; I != Dim; ++I)
    Out.Ranges[NewIndex[I]] = Ranges[I];
  return Out;
}

bool Intervals::contains(const Intervals &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &A = Ranges[I], &B = Other.Ranges[I];
    if (A.Lo && (!B.Lo || *B.Lo < *A.Lo))
      return false;
    if (A.Hi && (!B.Hi || *B.Hi > *A.Hi))
      return false;
  }
  return true;
}

bool Intervals::containsApprox(const Intervals &Other, double Eps) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Other.Empty)
    return true;
  if (Empty)
    return false;
  auto Slack = [&](const Rational &Bound) {
    return Eps * std::max(1.0, std::abs(Bound.toDouble())) *
           static_cast<double>(Dim + 1);
  };
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &A = Ranges[I], &B = Other.Ranges[I];
    if (A.Lo &&
        (!B.Lo || B.Lo->toDouble() < A.Lo->toDouble() - Slack(*A.Lo)))
      return false;
    if (A.Hi &&
        (!B.Hi || B.Hi->toDouble() > A.Hi->toDouble() + Slack(*A.Hi)))
      return false;
  }
  return true;
}

bool Intervals::equals(const Intervals &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  return Ranges == Other.Ranges;
}

Intervals Intervals::widen(const Intervals &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this; // Degenerate; widening assumes this ⊑ other.
  Intervals Out = universe(Dim);
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &A = Ranges[I], &B = Other.Ranges[I];
    // Keep the bounds of *this that Other still satisfies (CH78 restricted
    // to boxes); unstable bounds go to infinity.
    if (A.Lo && B.Lo && *B.Lo >= *A.Lo)
      Out.Ranges[I].Lo = A.Lo;
    if (A.Hi && B.Hi && *B.Hi <= *A.Hi)
      Out.Ranges[I].Hi = A.Hi;
  }
  return Out;
}

Intervals Intervals::roundedCoefficients(unsigned MaxBits) const {
  if (Empty)
    return *this;
  Intervals Out = *this;
  bool Changed = false;
  for (Range &R : Out.Ranges) {
    if (R.Lo) {
      Rational Rounded = roundedBoundValue(*R.Lo, MaxBits);
      Changed |= Rounded != *R.Lo;
      R.Lo = Rounded;
    }
    if (R.Hi) {
      Rational Rounded = roundedBoundValue(*R.Hi, MaxBits);
      Changed |= Rounded != *R.Hi;
      R.Hi = Rounded;
    }
    // Round-to-nearest can invert an extremely tight range; the polyhedra
    // backend would then find the rounded rows contradictory.
    if (R.Lo && R.Hi && *R.Lo > *R.Hi)
      return empty(Dim);
  }
  return Changed ? Out : *this;
}

std::optional<Rational> Intervals::maximize(const LinearExpr &Expr) const {
  assert(!Empty && "maximize over the empty box");
  assert(Expr.dim() == Dim && "expression dimension mismatch");
  Rational Sum = Expr.constantTerm();
  for (unsigned I = 0; I != Dim; ++I) {
    const Rational &A = Expr.coeff(I);
    if (A.isZero())
      continue;
    const Range &R = Ranges[I];
    const std::optional<Rational> &Bound = A.sign() > 0 ? R.Hi : R.Lo;
    if (!Bound)
      return std::nullopt;
    Sum += A * *Bound;
  }
  return Sum;
}

std::optional<Rational> Intervals::minimize(const LinearExpr &Expr) const {
  std::optional<Rational> NegMax = maximize(-Expr);
  if (!NegMax)
    return std::nullopt;
  return -*NegMax;
}

std::vector<Constraint> Intervals::constraintList() const {
  std::vector<Constraint> Result;
  if (Empty)
    return Result;
  for (unsigned I = 0; I != Dim; ++I) {
    const Range &R = Ranges[I];
    LinearExpr X = LinearExpr::variable(Dim, I);
    if (R.Lo && R.Hi && *R.Lo == *R.Hi) {
      Result.push_back(
          Constraint::eq(X, LinearExpr::constant(Dim, *R.Lo)));
      continue;
    }
    if (R.Lo)
      Result.push_back(
          Constraint::ge(X, LinearExpr::constant(Dim, *R.Lo)));
    if (R.Hi)
      Result.push_back(
          Constraint::le(X, LinearExpr::constant(Dim, *R.Hi)));
  }
  return Result;
}

std::string Intervals::toString(const std::vector<std::string> &Names) const {
  return renderConstraints(constraintList(), Names, Empty);
}
