//===- poly/NumericDomain.cpp - Shared numeric-backend pieces -------------===//

#include "poly/NumericDomain.h"

#include "poly/Polyhedron.h"

using namespace pmaf;
using namespace pmaf::poly;

Rational poly::roundedBoundValue(const Rational &V, unsigned MaxBits) {
  // The polyhedra row for `x <= p/q` is (p, -q); rounding only looks at
  // magnitudes, so the same helper serves both bound orientations and
  // difference entries (whose rows repeat q on a second column).
  ConeRow Row;
  Row.Coeffs = {V.numerator(), V.denominator().negated()};
  if (!roundConstraintRow(Row, MaxBits))
    return V;
  // Row is c0 + c1 x >= 0 with the bound at x = -c0/c1.
  return Rational(Row.Coeffs[0].negated(), Row.Coeffs[1]);
}

ConstraintClass poly::classifyConstraint(const Constraint &Con) {
  unsigned First = 0, Second = 0, NonZero = 0;
  for (unsigned I = 0; I != Con.Expr.dim(); ++I) {
    if (Con.Expr.coeff(I).isZero())
      continue;
    if (NonZero == 0)
      First = I;
    else if (NonZero == 1)
      Second = I;
    ++NonZero;
    if (NonZero > 2)
      return ConstraintClass::General;
  }
  if (NonZero == 0)
    return ConstraintClass::Trivial;
  if (NonZero == 1)
    return ConstraintClass::Bound;
  if (Con.Expr.coeff(First) == -Con.Expr.coeff(Second))
    return ConstraintClass::Difference;
  return ConstraintClass::General;
}

std::string poly::renderConstraints(const std::vector<Constraint> &Cons,
                                    const std::vector<std::string> &Names,
                                    bool Empty) {
  if (Empty)
    return "{false}";
  if (Cons.empty())
    return "{true}";
  std::string Out = "{";
  bool First = true;
  for (const Constraint &Con : Cons) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Con.toString(Names);
  }
  return Out + "}";
}
