//===- poly/LinearExpr.cpp - Rational linear expressions -------------------===//

#include "poly/LinearExpr.h"

using namespace pmaf;
using namespace pmaf::poly;

LinearExpr LinearExpr::operator+(const LinearExpr &Other) const {
  assert(dim() == Other.dim() && "dimension mismatch");
  LinearExpr Result(dim());
  for (size_t I = 0; I != Coeffs.size(); ++I)
    Result.Coeffs[I] = Coeffs[I] + Other.Coeffs[I];
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &Other) const {
  assert(dim() == Other.dim() && "dimension mismatch");
  LinearExpr Result(dim());
  for (size_t I = 0; I != Coeffs.size(); ++I)
    Result.Coeffs[I] = Coeffs[I] - Other.Coeffs[I];
  return Result;
}

LinearExpr LinearExpr::scaled(const Rational &Factor) const {
  LinearExpr Result(dim());
  for (size_t I = 0; I != Coeffs.size(); ++I)
    Result.Coeffs[I] = Coeffs[I] * Factor;
  return Result;
}

Rational LinearExpr::evaluate(const std::vector<Rational> &Point) const {
  assert(Point.size() == dim() && "point dimension mismatch");
  Rational Result = Coeffs[0];
  for (unsigned I = 0; I != dim(); ++I)
    Result += Coeffs[I + 1] * Point[I];
  return Result;
}

std::string LinearExpr::toString(
    const std::vector<std::string> &Names) const {
  std::string Out;
  for (unsigned I = 0; I != dim(); ++I) {
    const Rational &C = coeff(I);
    if (C.isZero())
      continue;
    std::string Name =
        I < Names.size() ? Names[I] : "x" + std::to_string(I);
    if (Out.empty()) {
      if (C == Rational(1))
        Out += Name;
      else if (C == Rational(-1))
        Out += "-" + Name;
      else
        Out += C.toString() + "*" + Name;
    } else {
      Rational Abs = C.abs();
      Out += C.sign() < 0 ? " - " : " + ";
      if (Abs == Rational(1))
        Out += Name;
      else
        Out += Abs.toString() + "*" + Name;
    }
  }
  const Rational &B = constantTerm();
  if (Out.empty())
    return B.toString();
  if (!B.isZero())
    Out += (B.sign() < 0 ? " - " : " + ") + B.abs().toString();
  return Out;
}
