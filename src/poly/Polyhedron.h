//===- poly/Polyhedron.h - Convex polyhedra over the rationals --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed convex polyhedra over Q^d with exact arithmetic, implemented with
/// the double-description (Chernikova) method: each polyhedron keeps both a
/// minimized constraint system and a minimized generator system (points,
/// rays, lines) of its homogenized cone, and every operation works on
/// whichever side is natural:
///
///   meet       : union of constraints          (constraint side)
///   join       : union of generators (poly hull, generator side)
///   projection : column removal                (generator side)
///   inclusion  : generators against constraints
///   widening   : constraints stable across the two iterates (CH78)
///
/// This is the substrate replacing APRON in the paper's prototype (§6.1);
/// the LEIA instantiation of §5.3 builds its product domain of ordinary and
/// expectation polyhedra on top of it.
///
/// Internals: a polyhedron P in Q^d is the set {x | (1, x) ∈ C} for the
/// cone C in Q^{d+1} generated/constrained by integer rows; row column 0 is
/// the homogeneous coordinate (the constant term of a constraint). Rows are
/// normalized by their content gcd. Conversion between the two sides is a
/// single dualization routine (the DD pair is symmetric).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_POLYHEDRON_H
#define PMAF_POLY_POLYHEDRON_H

#include "poly/LinearExpr.h"
#include "poly/NumericDomain.h"
#include "support/BigInt.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// A homogeneous integer row of a cone representation. As a constraint it
/// reads `C[0] + C[1] x1 + ... + C[d] xd >= 0` (or == 0 when IsLinearity);
/// as a generator it is a point (C[0] > 0, coordinates C[i]/C[0]), a ray
/// (C[0] == 0), or a line (IsLinearity).
struct ConeRow {
  bool IsLinearity = false;
  std::vector<BigInt> Coeffs;

  /// Divides by the content gcd; linearities get a canonical sign (first
  /// nonzero coefficient positive). \returns false if the row is zero.
  bool normalize();

  bool operator==(const ConeRow &Other) const {
    return IsLinearity == Other.IsLinearity && Coeffs == Other.Coeffs;
  }
};

/// Scalar product of two rows of equal width.
BigInt dotProduct(const ConeRow &A, const ConeRow &B);

/// Dualizes a cone representation: given the constraints of a cone in
/// Q^{Cols} returns its minimal generators, and vice versa (the algorithm
/// is self-dual). Chernikova's incremental construction with the
/// saturation-based adjacency test.
std::vector<ConeRow> dualize(const std::vector<ConeRow> &Input,
                             unsigned Cols);

/// Rounds one constraint row to at most \p MaxBits bits per coefficient:
/// rows already within budget are kept exactly, wider rows are rescaled so
/// the widest coefficient becomes 2^MaxBits with round-to-nearest on the
/// rest (the §6.1 finite-precision convergence device). Shared by every
/// numeric backend so rounding behaves identically at all ladder rungs.
/// \returns true if the row was modified.
bool roundConstraintRow(ConeRow &Row, unsigned MaxBits);

/// A closed convex polyhedron in Q^d.
class Polyhedron {
public:
  /// Constructs the universe (whole space) of dimension \p Dim.
  static Polyhedron universe(unsigned Dim);

  /// Constructs the empty polyhedron of dimension \p Dim.
  static Polyhedron empty(unsigned Dim);

  /// Constructs from a constraint system.
  static Polyhedron fromConstraints(unsigned Dim,
                                    const std::vector<Constraint> &Cons);

  /// Constructs the single rational point \p Coords.
  static Polyhedron point(const std::vector<Rational> &Coords);

  /// Cartesian product A × B over dim(A) + dim(B): A's variables first,
  /// then B's. Computed directly on both minimized representations —
  /// constraints embed with disjoint support, generator points pair up at
  /// a common homogeneous coordinate — so no Chernikova conversion runs.
  /// The ladder backend uses this to merge independent variable packs.
  static Polyhedron product(const Polyhedron &A, const Polyhedron &B);

  unsigned dim() const { return Dim; }
  bool isEmpty() const { return Empty; }
  bool isUniverse() const { return !Empty && Cons.empty(); }

  /// Greatest lower bound: conjunction of constraints.
  Polyhedron meet(const Polyhedron &Other) const;

  /// Meet with a single constraint.
  Polyhedron meet(const Constraint &Con) const;

  /// Least upper bound in the polyhedra lattice (polyhedral hull).
  Polyhedron join(const Polyhedron &Other) const;

  /// Existentially quantifies the given dimensions (they become
  /// unconstrained; the dimension of the result is unchanged).
  Polyhedron project(const std::vector<unsigned> &DimsToForget) const;

  /// Appends \p Count fresh unconstrained dimensions.
  Polyhedron extend(unsigned Count) const;

  /// Removes the trailing \p Count dimensions, projecting onto the rest.
  Polyhedron dropTrailing(unsigned Count) const;

  /// Renames dimensions: NewIndex[i] is the destination of dimension i
  /// (a permutation of 0..d-1).
  Polyhedron permute(const std::vector<unsigned> &NewIndex) const;

  /// \returns true if \p Other ⊆ *this.
  bool contains(const Polyhedron &Other) const;

  /// \returns true if \p Other ⊆ *this up to relative tolerance \p Eps:
  /// each generator of Other may violate each constraint of *this by at
  /// most Eps at the scale of the row norms. Fixpoint detection over
  /// geometrically-converging chains uses this (the analogue of §6.1's
  /// "ascending chains of floating numbers converge finitely").
  bool containsApprox(const Polyhedron &Other, double Eps) const;

  bool equals(const Polyhedron &Other) const {
    return contains(Other) && Other.contains(*this);
  }

  /// \returns true if every point of *this satisfies \p Con.
  bool satisfies(const Constraint &Con) const;

  /// \returns true if the rational point \p Coords lies in *this.
  bool containsPoint(const std::vector<Rational> &Coords) const;

  /// The standard widening of Cousot–Halbwachs: keeps the constraints of
  /// *this that \p Other satisfies (equalities split into inequality
  /// pairs so each half can survive separately). Requires *this ⊑ Other.
  Polyhedron widen(const Polyhedron &Other) const;

  /// Limits coefficient precision: any constraint row whose coefficients
  /// exceed \p MaxBits bits is rescaled so its largest coefficient is
  /// 2^MaxBits and the others are rounded to the nearest integer; rows
  /// already within budget are kept exactly. This reproduces the
  /// finite-precision convergence argument of §6.1 of the paper ("ascending
  /// chains of floating numbers always converge in a finite number of
  /// steps"): rounded rows range over a finite set, so Kleene chains that
  /// would ascend forever over exact rationals stabilize. Like the paper's
  /// float implementation, rounding is a controlled precision loss, not a
  /// sound over-approximation.
  Polyhedron roundedCoefficients(unsigned MaxBits = 40) const;

  /// Supremum of \p Expr over the polyhedron: nullopt when unbounded
  /// above; no value is defined on the empty polyhedron (asserts).
  std::optional<Rational> maximize(const LinearExpr &Expr) const;

  /// Infimum of \p Expr over the polyhedron.
  std::optional<Rational> minimize(const LinearExpr &Expr) const;

  /// Minimized constraints (without the implicit positivity row).
  const std::vector<ConeRow> &constraints() const { return Cons; }

  /// Minimized generators of the homogenized cone.
  const std::vector<ConeRow> &generators() const { return Gens; }

  /// Constraint system as user-facing Constraints.
  std::vector<Constraint> constraintList() const;

  /// Renders the constraint system, e.g. "{x0 >= 0, x0 + x1 - 1 == 0}".
  std::string toString(const std::vector<std::string> &Names = {}) const;

private:
  Polyhedron() = default;

  /// Rebuilds both minimized representations from raw constraint rows.
  static Polyhedron fromConstraintRows(unsigned Dim,
                                       std::vector<ConeRow> Rows);

  /// Rebuilds both minimized representations from raw generator rows.
  static Polyhedron fromGeneratorRows(unsigned Dim,
                                      std::vector<ConeRow> Rows);

  static ConeRow positivityRow(unsigned Dim);
  static bool isTrivialConstraint(const ConeRow &Row);

  unsigned Dim = 0;
  bool Empty = true;
  std::vector<ConeRow> Cons; ///< Minimized; positivity row stripped.
  std::vector<ConeRow> Gens; ///< Minimized cone generators.
};

static_assert(NumericDomain<Polyhedron>,
              "Polyhedron must model the numeric-backend interface");

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_POLYHEDRON_H
