//===- poly/LinearExpr.h - Rational linear expressions ----------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions `b + a1*x1 + ... + ad*xd` over exact rationals, and
/// the linear constraints `expr >= 0` / `expr == 0` built from them. These
/// are the user-facing currency of the convex-polyhedra library (the
/// APRON replacement used by the LEIA instantiation of §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_LINEAREXPR_H
#define PMAF_POLY_LINEAREXPR_H

#include "support/Rational.h"

#include <cassert>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// An affine expression over a fixed-dimension rational vector space.
class LinearExpr {
public:
  /// The zero expression over \p Dim variables.
  explicit LinearExpr(unsigned Dim = 0) : Coeffs(Dim + 1) {}

  /// \returns the constant expression \p Value.
  static LinearExpr constant(unsigned Dim, Rational Value) {
    LinearExpr E(Dim);
    E.Coeffs[0] = std::move(Value);
    return E;
  }

  /// \returns the expression `x_Index`.
  static LinearExpr variable(unsigned Dim, unsigned Index) {
    assert(Index < Dim && "variable index out of range");
    LinearExpr E(Dim);
    E.Coeffs[Index + 1] = Rational(1);
    return E;
  }

  unsigned dim() const { return static_cast<unsigned>(Coeffs.size()) - 1; }

  const Rational &constantTerm() const { return Coeffs[0]; }
  Rational &constantTerm() { return Coeffs[0]; }

  const Rational &coeff(unsigned Index) const {
    assert(Index < dim() && "variable index out of range");
    return Coeffs[Index + 1];
  }
  Rational &coeff(unsigned Index) {
    assert(Index < dim() && "variable index out of range");
    return Coeffs[Index + 1];
  }

  bool isConstant() const {
    for (unsigned I = 0; I != dim(); ++I)
      if (!coeff(I).isZero())
        return false;
    return true;
  }

  LinearExpr operator+(const LinearExpr &Other) const;
  LinearExpr operator-(const LinearExpr &Other) const;
  LinearExpr scaled(const Rational &Factor) const;
  LinearExpr operator-() const { return scaled(Rational(-1)); }

  /// Evaluates at a rational point (size dim()).
  Rational evaluate(const std::vector<Rational> &Point) const;

  /// Renders with the given variable names (or x0, x1, ... when empty).
  std::string toString(const std::vector<std::string> &Names = {}) const;

private:
  /// Coeffs[0] is the constant term; Coeffs[i+1] multiplies x_i.
  std::vector<Rational> Coeffs;
};

/// A linear constraint: Expr >= 0 or Expr == 0 (closed polyhedra only).
struct Constraint {
  enum class Kind { Ge, Eq };

  LinearExpr Expr;
  Kind TheKind = Kind::Ge;

  /// Lhs >= Rhs.
  static Constraint ge(const LinearExpr &Lhs, const LinearExpr &Rhs) {
    return Constraint{Lhs - Rhs, Kind::Ge};
  }
  /// Lhs <= Rhs.
  static Constraint le(const LinearExpr &Lhs, const LinearExpr &Rhs) {
    return Constraint{Rhs - Lhs, Kind::Ge};
  }
  /// Lhs == Rhs.
  static Constraint eq(const LinearExpr &Lhs, const LinearExpr &Rhs) {
    return Constraint{Lhs - Rhs, Kind::Eq};
  }

  std::string toString(const std::vector<std::string> &Names = {}) const {
    return Expr.toString(Names) +
           (TheKind == Kind::Ge ? " >= 0" : " == 0");
  }
};

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_LINEAREXPR_H
