//===- poly/Ladder.h - The escalating, variable-packed backend --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ladder backend of the numeric-domain layer, and the default under
/// `--numeric=ladder`. A LadderValue represents a convex set as a product
/// of *blocks* over disjoint variable packs — the connected components of
/// the constraint dependency graph — with each block held at the cheapest
/// rung (intervals → zones → polyhedra) that represents it **exactly**:
///
///   * Variable packing: operations run per block, so Chernikova
///     conversions happen in block dimension instead of the full
///     2n-dimensional two-vocabulary space. Blocks merge only when a
///     constraint or operation genuinely couples them, and every result
///     is re-split into independent packs (compression).
///
///   * Lazy escalation: a block climbs a rung only on fragment escape —
///     a single-variable bound fits any rung, a difference constraint
///     needs at least zones, anything else needs polyhedra. Joins and
///     widenings of unequal blocks run at the polyhedra rung (the zone
///     join is not the convex hull, and the CH78 widening is
///     representation-dependent), then compress back down.
///
/// Every operation is *exact* — a LadderValue denotes precisely the same
/// set a Polyhedron would — which is what lets `--numeric=ladder`
/// reproduce the poly-mode LEIA invariants while doing geometrically
/// smaller conversions. Escalations and pack widths are counted through
/// poly::numericCounters().
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_POLY_LADDER_H
#define PMAF_POLY_LADDER_H

#include "poly/Intervals.h"
#include "poly/NumericDomain.h"
#include "poly/Polyhedron.h"
#include "poly/Zones.h"

#include <optional>
#include <string>
#include <vector>

namespace pmaf {
namespace poly {

/// A convex set held as a product of independently-represented blocks.
class LadderValue {
public:
  /// The rungs of the ladder, cheapest first.
  enum class Rung { Box, Zone, Poly };

  /// The universe of dimension 0 (value-type default).
  LadderValue() = default;

  static LadderValue universe(unsigned Dim);
  static LadderValue empty(unsigned Dim);
  static LadderValue fromConstraints(unsigned Dim,
                                     const std::vector<Constraint> &Cons);

  unsigned dim() const { return Dim; }
  bool isEmpty() const { return Empty; }
  bool isUniverse() const;

  LadderValue meet(const LadderValue &Other) const;
  LadderValue meet(const Constraint &Con) const;
  LadderValue join(const LadderValue &Other) const;
  LadderValue project(const std::vector<unsigned> &DimsToForget) const;
  LadderValue extend(unsigned Count) const;
  LadderValue dropTrailing(unsigned Count) const;
  LadderValue permute(const std::vector<unsigned> &NewIndex) const;

  bool contains(const LadderValue &Other) const;
  bool containsApprox(const LadderValue &Other, double Eps) const;
  bool equals(const LadderValue &Other) const;

  /// CH78 widening, computed per aligned variable group (the widening
  /// factors exactly over independent groups); unequal groups widen at
  /// the polyhedra rung and compress back down.
  LadderValue widen(const LadderValue &Other) const;

  LadderValue roundedCoefficients(unsigned MaxBits = 40) const;

  std::optional<Rational> maximize(const LinearExpr &Expr) const;
  std::optional<Rational> minimize(const LinearExpr &Expr) const;

  std::vector<Constraint> constraintList() const;
  std::string toString(const std::vector<std::string> &Names = {}) const;

  /// Introspection for tests and stats: the current pack partition sizes
  /// and rungs, ordered by first variable. Empty for the empty value.
  std::vector<std::pair<unsigned, Rung>> blockProfile() const;

  /// The exact polyhedron this value denotes (product of all blocks).
  Polyhedron toPolyhedron() const;

  /// One variable pack and its representation at the current rung. The
  /// value lives in block-local dimensions 0..Vars.size()-1, mapped to
  /// the global dimensions in Vars (ascending). Public for the
  /// implementation's free helpers; not part of the client interface.
  struct Block {
    std::vector<unsigned> Vars;
    Rung R = Rung::Box;
    Intervals Box;               ///< Valid iff R == Box (always 1 var).
    Zones Zn;                    ///< Valid iff R == Zone.
    Polyhedron Py = Polyhedron::empty(0); ///< Valid iff R == Poly.
  };

private:
  unsigned Dim = 0;
  bool Empty = false;
  /// Partition of 0..Dim-1, ordered by Vars.front(); each block is
  /// nonempty and canonical: boxes are single variables, zones and
  /// polyhedra do not factor further and sit at their lowest exact rung.
  std::vector<Block> Blocks;

  LadderValue(unsigned Dim, bool Empty) : Dim(Dim), Empty(Empty) {}

  static Block freeBlock(unsigned Var);
  static Polyhedron blockToPoly(const Block &B);
  static std::vector<Constraint> blockConstraints(const Block &B);

  /// Appends the canonical (split + demoted) blocks representing the
  /// nonempty polyhedron \p P over global variables \p Vars.
  static void appendFromPoly(std::vector<Block> &Out,
                             const std::vector<unsigned> &Vars,
                             const Polyhedron &P);

  /// Appends the canonical blocks representing the nonempty zone \p Z.
  static void appendFromZone(std::vector<Block> &Out,
                             const std::vector<unsigned> &Vars,
                             const Zones &Z);

  /// Union-find alignment of two partitions: \returns a group id per
  /// global dimension such that every block of either value lies inside
  /// one group.
  static std::vector<unsigned> alignGroups(const LadderValue &A,
                                           const LadderValue &B);

  /// The blocks of *this lying inside group \p Group (by representative
  /// dimension ids from alignGroups).
  std::vector<const Block *>
  groupMembers(const std::vector<unsigned> &GroupOf, unsigned Group) const;

  void sortBlocks();
};

static_assert(NumericDomain<LadderValue>,
              "LadderValue must model the numeric-backend interface");

} // namespace poly
} // namespace pmaf

#endif // PMAF_POLY_LADDER_H
