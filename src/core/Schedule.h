//===- core/Schedule.h - Pluggable chaotic-iteration schedulers -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler layer of the analysis engine: a chaotic-iteration
/// *scheduler* decides in which order node inequalities are re-evaluated
/// until the system stabilizes; it never touches domain values. The seam
/// is deliberately domain-free — a scheduler sees nodes, the WTO, the
/// dependence structure, and an opaque `Update` callback — so new
/// strategies (and, later, parallel per-SCC drivers) plug in without
/// touching the solver template or any domain.
///
/// Five schedulers ship:
///  * WtoRecursiveScheduler — Bourdoncle's recursive strategy (§4.4, the
///    paper's choice): stabilize each WTO component innermost-first.
///  * RoundRobinScheduler — naive full sweeps until a sweep changes
///    nothing (ablation baseline).
///  * WorklistScheduler — dependency-driven: a node is re-evaluated only
///    when one of the nodes its right-hand side reads actually changed,
///    dirty nodes ordered by WTO position.
///  * ParallelSccScheduler — the parallel per-SCC driver the seam was cut
///    for: the top-level WTO elements are exactly the SCCs of the
///    dependence graph in topological order (the WTO builder is a Tarjan
///    variant), so independent SCCs at the same dependency frontier are
///    stabilized concurrently on a thread pool, each by the WTO-recursive
///    logic on a single worker. Values are partitioned by SCC — a node is
///    written only by its SCC's worker, and cross-SCC reads touch only
///    SCCs that already reached their fixpoint — so no locking guards the
///    value vector, widening stays inside one worker per SCC, and the
///    result is bit-identical to the sequential recursive strategy.
///  * ParallelIntraScheduler — deterministic parallelism *inside* one
///    component: the body of each WTO component is partitioned into
///    conflict-free batches (cfg::computeIntraPlans) that run
///    concurrently with a barrier between batches, while the outer
///    re-iteration discipline stays Bourdoncle's. Complements the
///    per-SCC driver on programs dominated by a single loop nest.
///
/// All five drive the same Update callback, so widening, convergence
/// bookkeeping, and instrumentation behave identically; they reach the
/// same fixpoint (tests/SchedulerParityTest.cpp) with different amounts
/// of work (and wall clock).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_SCHEDULE_H
#define PMAF_CORE_SCHEDULE_H

#include "cfg/Wto.h"
#include "core/Instrumentation.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

namespace pmaf {
namespace core {

/// Chaotic-iteration strategies (one per scheduler type below).
enum class IterationStrategy {
  /// Bourdoncle's recursive strategy over the WTO (the paper's choice:
  /// "efficient iteration strategies with widenings").
  WtoRecursive,
  /// Naive round-robin sweeps over all nodes until stable (ablation
  /// baseline; widening points still come from the WTO so termination is
  /// unaffected).
  RoundRobin,
  /// Dependency-driven worklist with dirty-node tracking, ordered by WTO
  /// position: a node is re-evaluated only when a node it reads changed.
  Worklist,
  /// Parallel per-SCC driver: stabilize independent SCCs of the
  /// dependence-graph condensation concurrently (WTO-recursive within
  /// each SCC). Falls back to sequential topological execution when the
  /// context carries no pool or the domain is not thread-safe.
  ParallelScc,
  /// Deterministic intra-SCC driver: within each WTO component, run the
  /// precomputed conflict-free batches of the component body
  /// concurrently with a barrier between batches, keeping Bourdoncle's
  /// outer re-iteration discipline unchanged. Falls back to the
  /// sequential recursive strategy without a pool, a thread-safe domain,
  /// or a batch plan.
  ParallelIntra,
};

/// Everything a scheduler may consult. Domain-free by construction: the
/// solver owns values, widening, and convergence accounting inside the
/// Update callback.
struct ScheduleContext {
  unsigned NumNodes = 0;
  /// WTO of the dependence graph (iteration order + widening points).
  const cfg::Wto *Order = nullptr;
  /// Dependence successors: Dependents[u] = nodes whose right-hand side
  /// reads u (CompiledProgram::dependents()).
  const std::vector<std::vector<unsigned>> *Dependents = nullptr;
  /// Re-evaluates one node's inequality; returns true iff the node's
  /// value changed. Exit nodes are no-ops.
  std::function<bool(unsigned)> Update;
  /// True once the update budget is exhausted; schedulers must stop.
  std::function<bool()> Exhausted;
  /// Optional event sink (component-stabilization events originate here).
  SolverObserver *Observer = nullptr;
  /// WTO linearization positions (Order->positions()), computed once per
  /// solve by the facade so position-keyed schedulers need not recompute
  /// the O(n) flattening on every run.
  const std::vector<unsigned> *Positions = nullptr;
  /// Worker pool for the parallel scheduler (null → sequential fallback).
  support::ThreadPool *Pool = nullptr;
  /// True when concurrent Update calls on *distinct nodes* are safe: the
  /// domain's operations are thread-safe and the solver's accounting is
  /// atomic. The facade sets this; schedulers must not parallelize
  /// without it.
  bool ParallelSafe = false;
  /// Component→worker affinity (SolverOptions::Affinity): the parallel
  /// schedulers pin an SCC's stabilization rounds / a body unit's batch
  /// slot to a fixed pool worker (postTo / ParallelBatch::runSticky), so
  /// that worker's thread-local conversion memos stay hot across outer
  /// re-iterations. Pinned work is still stolen when the owner saturates,
  /// and the fixpoint is unaffected either way (determinism comes from
  /// the per-SCC single-writer discipline and the conflict-free batches,
  /// not from which worker runs what). Off → the pre-affinity shared-FIFO
  /// dispatch, kept for A/B measurement and the parity sweep.
  bool Affinity = true;
  /// Optional out-param: the parallel scheduler CAS-maxes the number of
  /// simultaneously in-flight SCC stabilizations into it (the facade
  /// reports it as SolverStats::MaxParallelSccs). Ignored by sequential
  /// schedulers.
  std::atomic<unsigned> *MaxParallelSccs = nullptr;
  /// Conflict-free batch plans per component head (cfg::computeIntraPlans,
  /// cached by CompiledProgram) for the ParallelIntra scheduler; null for
  /// every other strategy.
  const std::vector<cfg::IntraComponentPlan> *IntraPlans = nullptr;
  /// Optional out-params for the ParallelIntra scheduler: batches that
  /// fanned out, widest batch executed, and cumulative nanoseconds the
  /// coordinator waited at batch barriers.
  std::atomic<uint64_t> *IntraBatchesRun = nullptr;
  std::atomic<unsigned> *MaxIntraBatchWidth = nullptr;
  std::atomic<uint64_t> *IntraBarrierWaitNanos = nullptr;
};

/// Interface all chaotic-iteration schedulers implement.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Runs updates until every inequality is satisfied (or the budget is
  /// exhausted). Postcondition on natural exit: Update would return false
  /// for every node.
  virtual void run(const ScheduleContext &Ctx) = 0;
};

/// Stabilizes one WTO element with Bourdoncle's recursive discipline: a
/// component is re-iterated until a full pass over it changes nothing,
/// nested components stabilized within each pass. Shared by the
/// sequential recursive scheduler and the per-SCC workers of the parallel
/// scheduler (one call = one element = one thread).
inline void stabilizeElement(const ScheduleContext &Ctx,
                             const cfg::WtoElement &Element) {
  if (!Element.IsComponent) {
    Ctx.Update(Element.Node);
    return;
  }
  unsigned Passes = 0;
  while (!Ctx.Exhausted()) {
    ++Passes;
    bool Changed = Ctx.Update(Element.Node);
    for (const cfg::WtoElement &Child : Element.Body)
      stabilizeElement(Ctx, Child);
    // All intra-component cycles pass through the head (or through
    // nested components, which stabilizeElement() settled); once an extra
    // head update is a no-op after a no-op pass, every inequality in the
    // component is satisfied.
    if (!Changed && !Ctx.Update(Element.Node))
      break;
  }
  if (Ctx.Observer)
    Ctx.Observer->onComponentStabilized(Element.Node, Passes);
}

/// Bourdoncle's recursive iteration strategy: stabilize the top-level
/// elements left to right.
class WtoRecursiveScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    for (const cfg::WtoElement &Element : Ctx.Order->Elements)
      stabilizeElement(Ctx, Element);
  }
};

/// Naive round-robin: sweep all nodes repeatedly until a full sweep is a
/// no-op.
class RoundRobinScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    while (!Ctx.Exhausted()) {
      bool Changed = false;
      for (unsigned V = 0; V != Ctx.NumNodes; ++V)
        Changed |= Ctx.Update(V);
      if (!Changed)
        break;
    }
  }
};

/// Dependency-driven worklist: every node starts dirty; popping always
/// takes the dirty node earliest in the WTO linearization, and a change
/// at u re-dirties exactly the nodes whose right-hand side reads u.
class WorklistScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    // Positions are hoisted into the context (one flattening per solve,
    // not per run); fall back for contexts built by hand.
    std::vector<unsigned> Computed;
    if (!Ctx.Positions)
      Computed = Ctx.Order->positions();
    const std::vector<unsigned> &Position =
        Ctx.Positions ? *Ctx.Positions : Computed;
    using Entry = std::pair<unsigned, unsigned>; // (position, node)
    std::vector<Entry> Storage;
    Storage.reserve(Ctx.NumNodes); // Dirty never outgrows the node count.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        Dirty(std::greater<Entry>(), std::move(Storage));
    std::vector<bool> InQueue(Ctx.NumNodes, true);
    for (unsigned V = 0; V != Ctx.NumNodes; ++V)
      Dirty.push({Position[V], V});
    while (!Dirty.empty() && !Ctx.Exhausted()) {
      unsigned V = Dirty.top().second;
      Dirty.pop();
      InQueue[V] = false;
      if (!Ctx.Update(V))
        continue;
      for (unsigned W : (*Ctx.Dependents)[V])
        if (!InQueue[W]) {
          InQueue[W] = true;
          Dirty.push({Position[W], W});
        }
    }
  }
};

/// Parallel per-SCC driver. The dependence-graph condensation comes for
/// free from the WTO: the builder is a Tarjan variant, so each top-level
/// WtoElement is exactly one SCC (a plain vertex for trivial SCCs, a
/// component for cyclic ones) and the element list is a topological order
/// of the condensation. Scheduling is therefore: count, per SCC, the
/// dependence arcs arriving from other SCCs; stabilize every in-degree-0
/// SCC concurrently on the pool; when an SCC reaches its fixpoint, release
/// its outgoing arcs, and any SCC whose count hits zero joins the frontier.
///
/// Determinism: a node's right-hand side reads only nodes of its own SCC
/// and of upstream SCCs. Upstream SCCs are final before the SCC starts
/// (the release edge on the atomic in-degree publishes their values), and
/// inside an SCC the single worker replays exactly the sequential
/// WTO-recursive update sequence — so the fixpoint is bit-identical to
/// WtoRecursiveScheduler's, whatever the thread count or interleaving.
class ParallelSccScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    const std::vector<cfg::WtoElement> &Sccs = Ctx.Order->Elements;
    const unsigned NumSccs = static_cast<unsigned>(Sccs.size());
    if (!Ctx.Pool || !Ctx.ParallelSafe || Ctx.Pool->size() <= 1 ||
        NumSccs <= 1) {
      // Sequential fallback — same topological order, same fixpoint.
      for (const cfg::WtoElement &Element : Sccs)
        stabilizeElement(Ctx, Element);
      return;
    }

    // Node -> owning SCC, and the member list per SCC.
    std::vector<unsigned> SccOf(Ctx.NumNodes, 0);
    std::vector<std::vector<unsigned>> Members(NumSccs);
    for (unsigned S = 0; S != NumSccs; ++S)
      collectMembers(Sccs[S], S, SccOf, Members[S]);

    // Cross-SCC dependence arcs u -> v (v reads u): v's SCC waits on u's.
    std::unique_ptr<std::atomic<unsigned>[]> Pending(
        new std::atomic<unsigned>[NumSccs]);
    std::vector<unsigned> InDegree(NumSccs, 0);
    for (unsigned S = 0; S != NumSccs; ++S)
      for (unsigned U : Members[S])
        for (unsigned V : (*Ctx.Dependents)[U])
          if (SccOf[V] != S)
            ++InDegree[SccOf[V]];
    for (unsigned S = 0; S != NumSccs; ++S)
      Pending[S].store(InDegree[S], std::memory_order_relaxed);

    std::atomic<unsigned> Remaining(NumSccs);
    std::atomic<unsigned> InFlight(0);
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    std::mutex ExceptionMutex;
    std::exception_ptr FirstException;

    // Dispatch an SCC to the pool. With affinity, SCC S is pinned to
    // worker S mod pool-size — the same worker on every dispatch, so the
    // conversion memos it populated for S's nodes in earlier rounds stay
    // hot — and stolen only when that worker is saturated. Without it,
    // the shared FIFO takes the task (the pre-affinity behaviour).
    auto Dispatch = [&Ctx](unsigned S, std::function<void()> Fn) {
      if (Ctx.Affinity)
        Ctx.Pool->postTo(S, std::move(Fn));
      else
        Ctx.Pool->post(std::move(Fn));
    };

    // One task = one SCC stabilized start to fixpoint on one worker.
    // Tasks release their dependents themselves, so the frontier advances
    // without a coordinator round-trip; acq_rel on the in-degree makes the
    // finished SCC's values visible to the successors it unblocks.
    std::function<void(unsigned)> RunScc = [&](unsigned S) {
      unsigned Now = InFlight.fetch_add(1, std::memory_order_relaxed) + 1;
      if (Ctx.MaxParallelSccs) {
        unsigned Seen =
            Ctx.MaxParallelSccs->load(std::memory_order_relaxed);
        while (Seen < Now &&
               !Ctx.MaxParallelSccs->compare_exchange_weak(
                   Seen, Now, std::memory_order_relaxed))
          ;
      }
      try {
        stabilizeElement(Ctx, Sccs[S]);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ExceptionMutex);
        if (!FirstException)
          FirstException = std::current_exception();
      }
      InFlight.fetch_sub(1, std::memory_order_relaxed);
      for (unsigned U : Members[S])
        for (unsigned V : (*Ctx.Dependents)[U]) {
          unsigned T = SccOf[V];
          if (T != S &&
              Pending[T].fetch_sub(1, std::memory_order_acq_rel) == 1)
            Dispatch(T, [&RunScc, T] { RunScc(T); });
        }
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(DoneMutex);
        DoneCv.notify_all();
      }
    };

    for (unsigned S = 0; S != NumSccs; ++S)
      if (InDegree[S] == 0)
        Dispatch(S, [&RunScc, S] { RunScc(S); });

    std::unique_lock<std::mutex> Lock(DoneMutex);
    DoneCv.wait(Lock, [&Remaining] {
      return Remaining.load(std::memory_order_acquire) == 0;
    });
    if (FirstException)
      std::rethrow_exception(FirstException);
  }

private:
  static void collectMembers(const cfg::WtoElement &Element, unsigned Scc,
                             std::vector<unsigned> &SccOf,
                             std::vector<unsigned> &Members) {
    SccOf[Element.Node] = Scc;
    Members.push_back(Element.Node);
    for (const cfg::WtoElement &Child : Element.Body)
      collectMembers(Child, Scc, SccOf, Members);
  }
};

/// Deterministic intra-component parallel driver. The outer loop is
/// exactly Bourdoncle's recursive strategy; only the *body pass* of a
/// component changes: instead of visiting the body elements left to
/// right, it runs the component's precomputed conflict-free batches
/// (cfg::IntraComponentPlan) in sequence, the units of one batch
/// concurrently on the pool with a barrier before the next.
///
/// Determinism: units in a batch share no dependence arc, so each reads
/// exactly the values it would have read in the sequential body order —
/// the batched pass is extensionally identical to the sequential pass,
/// node update counts included (widening delays fire identically), and
/// the fixpoint is bit-identical to WtoRecursiveScheduler's for any
/// thread count.
///
/// Deadlock discipline: barriers live only on the coordinator thread.
/// Singleton batches run inline on the coordinator and recurse *batched*
/// (so a nested component's body still fans out); units of a multi-unit
/// batch run on pool workers with the plain sequential discipline —
/// workers never wait.
class ParallelIntraScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    if (!Ctx.Pool || !Ctx.ParallelSafe || !Ctx.IntraPlans) {
      // Sequential fallback — same iteration order, same fixpoint.
      for (const cfg::WtoElement &Element : Ctx.Order->Elements)
        stabilizeElement(Ctx, Element);
      return;
    }
    support::ParallelBatch Batch(*Ctx.Pool);
    for (const cfg::WtoElement &Element : Ctx.Order->Elements)
      stabilizeBatched(Ctx, Element, Batch);
  }

private:
  static void stabilizeBatched(const ScheduleContext &Ctx,
                               const cfg::WtoElement &Element,
                               support::ParallelBatch &Batch) {
    if (!Element.IsComponent) {
      Ctx.Update(Element.Node);
      return;
    }
    const cfg::IntraComponentPlan &Plan = (*Ctx.IntraPlans)[Element.Node];
    unsigned Passes = 0;
    while (!Ctx.Exhausted()) {
      ++Passes;
      bool Changed = Ctx.Update(Element.Node);
      for (const std::vector<unsigned> &Units : Plan.Batches) {
        if (Units.size() == 1) {
          stabilizeBatched(Ctx, Element.Body[Units[0]], Batch);
          continue;
        }
        // With affinity, unit slot I is pinned to lane I mod (workers+1)
        // on every pass (runSticky), so a unit's conversion memos live on
        // one worker across the component's re-iterations; without it,
        // any lane claims any unit from the shared cursor. Either way the
        // batch is conflict-free, so the pass is extensionally identical.
        auto Body = [&](size_t I) {
          stabilizeElement(Ctx, Element.Body[Units[I]]);
        };
        double Waited = Ctx.Affinity ? Batch.runSticky(Units.size(), Body)
                                     : Batch.run(Units.size(), Body);
        if (Ctx.IntraBatchesRun)
          Ctx.IntraBatchesRun->fetch_add(1, std::memory_order_relaxed);
        if (Ctx.IntraBarrierWaitNanos)
          Ctx.IntraBarrierWaitNanos->fetch_add(
              static_cast<uint64_t>(Waited * 1e9),
              std::memory_order_relaxed);
        if (Ctx.MaxIntraBatchWidth) {
          unsigned Width = static_cast<unsigned>(Units.size());
          unsigned Seen =
              Ctx.MaxIntraBatchWidth->load(std::memory_order_relaxed);
          while (Seen < Width &&
                 !Ctx.MaxIntraBatchWidth->compare_exchange_weak(
                     Seen, Width, std::memory_order_relaxed))
            ;
        }
        if (Ctx.Observer)
          Ctx.Observer->onIntraBatch(Element.Node,
                                     static_cast<unsigned>(Units.size()),
                                     Waited);
      }
      // Same convergence criterion as stabilizeElement: a no-op pass
      // followed by a no-op head update means every inequality in the
      // component is satisfied.
      if (!Changed && !Ctx.Update(Element.Node))
        break;
    }
    if (Ctx.Observer)
      Ctx.Observer->onComponentStabilized(Element.Node, Passes);
  }
};

/// Factory keyed by strategy (the solver facade's dispatch point).
inline std::unique_ptr<Scheduler> makeScheduler(IterationStrategy Strategy) {
  switch (Strategy) {
  case IterationStrategy::WtoRecursive:
    return std::make_unique<WtoRecursiveScheduler>();
  case IterationStrategy::RoundRobin:
    return std::make_unique<RoundRobinScheduler>();
  case IterationStrategy::Worklist:
    return std::make_unique<WorklistScheduler>();
  case IterationStrategy::ParallelScc:
    return std::make_unique<ParallelSccScheduler>();
  case IterationStrategy::ParallelIntra:
    return std::make_unique<ParallelIntraScheduler>();
  }
  return nullptr;
}

/// Stable spelling for CLIs and reports.
inline const char *toString(IterationStrategy Strategy) {
  switch (Strategy) {
  case IterationStrategy::WtoRecursive:
    return "wto";
  case IterationStrategy::RoundRobin:
    return "round-robin";
  case IterationStrategy::Worklist:
    return "worklist";
  case IterationStrategy::ParallelScc:
    return "parallel-scc";
  case IterationStrategy::ParallelIntra:
    return "parallel-intra";
  }
  return "?";
}

/// Parses a strategy name (accepts the toString spellings plus common
/// abbreviations); nullopt when unrecognized.
inline std::optional<IterationStrategy>
parseIterationStrategy(std::string_view Name) {
  if (Name == "wto" || Name == "wto-recursive" || Name == "recursive")
    return IterationStrategy::WtoRecursive;
  if (Name == "round-robin" || Name == "rr" || Name == "roundrobin")
    return IterationStrategy::RoundRobin;
  if (Name == "worklist" || Name == "wl")
    return IterationStrategy::Worklist;
  if (Name == "parallel-scc" || Name == "parallel" || Name == "pscc")
    return IterationStrategy::ParallelScc;
  if (Name == "parallel-intra" || Name == "pintra")
    return IterationStrategy::ParallelIntra;
  return std::nullopt;
}

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_SCHEDULE_H
