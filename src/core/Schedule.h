//===- core/Schedule.h - Pluggable chaotic-iteration schedulers -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler layer of the analysis engine: a chaotic-iteration
/// *scheduler* decides in which order node inequalities are re-evaluated
/// until the system stabilizes; it never touches domain values. The seam
/// is deliberately domain-free — a scheduler sees nodes, the WTO, the
/// dependence structure, and an opaque `Update` callback — so new
/// strategies (and, later, parallel per-SCC drivers) plug in without
/// touching the solver template or any domain.
///
/// Three schedulers ship:
///  * WtoRecursiveScheduler — Bourdoncle's recursive strategy (§4.4, the
///    paper's choice): stabilize each WTO component innermost-first.
///  * RoundRobinScheduler — naive full sweeps until a sweep changes
///    nothing (ablation baseline).
///  * WorklistScheduler — dependency-driven: a node is re-evaluated only
///    when one of the nodes its right-hand side reads actually changed,
///    dirty nodes ordered by WTO position.
///
/// All three drive the same Update callback, so widening, convergence
/// bookkeeping, and instrumentation behave identically; they reach the
/// same fixpoint (tests/SchedulerParityTest.cpp) with different amounts
/// of work.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_SCHEDULE_H
#define PMAF_CORE_SCHEDULE_H

#include "cfg/Wto.h"
#include "core/Instrumentation.h"

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

namespace pmaf {
namespace core {

/// Chaotic-iteration strategies (one per scheduler type below).
enum class IterationStrategy {
  /// Bourdoncle's recursive strategy over the WTO (the paper's choice:
  /// "efficient iteration strategies with widenings").
  WtoRecursive,
  /// Naive round-robin sweeps over all nodes until stable (ablation
  /// baseline; widening points still come from the WTO so termination is
  /// unaffected).
  RoundRobin,
  /// Dependency-driven worklist with dirty-node tracking, ordered by WTO
  /// position: a node is re-evaluated only when a node it reads changed.
  Worklist,
};

/// Everything a scheduler may consult. Domain-free by construction: the
/// solver owns values, widening, and convergence accounting inside the
/// Update callback.
struct ScheduleContext {
  unsigned NumNodes = 0;
  /// WTO of the dependence graph (iteration order + widening points).
  const cfg::Wto *Order = nullptr;
  /// Dependence successors: Dependents[u] = nodes whose right-hand side
  /// reads u (CompiledProgram::dependents()).
  const std::vector<std::vector<unsigned>> *Dependents = nullptr;
  /// Re-evaluates one node's inequality; returns true iff the node's
  /// value changed. Exit nodes are no-ops.
  std::function<bool(unsigned)> Update;
  /// True once the update budget is exhausted; schedulers must stop.
  std::function<bool()> Exhausted;
  /// Optional event sink (component-stabilization events originate here).
  SolverObserver *Observer = nullptr;
};

/// Interface all chaotic-iteration schedulers implement.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Runs updates until every inequality is satisfied (or the budget is
  /// exhausted). Postcondition on natural exit: Update would return false
  /// for every node.
  virtual void run(const ScheduleContext &Ctx) = 0;
};

/// Bourdoncle's recursive iteration strategy: a component is re-iterated
/// until a full pass over it changes nothing; nested components are
/// stabilized within each pass.
class WtoRecursiveScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    for (const cfg::WtoElement &Element : Ctx.Order->Elements)
      stabilize(Ctx, Element);
  }

private:
  static void stabilize(const ScheduleContext &Ctx,
                        const cfg::WtoElement &Element) {
    if (!Element.IsComponent) {
      Ctx.Update(Element.Node);
      return;
    }
    unsigned Passes = 0;
    while (!Ctx.Exhausted()) {
      ++Passes;
      bool Changed = Ctx.Update(Element.Node);
      for (const cfg::WtoElement &Child : Element.Body)
        stabilize(Ctx, Child);
      // All intra-component cycles pass through the head (or through
      // nested components, which stabilize() settled); once an extra head
      // update is a no-op after a no-op pass, every inequality in the
      // component is satisfied.
      if (!Changed && !Ctx.Update(Element.Node))
        break;
    }
    if (Ctx.Observer)
      Ctx.Observer->onComponentStabilized(Element.Node, Passes);
  }
};

/// Naive round-robin: sweep all nodes repeatedly until a full sweep is a
/// no-op.
class RoundRobinScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    while (!Ctx.Exhausted()) {
      bool Changed = false;
      for (unsigned V = 0; V != Ctx.NumNodes; ++V)
        Changed |= Ctx.Update(V);
      if (!Changed)
        break;
    }
  }
};

/// Dependency-driven worklist: every node starts dirty; popping always
/// takes the dirty node earliest in the WTO linearization, and a change
/// at u re-dirties exactly the nodes whose right-hand side reads u.
class WorklistScheduler final : public Scheduler {
public:
  void run(const ScheduleContext &Ctx) override {
    const std::vector<unsigned> Position = Ctx.Order->positions();
    using Entry = std::pair<unsigned, unsigned>; // (position, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        Dirty;
    std::vector<bool> InQueue(Ctx.NumNodes, true);
    for (unsigned V = 0; V != Ctx.NumNodes; ++V)
      Dirty.push({Position[V], V});
    while (!Dirty.empty() && !Ctx.Exhausted()) {
      unsigned V = Dirty.top().second;
      Dirty.pop();
      InQueue[V] = false;
      if (!Ctx.Update(V))
        continue;
      for (unsigned W : (*Ctx.Dependents)[V])
        if (!InQueue[W]) {
          InQueue[W] = true;
          Dirty.push({Position[W], W});
        }
    }
  }
};

/// Factory keyed by strategy (the solver facade's dispatch point).
inline std::unique_ptr<Scheduler> makeScheduler(IterationStrategy Strategy) {
  switch (Strategy) {
  case IterationStrategy::WtoRecursive:
    return std::make_unique<WtoRecursiveScheduler>();
  case IterationStrategy::RoundRobin:
    return std::make_unique<RoundRobinScheduler>();
  case IterationStrategy::Worklist:
    return std::make_unique<WorklistScheduler>();
  }
  return nullptr;
}

/// Stable spelling for CLIs and reports.
inline const char *toString(IterationStrategy Strategy) {
  switch (Strategy) {
  case IterationStrategy::WtoRecursive:
    return "wto";
  case IterationStrategy::RoundRobin:
    return "round-robin";
  case IterationStrategy::Worklist:
    return "worklist";
  }
  return "?";
}

/// Parses a strategy name (accepts the toString spellings plus common
/// abbreviations); nullopt when unrecognized.
inline std::optional<IterationStrategy>
parseIterationStrategy(std::string_view Name) {
  if (Name == "wto" || Name == "wto-recursive" || Name == "recursive")
    return IterationStrategy::WtoRecursive;
  if (Name == "round-robin" || Name == "rr" || Name == "roundrobin")
    return IterationStrategy::RoundRobin;
  if (Name == "worklist" || Name == "wl")
    return IterationStrategy::Worklist;
  return std::nullopt;
}

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_SCHEDULE_H
