//===- core/Domain.h - The pre-Markov algebra interface ---------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client interface of the framework (§4.1): an *interpretation* is a
/// pre-Markov algebra — a universe of two-vocabulary property transformers
/// with sequencing (⊗), conditional-choice (phi^), probabilistic-choice
/// (p⊕), and nondeterministic-choice (⋓) operators, a least element ⊥ and a
/// multiplicative unit 1 — together with a semantic function mapping data
/// actions into the universe (Defn 4.5).
///
/// A domain is an ordinary object (it may carry context such as the
/// variable universe and comparison tolerances); its `Value` type is the
/// universe. The generic solver in core/Solver.h is a template over any
/// type satisfying the `PreMarkovAlgebra` concept below, mirroring the
/// OCaml functor organization of the original prototype (§6.1).
///
/// Conventions:
///  * `extend(A, B)` is the paper's A ⊗ B: A is the transformer of the
///    *earlier* program fragment (formal multiplication is interpreted as
///    the reversal of transformer composition, §1).
///  * `interpret(Act)` receives the data-action statement of a `seq` edge,
///    or nullptr for the trivial action skip; it must return (an
///    abstraction of) the action's kernel.
///  * `leq` is the approximation order; `equal` may be tolerance-based for
///    floating-point domains (§6.1 relies on float chains stabilizing).
///  * The three widening operators correspond to §4.4; domains that never
///    need widening (e.g. under-abstractions iterated from bottom, §5.1)
///    simply return the new value.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_DOMAIN_H
#define PMAF_CORE_DOMAIN_H

#include "core/Instrumentation.h"
#include "lang/Ast.h"
#include "support/Rational.h"

#include <concepts>
#include <string>

namespace pmaf {
namespace core {

/// The pre-Markov algebra interface (Defn 4.2 + Defn 4.5).
template <typename D>
concept PreMarkovAlgebra = requires(
    D &Dom, const typename D::Value &A, const typename D::Value &B,
    const lang::Cond &Phi, const Rational &P, const lang::Stmt *Act) {
  typename D::Value;
  { Dom.bottom() } -> std::same_as<typename D::Value>;
  { Dom.one() } -> std::same_as<typename D::Value>;
  { Dom.extend(A, B) } -> std::same_as<typename D::Value>;
  { Dom.condChoice(Phi, A, B) } -> std::same_as<typename D::Value>;
  { Dom.probChoice(P, A, B) } -> std::same_as<typename D::Value>;
  { Dom.ndetChoice(A, B) } -> std::same_as<typename D::Value>;
  { Dom.interpret(Act) } -> std::same_as<typename D::Value>;
  { Dom.leq(A, B) } -> std::same_as<bool>;
  { Dom.equal(A, B) } -> std::same_as<bool>;
  { Dom.widenCond(A, B) } -> std::same_as<typename D::Value>;
  { Dom.widenProb(A, B) } -> std::same_as<typename D::Value>;
  { Dom.widenNdet(A, B) } -> std::same_as<typename D::Value>;
  { Dom.widenCall(A, B) } -> std::same_as<typename D::Value>;
  { Dom.toString(A) } -> std::same_as<std::string>;
};

/// Opt-in declaration of the thread-safety trait: a domain that defines
/// `static constexpr bool ThreadSafeInterpret = true` promises that
/// concurrent calls of its const operations (interpret, extend, the
/// choices, leq/equal, the widenings) on a single instance are data-race
/// free — for domains with parallel-phase hooks (below), within a
/// bracketed parallel phase. The parallel engine consults this before
/// precompiling transformers concurrently or running the per-SCC parallel
/// scheduler; domains with unguarded shared mutable internals declare
/// false — or nothing, since absent means unsafe — and are iterated
/// sequentially.
template <typename D>
concept DeclaresThreadSafeInterpret = requires {
  { D::ThreadSafeInterpret } -> std::convertible_to<bool>;
};

/// Whether the engine may touch \p D from several threads at once.
/// Conservative default: domains that do not opt in are treated as unsafe.
template <typename D> consteval bool threadSafeInterpret() {
  if constexpr (DeclaresThreadSafeInterpret<D>)
    return D::ThreadSafeInterpret;
  else
    return false;
}

/// Opt-in reporting of numeric-layer counters: a domain built on the
/// poly backends may expose the process-wide conversion/escalation
/// counters (poly::numericCounters) as a snapshot, and the solver then
/// attributes per-solve deltas to SolverStats and the observer stream.
/// The method is static — the counters are a property of the numeric
/// layer, not of one domain instance.
template <typename D>
concept ReportsNumericStats = requires {
  { D::numericStats() } -> std::convertible_to<NumericLayerStats>;
};

/// Optional parallel-phase hooks. A domain whose thread safety is not free
/// (it must reroute work through per-thread state, start synchronizing a
/// shared structure, ...) may declare
///
///   void parallelBegin(unsigned Workers);   // entering a parallel phase
///   void parallelEnd();                     // phase over, all calls done
///
/// and the engine brackets every concurrent section (up-front transformer
/// precompilation, the parallel per-SCC scheduler) with them: parallelBegin
/// is called before the first concurrent domain call can be issued, and
/// parallelEnd only after all of them have returned. Brackets nest
/// (precompile inside solve brackets again); domains track the depth.
/// AddBiDomain is the motivating client: between the hooks it computes in
/// thread-local AddManager arenas and publishes results into its shared
/// home manager by a lock-guarded migrate, and at the outermost
/// parallelEnd it drops the arenas (whose pool threads are about to die).
/// Outside any bracket such a domain runs its plain sequential path, so
/// Jobs = 1 solves pay nothing.
template <typename D>
concept ParallelPhaseDomain = requires(D &Dom, unsigned Workers) {
  { Dom.parallelBegin(Workers) };
  { Dom.parallelEnd() };
};

/// RAII bracket for a parallel phase; no-op for domains without the hooks
/// (their thread safety is unconditional) and when \p Enable is false
/// (the engine is not actually going parallel).
template <typename D> class ParallelPhase {
public:
  ParallelPhase(D &Dom, unsigned Workers, bool Enable)
      : Dom(Dom), Active(Enable) {
    if constexpr (ParallelPhaseDomain<D>) {
      if (Active)
        Dom.parallelBegin(Workers);
    }
  }
  ~ParallelPhase() {
    if constexpr (ParallelPhaseDomain<D>) {
      if (Active)
        Dom.parallelEnd();
    }
  }
  ParallelPhase(const ParallelPhase &) = delete;
  ParallelPhase &operator=(const ParallelPhase &) = delete;

private:
  D &Dom;
  [[maybe_unused]] bool Active;
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_DOMAIN_H
