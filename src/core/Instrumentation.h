//===- core/Instrumentation.h - Solver observation layer --------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation layer of the analysis engine: an observer interface
/// for the events the solver and its sibling layers emit (node updates,
/// widening applications, component stabilizations, interpret-cache
/// traffic), plus a stock timing/counter implementation.
///
/// Observation is strictly passive — observers cannot influence the
/// fixpoint computation — so any number of measurement harnesses (the CLI's
/// `--stats`, the bench binaries' JSON emitters, future tracing backends)
/// can share the single hook without touching the solver or the domains.
///
/// **Concurrency.** When the solver runs with a thread pool (Jobs > 1),
/// per-node and per-edge callbacks — onNodeUpdate, onWidening,
/// onComponentStabilized, onInterpret — may arrive concurrently from
/// worker threads; observers must make those handlers data-race free.
/// Begin/end bracket events (onSolveBegin, onPrecompileEnd, onSolveEnd)
/// always come from the coordinating thread, before workers start or
/// after they quiesce. The stock SolverInstrumentation below is safe.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_INSTRUMENTATION_H
#define PMAF_CORE_INSTRUMENTATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace pmaf {
namespace core {

/// Counters of the numeric-domain layer under an abstract domain built on
/// the poly backends (Polyhedron, Zones, Intervals, LadderValue). Solvers
/// over domains that report them (ReportsNumericStats, core/Domain.h)
/// deliver per-solve deltas of the monotone counters and current
/// high-water marks for the peaks.
struct NumericLayerStats {
  /// Chernikova (double-description) minimization passes — the
  /// conversion cost the ladder exists to avoid.
  uint64_t MinimizationCalls = 0;
  /// Constraint⇄generator conversion memo traffic inside Polyhedron.
  uint64_t ConversionCacheHits = 0;
  uint64_t ConversionCacheMisses = 0;
  /// The subset of ConversionCacheHits served by the process-wide sharded
  /// L2 (the thread-local L1 missed: a stolen component, a fresh pool
  /// worker, or conversions inherited from an earlier solve).
  uint64_t SharedCacheHits = 0;
  /// Memo entries the bounded caches dropped at their caps.
  uint64_t CacheEvictions = 0;
  /// Times a ladder block climbed a rung (box → zone → poly).
  uint64_t Escalations = 0;
  /// Widest intermediate generator matrix any minimization built.
  unsigned PeakGeneratorRows = 0;
  /// Widest variable pack a ladder operation coupled.
  unsigned MaxPackWidth = 0;
};

/// Receiver for solver events. All callbacks default to no-ops so an
/// observer only overrides what it measures. Node ids index the program
/// hyper-graph; edge ids index ProgramGraph::edges().
class SolverObserver {
public:
  virtual ~SolverObserver() = default;

  /// An analysis over \p NumNodes nodes is starting.
  virtual void onSolveBegin(unsigned NumNodes) { (void)NumNodes; }

  /// The analysis finished; \p Converged is false iff the update budget
  /// (SolverOptions::MaxUpdates) was exhausted first.
  virtual void onSolveEnd(bool Converged) { (void)Converged; }

  /// Node \p Node was re-evaluated; \p Changed iff its value moved.
  virtual void onNodeUpdate(unsigned Node, bool Changed) {
    (void)Node;
    (void)Changed;
  }

  /// A widening operator was applied at widening point \p Node.
  virtual void onWidening(unsigned Node) { (void)Node; }

  /// The WTO component headed by \p Head stabilized after \p Passes
  /// passes over its body (recursive scheduler only).
  virtual void onComponentStabilized(unsigned Head, unsigned Passes) {
    (void)Head;
    (void)Passes;
  }

  /// The transformer of `seq` edge \p EdgeIndex was requested; \p CacheHit
  /// is false exactly when Dom.interpret ran (at most once per edge per
  /// compiled program — the interpret-cache invariant). May fire from a
  /// pool worker during parallel precompilation or a parallel solve.
  virtual void onInterpret(unsigned EdgeIndex, bool CacheHit) {
    (void)EdgeIndex;
    (void)CacheHit;
  }

  /// The up-front transformer precompilation pass finished: the cache now
  /// covers all \p Transformers `seq` edges, after \p Seconds of wall
  /// clock. Emitted (from the coordinating thread, before iteration
  /// begins) only when the solve requested precompilation (Jobs > 1).
  virtual void onPrecompileEnd(unsigned Transformers, double Seconds) {
    (void)Transformers;
    (void)Seconds;
  }

  /// The intra-component parallel scheduler ran one conflict-free batch
  /// of \p Width units inside the component headed by \p Head, and the
  /// coordinator waited \p BarrierWaitSeconds at the closing barrier
  /// after exhausting its own share of the work. Emitted from the
  /// coordinating thread (batches close on it), only for batches that
  /// actually fanned out (Width >= 2).
  virtual void onIntraBatch(unsigned Head, unsigned Width,
                            double BarrierWaitSeconds) {
    (void)Head;
    (void)Width;
    (void)BarrierWaitSeconds;
  }

  /// The solve finished over a domain that reports numeric-layer counters
  /// (core/Domain.h); \p Stats holds this solve's deltas (peaks are
  /// high-water marks since the harness last reset them). Emitted from
  /// the coordinating thread, right before onSolveEnd.
  virtual void onNumericLayer(const NumericLayerStats &Stats) {
    (void)Stats;
  }

  /// The solve's pool queueing totals: \p TasksRun tasks executed across
  /// the per-solve pool's workers, of which \p Steals were taken from
  /// another worker's deque and \p AffinityHits were pinned tasks run by
  /// their owner. One aggregate event per parallel solve, emitted from
  /// the coordinating thread after the pool quiesces — deliberately not a
  /// per-steal callback, which would put an observer virtual call on the
  /// stealing fast path.
  virtual void onPoolQueue(uint64_t TasksRun, uint64_t Steals,
                           uint64_t AffinityHits) {
    (void)TasksRun;
    (void)Steals;
    (void)AffinityHits;
  }
};

/// The stock timing/counter observer: tallies every event and the
/// wall-clock time between onSolveBegin and onSolveEnd. Counters
/// accumulate across solves; reset() starts a fresh measurement.
///
/// The per-event tallies are atomics (relaxed increments — they are
/// independent counters, not synchronization), so this observer may be
/// handed to a parallel solve as-is. The timing fields stay plain: they
/// are only touched by the bracket events, which the solver emits from
/// the coordinating thread.
class SolverInstrumentation : public SolverObserver {
public:
  std::atomic<uint64_t> Solves{0};
  std::atomic<uint64_t> NodeUpdates{0};
  std::atomic<uint64_t> ValueChanges{0};
  std::atomic<uint64_t> WideningApplications{0};
  std::atomic<uint64_t> ComponentStabilizations{0};
  std::atomic<uint64_t> InterpretCalls{0};
  std::atomic<uint64_t> InterpretCacheHits{0};
  double SolveSeconds = 0.0;
  /// Wall clock and coverage of the up-front precompilation passes
  /// (zero unless some solve ran with Jobs > 1).
  double PrecompileSeconds = 0.0;
  uint64_t PrecompiledTransformers = 0;
  bool LastConverged = true;
  /// Intra-component batch traffic (parallel-intra solves only): batches
  /// that fanned out, a width histogram (bucket = min(width, MaxWidthBucket)),
  /// and cumulative coordinator barrier-wait time.
  static constexpr unsigned MaxWidthBucket = 16;
  std::atomic<uint64_t> IntraBatches{0};
  std::atomic<uint64_t> IntraWidthHistogram[MaxWidthBucket + 1] = {};
  std::atomic<uint64_t> IntraBarrierWaitNanos{0};
  /// Numeric-layer counters summed over observed solves (peaks take the
  /// max); all-zero unless some solve's domain reports them.
  NumericLayerStats Numeric;
  /// Pool queueing aggregates summed over parallel solves (onPoolQueue);
  /// all-zero for sequential runs.
  std::atomic<uint64_t> PoolTasksRun{0};
  std::atomic<uint64_t> PoolSteals{0};
  std::atomic<uint64_t> PoolAffinityHits{0};

  SolverInstrumentation() = default;
  /// Copyable despite the atomics (snapshot semantics) so harnesses can
  /// return instrumentation by value; take the snapshot only while no
  /// solve is running.
  SolverInstrumentation(const SolverInstrumentation &Other)
      : SolverObserver(Other) {
    copyFrom(Other);
  }
  SolverInstrumentation &operator=(const SolverInstrumentation &Other) {
    copyFrom(Other);
    return *this;
  }

  void onSolveBegin(unsigned) override {
    Start = std::chrono::steady_clock::now();
  }
  void onSolveEnd(bool Converged) override {
    SolveSeconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    Solves.fetch_add(1, std::memory_order_relaxed);
    LastConverged = Converged;
  }
  void onNodeUpdate(unsigned, bool Changed) override {
    NodeUpdates.fetch_add(1, std::memory_order_relaxed);
    if (Changed)
      ValueChanges.fetch_add(1, std::memory_order_relaxed);
  }
  void onWidening(unsigned) override {
    WideningApplications.fetch_add(1, std::memory_order_relaxed);
  }
  void onComponentStabilized(unsigned, unsigned) override {
    ComponentStabilizations.fetch_add(1, std::memory_order_relaxed);
  }
  void onInterpret(unsigned, bool CacheHit) override {
    if (CacheHit)
      InterpretCacheHits.fetch_add(1, std::memory_order_relaxed);
    else
      InterpretCalls.fetch_add(1, std::memory_order_relaxed);
  }
  void onPrecompileEnd(unsigned Transformers, double Seconds) override {
    PrecompiledTransformers += Transformers;
    PrecompileSeconds += Seconds;
  }
  void onIntraBatch(unsigned, unsigned Width,
                    double BarrierWaitSeconds) override {
    IntraBatches.fetch_add(1, std::memory_order_relaxed);
    unsigned Bucket = Width < MaxWidthBucket ? Width : MaxWidthBucket;
    IntraWidthHistogram[Bucket].fetch_add(1, std::memory_order_relaxed);
    IntraBarrierWaitNanos.fetch_add(
        static_cast<uint64_t>(BarrierWaitSeconds * 1e9),
        std::memory_order_relaxed);
  }
  void onNumericLayer(const NumericLayerStats &Stats) override {
    // Coordinating-thread event (like the other brackets), so plain
    // read-modify-write is fine.
    Numeric.MinimizationCalls += Stats.MinimizationCalls;
    Numeric.ConversionCacheHits += Stats.ConversionCacheHits;
    Numeric.ConversionCacheMisses += Stats.ConversionCacheMisses;
    Numeric.SharedCacheHits += Stats.SharedCacheHits;
    Numeric.CacheEvictions += Stats.CacheEvictions;
    Numeric.Escalations += Stats.Escalations;
    if (Stats.PeakGeneratorRows > Numeric.PeakGeneratorRows)
      Numeric.PeakGeneratorRows = Stats.PeakGeneratorRows;
    if (Stats.MaxPackWidth > Numeric.MaxPackWidth)
      Numeric.MaxPackWidth = Stats.MaxPackWidth;
  }
  void onPoolQueue(uint64_t TasksRun, uint64_t Steals,
                   uint64_t AffinityHits) override {
    PoolTasksRun.fetch_add(TasksRun, std::memory_order_relaxed);
    PoolSteals.fetch_add(Steals, std::memory_order_relaxed);
    PoolAffinityHits.fetch_add(AffinityHits, std::memory_order_relaxed);
  }

  void reset() { *this = SolverInstrumentation(); }

  /// Multi-line human-readable dump (the CLI's `--stats` body).
  std::string report() const {
    char Buffer[640];
    std::snprintf(
        Buffer, sizeof(Buffer),
        "; solver: %llu updates (%llu changed), %llu widenings, "
        "%llu components stabilized, converged=%s\n"
        "; interpret cache: %llu misses (= distinct seq edges evaluated), "
        "%llu hits\n"
        "; wall clock: %.6f s over %llu solve(s)\n",
        static_cast<unsigned long long>(NodeUpdates.load()),
        static_cast<unsigned long long>(ValueChanges.load()),
        static_cast<unsigned long long>(WideningApplications.load()),
        static_cast<unsigned long long>(ComponentStabilizations.load()),
        LastConverged ? "yes" : "NO",
        static_cast<unsigned long long>(InterpretCalls.load()),
        static_cast<unsigned long long>(InterpretCacheHits.load()),
        SolveSeconds, static_cast<unsigned long long>(Solves.load()));
    std::string Out = Buffer;
    if (PrecompiledTransformers > 0) {
      std::snprintf(Buffer, sizeof(Buffer),
                    "; precompile: %llu transformers in %.6f s\n",
                    static_cast<unsigned long long>(PrecompiledTransformers),
                    PrecompileSeconds);
      Out += Buffer;
    }
    if (uint64_t Batches = IntraBatches.load()) {
      std::snprintf(Buffer, sizeof(Buffer),
                    "; intra-scc: %llu parallel batches, %.6f s barrier "
                    "wait, widths:",
                    static_cast<unsigned long long>(Batches),
                    IntraBarrierWaitNanos.load() * 1e-9);
      Out += Buffer;
      for (unsigned W = 0; W <= MaxWidthBucket; ++W)
        if (uint64_t N = IntraWidthHistogram[W].load()) {
          std::snprintf(Buffer, sizeof(Buffer), " %u%s:%llu", W,
                        W == MaxWidthBucket ? "+" : "",
                        static_cast<unsigned long long>(N));
          Out += Buffer;
        }
      Out += '\n';
    }
    if (uint64_t Tasks = PoolTasksRun.load()) {
      std::snprintf(
          Buffer, sizeof(Buffer),
          "; pool queue: %llu tasks run, %llu steals, %llu affinity "
          "hits\n",
          static_cast<unsigned long long>(Tasks),
          static_cast<unsigned long long>(PoolSteals.load()),
          static_cast<unsigned long long>(PoolAffinityHits.load()));
      Out += Buffer;
    }
    if (Numeric.MinimizationCalls > 0 || Numeric.ConversionCacheHits > 0) {
      std::snprintf(
          Buffer, sizeof(Buffer),
          "; numeric layer: %llu Chernikova minimizations (peak %u "
          "generator rows), conversion cache %llu hits / %llu misses "
          "(%llu shared-L2 hits, %llu evictions)\n"
          "; ladder: %llu escalations, max pack width %u\n",
          static_cast<unsigned long long>(Numeric.MinimizationCalls),
          Numeric.PeakGeneratorRows,
          static_cast<unsigned long long>(Numeric.ConversionCacheHits),
          static_cast<unsigned long long>(Numeric.ConversionCacheMisses),
          static_cast<unsigned long long>(Numeric.SharedCacheHits),
          static_cast<unsigned long long>(Numeric.CacheEvictions),
          static_cast<unsigned long long>(Numeric.Escalations),
          Numeric.MaxPackWidth);
      Out += Buffer;
    }
    return Out;
  }

private:
  void copyFrom(const SolverInstrumentation &Other) {
    Solves.store(Other.Solves.load());
    NodeUpdates.store(Other.NodeUpdates.load());
    ValueChanges.store(Other.ValueChanges.load());
    WideningApplications.store(Other.WideningApplications.load());
    ComponentStabilizations.store(Other.ComponentStabilizations.load());
    InterpretCalls.store(Other.InterpretCalls.load());
    InterpretCacheHits.store(Other.InterpretCacheHits.load());
    SolveSeconds = Other.SolveSeconds;
    PrecompileSeconds = Other.PrecompileSeconds;
    PrecompiledTransformers = Other.PrecompiledTransformers;
    LastConverged = Other.LastConverged;
    IntraBatches.store(Other.IntraBatches.load());
    for (unsigned W = 0; W <= MaxWidthBucket; ++W)
      IntraWidthHistogram[W].store(Other.IntraWidthHistogram[W].load());
    IntraBarrierWaitNanos.store(Other.IntraBarrierWaitNanos.load());
    PoolTasksRun.store(Other.PoolTasksRun.load());
    PoolSteals.store(Other.PoolSteals.load());
    PoolAffinityHits.store(Other.PoolAffinityHits.load());
    Numeric = Other.Numeric;
    Start = Other.Start;
  }

  std::chrono::steady_clock::time_point Start;
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_INSTRUMENTATION_H
