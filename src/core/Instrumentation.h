//===- core/Instrumentation.h - Solver observation layer --------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation layer of the analysis engine: an observer interface
/// for the events the solver and its sibling layers emit (node updates,
/// widening applications, component stabilizations, interpret-cache
/// traffic), plus a stock timing/counter implementation.
///
/// Observation is strictly passive — observers cannot influence the
/// fixpoint computation — so any number of measurement harnesses (the CLI's
/// `--stats`, the bench binaries' JSON emitters, future tracing backends)
/// can share the single hook without touching the solver or the domains.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_INSTRUMENTATION_H
#define PMAF_CORE_INSTRUMENTATION_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace pmaf {
namespace core {

/// Receiver for solver events. All callbacks default to no-ops so an
/// observer only overrides what it measures. Node ids index the program
/// hyper-graph; edge ids index ProgramGraph::edges().
class SolverObserver {
public:
  virtual ~SolverObserver() = default;

  /// An analysis over \p NumNodes nodes is starting.
  virtual void onSolveBegin(unsigned NumNodes) { (void)NumNodes; }

  /// The analysis finished; \p Converged is false iff the update budget
  /// (SolverOptions::MaxUpdates) was exhausted first.
  virtual void onSolveEnd(bool Converged) { (void)Converged; }

  /// Node \p Node was re-evaluated; \p Changed iff its value moved.
  virtual void onNodeUpdate(unsigned Node, bool Changed) {
    (void)Node;
    (void)Changed;
  }

  /// A widening operator was applied at widening point \p Node.
  virtual void onWidening(unsigned Node) { (void)Node; }

  /// The WTO component headed by \p Head stabilized after \p Passes
  /// passes over its body (recursive scheduler only).
  virtual void onComponentStabilized(unsigned Head, unsigned Passes) {
    (void)Head;
    (void)Passes;
  }

  /// The transformer of `seq` edge \p EdgeIndex was requested; \p CacheHit
  /// is false exactly when Dom.interpret ran (at most once per edge per
  /// compiled program — the interpret-cache invariant).
  virtual void onInterpret(unsigned EdgeIndex, bool CacheHit) {
    (void)EdgeIndex;
    (void)CacheHit;
  }
};

/// The stock timing/counter observer: tallies every event and the
/// wall-clock time between onSolveBegin and onSolveEnd. Counters
/// accumulate across solves; reset() starts a fresh measurement.
class SolverInstrumentation : public SolverObserver {
public:
  uint64_t Solves = 0;
  uint64_t NodeUpdates = 0;
  uint64_t ValueChanges = 0;
  uint64_t WideningApplications = 0;
  uint64_t ComponentStabilizations = 0;
  uint64_t InterpretCalls = 0;
  uint64_t InterpretCacheHits = 0;
  double SolveSeconds = 0.0;
  bool LastConverged = true;

  void onSolveBegin(unsigned) override {
    Start = std::chrono::steady_clock::now();
  }
  void onSolveEnd(bool Converged) override {
    SolveSeconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    ++Solves;
    LastConverged = Converged;
  }
  void onNodeUpdate(unsigned, bool Changed) override {
    ++NodeUpdates;
    ValueChanges += Changed;
  }
  void onWidening(unsigned) override { ++WideningApplications; }
  void onComponentStabilized(unsigned, unsigned) override {
    ++ComponentStabilizations;
  }
  void onInterpret(unsigned, bool CacheHit) override {
    if (CacheHit)
      ++InterpretCacheHits;
    else
      ++InterpretCalls;
  }

  void reset() { *this = SolverInstrumentation(); }

  /// Multi-line human-readable dump (the CLI's `--stats` body).
  std::string report() const {
    char Buffer[512];
    std::snprintf(
        Buffer, sizeof(Buffer),
        "; solver: %llu updates (%llu changed), %llu widenings, "
        "%llu components stabilized, converged=%s\n"
        "; interpret cache: %llu misses (= distinct seq edges evaluated), "
        "%llu hits\n"
        "; wall clock: %.6f s over %llu solve(s)\n",
        static_cast<unsigned long long>(NodeUpdates),
        static_cast<unsigned long long>(ValueChanges),
        static_cast<unsigned long long>(WideningApplications),
        static_cast<unsigned long long>(ComponentStabilizations),
        LastConverged ? "yes" : "NO",
        static_cast<unsigned long long>(InterpretCalls),
        static_cast<unsigned long long>(InterpretCacheHits), SolveSeconds,
        static_cast<unsigned long long>(Solves));
    return Buffer;
  }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_INSTRUMENTATION_H
