//===- core/LawCheck.h - Property checker for the PMA laws ------*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic property checker for the pre-Markov algebra laws of Defn 4.2.
/// Given a domain, a set of sample values, sample conditions, and sample
/// probabilities, it checks every law on all combinations and reports the
/// violations as human-readable strings (empty result = all laws hold).
///
/// Orientation: the laws are stated in the paper for domains whose
/// nondeterministic choice is an upper bound in the approximation order
/// (the angelic/Hoare-style reading; e.g. the MDP and LEIA instantiations,
/// where ⋓ is max/join). Under-abstraction domains like Bayesian inference
/// use a demonic ⋓ (pointwise min), for which the choice-comparison laws
/// hold with the mirrored orientation; callers select the orientation via
/// LawCheckOptions::ChoiceIsUpperBound. Remark 4.3 notes the laws are not
/// needed for the framework's soundness — this checker is how "you have to
/// establish some well-defined algebraic properties" becomes executable.
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_LAWCHECK_H
#define PMAF_CORE_LAWCHECK_H

#include "core/Domain.h"

#include <string>
#include <vector>

namespace pmaf {
namespace core {

/// Inputs to the law checker.
template <typename D> struct LawCheckInput {
  std::vector<typename D::Value> Samples;
  /// Condition samples (the checker forms negations and disjunctions).
  std::vector<const lang::Cond *> Conds;
  std::vector<Rational> Probs;
};

struct LawCheckOptions {
  /// True when ⋓ is an upper bound of its operands in ⊑ (angelic);
  /// false mirrors the choice-comparison laws (demonic under-abstraction).
  bool ChoiceIsUpperBound = true;
  /// The two associativity-style laws only hold up to abstraction in
  /// domains whose conditional-choice over-approximates the guard (LEIA's
  /// polyhedral hulls, §5.3); Remark 4.3 notes the laws are design aids,
  /// not soundness requirements.
  bool CheckProbAssociativity = true;
  bool CheckCondAssociativity = true;
};

/// Checks the Defn 4.2 laws; returns one message per violation.
template <PreMarkovAlgebra D>
std::vector<std::string> checkPmaLaws(D &Dom, const LawCheckInput<D> &In,
                                      const LawCheckOptions &Opts = {}) {
  using Value = typename D::Value;
  std::vector<std::string> Violations;
  auto Report = [&Violations](const std::string &Law, size_t I, size_t J,
                              size_t K) {
    Violations.push_back(Law + " violated at samples (" +
                         std::to_string(I) + ", " + std::to_string(J) +
                         ", " + std::to_string(K) + ")");
  };

  const std::vector<Value> &S = In.Samples;
  Value One = Dom.one();
  Value Bottom = Dom.bottom();

  // ⊥ is least.
  for (size_t I = 0; I != S.size(); ++I)
    if (!Dom.leq(Bottom, S[I]))
      Report("bottom-least", I, 0, 0);

  // Monoid laws for ⊗ with unit 1.
  for (size_t I = 0; I != S.size(); ++I) {
    if (!Dom.equal(Dom.extend(S[I], One), S[I]))
      Report("right-unit (a (x) 1 = a)", I, 0, 0);
    if (!Dom.equal(Dom.extend(One, S[I]), S[I]))
      Report("left-unit (1 (x) a = a)", I, 0, 0);
    for (size_t J = 0; J != S.size(); ++J)
      for (size_t K = 0; K != S.size(); ++K)
        if (!Dom.equal(Dom.extend(Dom.extend(S[I], S[J]), S[K]),
                       Dom.extend(S[I], Dom.extend(S[J], S[K]))))
          Report("(x)-associativity", I, J, K);
  }

  // ⋓ is idempotent, commutative, associative.
  for (size_t I = 0; I != S.size(); ++I) {
    if (!Dom.equal(Dom.ndetChoice(S[I], S[I]), S[I]))
      Report("ndet-idempotence", I, 0, 0);
    for (size_t J = 0; J != S.size(); ++J) {
      if (!Dom.equal(Dom.ndetChoice(S[I], S[J]),
                     Dom.ndetChoice(S[J], S[I])))
        Report("ndet-commutativity", I, J, 0);
      for (size_t K = 0; K != S.size(); ++K)
        if (!Dom.equal(
                Dom.ndetChoice(Dom.ndetChoice(S[I], S[J]), S[K]),
                Dom.ndetChoice(S[I], Dom.ndetChoice(S[J], S[K]))))
          Report("ndet-associativity", I, J, K);
    }
  }

  // Choice-comparison laws: a phi^ b ⊑ a ⋓ b, a p(+) b ⊑ a ⋓ b
  // (mirrored for demonic domains), and the self/unit choice laws.
  auto InOrder = [&](const Value &A, const Value &B) {
    return Opts.ChoiceIsUpperBound ? Dom.leq(A, B) : Dom.leq(B, A);
  };
  for (size_t I = 0; I != S.size(); ++I)
    for (size_t J = 0; J != S.size(); ++J) {
      Value Ndet = Dom.ndetChoice(S[I], S[J]);
      for (const lang::Cond *Phi : In.Conds)
        if (!InOrder(Dom.condChoice(*Phi, S[I], S[J]), Ndet))
          Report("cond-below-ndet", I, J, 0);
      for (const Rational &P : In.Probs)
        if (!InOrder(Dom.probChoice(P, S[I], S[J]), Ndet))
          Report("prob-below-ndet", I, J, 0);
    }
  for (size_t I = 0; I != S.size(); ++I) {
    for (const lang::Cond *Phi : In.Conds)
      if (!InOrder(S[I], Dom.condChoice(*Phi, S[I], S[I])))
        Report("a ⊑ a phi^ a", I, 0, 0);
    for (const Rational &P : In.Probs)
      if (!InOrder(S[I], Dom.probChoice(P, S[I], S[I])))
        Report("a ⊑ a p(+) a", I, 0, 0);
    for (size_t J = 0; J != S.size(); ++J) {
      lang::Cond::Ptr True = lang::Cond::makeTrue();
      if (!InOrder(S[I], Dom.condChoice(*True, S[I], S[J])))
        Report("a ⊑ a true^ b", I, J, 0);
      if (!InOrder(S[I], Dom.probChoice(Rational(1), S[I], S[J])))
        Report("a ⊑ a 1(+) b", I, J, 0);
    }
  }

  // Commutation: a phi^ b = b ¬phi^ a and a p(+) b = b (1-p)(+) a.
  for (size_t I = 0; I != S.size(); ++I)
    for (size_t J = 0; J != S.size(); ++J) {
      for (const lang::Cond *Phi : In.Conds) {
        lang::Cond::Ptr NotPhi = lang::Cond::makeNot(Phi->clone());
        if (!Dom.equal(Dom.condChoice(*Phi, S[I], S[J]),
                       Dom.condChoice(*NotPhi, S[J], S[I])))
          Report("cond-commutation", I, J, 0);
      }
      for (const Rational &P : In.Probs)
        if (!Dom.equal(Dom.probChoice(P, S[I], S[J]),
                       Dom.probChoice(Rational(1) - P, S[J], S[I])))
          Report("prob-commutation", I, J, 0);
    }

  // Associativity-style laws:
  //   a phi^ (b psi^ c) = (a phi'^ b) psi'^ c with phi' = phi,
  //   psi' = phi ∨ psi (a solution of Defn 4.2's side conditions), and
  //   a p(+) (b q(+) c) = (a p'(+) b) q'(+) c with q' = 1-(1-p)(1-q),
  //   p' = p/q'.
  for (size_t I = 0; I != S.size(); ++I)
    for (size_t J = 0; J != S.size(); ++J)
      for (size_t K = 0; K != S.size(); ++K) {
        for (const lang::Cond *Phi :
             Opts.CheckCondAssociativity
                 ? In.Conds
                 : std::vector<const lang::Cond *>())
          for (const lang::Cond *Psi : In.Conds) {
            lang::Cond::Ptr Or =
                lang::Cond::makeOr(Phi->clone(), Psi->clone());
            if (!Dom.equal(
                    Dom.condChoice(*Phi, S[I],
                                   Dom.condChoice(*Psi, S[J], S[K])),
                    Dom.condChoice(*Or,
                                   Dom.condChoice(*Phi, S[I], S[J]),
                                   S[K])))
              Report("cond-associativity", I, J, K);
          }
        if (Opts.CheckProbAssociativity)
          for (const Rational &P : In.Probs)
            for (const Rational &Q : In.Probs) {
              Rational QPrime =
                  Rational(1) - (Rational(1) - P) * (Rational(1) - Q);
              if (QPrime.isZero())
                continue;
              Rational PPrime = P / QPrime;
              if (!Dom.equal(
                      Dom.probChoice(P, S[I],
                                     Dom.probChoice(Q, S[J], S[K])),
                      Dom.probChoice(
                          QPrime, Dom.probChoice(PPrime, S[I], S[J]),
                          S[K])))
                Report("prob-associativity", I, J, K);
            }
      }

  // Monotonicity of all operators (pre-ω-continuity implies monotone;
  // comparable pairs are manufactured with ⋓ / the mirrored direction).
  for (size_t I = 0; I != S.size(); ++I)
    for (size_t J = 0; J != S.size(); ++J) {
      Value Low = S[I];
      Value High = Dom.ndetChoice(S[I], S[J]);
      if (!Opts.ChoiceIsUpperBound)
        std::swap(Low, High);
      if (!Dom.leq(Low, High))
        continue; // ⋓ not comparable in this domain; skip the pair.
      for (size_t K = 0; K != S.size(); ++K) {
        if (!Dom.leq(Dom.extend(Low, S[K]), Dom.extend(High, S[K])))
          Report("(x)-monotone-left", I, J, K);
        if (!Dom.leq(Dom.extend(S[K], Low), Dom.extend(S[K], High)))
          Report("(x)-monotone-right", I, J, K);
        if (!Dom.leq(Dom.ndetChoice(Low, S[K]),
                     Dom.ndetChoice(High, S[K])))
          Report("ndet-monotone", I, J, K);
        for (const Rational &P : In.Probs)
          if (!Dom.leq(Dom.probChoice(P, Low, S[K]),
                       Dom.probChoice(P, High, S[K])))
            Report("prob-monotone", I, J, K);
        for (const lang::Cond *Phi : In.Conds)
          if (!Dom.leq(Dom.condChoice(*Phi, Low, S[K]),
                       Dom.condChoice(*Phi, High, S[K])))
            Report("cond-monotone", I, J, K);
      }
    }

  return Violations;
}

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_LAWCHECK_H
