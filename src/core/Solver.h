//===- core/Solver.h - Interprocedural chaotic-iteration solver -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic analysis algorithm of §4.3–§4.4: given a hyper-graph program
/// and an interpretation (a pre-Markov algebra), compute the least
/// (prefixed-point) solution of the inequality system
///
///   S(v) ⊒ ⟦act⟧ ⊗ S(u1)              (seq[act] edge <v,u1>)
///   S(v) ⊒ S(u1) phi^ S(u2)            (cond[phi] edge <v,u1,u2>)
///   S(v) ⊒ S(u1) p⊕ S(u2)              (prob[p] edge <v,u1,u2>)
///   S(v) ⊒ S(u1) ⋓ S(u2)               (ndet edge <v,u1,u2>)
///   S(v) ⊒ S(entry_i) ⊗ S(u1)          (call[i] edge <v,u1>)
///   S(v) ⊒ 1                           (v an exit node)
///
/// by chaotic iteration. solve() is a thin facade over the three layers of
/// the analysis engine:
///
///   * core/CompiledProgram.h — the invariant per-analysis artifact:
///     cached `seq`-edge transformers (one Dom.interpret per edge),
///     right-hand-side evaluation, dependence structure;
///   * core/Schedule.h — pluggable iteration strategies (WTO-recursive,
///     round-robin, dependency-driven worklist, parallel per-SCC) behind a
///     domain-free Scheduler interface;
///   * core/Instrumentation.h — passive observers of solver events.
///
/// The facade itself owns what is neither program structure nor iteration
/// order: the value vector, widening (at widening points the operator is
/// chosen by the control-action kinds present in the node's component,
/// under the precedence ndet ▷ prob ▷ cond — see
/// CompiledProgram::wideningKinds — which maintains the invariant of
/// Obs 4.9: old ⊑ new at every `old ∇ new`), convergence accounting, and
/// the update budget — plus the parallel-engine plumbing: when
/// SolverOptions::Jobs asks for more than one worker and the domain
/// declares ThreadSafeInterpret, solve() owns a per-solve thread pool,
/// precompiles all `seq`-edge transformers on it before iteration starts,
/// and hands it to the scheduler (IterationStrategy::ParallelScc and
/// ParallelIntra use it). Update accounting switches to atomics so
/// concurrent workers can share the counters; per-node state (values,
/// update counts) needs no locks because each node is written by exactly
/// one worker at a time (see ParallelSccScheduler and
/// ParallelIntraScheduler).
///
/// The value computed at a procedure's entry node is that procedure's
/// summary (§2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_SOLVER_H
#define PMAF_CORE_SOLVER_H

#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/CompiledProgram.h"
#include "core/Domain.h"
#include "core/Instrumentation.h"
#include "core/Schedule.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace pmaf {
namespace core {

/// The numeric backend of the polyhedra-based domains (the LEIA ladder,
/// Issue 6). The solver itself is domain-generic; this enum travels in
/// SolverOptions so harnesses (tools/pmaf, bench_leia) can carry one
/// backend choice through to the domain instantiation they dispatch on.
enum class NumericBackend {
  Poly,      ///< Monolithic polyhedra (the §5.3 baseline).
  Ladder,    ///< Packed intervals→zones→polyhedra escalation; exact.
  Zones,     ///< Difference bounds only; sound over-approximation.
  Intervals, ///< Per-variable bounds only; sound over-approximation.
};

inline const char *toString(NumericBackend Backend) {
  switch (Backend) {
  case NumericBackend::Poly:
    return "poly";
  case NumericBackend::Ladder:
    return "ladder";
  case NumericBackend::Zones:
    return "zones";
  case NumericBackend::Intervals:
    return "intervals";
  }
  return "?";
}

inline std::optional<NumericBackend>
parseNumericBackend(std::string_view Name) {
  if (Name == "poly")
    return NumericBackend::Poly;
  if (Name == "ladder")
    return NumericBackend::Ladder;
  if (Name == "zones")
    return NumericBackend::Zones;
  if (Name == "intervals")
    return NumericBackend::Intervals;
  return std::nullopt;
}

/// Tuning knobs for the solver.
struct SolverOptions {
  /// Number of plain updates of a widening point before widening kicks in.
  unsigned WideningDelay = 2;

  IterationStrategy Strategy = IterationStrategy::WtoRecursive;

  /// Disable widening altogether (sound for under-abstractions iterated
  /// from bottom, such as the Bayesian-inference domain of §5.1).
  bool UseWidening = true;

  /// Ablation (§4.4): use widenNdet at every widening point instead of
  /// selecting the operator by the loop's control action.
  bool UnifiedWidening = false;

  /// Safety valve: abort (Converged=false) after this many node updates.
  uint64_t MaxUpdates = 5'000'000;

  /// Worker threads for the parallel engine: up-front transformer
  /// precompilation and the ParallelScc scheduler. 1 (the default) keeps
  /// the solve fully sequential and pool-free; 0 means one worker per
  /// hardware thread. Domains that do not declare ThreadSafeInterpret
  /// (core/Domain.h) are always solved sequentially — Jobs > 1 then still
  /// precompiles transformers up front, just on the calling thread.
  unsigned Jobs = 1;

  /// Component→worker affinity for the parallel schedulers: pin an SCC's
  /// stabilization rounds (ParallelScc) and a body unit's batch slot
  /// (ParallelIntra) to a fixed pool worker so its thread-local
  /// conversion memos stay hot across re-iterations; the pool still
  /// steals from a saturated owner. Fixpoints are identical either way —
  /// the switch exists for A/B measurement and the parity sweep.
  bool Affinity = true;

  /// Numeric backend for polyhedra-based domains. Consumed by the
  /// harnesses when they construct the domain (the solver template never
  /// reads it — the backend is baked into the domain type).
  NumericBackend Numeric = NumericBackend::Ladder;
};

/// A prior fixpoint to warm-start an incremental re-solve from. Nodes
/// with Dirty[v] == 0 are *frozen*: the solver keeps Values[v] verbatim
/// and never evaluates their right-hand side. Soundness requires the
/// dirty set to be closed under the dependence relation — every node
/// whose equation (transitively) reads a changed node must be dirty
/// (cfg::reachableFrom over CompiledProgram::dependents() computes
/// exactly that closure). Then each clean node's right-hand side reads
/// only clean nodes whose equations are unchanged, so the prior values
/// remain the least solution there, and dirty nodes restart from bottom
/// with fresh widening counts — the same iteration history a from-scratch
/// solve would give them once their (identical) clean inputs stabilized.
/// Under the stabilization discipline every scheduler follows, the warm
/// fixpoint is therefore bit-identical to the cold one.
template <typename ValueT> struct WarmStart {
  /// Prior per-node values, indexed by the *current* graph's node ids
  /// (the caller maps old ids to new ones). Dirty slots may hold
  /// anything — the solver resets them to bottom.
  std::vector<ValueT> Values;
  /// Dirty[v] != 0: re-solve v from bottom. Must be dependence-closed.
  std::vector<char> Dirty;
};

/// Counters reported by the solver (a built-in summary; richer event
/// streams go through the SolverObserver passed to solve()).
struct SolverStats {
  uint64_t NodeUpdates = 0;
  uint64_t WideningApplications = 0;
  /// Dom.interpret invocations during this solve. At most one per `seq`
  /// edge — the interpret-cache invariant — and zero for every edge whose
  /// transformer an earlier solve over the same CompiledProgram already
  /// compiled.
  uint64_t InterpretCalls = 0;
  /// Transformer-cache hits during this solve.
  uint64_t InterpretCacheHits = 0;
  /// `seq` edges covered by the up-front precompilation pass (zero when
  /// the solve was lazy, i.e. Jobs == 1).
  uint64_t PrecompiledTransformers = 0;
  /// Wall-clock seconds of the precompilation pass.
  double PrecompileSeconds = 0.0;
  /// Cumulative busy seconds across pool workers; utilization over the
  /// whole solve is ThreadBusySeconds / (JobsUsed * wall seconds).
  double ThreadBusySeconds = 0.0;
  /// Worker threads the solve actually used (1 = sequential, either by
  /// request or because the domain is not ThreadSafeInterpret).
  unsigned JobsUsed = 1;
  /// High-water mark of simultaneously in-flight SCC stabilizations under
  /// the ParallelScc scheduler (1 for every sequential strategy) — the
  /// observed, not theoretical, SCC-level parallelism of the solve.
  unsigned MaxParallelSccs = 1;
  /// Intra-component batches the ParallelIntra scheduler fanned out
  /// (zero for every other strategy), the widest batch executed, and the
  /// seconds the coordinator spent waiting at batch barriers.
  uint64_t IntraBatchesRun = 0;
  unsigned MaxIntraBatchWidth = 0;
  double IntraBarrierWaitSeconds = 0.0;
  /// Pool queueing for the solve (all zero for sequential solves): tasks
  /// executed across workers, tasks taken from another worker's deque,
  /// and pinned tasks run by their owning worker. Steals low and
  /// affinity hits high is the locality protocol working; steals high
  /// means the SCC/batch structure is too imbalanced for pinning and the
  /// pool is rebalancing instead.
  uint64_t PoolTasksRun = 0;
  uint64_t PoolSteals = 0;
  uint64_t PoolAffinityHits = 0;
  /// Per-worker breakdown of the same counters (index = worker).
  std::vector<support::ThreadPool::WorkerQueueStats> PoolWorkers;
  /// Numeric-layer counters for domains that report them (all-zero
  /// otherwise): per-solve deltas of the monotone counters, current
  /// high-water marks for the peaks (reset via poly::resetNumericPeaks).
  NumericLayerStats Numeric;
  /// Warm-start accounting (zero on cold solves). NodesReused counts the
  /// frozen nodes whose prior values were kept verbatim; SccsSkipped /
  /// SccsResolved partition the WTO's components (at every nesting depth)
  /// into all-clean ones — stabilized in one trivial pass without a
  /// single domain operation — and ones containing dirty nodes.
  uint64_t NodesReused = 0;
  uint64_t SccsSkipped = 0;
  uint64_t SccsResolved = 0;
  /// False iff the update budget (MaxUpdates) ran out first, in which
  /// case Values is a mid-iteration snapshot, not a post-fixpoint —
  /// callers must not report it as the analysis answer.
  bool Converged = true;
};

/// The solution of the inequality system plus iteration statistics.
template <typename ValueT> struct AnalysisResult {
  /// Per-node transformer-to-exit; index with hyper-graph node ids.
  std::vector<ValueT> Values;
  SolverStats Stats;
};

/// Solves the inequality system for an already-compiled program. The
/// compiled program's transformer cache survives the call, so repeated
/// solves (e.g. timed re-analyses) interpret each `seq` edge exactly once
/// overall. \p Observer, when non-null, receives every solver event.
/// \p Warm, when non-null and sized for the graph, warm-starts the solve
/// from a prior fixpoint: clean nodes keep their values untouched, only
/// the dirty (dependence-closed) region iterates — see WarmStart.
template <PreMarkovAlgebra D>
AnalysisResult<typename D::Value>
solve(CompiledProgram<D> &Compiled, const SolverOptions &Opts = {},
      SolverObserver *Observer = nullptr,
      const WarmStart<typename D::Value> *Warm = nullptr) {
  using Value = typename D::Value;

  const cfg::ProgramGraph &Graph = Compiled.graph();
  D &Dom = Compiled.domain();
  const unsigned NumNodes = Graph.numNodes();

  Compiled.setObserver(Observer);
  const uint64_t InterpretCallsBefore = Compiled.interpretCalls();
  const uint64_t InterpretHitsBefore = Compiled.interpretCacheHits();
  NumericLayerStats NumericBefore;
  if constexpr (ReportsNumericStats<D>)
    NumericBefore = D::numericStats();
  if (Observer)
    Observer->onSolveBegin(NumNodes);

  AnalysisResult<Value> Result;
  // Warm start: adopt the prior fixpoint wholesale, then reset the dirty
  // region to bottom so it re-iterates exactly as a cold solve would.
  // Clean nodes are frozen — Update() below never touches them.
  const std::vector<char> *DirtyMask = nullptr;
  if (Warm && Warm->Values.size() == NumNodes &&
      Warm->Dirty.size() == NumNodes) {
    DirtyMask = &Warm->Dirty;
    Result.Values = Warm->Values;
    for (unsigned V = 0; V != NumNodes; ++V)
      if ((*DirtyMask)[V])
        Result.Values[V] = Dom.bottom();
  } else {
    Result.Values.assign(NumNodes, Dom.bottom());
  }

  // Exit nodes hold the constant 1 (line 6 of the system in §4.3).
  for (unsigned P = 0; P != Graph.numProcs(); ++P)
    Result.Values[Graph.proc(P).Exit] = Dom.one();

  // Iteration order: the WTO cached on the compiled program (invariant
  // across solves; rooted at the exits so values flow leaf-to-root, §2.3).
  const cfg::Wto &Order = Compiled.wto();

  // Parallel engine setup. The pool is per-solve (distinct from the
  // process-wide shared pool the matrix kernels use) and only exists when
  // both the caller asked for parallelism and the domain allows it.
  const unsigned Jobs = Opts.Jobs == 0
                            ? support::ThreadPool::hardwareConcurrency()
                            : Opts.Jobs;
  constexpr bool ParallelSafe = threadSafeInterpret<D>();
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1 && ParallelSafe)
    Pool = std::make_unique<support::ThreadPool>(Jobs);
  Result.Stats.JobsUsed = Pool ? Pool->size() : 1;

  // Domains with parallel-phase hooks (core/Domain.h) reroute their
  // operations through per-thread state between these brackets; the guard
  // covers the parallel schedulers' whole iteration (intra-component
  // batches included) and closes only after they quiesce. Sequential
  // strategies skip the solve-wide bracket even with Jobs > 1 — their
  // iteration runs on the calling thread, and precompile() brackets its
  // own fan-out — so they keep the domains' direct (arena-free) path.
  // Workers = pool + caller.
  const bool ParallelIteration =
      Opts.Strategy == IterationStrategy::ParallelScc ||
      Opts.Strategy == IterationStrategy::ParallelIntra;
  ParallelPhase<D> Phase(Dom, Pool ? Pool->size() + 1 : 1,
                         Pool != nullptr && ParallelIteration);

  // With more than one job requested, pay for every transformer up front
  // (in parallel when the domain permits) so the iteration phase never
  // stalls on an interpret.
  if (Jobs > 1) {
    auto PrecompileStart = std::chrono::steady_clock::now();
    Result.Stats.PrecompiledTransformers = Compiled.precompile(Pool.get());
    Result.Stats.PrecompileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      PrecompileStart)
            .count();
    if (Observer)
      Observer->onPrecompileEnd(
          static_cast<unsigned>(Result.Stats.PrecompiledTransformers),
          Result.Stats.PrecompileSeconds);
  }

  std::vector<unsigned> UpdateCount(NumNodes, 0);

  // Shared update accounting. Atomics because ParallelScc runs Update from
  // several workers at once; relaxed ordering suffices — these are pure
  // counters, and the scheduler orders the value vector itself.
  std::atomic<uint64_t> NodeUpdates{0};
  std::atomic<uint64_t> WideningApplications{0};
  std::atomic<bool> Converged{true};

  // Updates node V; returns true if its value changed. Safe to call
  // concurrently for nodes in different SCCs: per-node state (Values,
  // UpdateCount) is only ever touched by the worker that owns V's SCC.
  auto Update = [&](unsigned V) -> bool {
    // Frozen under warm start: the prior fixpoint value stands, no
    // domain operation and no budget charge. Clean SCCs thus stabilize
    // in one trivial pass under every scheduler (the full WTO is kept —
    // filtering it would corrupt the parallel schedulers' SCC indexing).
    if (DirtyMask && !(*DirtyMask)[V])
      return false;
    if (!Graph.outgoing(V))
      return false; // Exit nodes are pinned at 1.
    if (NodeUpdates.fetch_add(1, std::memory_order_relaxed) + 1 >
        Opts.MaxUpdates) {
      // Give the refused increment back so the final tally is exactly
      // the budget, not budget + however many refusals happened before
      // the schedulers noticed Exhausted().
      NodeUpdates.fetch_sub(1, std::memory_order_relaxed);
      Converged.store(false, std::memory_order_relaxed);
      return false;
    }
    Value New = Compiled.evalRhs(V, Result.Values);
    bool Widen = Opts.UseWidening && Order.WideningPoint[V] &&
                 UpdateCount[V] >= Opts.WideningDelay;
    ++UpdateCount[V];
    if (Widen) {
      WideningApplications.fetch_add(1, std::memory_order_relaxed);
      if (Observer)
        Observer->onWidening(V);
      const Value &Old = Result.Values[V];
      if (Opts.UnifiedWidening) {
        New = Dom.widenNdet(Old, New);
      } else {
        // The operator is a function of the component, not of V's own
        // outgoing edge: a head can close loops guarded by several kinds
        // at once, and which guard contributes the head's edge is an
        // accident of DFS order (CompiledProgram::wideningKinds applies
        // the precedence ndet ▷ prob ▷ cond over the component's guard
        // edges — branches leading both back into and out of the loop).
        switch (Compiled.wideningKinds()[V]) {
        case cfg::ControlAction::Kind::Cond:
          New = Dom.widenCond(Old, New);
          break;
        case cfg::ControlAction::Kind::Prob:
          New = Dom.widenProb(Old, New);
          break;
        case cfg::ControlAction::Kind::Ndet:
          New = Dom.widenNdet(Old, New);
          break;
        case cfg::ControlAction::Kind::Seq:
        case cfg::ControlAction::Kind::Call:
          // A component with only seq/call edges is the cut of a
          // recursion cycle; domains may use a dedicated operator here —
          // rebuilding pessimistically as for ndet loops is sound but
          // can destroy all relational information a recursive summary
          // needs.
          New = Dom.widenCall(Old, New);
          break;
        }
      }
    }
    bool Changed = !Dom.equal(Result.Values[V], New);
    if (Observer)
      Observer->onNodeUpdate(V, Changed);
    if (!Changed)
      return false;
    Result.Values[V] = std::move(New);
    return true;
  };

  // The worklist scheduler's priority key, hoisted here so it is computed
  // once per solve rather than once per scheduler run.
  std::vector<unsigned> Positions = Order.positions();

  std::atomic<unsigned> MaxParallelSccs{1};
  std::atomic<uint64_t> IntraBatchesRun{0};
  std::atomic<unsigned> MaxIntraBatchWidth{0};
  std::atomic<uint64_t> IntraBarrierWaitNanos{0};

  ScheduleContext Ctx;
  Ctx.NumNodes = NumNodes;
  Ctx.Order = &Order;
  Ctx.Dependents = &Compiled.dependents();
  Ctx.Positions = &Positions;
  Ctx.Update = Update;
  Ctx.Exhausted = [&Converged] {
    return !Converged.load(std::memory_order_relaxed);
  };
  Ctx.Observer = Observer;
  Ctx.Pool = Pool.get();
  Ctx.ParallelSafe = ParallelSafe;
  Ctx.Affinity = Opts.Affinity;
  Ctx.MaxParallelSccs = &MaxParallelSccs;
  if (Opts.Strategy == IterationStrategy::ParallelIntra) {
    Ctx.IntraPlans = &Compiled.intraPlans();
    Ctx.IntraBatchesRun = &IntraBatchesRun;
    Ctx.MaxIntraBatchWidth = &MaxIntraBatchWidth;
    Ctx.IntraBarrierWaitNanos = &IntraBarrierWaitNanos;
  }
  makeScheduler(Opts.Strategy)->run(Ctx);

  Result.Stats.MaxParallelSccs =
      MaxParallelSccs.load(std::memory_order_relaxed);
  Result.Stats.IntraBatchesRun =
      IntraBatchesRun.load(std::memory_order_relaxed);
  Result.Stats.MaxIntraBatchWidth =
      MaxIntraBatchWidth.load(std::memory_order_relaxed);
  Result.Stats.IntraBarrierWaitSeconds =
      IntraBarrierWaitNanos.load(std::memory_order_relaxed) * 1e-9;
  Result.Stats.NodeUpdates = NodeUpdates.load(std::memory_order_relaxed);
  Result.Stats.WideningApplications =
      WideningApplications.load(std::memory_order_relaxed);
  Result.Stats.Converged = Converged.load(std::memory_order_relaxed);
  // Warm-start reuse accounting: frozen nodes, and the component-level
  // split of the WTO into all-clean (skipped) and dirty (re-resolved)
  // SCCs. A cold solve resolves every component and reuses nothing.
  {
    if (DirtyMask)
      for (unsigned V = 0; V != NumNodes; ++V)
        Result.Stats.NodesReused += (*DirtyMask)[V] ? 0 : 1;
    auto Visit = [&](auto &&Self, const cfg::WtoElement &E) -> bool {
      bool AllClean = !DirtyMask || !(*DirtyMask)[E.Node];
      for (const cfg::WtoElement &Child : E.Body)
        AllClean &= Self(Self, Child);
      if (E.IsComponent)
        ++(AllClean ? Result.Stats.SccsSkipped : Result.Stats.SccsResolved);
      return AllClean;
    };
    for (const cfg::WtoElement &E : Order.Elements)
      Visit(Visit, E);
  }
  Result.Stats.InterpretCalls =
      Compiled.interpretCalls() - InterpretCallsBefore;
  Result.Stats.InterpretCacheHits =
      Compiled.interpretCacheHits() - InterpretHitsBefore;
  if (Pool) {
    for (double Busy : Pool->workerBusySeconds())
      Result.Stats.ThreadBusySeconds += Busy;
    // The pool is per-solve, so its lifetime totals are this solve's
    // queueing story (precompilation fan-out included).
    Result.Stats.PoolWorkers = Pool->workerQueueStats();
    Result.Stats.PoolTasksRun = Pool->totalTasksRun();
    Result.Stats.PoolSteals = Pool->totalSteals();
    Result.Stats.PoolAffinityHits = Pool->totalAffinityHits();
    if (Observer)
      Observer->onPoolQueue(Result.Stats.PoolTasksRun,
                            Result.Stats.PoolSteals,
                            Result.Stats.PoolAffinityHits);
  }
  if constexpr (ReportsNumericStats<D>) {
    NumericLayerStats Now = D::numericStats();
    Result.Stats.Numeric.MinimizationCalls =
        Now.MinimizationCalls - NumericBefore.MinimizationCalls;
    Result.Stats.Numeric.ConversionCacheHits =
        Now.ConversionCacheHits - NumericBefore.ConversionCacheHits;
    Result.Stats.Numeric.ConversionCacheMisses =
        Now.ConversionCacheMisses - NumericBefore.ConversionCacheMisses;
    Result.Stats.Numeric.SharedCacheHits =
        Now.SharedCacheHits - NumericBefore.SharedCacheHits;
    Result.Stats.Numeric.CacheEvictions =
        Now.CacheEvictions - NumericBefore.CacheEvictions;
    Result.Stats.Numeric.Escalations =
        Now.Escalations - NumericBefore.Escalations;
    Result.Stats.Numeric.PeakGeneratorRows = Now.PeakGeneratorRows;
    Result.Stats.Numeric.MaxPackWidth = Now.MaxPackWidth;
    if (Observer)
      Observer->onNumericLayer(Result.Stats.Numeric);
  }
  if (Observer)
    Observer->onSolveEnd(Result.Stats.Converged);
  return Result;
}

/// Solves the interprocedural equation system for \p Graph over \p Dom
/// (compiles the program first; use the CompiledProgram overload to reuse
/// the transformer cache across solves).
template <PreMarkovAlgebra D>
AnalysisResult<typename D::Value> solve(const cfg::ProgramGraph &Graph,
                                        D &Dom,
                                        const SolverOptions &Opts = {},
                                        SolverObserver *Observer = nullptr) {
  CompiledProgram<D> Compiled(Graph, Dom, Observer);
  return solve(Compiled, Opts, Observer);
}

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_SOLVER_H
