//===- core/Solver.h - Interprocedural chaotic-iteration solver -*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic analysis algorithm of §4.3–§4.4: given a hyper-graph program
/// and an interpretation (a pre-Markov algebra), compute the least
/// (prefixed-point) solution of the inequality system
///
///   S(v) ⊒ ⟦act⟧ ⊗ S(u1)              (seq[act] edge <v,u1>)
///   S(v) ⊒ S(u1) phi^ S(u2)            (cond[phi] edge <v,u1,u2>)
///   S(v) ⊒ S(u1) p⊕ S(u2)              (prob[p] edge <v,u1,u2>)
///   S(v) ⊒ S(u1) ⋓ S(u2)               (ndet edge <v,u1,u2>)
///   S(v) ⊒ S(entry_i) ⊗ S(u1)          (call[i] edge <v,u1>)
///   S(v) ⊒ 1                           (v an exit node)
///
/// by chaotic iteration following Bourdoncle's recursive strategy over the
/// weak topological order of the dependence graph (Eqn 2). At widening
/// points the solver applies one of three widening operators chosen by the
/// control action of the node's unique outgoing hyper-edge (§4.4), which
/// maintains the invariant of Obs 4.9 (old ⊑ new at every `old ∇ new`).
///
/// The value computed at a procedure's entry node is that procedure's
/// summary (§2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_SOLVER_H
#define PMAF_CORE_SOLVER_H

#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/Domain.h"

#include <cstdint>
#include <vector>

namespace pmaf {
namespace core {

/// Chaotic-iteration strategies.
enum class IterationStrategy {
  /// Bourdoncle's recursive strategy over the WTO (the paper's choice:
  /// "efficient iteration strategies with widenings").
  WtoRecursive,
  /// Naive round-robin sweeps over all nodes until stable (ablation
  /// baseline; widening points still come from the WTO so termination is
  /// unaffected).
  RoundRobin,
};

/// Tuning knobs for the solver.
struct SolverOptions {
  /// Number of plain updates of a widening point before widening kicks in.
  unsigned WideningDelay = 2;

  IterationStrategy Strategy = IterationStrategy::WtoRecursive;

  /// Disable widening altogether (sound for under-abstractions iterated
  /// from bottom, such as the Bayesian-inference domain of §5.1).
  bool UseWidening = true;

  /// Ablation (§4.4): use widenNdet at every widening point instead of
  /// selecting the operator by the loop's control action.
  bool UnifiedWidening = false;

  /// Safety valve: abort (Converged=false) after this many node updates.
  uint64_t MaxUpdates = 5'000'000;
};

/// Counters reported by the solver.
struct SolverStats {
  uint64_t NodeUpdates = 0;
  uint64_t WideningApplications = 0;
  bool Converged = true;
};

/// The solution of the inequality system plus iteration statistics.
template <typename ValueT> struct AnalysisResult {
  /// Per-node transformer-to-exit; index with hyper-graph node ids.
  std::vector<ValueT> Values;
  SolverStats Stats;
};

/// Solves the interprocedural equation system for \p Graph over \p Dom.
template <PreMarkovAlgebra D>
AnalysisResult<typename D::Value> solve(const cfg::ProgramGraph &Graph,
                                        D &Dom,
                                        const SolverOptions &Opts = {}) {
  using Value = typename D::Value;

  const unsigned NumNodes = Graph.numNodes();
  AnalysisResult<Value> Result;
  Result.Values.assign(NumNodes, Dom.bottom());

  // Exit nodes hold the constant 1 (line 6 of the system in §4.3).
  for (unsigned P = 0; P != Graph.numProcs(); ++P)
    Result.Values[Graph.proc(P).Exit] = Dom.one();

  // Iteration order: WTO of the dependence graph, rooted at the exits so
  // that values flow leaf-to-root (§2.3).
  std::vector<unsigned> Roots;
  for (unsigned P = 0; P != Graph.numProcs(); ++P)
    Roots.push_back(Graph.proc(P).Exit);
  cfg::Wto Order =
      cfg::Wto::compute(Graph.dependenceSuccessors(), Roots);

  std::vector<unsigned> UpdateCount(NumNodes, 0);

  // Right-hand side of node V's inequality.
  auto EvalRhs = [&](unsigned V) -> Value {
    const cfg::HyperEdge *Edge = Graph.outgoing(V);
    assert(Edge && "exit nodes are constant");
    const std::vector<Value> &S = Result.Values;
    switch (Edge->Ctrl.TheKind) {
    case cfg::ControlAction::Kind::Seq:
      return Dom.extend(Dom.interpret(Edge->Ctrl.DataAction),
                        S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Call:
      return Dom.extend(S[Graph.proc(Edge->Ctrl.Callee).Entry],
                        S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Cond:
      return Dom.condChoice(*Edge->Ctrl.Phi, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Prob:
      return Dom.probChoice(Edge->Ctrl.Prob, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Ndet:
      return Dom.ndetChoice(S[Edge->Dsts[0]], S[Edge->Dsts[1]]);
    }
    assert(false && "unknown control action");
    return Dom.bottom();
  };

  // Updates node V; returns true if its value changed.
  auto Update = [&](unsigned V) -> bool {
    if (!Graph.outgoing(V))
      return false; // Exit nodes are pinned at 1.
    if (++Result.Stats.NodeUpdates > Opts.MaxUpdates) {
      Result.Stats.Converged = false;
      return false;
    }
    Value New = EvalRhs(V);
    bool Widen = Opts.UseWidening && Order.WideningPoint[V] &&
                 UpdateCount[V] >= Opts.WideningDelay;
    ++UpdateCount[V];
    if (Widen) {
      ++Result.Stats.WideningApplications;
      const Value &Old = Result.Values[V];
      if (Opts.UnifiedWidening) {
        New = Dom.widenNdet(Old, New);
      } else {
        switch (Graph.outgoing(V)->Ctrl.TheKind) {
        case cfg::ControlAction::Kind::Cond:
          New = Dom.widenCond(Old, New);
          break;
        case cfg::ControlAction::Kind::Prob:
          New = Dom.widenProb(Old, New);
          break;
        case cfg::ControlAction::Kind::Ndet:
          New = Dom.widenNdet(Old, New);
          break;
        case cfg::ControlAction::Kind::Seq:
        case cfg::ControlAction::Kind::Call:
          // A widening point whose outgoing edge is seq/call is the cut of
          // a recursion cycle (or a WTO head that is not a branch node);
          // domains may use a dedicated operator here — rebuilding
          // pessimistically as for ndet loops is sound but can destroy
          // all relational information a recursive summary needs.
          New = Dom.widenCall(Old, New);
          break;
        }
      }
    }
    if (Dom.equal(Result.Values[V], New))
      return false;
    Result.Values[V] = std::move(New);
    return true;
  };

  // Bourdoncle's recursive iteration strategy: a component is re-iterated
  // until a full pass over it changes nothing; nested components are
  // stabilized within each pass.
  auto Stabilize = [&](const auto &Self,
                       const cfg::WtoElement &Element) -> void {
    if (!Element.IsComponent) {
      Update(Element.Node);
      return;
    }
    while (Result.Stats.Converged) {
      bool Changed = Update(Element.Node);
      for (const cfg::WtoElement &Child : Element.Body)
        Self(Self, Child);
      // All intra-component cycles pass through the head (or through
      // nested components, which Self stabilized); once an extra head
      // update is a no-op after a no-op pass, every inequality in the
      // component is satisfied.
      if (!Changed && !Update(Element.Node))
        break;
    }
  };

  switch (Opts.Strategy) {
  case IterationStrategy::WtoRecursive:
    for (const cfg::WtoElement &Element : Order.Elements)
      Stabilize(Stabilize, Element);
    break;
  case IterationStrategy::RoundRobin:
    while (Result.Stats.Converged) {
      bool Changed = false;
      for (unsigned V = 0; V != NumNodes; ++V)
        Changed |= Update(V);
      if (!Changed)
        break;
    }
    break;
  }

  return Result;
}

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_SOLVER_H
